//! Telemetry determinism grid: the serialized artifacts (JSONL stream and
//! Chrome trace) must be byte-identical across `PATU_THREADS` settings,
//! with and without fault injection, at every trace level — and `off` must
//! record nothing at all. The flight recorder's postmortems must name the
//! offending frame, tile, cluster, policy and fault seed. The serve-layer
//! grid extends the same bar to observability v2: causal trace trees, SLO
//! burn alerts and per-frame cycle attribution must be bit-identical
//! across thread counts under every chaos scenario.

use patu_core::FilterPolicy;
use patu_gpu::FaultConfig;
use patu_obs::{schema, sink, EventKind, TelemetryConfig, TraceLevel};
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn workload() -> Workload {
    Workload::build("doom3", (256, 192)).unwrap()
}

/// Renders one frame and serializes its telemetry through both sinks.
fn artifacts(w: &Workload, cfg: &RenderConfig) -> (String, String) {
    let r = render_frame(w, 0, cfg).expect("valid test config");
    let t = r.telemetry.expect("telemetry enabled");
    let frames = [*t];
    (sink::jsonl(&frames), sink::chrome_trace(&frames))
}

#[test]
fn artifacts_bit_identical_across_threads_and_faults() {
    let w = workload();
    for faults in [FaultConfig::disabled(), FaultConfig::uniform(7, 0.02)] {
        for level in [TraceLevel::Counters, TraceLevel::Spans] {
            let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
                .with_faults(faults)
                .with_telemetry(TelemetryConfig::with_level(level));
            let (jsonl_1, trace_1) = artifacts(&w, &cfg.with_threads(1));
            let (jsonl_4, trace_4) = artifacts(&w, &cfg.with_threads(4));
            assert_eq!(
                jsonl_1, jsonl_4,
                "JSONL must not depend on the thread count (level {level:?}, faults {faults:?})"
            );
            assert_eq!(
                trace_1, trace_4,
                "Chrome trace must not depend on the thread count \
                 (level {level:?}, faults {faults:?})"
            );
            let lines = schema::check_stream(&jsonl_1)
                .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
            assert!(lines > 0, "an enabled run emits at least the frame header");
        }
    }
}

#[test]
fn off_produces_zero_events() {
    let w = workload();
    for threads in [1usize, 4] {
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_threads(threads);
        let r = render_frame(&w, 0, &cfg).unwrap();
        assert!(
            r.telemetry.is_none(),
            "PATU_TRACE=off carries no telemetry at all"
        );
    }
}

#[test]
fn spans_level_strictly_extends_counters() {
    let w = workload();
    let base = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
    let counters = render_frame(
        &w,
        0,
        &base.with_telemetry(TelemetryConfig::with_level(TraceLevel::Counters)),
    )
    .unwrap()
    .telemetry
    .unwrap();
    let spans = render_frame(
        &w,
        0,
        &base.with_telemetry(TelemetryConfig::with_level(TraceLevel::Spans)),
    )
    .unwrap()
    .telemetry
    .unwrap();
    assert!(counters.spans.is_empty(), "counters level records no spans");
    assert!(
        !spans.spans.is_empty(),
        "spans level records the stage tree"
    );
    assert_eq!(
        counters.counters, spans.counters,
        "counters agree across levels"
    );
    assert_eq!(
        counters.hists, spans.hists,
        "histograms agree across levels"
    );
}

#[test]
fn watchdog_dump_names_the_offender_identically_across_threads() {
    let w = workload();
    let cfg = RenderConfig::new(FilterPolicy::Baseline)
        .with_cycle_budget(1)
        .with_telemetry(TelemetryConfig::with_level(TraceLevel::Counters));
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let r = render_frame(&w, 0, &cfg.with_threads(threads)).unwrap();
        assert!(r.degraded, "a 1-cycle budget trips the watchdog");
        let t = r.telemetry.expect("counters level records");
        assert!(!t.dumps.is_empty(), "the trip leaves a postmortem");
        let dump = &t.dumps[0];
        assert_eq!(dump.reason, "watchdog_trip");
        assert_eq!(dump.frame, 0);
        assert_eq!(dump.policy, "Baseline");
        assert_eq!(dump.fault_seed, 0);
        assert!(
            dump.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::WatchdogTrip)),
            "the ring retains the trip event"
        );
        let rendered = sink::render_dump(dump);
        for needle in ["watchdog_trip", "frame 0", "Baseline", "fault seed 0"] {
            assert!(
                rendered.contains(needle),
                "dump report must name {needle:?}: {rendered}"
            );
        }
        reports.push(sink::jsonl(std::slice::from_ref(&t)));
    }
    assert_eq!(
        reports[0], reports[1],
        "dumps serialize identically across thread counts"
    );
}

#[test]
fn fault_fallback_dump_carries_the_seed() {
    let w = workload();
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
        .with_faults(FaultConfig::uniform(42, 0.05))
        .with_telemetry(TelemetryConfig::with_level(TraceLevel::Counters));
    let r = render_frame(&w, 0, &cfg).unwrap();
    assert!(
        r.stats.faults.fallbacks > 0,
        "5% fault rates force fallbacks"
    );
    let t = r.telemetry.unwrap();
    let dump = t
        .dumps
        .iter()
        .find(|d| d.reason == "fault_fallback")
        .expect("a fallback leaves a postmortem");
    assert_eq!(dump.fault_seed, 42);
    assert!(
        dump.policy.starts_with("Patu"),
        "policy label: {}",
        dump.policy
    );
    assert!(
        dump.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Fallback { .. })),
        "the ring retains the fallback event"
    );
}

mod serve_observability {
    //! Observability v2 determinism: per-job causal trace trees, SLO
    //! burn-rate alerts and attribution-bearing artifacts out of full
    //! serve sessions, pinned across `PATU_THREADS` and chaos scenarios.

    use patu_core::FilterPolicy;
    use patu_obs::{schema, sink, SloOptions, TelemetryConfig, TraceLevel};
    use patu_scenes::Workload;
    use patu_serve::{run_session, Scenario, ServeConfig, SimFrameService, SyntheticService};
    use patu_sim::render::{render_frame, RenderConfig};

    const CHAOS_GRID: [Scenario; 3] = [
        Scenario::SingleGpuFlap,
        Scenario::HalfPoolOutage,
        Scenario::StragglerStorm,
    ];

    /// A dense synthetic session: enough jobs for retries, hedges and
    /// (under outage) SLO burn alerts, cheap enough to run per scenario.
    fn chaos_cfg(scenario: Scenario) -> ServeConfig {
        ServeConfig {
            seed: 1207,
            clients: 4,
            jobs_per_client: 48,
            scenario,
            load: 1.5,
            gpus: 2,
            queue_capacity: 8,
            trace: TraceLevel::Spans,
            slo: SloOptions::default(),
            pressure_gain: 0.4,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn every_terminal_job_leaves_a_well_formed_trace_tree() {
        for scenario in CHAOS_GRID {
            let cfg = chaos_cfg(scenario);
            let mut svc = SyntheticService::new(1_000_000, cfg.governor_steps);
            let report = run_session(&cfg, &mut svc).unwrap();
            // The schema checker walks every trace line's span tree:
            // single root, valid parent links, children inside bounds.
            schema::check_stream(&report.log)
                .unwrap_or_else(|(line, err)| panic!("{scenario:?}: line {line}: {err}"));
            let traces = report
                .log
                .lines()
                .filter(|l| l.starts_with("{\"type\":\"trace\""))
                .count();
            assert_eq!(
                traces as u64, report.stats.submitted,
                "{scenario:?}: one causal tree per submitted job"
            );
            assert!(
                report.log.contains("serve::lifecycle"),
                "{scenario:?}: every tree is rooted in the job lifecycle"
            );
        }
    }

    #[test]
    fn serve_artifacts_bit_identical_across_threads_under_chaos() {
        for scenario in CHAOS_GRID {
            let base = ServeConfig {
                clients: 3,
                jobs_per_client: 4,
                resolution: (96, 64),
                frame_span: 2,
                ..chaos_cfg(scenario)
            };
            let mut artifacts = Vec::new();
            for threads in [1usize, 4] {
                let cfg = ServeConfig {
                    threads: Some(threads),
                    ..base.clone()
                };
                let mut svc = SimFrameService::new(&cfg).unwrap();
                let report = run_session(&cfg, &mut svc).unwrap();
                schema::check_stream(&report.log)
                    .unwrap_or_else(|(line, err)| panic!("{scenario:?}: line {line}: {err}"));
                artifacts.push((report.log.clone(), report.chrome_trace()));
            }
            assert_eq!(
                artifacts[0].0, artifacts[1].0,
                "{scenario:?}: serve log must not depend on the thread count"
            );
            assert_eq!(
                artifacts[0].1, artifacts[1].1,
                "{scenario:?}: chrome trace must not depend on the thread count"
            );
        }
    }

    #[test]
    fn half_pool_outage_alerts_fire_at_identical_cycles_across_runs() {
        let cfg = chaos_cfg(Scenario::HalfPoolOutage);
        let mut cycles = Vec::new();
        for _ in 0..2 {
            let mut svc = SyntheticService::new(1_000_000, cfg.governor_steps);
            let report = run_session(&cfg, &mut svc).unwrap();
            assert!(
                !report.alerts.is_empty(),
                "losing half the pool at 1.5x load burns SLO budget"
            );
            cycles.push(
                report
                    .alerts
                    .iter()
                    .map(|a| (a.slo, a.cycle))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            cycles[0], cycles[1],
            "burn alerts land at deterministic virtual-clock cycles"
        );
    }

    #[test]
    fn attribution_artifacts_conserve_and_match_across_threads() {
        let w = Workload::build("doom3", (128, 96)).unwrap();
        let base = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
            .with_telemetry(TelemetryConfig::with_level(TraceLevel::Counters));
        let mut lines = Vec::new();
        for threads in [1usize, 4] {
            let r = render_frame(&w, 0, &base.with_threads(threads)).unwrap();
            let t = r.telemetry.expect("counters level records");
            assert_eq!(
                t.attrib.frame_total(),
                r.stats.cycles,
                "render-path stage cycles conserve to the frame total"
            );
            lines.push(t.attrib.jsonl_line(0));
        }
        assert_eq!(
            lines[0], lines[1],
            "the attribution line must not depend on the thread count"
        );
        schema::check_stream(&format!("{}\n", lines[0]))
            .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
        // The full JSONL sink carries the attribution line per frame.
        let r = render_frame(&w, 0, &base.with_threads(1)).unwrap();
        let stream = sink::jsonl(std::slice::from_ref(&r.telemetry.unwrap()));
        assert!(
            stream.contains("{\"type\":\"attrib\""),
            "sink::jsonl emits the per-frame attribution line"
        );
    }
}

#[test]
fn experiment_surfaces_dumps() {
    use patu_sim::experiment::{run_policies, ExperimentConfig};
    let w = Workload::build("grid", (192, 160)).unwrap();
    let cfg = ExperimentConfig {
        frames: 1,
        frame_stride: 1,
        faults: FaultConfig::uniform(5, 0.05),
        ..ExperimentConfig::default()
    }
    .with_telemetry(TelemetryConfig::with_level(TraceLevel::Counters));
    let results =
        run_policies(&w, &[("PATU", FilterPolicy::Patu { threshold: 0.4 })], &cfg).unwrap();
    assert!(
        !results[0].dumps.is_empty(),
        "fault fallbacks under 5% rates surface on the aggregate"
    );
    assert_eq!(results[0].dumps[0].fault_seed, 5);
}
