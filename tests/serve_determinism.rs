//! Tier-1 determinism grid for the serving subsystem.
//!
//! Runs real `patu_sim` renders through `patu_serve` over a grid of thread
//! counts × fault rates × load levels and asserts the entire observable
//! session — serve log, queue stats, delivered image hashes, telemetry —
//! is bit-identical. Thread counts are pinned via the explicit
//! `ServeConfig::threads` knob (which outranks `PATU_THREADS`), so the grid
//! is immune to the test harness environment.

use patu_gpu::FaultConfig;
use patu_serve::{run_session, Scenario, ServeConfig, ServeReport, SimFrameService};

fn base_cfg() -> ServeConfig {
    ServeConfig {
        seed: 1207,
        clients: 3,
        jobs_per_client: 4,
        scenes: vec!["doom3".to_string(), "hl2".to_string()],
        resolution: (96, 64),
        frame_span: 2,
        gpus: 2,
        queue_capacity: 6,
        batch_max: 3,
        // Pin the scenario so an ambient PATU_SERVE_SCENARIO can never
        // perturb the grid; chaos coverage gets its own explicit axis.
        scenario: Scenario::Calm,
        ..ServeConfig::default()
    }
}

fn run(cfg: &ServeConfig) -> ServeReport {
    let mut service = SimFrameService::new(cfg).expect("service builds");
    run_session(cfg, &mut service).expect("session runs")
}

/// Everything we compare between two runs of the same configuration. The
/// full `ServeStats` debug form folds in every resilience counter
/// (retries, hedges, breaker opens, outages, corrupt frames, ...).
fn fingerprint(report: &ServeReport) -> (String, Vec<u64>, String, String) {
    let mut hashes: Vec<u64> = report.completed.iter().map(|c| c.image_hash).collect();
    hashes.sort_unstable();
    (
        report.log.clone(),
        hashes,
        format!("{:?}", report.stats),
        report.chrome_trace(),
    )
}

#[test]
fn serve_sessions_are_bit_identical_across_the_grid() {
    for &threads in &[1usize, 4] {
        for &fault_rate in &[0.0f64, 0.02] {
            for &load in &[1.0f64, 2.5] {
                let cfg = ServeConfig {
                    threads: Some(threads),
                    faults: if fault_rate > 0.0 {
                        FaultConfig::uniform(77, fault_rate)
                    } else {
                        FaultConfig::disabled()
                    },
                    load,
                    ..base_cfg()
                };
                let a = fingerprint(&run(&cfg));
                let b = fingerprint(&run(&cfg));
                assert_eq!(
                    a, b,
                    "same config must replay identically (threads={threads}, \
                     faults={fault_rate}, load={load})"
                );
            }
        }
    }
}

#[test]
fn thread_count_never_leaks_into_results() {
    for &fault_rate in &[0.0f64, 0.02] {
        let cfg = |threads: usize| ServeConfig {
            threads: Some(threads),
            faults: if fault_rate > 0.0 {
                FaultConfig::uniform(77, fault_rate)
            } else {
                FaultConfig::disabled()
            },
            load: 2.0,
            ..base_cfg()
        };
        let one = fingerprint(&run(&cfg(1)));
        let four = fingerprint(&run(&cfg(4)));
        assert_eq!(
            one, four,
            "PATU_THREADS=1 vs 4 must be bit-identical (faults={fault_rate})"
        );
    }
}

#[test]
fn chaos_scenarios_replay_bit_identically_across_thread_counts() {
    for scenario in Scenario::ALL {
        let cfg = |threads: usize| ServeConfig {
            threads: Some(threads),
            scenario,
            load: 1.5,
            jobs_per_client: 6,
            ..base_cfg()
        };
        let one = fingerprint(&run(&cfg(1)));
        let four = fingerprint(&run(&cfg(4)));
        assert_eq!(
            one,
            four,
            "scenario {} must be bit-identical across PATU_THREADS=1 vs 4",
            scenario.label()
        );
        let replay = fingerprint(&run(&cfg(1)));
        assert_eq!(
            one,
            replay,
            "scenario {} must replay on the same thread count",
            scenario.label()
        );
    }
}

#[test]
fn overload_degradation_is_deterministic_and_monotone() {
    let mut prev_pressure = 0u64;
    for &load in &[0.8f64, 2.0, 4.0] {
        let cfg = ServeConfig {
            threads: Some(2),
            load,
            queue_capacity: 4,
            ..base_cfg()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.stats.shed, b.stats.shed, "sheds replay at load {load}");
        assert_eq!(
            a.stats.degrades, b.stats.degrades,
            "degrades replay at load {load}"
        );
        // Pressure responses (sheds + governor degrades) grow with load on
        // the same seed: heavier traffic never relieves the system.
        let pressure = a.stats.shed + a.stats.degrades;
        assert!(
            pressure >= prev_pressure,
            "pressure response at load {load}: {pressure} < {prev_pressure}"
        );
        prev_pressure = pressure;
        assert_eq!(
            a.stats.delivered + a.stats.shed + a.stats.failed,
            a.stats.submitted,
            "conservation at load {load}"
        );
    }
}

#[test]
fn delivered_quality_stays_above_the_acceptance_floor() {
    let cfg = ServeConfig {
        threads: Some(2),
        load: 2.0,
        // The quality bar is judged at the default serving resolution; the
        // rest of the grid shrinks it for speed.
        resolution: (192, 144),
        ..base_cfg()
    };
    let report = run(&cfg);
    assert!(report.stats.delivered > 0);
    assert!(
        report.stats.mean_ssim() >= 0.9,
        "mean delivered SSIM {} under 2x overload",
        report.stats.mean_ssim()
    );
    let checked = patu_obs::schema::check_stream(&report.log).expect("schema-clean log");
    assert_eq!(checked as u64, report.stats.submitted);
}
