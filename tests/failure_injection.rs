//! Failure injection: degenerate and adversarial inputs must not crash the
//! pipeline or corrupt its accounting.

use patu_core::FilterPolicy;
use patu_gmath::{Vec2, Vec3};
use patu_raster::{Camera, Mesh, Pipeline, Vertex};
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use patu_texture::{sample_anisotropic, AddressMode, Footprint, Rgba8, Texture};

fn camera() -> Camera {
    Camera::new(
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::new(0.0, 1.0, -10.0),
        1.0,
        1.0,
    )
}

#[test]
fn zero_area_triangle_is_skipped() {
    let degenerate = Mesh::new(
        vec![
            Vertex::new(Vec3::new(0.0, 0.0, -5.0), Vec2::ZERO),
            Vertex::new(Vec3::new(0.0, 0.0, -5.0), Vec2::ZERO),
            Vertex::new(Vec3::new(1.0, 1.0, -5.0), Vec2::ONE),
        ],
        vec![[0, 1, 2]],
        0,
    );
    let out = Pipeline::new(64, 64).run(&[degenerate], &camera());
    assert_eq!(out.stats.fragments_shaded, 0);
}

#[test]
fn collinear_triangle_is_skipped() {
    let collinear = Mesh::new(
        vec![
            Vertex::new(Vec3::new(-1.0, 1.0, -5.0), Vec2::ZERO),
            Vertex::new(Vec3::new(0.0, 1.0, -5.0), Vec2::new(0.5, 0.5)),
            Vertex::new(Vec3::new(1.0, 1.0, -5.0), Vec2::ONE),
        ],
        vec![[0, 1, 2]],
        0,
    );
    let out = Pipeline::new(64, 64).run(&[collinear], &camera());
    assert_eq!(out.stats.fragments_shaded, 0);
}

#[test]
fn triangle_through_camera_plane_clips_cleanly() {
    // One vertex behind the eye: near-plane clipping must handle it.
    let through = Mesh::new(
        vec![
            Vertex::new(Vec3::new(0.0, 1.0, 5.0), Vec2::ZERO), // behind the camera
            Vertex::new(Vec3::new(-3.0, 1.0, -20.0), Vec2::new(0.0, 1.0)),
            Vertex::new(Vec3::new(3.0, 1.0, -20.0), Vec2::new(1.0, 1.0)),
        ],
        vec![[0, 1, 2]],
        0,
    );
    let out = Pipeline::new(64, 64).run(&[through], &camera());
    // The visible part renders; no panics, no NaN UVs.
    for f in out.fragments() {
        assert!(f.uv.x.is_finite() && f.uv.y.is_finite());
        assert!(f.duv_dx.x.is_finite() && f.duv_dy.y.is_finite());
    }
}

#[test]
fn nan_derivatives_degrade_to_isotropic() {
    let fp = Footprint::from_derivatives(
        Vec2::new(f32::NAN, f32::NAN),
        Vec2::new(f32::INFINITY, -f32::INFINITY),
        128,
        128,
        16,
    );
    assert_eq!(fp.n, 1);
    assert!(fp.tf_lod.is_finite() && fp.af_lod.is_finite());
}

#[test]
fn sampling_far_outside_unit_uv_is_safe() {
    let tex = Texture::with_mips((64, 64, vec![Rgba8::WHITE; 64 * 64]), 0);
    let fp = Footprint::from_derivatives(
        Vec2::new(8.0 / 64.0, 0.0),
        Vec2::new(0.0, 1.0 / 64.0),
        64,
        64,
        16,
    );
    for mode in [AddressMode::Wrap, AddressMode::Clamp, AddressMode::Mirror] {
        for uv in [
            Vec2::new(-1000.0, 1000.0),
            Vec2::new(1e6, -1e6),
            Vec2::new(f32::MIN_POSITIVE, 0.999_999),
        ] {
            let rec = sample_anisotropic(&tex, uv, &fp, mode);
            assert_eq!(rec.color, Rgba8::WHITE, "flat texture stays flat");
        }
    }
}

#[test]
fn empty_frame_renders_without_work() {
    // A workload frame index far along the loop still renders; and an empty
    // mesh list produces an empty, consistent result.
    let out = Pipeline::new(32, 32).run(&[], &camera());
    assert_eq!(out.stats.fragments_generated, 0);
    assert!(out.tiles.is_empty());
}

#[test]
fn extreme_threshold_values_are_exact_bounds() {
    let w = Workload::build("wolf", (96, 64)).unwrap();
    // θ exactly 0 and exactly 1 are legal and behave like the fixed policies
    // in terms of texel work direction.
    let lo = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.0 }),
    )
    .unwrap();
    let hi = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 1.0 }),
    )
    .unwrap();
    assert!(lo.stats.events.texel_fetches <= hi.stats.events.texel_fetches);
}

#[test]
fn tiny_viewport_still_renders() {
    let w = Workload::build("doom3", (16, 16)).unwrap();
    let r = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )
    .unwrap();
    assert!(r.stats.filter_requests > 0);
    assert_eq!(r.image.width(), 16);
}

#[test]
fn single_pixel_tiles_work() {
    // Tile size 1 is degenerate but legal.
    let w = Workload::build("wolf", (32, 32)).unwrap();
    let gpu = patu_gpu::GpuConfig {
        tile_size: 1,
        ..patu_gpu::GpuConfig::default()
    };
    let r = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Baseline).with_gpu(gpu),
    )
    .unwrap();
    assert!(r.stats.filter_requests > 0);
}

// ---------------------------------------------------------------------------
// Chaos suite: seeded fault injection across the memory hierarchy.
//
// Four fault sites (cache bit flips, DRAM stalls, texel-table corruption,
// predictor NaN poisoning) are driven at rates up to 10% of draws. The
// contract under test: the simulator degrades — fallback decisions, watchdog
// trips, extra refills — but never panics, never emits out-of-range quality
// numbers, and stays bit-reproducible for a fixed seed.
// ---------------------------------------------------------------------------

mod chaos {
    use patu_core::FilterPolicy;
    use patu_gpu::{FaultConfig, GpuConfig, MemorySystem};
    use patu_scenes::Workload;
    use patu_sim::experiment::{run_policies, ExperimentConfig};
    use patu_sim::render::{render_frame, RenderConfig};
    use patu_texture::TexelAddress;

    const RATES: [f64; 4] = [0.0, 1e-4, 1e-2, 1e-1];

    fn patu_cfg(faults: FaultConfig) -> RenderConfig {
        RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_faults(faults)
    }

    #[test]
    fn rate_sweep_completes_experiment_with_valid_quality() {
        let workload = Workload::build("wolf", (96, 64)).unwrap();
        for rate in RATES {
            let cfg = ExperimentConfig {
                frames: 2,
                frame_stride: 100,
                faults: FaultConfig::uniform(0xC4A05, rate),
                ..ExperimentConfig::default()
            };
            let results = run_policies(
                &workload,
                &[
                    ("16xAF", FilterPolicy::Baseline),
                    ("PATU", FilterPolicy::Patu { threshold: 0.4 }),
                ],
                &cfg,
            )
            .unwrap_or_else(|e| panic!("rate {rate} must not fail: {e}"));
            for r in &results {
                assert!(
                    (0.0..=1.0).contains(&r.mssim),
                    "MSSIM stays a valid quality score at rate {rate}: {}",
                    r.mssim
                );
                assert!(r.mean_cycles > 0.0);
            }
            let patu = &results[1];
            if rate == 0.0 {
                assert_eq!(patu.stats.faults.faults_injected(), 0);
                assert_eq!(patu.stats.faults.fallbacks, 0);
            } else if rate >= 1e-2 {
                assert!(
                    patu.stats.faults.faults_injected() > 0,
                    "faults actually fired at rate {rate}"
                );
                assert!(
                    patu.stats.faults.fallbacks > 0,
                    "poisoned predictions fell back to full AF at rate {rate}"
                );
            }
        }
    }

    #[test]
    fn high_rate_with_tight_budget_degrades_not_livelocks() {
        let workload = Workload::build("wolf", (96, 64)).unwrap();
        let cfg = patu_cfg(FaultConfig::uniform(7, 0.1)).with_cycle_budget(1);
        let frame = render_frame(&workload, 0, &cfg).unwrap();
        assert!(frame.degraded, "the watchdog flags the frame");
        assert!(frame.stats.faults.watchdog_trips > 0);
        assert!(
            frame.stats.faults.fallbacks + frame.stats.faults.watchdog_trips > 0,
            "degradation counters visible in FrameStats"
        );
    }

    #[test]
    fn same_seed_is_bit_identical_including_fault_counters() {
        let workload = Workload::build("wolf", (96, 64)).unwrap();
        let cfg = patu_cfg(FaultConfig::uniform(42, 0.05));
        let a = render_frame(&workload, 0, &cfg).unwrap();
        let b = render_frame(&workload, 0, &cfg).unwrap();
        assert_eq!(
            a.stats, b.stats,
            "FrameStats (incl. fault counters) reproduce"
        );
        assert_eq!(a.degraded, b.degraded);
        assert!(
            a.stats.faults.faults_injected() > 0,
            "the run was actually faulty"
        );
    }

    #[test]
    fn armed_but_zero_rate_injector_matches_headline_numbers() {
        // Arming the injector with every rate at zero must not perturb a
        // single counter: the headline numbers are bit-identical to a run
        // with no injector at all.
        let workload = Workload::build("wolf", (96, 64)).unwrap();
        let plain = render_frame(
            &workload,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        )
        .unwrap();
        let armed = render_frame(
            &workload,
            0,
            &patu_cfg(FaultConfig {
                seed: 0xDEAD_BEEF,
                ..FaultConfig::disabled()
            }),
        )
        .unwrap();
        assert_eq!(plain.stats, armed.stats);
        assert_eq!(plain.approx.stage1_approx, armed.approx.stage1_approx);
        assert_eq!(plain.approx.stage2_approx, armed.approx.stage2_approx);
        assert_eq!(plain.stats.faults, Default::default());
    }

    #[test]
    fn memsys_accounting_invariants_hold_across_rate_sweep() {
        for rate in RATES {
            let mut m = MemorySystem::try_new(&GpuConfig::default()).unwrap();
            m.set_faults(FaultConfig::uniform(23, rate)).unwrap();
            for i in 0..4_000u64 {
                let _ = m.fetch_texel((i % 2) as usize, TexelAddress::new((i % 700) * 16), i * 2);
            }
            let e = m.events();
            assert_eq!(e.l1_accesses, e.texel_fetches, "rate {rate}");
            assert_eq!(e.l2_accesses, e.l1_misses, "rate {rate}");
            assert_eq!(e.dram_reads, e.l2_misses, "rate {rate}");
            assert_eq!(e.dram_bytes, e.dram_reads * 64, "rate {rate}");
            assert_eq!(m.bandwidth().texture, e.dram_bytes, "rate {rate}");
            if rate == 0.0 {
                assert_eq!(m.fault_counts().faults_injected(), 0);
            }
        }
    }
}

#[test]
fn huge_anisotropy_is_clamped_not_unbounded() {
    let tex = Texture::with_mips((256, 256, vec![Rgba8::WHITE; 256 * 256]), 0);
    let fp = Footprint::from_derivatives(
        Vec2::new(10_000.0 / 256.0, 0.0),
        Vec2::new(0.0, 0.0001 / 256.0),
        256,
        256,
        16,
    );
    assert_eq!(fp.n, 16, "clamped to the max AF level");
    let rec = sample_anisotropic(&tex, Vec2::new(0.5, 0.5), &fp, AddressMode::Wrap);
    assert_eq!(rec.taps.len(), 16);
}
