//! Failure injection: degenerate and adversarial inputs must not crash the
//! pipeline or corrupt its accounting.

use patu_core::FilterPolicy;
use patu_gmath::{Vec2, Vec3};
use patu_raster::{Camera, Mesh, Pipeline, Vertex};
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use patu_texture::{sample_anisotropic, AddressMode, Footprint, Rgba8, Texture};

fn camera() -> Camera {
    Camera::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 1.0, -10.0), 1.0, 1.0)
}

#[test]
fn zero_area_triangle_is_skipped() {
    let degenerate = Mesh::new(
        vec![
            Vertex::new(Vec3::new(0.0, 0.0, -5.0), Vec2::ZERO),
            Vertex::new(Vec3::new(0.0, 0.0, -5.0), Vec2::ZERO),
            Vertex::new(Vec3::new(1.0, 1.0, -5.0), Vec2::ONE),
        ],
        vec![[0, 1, 2]],
        0,
    );
    let out = Pipeline::new(64, 64).run(&[degenerate], &camera());
    assert_eq!(out.stats.fragments_shaded, 0);
}

#[test]
fn collinear_triangle_is_skipped() {
    let collinear = Mesh::new(
        vec![
            Vertex::new(Vec3::new(-1.0, 1.0, -5.0), Vec2::ZERO),
            Vertex::new(Vec3::new(0.0, 1.0, -5.0), Vec2::new(0.5, 0.5)),
            Vertex::new(Vec3::new(1.0, 1.0, -5.0), Vec2::ONE),
        ],
        vec![[0, 1, 2]],
        0,
    );
    let out = Pipeline::new(64, 64).run(&[collinear], &camera());
    assert_eq!(out.stats.fragments_shaded, 0);
}

#[test]
fn triangle_through_camera_plane_clips_cleanly() {
    // One vertex behind the eye: near-plane clipping must handle it.
    let through = Mesh::new(
        vec![
            Vertex::new(Vec3::new(0.0, 1.0, 5.0), Vec2::ZERO), // behind the camera
            Vertex::new(Vec3::new(-3.0, 1.0, -20.0), Vec2::new(0.0, 1.0)),
            Vertex::new(Vec3::new(3.0, 1.0, -20.0), Vec2::new(1.0, 1.0)),
        ],
        vec![[0, 1, 2]],
        0,
    );
    let out = Pipeline::new(64, 64).run(&[through], &camera());
    // The visible part renders; no panics, no NaN UVs.
    for f in out.fragments() {
        assert!(f.uv.x.is_finite() && f.uv.y.is_finite());
        assert!(f.duv_dx.x.is_finite() && f.duv_dy.y.is_finite());
    }
}

#[test]
fn nan_derivatives_degrade_to_isotropic() {
    let fp = Footprint::from_derivatives(
        Vec2::new(f32::NAN, f32::NAN),
        Vec2::new(f32::INFINITY, -f32::INFINITY),
        128,
        128,
        16,
    );
    assert_eq!(fp.n, 1);
    assert!(fp.tf_lod.is_finite() && fp.af_lod.is_finite());
}

#[test]
fn sampling_far_outside_unit_uv_is_safe() {
    let tex = Texture::with_mips((64, 64, vec![Rgba8::WHITE; 64 * 64]), 0);
    let fp = Footprint::from_derivatives(
        Vec2::new(8.0 / 64.0, 0.0),
        Vec2::new(0.0, 1.0 / 64.0),
        64,
        64,
        16,
    );
    for mode in [AddressMode::Wrap, AddressMode::Clamp, AddressMode::Mirror] {
        for uv in [
            Vec2::new(-1000.0, 1000.0),
            Vec2::new(1e6, -1e6),
            Vec2::new(f32::MIN_POSITIVE, 0.999_999),
        ] {
            let rec = sample_anisotropic(&tex, uv, &fp, mode);
            assert_eq!(rec.color, Rgba8::WHITE, "flat texture stays flat");
        }
    }
}

#[test]
fn empty_frame_renders_without_work() {
    // A workload frame index far along the loop still renders; and an empty
    // mesh list produces an empty, consistent result.
    let out = Pipeline::new(32, 32).run(&[], &camera());
    assert_eq!(out.stats.fragments_generated, 0);
    assert!(out.tiles.is_empty());
}

#[test]
fn extreme_threshold_values_are_exact_bounds() {
    let w = Workload::build("wolf", (96, 64)).unwrap();
    // θ exactly 0 and exactly 1 are legal and behave like the fixed policies
    // in terms of texel work direction.
    let lo = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Patu { threshold: 0.0 }));
    let hi = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Patu { threshold: 1.0 }));
    assert!(lo.stats.events.texel_fetches <= hi.stats.events.texel_fetches);
}

#[test]
fn tiny_viewport_still_renders() {
    let w = Workload::build("doom3", (16, 16)).unwrap();
    let r = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }));
    assert!(r.stats.filter_requests > 0);
    assert_eq!(r.image.width(), 16);
}

#[test]
fn single_pixel_tiles_work() {
    // Tile size 1 is degenerate but legal.
    let w = Workload::build("wolf", (32, 32)).unwrap();
    let gpu = patu_gpu::GpuConfig { tile_size: 1, ..patu_gpu::GpuConfig::default() };
    let r = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Baseline).with_gpu(gpu),
    );
    assert!(r.stats.filter_requests > 0);
}

#[test]
fn huge_anisotropy_is_clamped_not_unbounded() {
    let tex = Texture::with_mips((256, 256, vec![Rgba8::WHITE; 256 * 256]), 0);
    let fp = Footprint::from_derivatives(
        Vec2::new(10_000.0 / 256.0, 0.0),
        Vec2::new(0.0, 0.0001 / 256.0),
        256,
        256,
        16,
    );
    assert_eq!(fp.n, 16, "clamped to the max AF level");
    let rec = sample_anisotropic(&tex, Vec2::new(0.5, 0.5), &fp, AddressMode::Wrap);
    assert_eq!(rec.taps.len(), 16);
}
