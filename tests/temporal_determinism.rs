//! Determinism grid for the cross-frame tile-reuse path (`patu-temporal` +
//! `render_sequence`): sequences must be bit-identical across worker thread
//! counts, across reruns, and — whenever invalidation is forced every frame
//! — byte-identical to a reuse-disabled run, including under fault
//! injection. Reuse itself must respond to camera speed monotonically.

use patu_core::FilterPolicy;
use patu_gpu::FaultConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_sequence, RenderConfig};
use patu_sim::FrameResult;
use patu_temporal::{TemporalConfig, TemporalMode, TileStore};

/// Small frames keep the full grid affordable; every property under test is
/// resolution-independent.
const RES: (u32, u32) = (192, 144);
const FRAMES: [u32; 5] = [0, 1, 2, 3, 4];

fn run(scene: &str, mode_cfg: TemporalConfig, cfg: &RenderConfig) -> Vec<FrameResult> {
    let w = Workload::build(scene, RES).expect("preset builds");
    let mut store = TileStore::new(mode_cfg);
    render_sequence(&w, &FRAMES, cfg, &mut store).expect("sequence renders")
}

fn assert_sequences_identical(a: &[FrameResult], b: &[FrameResult], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: frame counts");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.image.pixels(),
            y.image.pixels(),
            "{label}: frame {i} pixels diverge"
        );
        assert_eq!(x.stats, y.stats, "{label}: frame {i} stats diverge");
    }
}

/// The tentpole grid: (threads 1, 4) × (fault rate 0, 2%) × (policy
/// Baseline, Patu) × (temporal off, on, aggressive). Every cell must be
/// bit-identical across reruns and across thread counts.
#[test]
fn grid_is_bit_identical_across_threads_faults_policies_and_modes() {
    for fault_rate in [0.0, 0.02] {
        for policy in [
            FilterPolicy::Baseline,
            FilterPolicy::Patu { threshold: 0.4 },
        ] {
            for mode in [
                TemporalMode::Off,
                TemporalMode::On,
                TemporalMode::Aggressive,
            ] {
                let mut cfg = RenderConfig::new(policy).with_threads(1);
                if fault_rate > 0.0 {
                    cfg = cfg.with_faults(FaultConfig::uniform(7, fault_rate));
                }
                let label = format!("faults={fault_rate} {policy:?} {mode}");
                let mode_cfg = TemporalConfig::for_mode(mode);
                let serial = run("orbit", mode_cfg, &cfg);
                let rerun = run("orbit", mode_cfg, &cfg);
                assert_sequences_identical(&serial, &rerun, &format!("{label} rerun"));
                let threaded = run("orbit", mode_cfg, &cfg.with_threads(4));
                assert_sequences_identical(&serial, &threaded, &format!("{label} threads 1v4"));
            }
        }
    }
}

/// With invalidation forced every frame, the sequence path does all the
/// same rendering work as mode `off` — outputs must match byte for byte,
/// even under fault injection (per-(frame, tile) fault keying).
#[test]
fn forced_invalidation_matches_off_exactly() {
    for faults in [FaultConfig::disabled(), FaultConfig::uniform(42, 0.02)] {
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_faults(faults);
        for scene in ["orbit", "dolly"] {
            let off = run(scene, TemporalConfig::off(), &cfg);
            let forced = run(
                scene,
                TemporalConfig::for_mode(TemporalMode::On).with_force_invalidate(),
                &cfg,
            );
            assert_sequences_identical(&off, &forced, &format!("{scene} off vs forced"));
            assert_eq!(
                forced.last().unwrap().stats.temporal.tiles_reused,
                0,
                "{scene}: forcing leaves nothing reused"
            );
        }
    }
}

/// Reuse must actually fire on the slow-camera presets, and reused tiles
/// must make sequences cheaper than rendering every tile of every frame.
#[test]
fn slow_sequences_reuse_tiles_and_save_cycles() {
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
    for scene in ["orbit", "dolly"] {
        let off = run(scene, TemporalConfig::off(), &cfg);
        let on = run(scene, TemporalConfig::for_mode(TemporalMode::On), &cfg);
        let reused: u64 = on
            .iter()
            .map(|f| f.stats.temporal.tiles_reused + f.stats.temporal.tiles_repredicted)
            .sum();
        assert!(reused > 0, "{scene}: slow camera must reuse tiles");
        let off_cycles: u64 = off.iter().map(|f| f.stats.cycles).sum();
        let on_cycles: u64 = on.iter().map(|f| f.stats.cycles).sum();
        assert!(
            on_cycles < off_cycles,
            "{scene}: reuse must shed cycles ({on_cycles} vs {off_cycles})"
        );
        // First frame renders cold either way.
        assert_eq!(on[0].stats.temporal.tiles_reused, 0);
        assert_eq!(on[0].image.pixels(), off[0].image.pixels());
    }
}

/// Faster camera motion (larger frame strides over the same orbit path)
/// must never increase the reused-tile fraction.
#[test]
fn reuse_fraction_is_monotone_in_camera_speed() {
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
    let w = Workload::build("orbit", RES).unwrap();
    let mut fractions = Vec::new();
    for stride in [1u32, 8, 64] {
        let frames: Vec<u32> = (0..FRAMES.len() as u32).map(|i| i * stride).collect();
        let mut store = TileStore::new(TemporalConfig::for_mode(TemporalMode::On));
        let results = render_sequence(&w, &frames, &cfg, &mut store).unwrap();
        // Skip the cold first frame; it rerenders at every speed.
        let (mut kept, mut total) = (0u64, 0u64);
        for f in &results[1..] {
            kept += f.stats.temporal.tiles_reused + f.stats.temporal.tiles_repredicted;
            total += f.stats.temporal.tiles_total();
        }
        fractions.push(kept as f64 / total.max(1) as f64);
    }
    assert!(
        fractions.windows(2).all(|w| w[0] >= w[1]),
        "reuse fraction must fall with camera speed: {fractions:?}"
    );
    assert!(
        fractions[0] > fractions[2],
        "slowest vs fastest must differ: {fractions:?}"
    );
    assert!(
        fractions[0] > 0.5,
        "slow orbit mostly reuses: {fractions:?}"
    );
}

/// `aggressive` keeps tiles at least as often as `on` over the same
/// sequence, and its attribution still conserves frame cycles.
#[test]
fn aggressive_reuses_at_least_as_much_and_attribution_conserves() {
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_telemetry(
        patu_obs::TelemetryConfig::with_level(patu_obs::TraceLevel::Counters),
    );
    let on = run("orbit", TemporalConfig::for_mode(TemporalMode::On), &cfg);
    let aggr = run(
        "orbit",
        TemporalConfig::for_mode(TemporalMode::Aggressive),
        &cfg,
    );
    let kept = |rs: &[FrameResult]| -> u64 {
        rs.iter()
            .map(|f| f.stats.temporal.tiles_reused + f.stats.temporal.tiles_repredicted)
            .sum()
    };
    assert!(kept(&aggr) >= kept(&on));
    for f in on.iter().chain(&aggr) {
        let t = f.telemetry.as_deref().expect("counters level records");
        assert_eq!(
            t.attrib.frame_total(),
            f.stats.cycles,
            "cycle conservation with a reuse stage"
        );
        if f.stats.temporal.reuse_cycles > 0 {
            assert!(
                t.attrib.get(patu_obs::Stage::Reuse) > 0,
                "blit cycles must surface in the attribution"
            );
        }
    }
}
