//! Integration of the quality pipeline: rendered frames → SSIM → the
//! perceptual claims the paper's motivation rests on.

use patu_core::FilterPolicy;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

const RES: (u32, u32) = (256, 192);

fn mssim(a: &patu_sim::FrameResult, b: &patu_sim::FrameResult) -> f64 {
    f64::from(SsimConfig::default().mssim(&a.luma(), &b.luma()))
}

#[test]
fn disabling_af_degrades_quality() {
    // The paper's Fig. 7: AF-off costs visible quality on AF-heavy scenes.
    let w = Workload::build("doom3", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let off = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf)).unwrap();
    let q = mssim(&on, &off);
    assert!(q < 0.97, "AF-off must be measurably different, got {q}");
    assert!(q > 0.3, "but not unrecognizable, got {q}");
}

#[test]
fn patu_quality_beats_noaf() {
    let w = Workload::build("grid", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let off = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf)).unwrap();
    let patu = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )
    .unwrap();
    let q_off = mssim(&on, &off);
    let q_patu = mssim(&on, &patu);
    assert!(
        q_patu > q_off,
        "PATU ({q_patu}) preserves more quality than AF-off ({q_off})"
    );
}

#[test]
fn patu_lod_reuse_beats_naive_demotion() {
    // The Fig. 19 claim: PATU recovers >0 quality over AF-SSIM(N)+(Txds)
    // by eliminating the LOD shift.
    let w = Workload::build("doom3", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let naive = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::SampleAreaTxds { threshold: 0.4 }),
    )
    .unwrap();
    let patu = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )
    .unwrap();
    let q_naive = mssim(&on, &naive);
    let q_patu = mssim(&on, &patu);
    assert!(
        q_patu >= q_naive,
        "LOD reuse must not lose quality: PATU {q_patu} vs naive {q_naive}"
    );
}

#[test]
fn ssim_map_localizes_af_sensitive_regions() {
    // The Fig. 8 observation: only part of the frame is AF-sensitive.
    let w = Workload::build("hl2", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let off = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf)).unwrap();
    let map = SsimConfig::default().ssim_map(&on.luma(), &off.luma());
    let high = map.fraction_above(0.95);
    assert!(
        high > 0.2 && high < 1.0,
        "a nontrivial fraction of windows is unaffected by AF, got {high}"
    );
}

#[test]
fn quality_monotone_in_threshold() {
    let w = Workload::build("grid", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let mut last = 0.0;
    for theta in [0.0, 0.4, 0.8] {
        let r = render_frame(
            &w,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: theta }),
        )
        .unwrap();
        let q = mssim(&on, &r);
        assert!(
            q >= last - 0.02,
            "quality near-monotone in threshold: {q} after {last} at θ={theta}"
        );
        last = q;
    }
}

#[test]
fn conservative_patu_is_visually_lossless() {
    // The headline claim: at the conservative tuning point the MSSIM stays
    // at or above the "difficult to distinguish" band.
    let w = Workload::build("ut3", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let patu = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.8 }),
    )
    .unwrap();
    let q = mssim(&on, &patu);
    assert!(q > 0.9, "conservative threshold keeps MSSIM high, got {q}");
}

#[test]
fn gaussian_and_uniform_ssim_agree_on_rendered_frames() {
    use patu_quality::GaussianSsimConfig;
    let w = Workload::build("doom3", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let off = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf)).unwrap();
    let uniform = f64::from(SsimConfig::default().mssim(&on.luma(), &off.luma()));
    // Stride-4 Gaussian approximation keeps this test fast.
    let gauss = GaussianSsimConfig::default().mssim_strided(&on.luma(), &off.luma(), 4);
    assert!(
        (uniform - gauss).abs() < 0.05,
        "window shapes agree on real frames: uniform {uniform} vs gaussian {gauss}"
    );
}

#[test]
fn ssim_component_split_identifies_blur_as_contrast_loss() {
    use patu_quality::GaussianSsimConfig;
    let w = Workload::build("grid", RES).unwrap();
    let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let off = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf)).unwrap();
    let comp = GaussianSsimConfig::default().components_strided(&on.luma(), &off.luma(), 4);
    // AF-off blurs: luminance stays close, contrast/structure carry the loss.
    assert!(
        comp.luminance > 0.95,
        "means barely move: {}",
        comp.luminance
    );
    assert!(
        comp.contrast * comp.structure <= comp.luminance,
        "the loss is in contrast x structure"
    );
}
