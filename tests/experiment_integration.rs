//! Integration of the experiment harness: the aggregate comparisons each
//! figure binary builds on.

use patu_core::FilterPolicy;
use patu_gpu::GpuConfig;
use patu_scenes::Workload;
use patu_sim::experiment::{
    best_point, design_points, run_policies, threshold_sweep, ExperimentConfig,
};
use patu_sim::render::{render_frame, RenderConfig};
use patu_sim::replay::ReplayModel;
use patu_sim::satisfaction::SatisfactionModel;

const RES: (u32, u32) = (192, 160);

fn quick() -> ExperimentConfig {
    ExperimentConfig {
        frames: 1,
        frame_stride: 1,
        ..ExperimentConfig::default()
    }
}

#[test]
fn design_point_comparison_reproduces_fig19_ordering() {
    let w = Workload::build("doom3", RES).unwrap();
    let results = run_policies(&w, &design_points(0.4), &quick()).unwrap();
    let base = &results[0];
    let area = &results[1];
    let both = &results[2];
    let patu = &results[3];

    // Fig. 19: AF-SSIM(N)+(Txds) is the fastest; AF-SSIM(N) the slowest of
    // the predictive designs; PATU trades a sliver of speed for quality.
    assert!(
        both.speedup_vs(base) >= area.speedup_vs(base),
        "Txds adds speedup"
    );
    assert!(patu.speedup_vs(base) > 1.0, "PATU beats baseline");
    assert!(patu.mssim >= both.mssim, "PATU quality >= naive demotion");
}

#[test]
fn fig18_filter_latency_ordering() {
    let w = Workload::build("grid", RES).unwrap();
    let results = run_policies(&w, &design_points(0.4), &quick()).unwrap();
    let base = &results[0];
    for r in &results[1..] {
        assert!(
            r.filter_latency_ratio_vs(base) <= 1.0,
            "{}: predictive designs cut filtering latency",
            r.label
        );
    }
}

#[test]
fn fig20_energy_ordering() {
    let w = Workload::build("doom3", RES).unwrap();
    let results = run_policies(&w, &design_points(0.4), &quick()).unwrap();
    let base = &results[0];
    let patu = &results[3];
    assert!(
        patu.energy_ratio_vs(base) < 1.0,
        "PATU reduces total energy: {}",
        patu.energy_ratio_vs(base)
    );
}

#[test]
fn fig21_cache_scaling_patu_still_wins() {
    let w = Workload::build("nfs", RES).unwrap();
    for gpu in [
        GpuConfig::default(),
        GpuConfig::default().with_llc_scale(4),
        GpuConfig::default().with_tc_scale(2).with_llc_scale(4),
    ] {
        let cfg = ExperimentConfig { gpu, ..quick() };
        let results = run_policies(
            &w,
            &[
                ("Baseline", FilterPolicy::Baseline),
                ("PATU", FilterPolicy::Patu { threshold: 0.4 }),
            ],
            &cfg,
        )
        .unwrap();
        assert!(
            results[1].speedup_vs(&results[0]) > 1.0,
            "PATU speedup persists at scaled caches"
        );
    }
}

#[test]
fn sweep_and_best_point_are_consistent() {
    let w = Workload::build("grid", RES).unwrap();
    let thresholds = [0.0, 0.4, 0.8];
    let (baseline, sweep) = threshold_sweep(&w, &thresholds, &quick()).unwrap();
    assert_eq!(sweep.len(), 3);
    let bp = best_point(&baseline, &sweep);
    assert!(thresholds.contains(&bp));
    // The BP's metric is at least every other point's.
    let bp_metric = sweep
        .iter()
        .find(|(t, _)| *t == bp)
        .map(|(_, r)| r.tuning_metric(&baseline))
        .unwrap();
    for (_, r) in &sweep {
        assert!(bp_metric >= r.tuning_metric(&baseline) - 1e-12);
    }
}

#[test]
fn replay_plus_satisfaction_full_loop() {
    // The Fig. 22 pipeline end-to-end on a tiny run: render a few frames,
    // vsync-replay, score.
    let w = Workload::build("doom3", RES).unwrap();
    let frames = [0u32, 100, 200];
    let replay = ReplayModel::default();
    let rater = SatisfactionModel::default();

    let mut scores = Vec::new();
    for policy in [
        FilterPolicy::NoAf,
        FilterPolicy::Patu { threshold: 0.4 },
        FilterPolicy::Baseline,
    ] {
        let cycles: Vec<u64> = frames
            .iter()
            .map(|&f| {
                render_frame(&w, f, &RenderConfig::new(policy))
                    .unwrap()
                    .stats
                    .cycles
            })
            .collect();
        let fps = replay.average_fps(&cycles);
        // Use known quality approximations per policy for the loop test.
        let mssim = match policy {
            FilterPolicy::Baseline => 1.0,
            FilterPolicy::NoAf => 0.75,
            _ => 0.94,
        };
        scores.push(rater.score(mssim, fps, u64::from(RES.0) * u64::from(RES.1)));
    }
    for s in &scores {
        assert!((1.0..=5.0).contains(s));
    }
}

#[test]
fn higher_resolution_bigger_patu_gain() {
    // Sec. VII-B observation: PATU gains grow with resolution.
    let small = Workload::build("doom3", (128, 96)).unwrap();
    let large = Workload::build("doom3", (320, 256)).unwrap();
    let mut speedups = Vec::new();
    for w in [&small, &large] {
        let results = run_policies(
            w,
            &[
                ("Baseline", FilterPolicy::Baseline),
                ("PATU", FilterPolicy::Patu { threshold: 0.4 }),
            ],
            &quick(),
        )
        .unwrap();
        speedups.push(results[1].speedup_vs(&results[0]));
    }
    // At these miniature test resolutions fixed costs blur the effect;
    // the full-resolution trend is exercised by the fig19 harness.
    assert!(
        speedups[1] > speedups[0] * 0.85,
        "larger frame at least comparable gain: {:?}",
        speedups
    );
}
