//! The tentpole invariant of the batched SoA fragment→texel path: rendering
//! with [`BatchMode::Soa`] (the default) is bit-identical to the scalar
//! reference path — same framebuffer bytes, same `FrameStats`, same
//! approximation/sharing/divergence statistics — across policies, scenes,
//! thread counts and fault injection, plus under foveated threshold
//! modulation and watchdog degradation.
//!
//! Also pins the sampled-MSSIM estimator's error bound against the full
//! computation on every seed scene (DESIGN.md §13).

use patu_core::FilterPolicy;
use patu_gpu::FaultConfig;
use patu_quality::{SampledSsimConfig, SsimConfig};
use patu_scenes::{game_names, Workload};
use patu_sim::render::{render_frame, BatchMode, FrameResult, RenderConfig};

fn assert_bit_identical(soa: &FrameResult, scalar: &FrameResult, context: &str) {
    assert_eq!(
        soa.image, scalar.image,
        "framebuffer bytes differ: {context}"
    );
    assert_eq!(soa.stats, scalar.stats, "frame stats differ: {context}");
    assert_eq!(soa.approx, scalar.approx, "approx stats differ: {context}");
    assert_eq!(
        soa.sharing, scalar.sharing,
        "sharing stats differ: {context}"
    );
    assert_eq!(
        soa.divergence, scalar.divergence,
        "divergence differs: {context}"
    );
    assert_eq!(
        soa.degraded, scalar.degraded,
        "degradation flag differs: {context}"
    );
}

#[test]
fn batched_path_bit_identical_to_scalar_across_the_grid() {
    let policies = [
        FilterPolicy::Baseline,
        FilterPolicy::SampleArea { threshold: 0.4 },
        FilterPolicy::Patu { threshold: 0.4 },
    ];
    let fault_modes = [FaultConfig::disabled(), FaultConfig::uniform(42, 0.05)];
    for scene in ["doom3", "grid"] {
        let workload = Workload::build(scene, (192, 160)).unwrap();
        for policy in policies {
            for faults in fault_modes {
                for threads in [1usize, 4] {
                    let cfg = |batching: BatchMode| {
                        RenderConfig::new(policy)
                            .with_faults(faults)
                            .with_threads(threads)
                            .with_batching(batching)
                    };
                    let soa = render_frame(&workload, 0, &cfg(BatchMode::Soa)).unwrap();
                    let scalar = render_frame(&workload, 0, &cfg(BatchMode::Scalar)).unwrap();
                    let context = format!(
                        "scene {scene}, policy {policy:?}, faults {faulty}, threads {threads}",
                        faulty = !faults.is_disabled()
                    );
                    assert_bit_identical(&soa, &scalar, &context);
                }
            }
        }
    }
}

#[test]
fn batched_path_matches_scalar_under_foveation() {
    let workload = Workload::build("doom3", (192, 160)).unwrap();
    let fov = patu_sim::Foveation::default();
    for threads in [1usize, 4] {
        let cfg = |batching: BatchMode| {
            RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
                .with_foveation(fov)
                .with_threads(threads)
                .with_batching(batching)
        };
        let soa = render_frame(&workload, 0, &cfg(BatchMode::Soa)).unwrap();
        let scalar = render_frame(&workload, 0, &cfg(BatchMode::Scalar)).unwrap();
        assert_bit_identical(&soa, &scalar, &format!("foveated, threads {threads}"));
        assert!(soa.approx.pixels > 0, "foveated run exercised the policy");
    }
}

#[test]
fn batched_path_matches_scalar_when_the_watchdog_degrades() {
    let workload = Workload::build("grid", (192, 160)).unwrap();
    let cfg = |batching: BatchMode| {
        RenderConfig::new(FilterPolicy::Baseline)
            .with_cycle_budget(1)
            .with_batching(batching)
    };
    let soa = render_frame(&workload, 0, &cfg(BatchMode::Soa)).unwrap();
    let scalar = render_frame(&workload, 0, &cfg(BatchMode::Scalar)).unwrap();
    assert!(soa.degraded, "a 1-cycle budget trips immediately");
    assert_bit_identical(&soa, &scalar, "degraded frame");
}

#[test]
fn batched_telemetry_is_bit_identical_too() {
    use patu_obs::{TelemetryConfig, TraceLevel};
    let workload = Workload::build("doom3", (192, 160)).unwrap();
    let cfg = |batching: BatchMode| {
        RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
            .with_telemetry(TelemetryConfig::with_level(TraceLevel::Spans))
            .with_batching(batching)
    };
    let soa = render_frame(&workload, 2, &cfg(BatchMode::Soa)).unwrap();
    let scalar = render_frame(&workload, 2, &cfg(BatchMode::Scalar)).unwrap();
    assert_bit_identical(&soa, &scalar, "traced frame");
    let (st, sc) = (
        soa.telemetry.expect("spans record"),
        scalar.telemetry.expect("spans record"),
    );
    assert_eq!(st.counters, sc.counters, "telemetry counters differ");
    assert_eq!(
        st.stage_totals(),
        sc.stage_totals(),
        "telemetry stage tree differs"
    );
}

#[test]
fn sampled_mssim_error_bounded_on_every_seed_scene() {
    // The serve layer's quality baseline: the stratified estimator must sit
    // within 0.005 of the full MSSIM when comparing a PATU render against
    // the 16×AF baseline, on every seed scene and for several plan seeds.
    // Production-shaped frames: at 512×384 the default plan (8-window
    // tiles, 1/4 fraction) holds the bound with margin on every scene.
    for scene in game_names() {
        let workload = Workload::build(scene, (512, 384)).unwrap();
        let reference = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))
            .unwrap()
            .luma();
        let patu = render_frame(
            &workload,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        )
        .unwrap()
        .luma();
        let full = SsimConfig::default()
            .with_threads(1)
            .mssim(&reference, &patu);
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let sampled = SampledSsimConfig::new(seed)
                .with_fraction(patu_quality::sampled::DEFAULT_FRACTION)
                .mssim_sampled(&reference, &patu);
            assert!(
                (sampled - full).abs() <= 0.005,
                "scene {scene}, seed {seed}: sampled {sampled} vs full {full}"
            );
        }
    }
}
