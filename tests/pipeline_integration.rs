//! Cross-crate integration: scenes → raster → texture → core → gpu.
//!
//! These tests exercise the full per-frame data path the way the experiment
//! harness does, checking the invariants that span crate boundaries.

use patu_core::FilterPolicy;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

const RES: (u32, u32) = (224, 160);

#[test]
fn every_workload_runs_end_to_end_under_patu() {
    for name in [
        "hl2", "doom3", "grid", "nfs", "stal", "ut3", "wolf", "rbench",
    ] {
        let w = Workload::build(name, RES).expect(name);
        let r = render_frame(
            &w,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        )
        .unwrap();
        assert!(r.stats.cycles > 0, "{name}: zero cycles");
        assert!(
            r.stats.filter_requests > 1000,
            "{name}: too few filter requests"
        );
        assert!(
            r.approx.pixels == r.stats.filter_requests,
            "{name}: every request decided"
        );
        assert!(r.stats.bandwidth.total() > 0, "{name}: no memory traffic");
    }
}

#[test]
fn cycle_ordering_baseline_ge_patu_ge_noaf() {
    let w = Workload::build("doom3", RES).unwrap();
    let base = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let patu = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )
    .unwrap();
    let noaf = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf)).unwrap();
    assert!(
        base.stats.cycles >= patu.stats.cycles,
        "baseline {} vs patu {}",
        base.stats.cycles,
        patu.stats.cycles
    );
    assert!(
        patu.stats.cycles >= noaf.stats.cycles,
        "patu {} vs noaf {}",
        patu.stats.cycles,
        noaf.stats.cycles
    );
}

#[test]
fn texel_fetch_ordering_matches_policy_strictness() {
    let w = Workload::build("grid", RES).unwrap();
    let base = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let loose = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.1 }),
    )
    .unwrap();
    let strict = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.9 }),
    )
    .unwrap();
    assert!(loose.stats.events.texel_fetches <= strict.stats.events.texel_fetches);
    assert!(strict.stats.events.texel_fetches <= base.stats.events.texel_fetches);
}

#[test]
fn threshold_one_without_txds_matches_baseline_fetches() {
    // SampleArea at threshold 1.0 approves nothing (AF_SSIM(N) < 1 for N >= 2),
    // so its fetch behavior must be identical to the baseline.
    let w = Workload::build("wolf", RES).unwrap();
    let base = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let strict = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::SampleArea { threshold: 1.0 }),
    )
    .unwrap();
    assert_eq!(
        base.stats.events.texel_fetches,
        strict.stats.events.texel_fetches
    );
    assert_eq!(
        base.image.pixels(),
        strict.image.pixels(),
        "identical images"
    );
}

#[test]
fn noaf_equals_patu_at_threshold_zero_in_coverage() {
    // θ=0 approximates every anisotropic pixel (stage 1 always approves).
    let w = Workload::build("nfs", RES).unwrap();
    let patu0 = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.0 }),
    )
    .unwrap();
    assert_eq!(patu0.approx.kept_af, 0, "nothing keeps AF at θ=0");
    assert_eq!(
        patu0.stats.events.trilinear_ops, patu0.stats.filter_requests,
        "every pixel filtered with exactly one trilinear tap"
    );
}

#[test]
fn patu_improves_l1_hit_rate_over_naive_demotion() {
    // PATU's AF-LOD reuse keeps demoted pixels on the same mip level as
    // their AF neighbors, improving texture-cache locality (Sec. V-C(2)).
    // Verify both run and produce sane hit rates; the exact relation varies
    // by scene, so check bandwidth instead: PATU must not fetch wildly more.
    let w = Workload::build("doom3", RES).unwrap();
    let naive = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::SampleAreaTxds { threshold: 0.4 }),
    )
    .unwrap();
    let patu = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )
    .unwrap();
    let ratio = patu.stats.bandwidth.texture as f64 / naive.stats.bandwidth.texture.max(1) as f64;
    assert!(ratio < 1.6, "PATU texture traffic within reason: {ratio}");
}

#[test]
fn hash_table_only_active_for_distribution_policies() {
    let w = Workload::build("stal", RES).unwrap();
    let base = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let area = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::SampleArea { threshold: 0.4 }),
    )
    .unwrap();
    let patu = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )
    .unwrap();
    assert_eq!(base.stats.events.hash_table_accesses, 0);
    assert_eq!(area.stats.events.hash_table_accesses, 0);
    assert!(patu.stats.events.hash_table_accesses > 0);
}

#[test]
fn frame_animation_changes_output() {
    let w = Workload::build("grid", RES).unwrap();
    let cfg = RenderConfig::new(FilterPolicy::Baseline);
    let a = render_frame(&w, 0, &cfg).unwrap();
    let b = render_frame(&w, 120, &cfg).unwrap();
    assert_ne!(
        a.image.pixels(),
        b.image.pixels(),
        "camera motion changes the frame"
    );
}
