//! The parallel runtime's hard invariant: every simulator output is
//! bit-identical across thread counts, with and without fault injection.
//!
//! Thread counts are pinned through the explicit `threads` knob (never
//! `std::env::set_var` — the test harness itself is multi-threaded), so
//! each case exercises the serial inline path (1), partial occupancy (2),
//! one worker per cluster (4), and whatever the host advertises.

use patu_core::FilterPolicy;
use patu_gpu::FaultConfig;
use patu_scenes::Workload;
use patu_sim::experiment::{design_points, run_policies, temporal_stability, ExperimentConfig};
use patu_sim::render::{render_frame, FrameResult, RenderConfig};

fn thread_counts() -> Vec<usize> {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&avail) {
        counts.push(avail);
    }
    counts
}

fn assert_frames_identical(reference: &FrameResult, other: &FrameResult, context: &str) {
    assert_eq!(
        reference.image, other.image,
        "framebuffer bytes differ: {context}"
    );
    assert_eq!(
        reference.stats, other.stats,
        "frame stats differ: {context}"
    );
    assert_eq!(
        reference.approx, other.approx,
        "approx stats differ: {context}"
    );
    assert_eq!(
        reference.sharing, other.sharing,
        "sharing stats differ: {context}"
    );
    assert_eq!(
        reference.divergence, other.divergence,
        "divergence differs: {context}"
    );
    assert_eq!(
        reference.degraded, other.degraded,
        "degradation flag differs: {context}"
    );
}

#[test]
fn frame_outputs_bit_identical_across_thread_counts() {
    let workload = Workload::build("doom3", (192, 160)).unwrap();
    let policies = [
        FilterPolicy::Baseline,
        FilterPolicy::SampleArea { threshold: 0.4 },
        FilterPolicy::Patu { threshold: 0.4 },
    ];
    let fault_modes = [FaultConfig::disabled(), FaultConfig::uniform(42, 0.05)];

    for policy in policies {
        for faults in fault_modes {
            let cfg = |threads: usize| {
                RenderConfig::new(policy)
                    .with_faults(faults)
                    .with_threads(threads)
            };
            let reference = render_frame(&workload, 0, &cfg(1)).unwrap();
            for threads in thread_counts() {
                let run = render_frame(&workload, 0, &cfg(threads)).unwrap();
                let context = format!(
                    "policy {policy:?}, faults {faulty}, threads {threads}",
                    faulty = !faults.is_disabled()
                );
                assert_frames_identical(&reference, &run, &context);
            }
        }
    }
}

#[test]
fn aggregate_sweeps_bit_identical_across_thread_counts() {
    let workload = Workload::build("grid", (160, 128)).unwrap();
    let points = design_points(0.4);
    for faults in [FaultConfig::disabled(), FaultConfig::uniform(7, 0.05)] {
        let cfg = |threads: usize| {
            ExperimentConfig {
                frames: 2,
                frame_stride: 100,
                faults,
                ..ExperimentConfig::default()
            }
            .with_threads(threads)
        };
        let reference = run_policies(&workload, &points, &cfg(1)).unwrap();
        for threads in [2usize, 4] {
            let run = run_policies(&workload, &points, &cfg(threads)).unwrap();
            assert_eq!(reference.len(), run.len());
            for (r, o) in reference.iter().zip(&run) {
                let context = format!(
                    "policy {}, faults {}, threads {threads}",
                    r.label,
                    !faults.is_disabled()
                );
                assert_eq!(r.stats, o.stats, "aggregate stats differ: {context}");
                assert_eq!(r.approx, o.approx, "approx differs: {context}");
                assert_eq!(r.sharing, o.sharing, "sharing differs: {context}");
                assert_eq!(r.divergence, o.divergence, "divergence differs: {context}");
                assert_eq!(
                    r.mssim.to_bits(),
                    o.mssim.to_bits(),
                    "mssim not bit-identical: {context} ({} vs {})",
                    r.mssim,
                    o.mssim
                );
                assert_eq!(
                    r.energy_joules.to_bits(),
                    o.energy_joules.to_bits(),
                    "energy not bit-identical: {context}"
                );
                assert_eq!(
                    r.mean_cycles.to_bits(),
                    o.mean_cycles.to_bits(),
                    "mean cycles not bit-identical: {context}"
                );
                assert_eq!(
                    r.mean_filter_latency.to_bits(),
                    o.mean_filter_latency.to_bits(),
                    "mean filter latency not bit-identical: {context}"
                );
            }
        }
    }
}

#[test]
fn temporal_stability_bit_identical_across_thread_counts() {
    let workload = Workload::build("grid", (160, 128)).unwrap();
    let frames = [0u32, 1, 2];
    let cfg = |threads: usize| ExperimentConfig::default().with_threads(threads);
    let reference = temporal_stability(
        &workload,
        FilterPolicy::Patu { threshold: 0.4 },
        &frames,
        &cfg(1),
    )
    .unwrap();
    for threads in [2usize, 4] {
        let run = temporal_stability(
            &workload,
            FilterPolicy::Patu { threshold: 0.4 },
            &frames,
            &cfg(threads),
        )
        .unwrap();
        assert_eq!(reference.to_bits(), run.to_bits(), "threads {threads}");
    }
}
