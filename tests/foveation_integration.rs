//! Integration tests for the foveated-threshold and stereo VR extensions.

use patu_core::FilterPolicy;
use patu_gmath::Vec2;
use patu_scenes::Workload;
use patu_sim::foveation::Foveation;
use patu_sim::render::{render_frame, RenderConfig};
use patu_sim::stereo::render_stereo;

const RES: (u32, u32) = (224, 160);

#[test]
fn foveation_increases_approximation_coverage() {
    let w = Workload::build("grid", RES).unwrap();
    let base_cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.6 });
    let fov_cfg = base_cfg.with_foveation(Foveation::default());
    let plain = render_frame(&w, 0, &base_cfg).unwrap();
    let foveated = render_frame(&w, 0, &fov_cfg).unwrap();
    // Peripheral thresholds loosen, so more pixels approximate and fewer
    // texels are fetched; the foveal region keeps the base threshold.
    assert!(
        foveated.approx.approximated_fraction() >= plain.approx.approximated_fraction(),
        "foveation must not approximate less: {} vs {}",
        foveated.approx.approximated_fraction(),
        plain.approx.approximated_fraction()
    );
    assert!(foveated.stats.events.texel_fetches <= plain.stats.events.texel_fetches);
}

#[test]
fn foveation_noop_for_fixed_policies() {
    let w = Workload::build("wolf", RES).unwrap();
    let plain = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline)).unwrap();
    let foveated = render_frame(
        &w,
        0,
        &RenderConfig::new(FilterPolicy::Baseline).with_foveation(Foveation::default()),
    )
    .unwrap();
    assert_eq!(plain.image.pixels(), foveated.image.pixels());
    assert_eq!(
        plain.stats.events.texel_fetches,
        foveated.stats.events.texel_fetches
    );
}

#[test]
fn tight_fovea_approximates_more_than_wide() {
    let w = Workload::build("doom3", RES).unwrap();
    let policy = FilterPolicy::Patu { threshold: 0.8 };
    let wide = Foveation {
        inner_radius: 0.45,
        outer_radius: 0.9,
        ..Foveation::default()
    };
    let tight = Foveation {
        inner_radius: 0.05,
        outer_radius: 0.3,
        ..Foveation::default()
    };
    let r_wide = render_frame(&w, 0, &RenderConfig::new(policy).with_foveation(wide)).unwrap();
    let r_tight = render_frame(&w, 0, &RenderConfig::new(policy).with_foveation(tight)).unwrap();
    assert!(
        r_tight.stats.events.texel_fetches <= r_wide.stats.events.texel_fetches,
        "smaller fovea -> more periphery -> fewer texels"
    );
}

#[test]
fn foveated_stereo_composes() {
    // The VR path with per-eye foveation around each eye's screen center.
    let w = Workload::build("doom3", RES).unwrap();
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.6 }).with_foveation(Foveation {
        center: Vec2::new(0.5, 0.5),
        ..Foveation::default()
    });
    let s = render_stereo(&w, 0, &cfg, 0.3).unwrap();
    assert!(s.left.approx.pixels > 0);
    assert!(s.right.approx.pixels > 0);
    assert!(s.combined_stats().cycles > 0);
}
