//! Property-based tests for the AF-SSIM model and the PATU decision flow,
//! driven by the workspace's deterministic generator (`DetRng`): each test
//! sweeps a fixed-seed randomized sample of the input space, so any failure
//! reproduces bit-for-bit from the test name alone.

use patu_core::{
    af_ssim_mu, af_ssim_txds, entropy, txds, FilterMode, FilterPolicy, TexelAddressTable,
};
use patu_gmath::{DetRng, Vec2};
use patu_texture::{Footprint, TexelAddress};

const CASES: usize = 256;

fn f64_in(rng: &mut DetRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

fn f32_in(rng: &mut DetRng, lo: f32, hi: f32) -> f32 {
    lo + rng.next_f32() * (hi - lo)
}

fn tap_set(base: u64) -> Vec<TexelAddress> {
    (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
}

/// A valid probability vector with up to 8 entries.
fn prob_vector(rng: &mut DetRng) -> Vec<f64> {
    let len = rng.range_between(1, 8) as usize;
    let weights: Vec<u32> = (0..len).map(|_| rng.range_between(1, 100) as u32).collect();
    let total: u32 = weights.iter().sum();
    weights
        .iter()
        .map(|&w| f64::from(w) / f64::from(total))
        .collect()
}

fn footprint(texels_x: f32, texels_y: f32) -> Footprint {
    Footprint::from_derivatives(
        Vec2::new(texels_x / 512.0, 0.0),
        Vec2::new(0.0, texels_y / 512.0),
        512,
        512,
        16,
    )
}

#[test]
fn af_ssim_mu_bounded() {
    let mut rng = DetRng::new(0xC0_01);
    for _ in 0..CASES {
        let mu = f64_in(&mut rng, 0.0, 32.0);
        let v = af_ssim_mu(mu);
        assert!((0.0..=1.0 + 1e-9).contains(&v));
    }
}

#[test]
fn af_ssim_mu_peaks_at_one() {
    let mut rng = DetRng::new(0xC0_02);
    for _ in 0..CASES {
        let mu = f64_in(&mut rng, 0.0, 32.0);
        assert!(af_ssim_mu(mu) <= af_ssim_mu(1.0) + 1e-12);
    }
}

#[test]
fn af_ssim_mu_near_reciprocal_symmetry() {
    let mut rng = DetRng::new(0xC0_03);
    for _ in 0..CASES {
        let mu = f64_in(&mut rng, 0.1, 10.0);
        // SSIM(X, Y) = SSIM(Y, X) up to the small stabilization constant.
        let a = af_ssim_mu(mu);
        let b = af_ssim_mu(1.0 / mu);
        assert!((a - b).abs() < 1e-2, "{a} vs {b} at mu {mu}");
    }
}

#[test]
fn entropy_nonnegative_and_bounded() {
    let mut rng = DetRng::new(0xC0_04);
    for _ in 0..CASES {
        let p = prob_vector(&mut rng);
        let e = entropy(&p);
        assert!(e >= 0.0);
        assert!(e <= (p.len() as f64).log2() + 1e-9);
    }
}

#[test]
fn txds_in_unit_interval() {
    let mut rng = DetRng::new(0xC0_05);
    for _ in 0..CASES {
        let p = prob_vector(&mut rng);
        let n = rng.range_between(2, 17) as u32;
        let t = txds(&p, n);
        assert!((0.0..=1.0).contains(&t));
        assert!((0.0..=1.0).contains(&af_ssim_txds(t)));
    }
}

#[test]
fn concentrating_mass_raises_txds() {
    for n in 3u32..=16 {
        // Uniform over n events vs all mass on one event.
        let uniform: Vec<f64> = vec![1.0 / f64::from(n); n as usize];
        let point = vec![1.0];
        assert!(txds(&point, n) >= txds(&uniform, n));
    }
}

#[test]
fn policy_monotone_in_threshold() {
    let mut rng = DetRng::new(0xC0_06);
    for _ in 0..CASES {
        let texels_x = f32_in(&mut rng, 1.0, 24.0);
        let lo = rng.next_f64();
        let hi = rng.next_f64();
        // A lower threshold never approximates *less*: if the stricter
        // (higher) threshold approximates a pixel, the looser one must too.
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let fp = footprint(texels_x, 1.0);
        let sets: Vec<Vec<TexelAddress>> =
            (0..fp.n as u64).map(|i| tap_set((i % 3) * 0x100)).collect();
        let mut table = TexelAddressTable::new();
        let strict = FilterPolicy::Patu { threshold: hi }.decide(&fp, &mut table, || sets.clone());
        let loose = FilterPolicy::Patu { threshold: lo }.decide(&fp, &mut table, || sets.clone());
        if strict.is_approximated() {
            assert!(loose.is_approximated(), "θ={lo} stricter than θ={hi}?");
        }
    }
}

#[test]
fn baseline_and_noaf_never_predict() {
    let mut rng = DetRng::new(0xC0_07);
    for _ in 0..CASES {
        let texels_x = f32_in(&mut rng, 1.0, 24.0);
        let texels_y = f32_in(&mut rng, 1.0, 24.0);
        let fp = footprint(texels_x, texels_y);
        let mut table = TexelAddressTable::new();
        for policy in [FilterPolicy::Baseline, FilterPolicy::NoAf] {
            let d = policy.decide(&fp, &mut table, || panic!("no stage 2 for fixed policies"));
            assert_eq!(d.predictor_evals, 0);
            assert_eq!(d.hash_accesses, 0);
        }
    }
}

#[test]
fn patu_demotions_use_af_lod() {
    let mut rng = DetRng::new(0xC0_08);
    for _ in 0..CASES {
        let texels_x = f32_in(&mut rng, 1.0, 24.0);
        let theta = f64_in(&mut rng, 0.05, 0.95);
        let fp = footprint(texels_x, 1.0);
        let sets: Vec<Vec<TexelAddress>> = (0..fp.n as u64).map(|_| tap_set(0)).collect();
        let mut table = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: theta }.decide(&fp, &mut table, || sets.clone());
        if d.is_approximated() && fp.n > 1 {
            assert_eq!(d.mode, FilterMode::TrilinearAfLod);
        }
    }
}

#[test]
fn table_probability_vector_is_distribution() {
    let mut rng = DetRng::new(0xC0_09);
    for _ in 0..CASES {
        let inserts = rng.range_between(1, 16) as usize;
        let bases: Vec<u64> = (0..inserts).map(|_| rng.range(5)).collect();
        let mut table = TexelAddressTable::new();
        for b in &bases {
            table.insert(&tap_set(b * 0x100));
        }
        let p = table.probability_vector();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x > 0.0));
        assert!(p.len() <= 5, "at most 5 distinct sets");
    }
}

#[test]
fn table_counts_match_inserts() {
    let mut rng = DetRng::new(0xC0_0A);
    for _ in 0..CASES {
        let inserts = rng.range_between(1, 15) as usize;
        let bases: Vec<u64> = (0..inserts).map(|_| rng.range(4)).collect();
        let mut table = TexelAddressTable::new();
        for b in &bases {
            table.insert(&tap_set(b * 0x40));
        }
        let total: u64 = table.counts().iter().map(|&c| u64::from(c)).sum();
        assert_eq!(total, bases.len() as u64, "no saturation below 16 inserts");
    }
}
