//! Property-based tests for the AF-SSIM model and the PATU decision flow.

use patu_core::{
    af_ssim_mu, af_ssim_txds, entropy, txds, FilterMode, FilterPolicy, TexelAddressTable,
};
use patu_gmath::Vec2;
use patu_texture::{Footprint, TexelAddress};
use proptest::prelude::*;

fn tap_set(base: u64) -> Vec<TexelAddress> {
    (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
}

/// A valid probability vector with up to 8 entries.
fn prob_vector() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..100, 1..8).prop_map(|weights| {
        let total: u32 = weights.iter().sum();
        weights.iter().map(|&w| f64::from(w) / f64::from(total)).collect()
    })
}

fn footprint(texels_x: f32, texels_y: f32) -> Footprint {
    Footprint::from_derivatives(
        Vec2::new(texels_x / 512.0, 0.0),
        Vec2::new(0.0, texels_y / 512.0),
        512,
        512,
        16,
    )
}

proptest! {
    #[test]
    fn af_ssim_mu_bounded(mu in 0.0f64..32.0) {
        let v = af_ssim_mu(mu);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
    }

    #[test]
    fn af_ssim_mu_peaks_at_one(mu in 0.0f64..32.0) {
        prop_assert!(af_ssim_mu(mu) <= af_ssim_mu(1.0) + 1e-12);
    }

    #[test]
    fn af_ssim_mu_near_reciprocal_symmetry(mu in 0.1f64..10.0) {
        // SSIM(X, Y) = SSIM(Y, X) up to the small stabilization constant.
        let a = af_ssim_mu(mu);
        let b = af_ssim_mu(1.0 / mu);
        prop_assert!((a - b).abs() < 1e-2, "{a} vs {b} at mu {mu}");
    }

    #[test]
    fn entropy_nonnegative_and_bounded(p in prob_vector()) {
        let e = entropy(&p);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= (p.len() as f64).log2() + 1e-9);
    }

    #[test]
    fn txds_in_unit_interval(p in prob_vector(), n in 2u32..=16) {
        let t = txds(&p, n);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((0.0..=1.0).contains(&af_ssim_txds(t)));
    }

    #[test]
    fn concentrating_mass_raises_txds(n in 3u32..=16) {
        // Uniform over n events vs all mass on one event.
        let uniform: Vec<f64> = vec![1.0 / f64::from(n); n as usize];
        let point = vec![1.0];
        prop_assert!(txds(&point, n) >= txds(&uniform, n));
    }

    #[test]
    fn policy_monotone_in_threshold(
        texels_x in 1.0f32..24.0,
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0,
    ) {
        // A lower threshold never approximates *less*: if the stricter
        // (higher) threshold approximates a pixel, the looser one must too.
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let fp = footprint(texels_x, 1.0);
        let sets: Vec<Vec<TexelAddress>> =
            (0..fp.n as u64).map(|i| tap_set((i % 3) * 0x100)).collect();
        let mut table = TexelAddressTable::new();
        let strict = FilterPolicy::Patu { threshold: hi }
            .decide(&fp, &mut table, || sets.clone());
        let loose = FilterPolicy::Patu { threshold: lo }
            .decide(&fp, &mut table, || sets.clone());
        if strict.is_approximated() {
            prop_assert!(loose.is_approximated(), "θ={lo} stricter than θ={hi}?");
        }
    }

    #[test]
    fn baseline_and_noaf_never_predict(texels_x in 1.0f32..24.0, texels_y in 1.0f32..24.0) {
        let fp = footprint(texels_x, texels_y);
        let mut table = TexelAddressTable::new();
        for policy in [FilterPolicy::Baseline, FilterPolicy::NoAf] {
            let d = policy.decide(&fp, &mut table, || panic!("no stage 2 for fixed policies"));
            prop_assert_eq!(d.predictor_evals, 0);
            prop_assert_eq!(d.hash_accesses, 0);
        }
    }

    #[test]
    fn patu_demotions_use_af_lod(texels_x in 1.0f32..24.0, theta in 0.05f64..0.95) {
        let fp = footprint(texels_x, 1.0);
        let sets: Vec<Vec<TexelAddress>> = (0..fp.n as u64).map(|_| tap_set(0)).collect();
        let mut table = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: theta }.decide(&fp, &mut table, || sets.clone());
        if d.is_approximated() && fp.n > 1 {
            prop_assert_eq!(d.mode, FilterMode::TrilinearAfLod);
        }
    }

    #[test]
    fn table_probability_vector_is_distribution(
        bases in proptest::collection::vec(0u64..5, 1..16)
    ) {
        let mut table = TexelAddressTable::new();
        for b in &bases {
            table.insert(&tap_set(b * 0x100));
        }
        let p = table.probability_vector();
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x > 0.0));
        prop_assert!(p.len() <= 5, "at most 5 distinct sets");
    }

    #[test]
    fn table_counts_match_inserts(
        bases in proptest::collection::vec(0u64..4, 1..15)
    ) {
        let mut table = TexelAddressTable::new();
        for b in &bases {
            table.insert(&tap_set(b * 0x40));
        }
        let total: u64 = table.counts().iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(total, bases.len() as u64, "no saturation below 16 inserts");
    }
}
