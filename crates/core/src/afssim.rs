//! The AF-SSIM formulas: Eq. (5), (6), (8), (9) and (10) of the paper.

/// The SSIM stabilization constant `C1 = (K1 · L)²` normalized to unit
/// dynamic range (`K1 = 0.01`, `L = 1`), as used in the reduced Eq. (5).
pub const C1: f64 = 0.0001;

/// Eq. (5): AF-SSIM as a function of the similarity degree `μ∇ = Y / X`.
///
/// `AF_SSIM(μ) = ((2μ + C1) / (μ² + 1 + C1))²`, maximal (≈1) at `μ = 1`
/// (AF and TF colors equal) and decreasing as they diverge.
///
/// ```
/// use patu_core::af_ssim_mu;
/// assert!((af_ssim_mu(1.0) - 1.0).abs() < 1e-3);
/// assert!(af_ssim_mu(3.0) < af_ssim_mu(1.5));
/// ```
pub fn af_ssim_mu(mu: f64) -> f64 {
    let num = 2.0 * mu + C1;
    let den = mu * mu + 1.0 + C1;
    (num / den).powi(2)
}

/// Eq. (6): sample-area based prediction — the AF sample size `N` replaces
/// `μ∇`: `AF_SSIM(N) = (2N / (N² + 1))²` for `1 ≤ N ≤ 16`.
///
/// `N = 1` (isotropic footprint) predicts perfect similarity; larger `N`
/// (more eccentric footprints) predicts growing perceptual difference.
///
/// # Panics
///
/// Panics if `n` is outside `1..=16` (the paper's Eq. 6 domain). Use
/// [`try_af_ssim_n`] for a non-panicking variant.
pub fn af_ssim_n(n: u32) -> f64 {
    assert!(
        (1..=16).contains(&n),
        "sample size N must be in 1..=16, got {n}"
    );
    let nf = f64::from(n);
    (2.0 * nf / (nf * nf + 1.0)).powi(2)
}

/// Like [`af_ssim_n`] but reports an out-of-domain `N` as a typed error
/// instead of panicking.
pub fn try_af_ssim_n(n: u32) -> Result<f64, crate::PatuError> {
    if !(1..=16).contains(&n) {
        return Err(crate::PatuError::InvalidSampleSize { n });
    }
    Ok(af_ssim_n(n))
}

/// Eq. (8): Shannon entropy of a probability vector (bits).
///
/// Zero-probability events contribute nothing. Returns 0 for an empty or
/// single-certain-event vector and `log2(M)` for a uniform distribution over
/// `M` events.
///
/// ```
/// use patu_core::entropy;
/// assert_eq!(entropy(&[1.0]), 0.0);
/// assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
/// ```
pub fn entropy(p: &[f64]) -> f64 {
    p.iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| -pi * pi.log2())
        .sum()
}

/// Eq. (9): texel distribution similarity,
/// `Txds(P, N) = 1 − Entropy(P) / log2(N)`, clamped into `[0, 1]`.
///
/// `Txds → 1` when AF's trilinear taps concentrate on few shared texel sets
/// (AF unnecessary); `Txds → 0` when every tap touches distinct texels (AF
/// needed). `N = 1` is defined as perfect similarity (there is nothing to
/// distribute).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn txds(p: &[f64], n: u32) -> f64 {
    assert!(n >= 1, "sample size must be at least 1");
    if n == 1 {
        return 1.0;
    }
    let norm = f64::from(n).log2();
    (1.0 - entropy(p) / norm).clamp(0.0, 1.0)
}

/// Eq. (10): distribution based prediction —
/// `AF_SSIM(Txds) = (2·Txds / (Txds² + 1))²`.
///
/// # Panics
///
/// Panics in debug builds if `txds_value` is outside `[0, 1]`.
pub fn af_ssim_txds(txds_value: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&txds_value),
        "Txds must be in [0, 1], got {txds_value}"
    );
    (2.0 * txds_value / (txds_value * txds_value + 1.0)).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_one_is_near_perfect() {
        assert!((af_ssim_mu(1.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn mu_curve_symmetric_under_reciprocal() {
        // SSIM(X, Y) = SSIM(Y, X): μ and 1/μ score (nearly) the same.
        let a = af_ssim_mu(2.0);
        let b = af_ssim_mu(0.5);
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn mu_decreases_away_from_one() {
        assert!(af_ssim_mu(1.0) > af_ssim_mu(1.5));
        assert!(af_ssim_mu(1.5) > af_ssim_mu(3.0));
        assert!(af_ssim_mu(3.0) > af_ssim_mu(10.0));
    }

    #[test]
    fn mu_zero_is_worst() {
        assert!(af_ssim_mu(0.0) < 1e-4);
    }

    #[test]
    fn n_prediction_monotone_decreasing() {
        let mut last = f64::INFINITY;
        for n in 1..=16 {
            let v = af_ssim_n(n);
            assert!(v < last, "AF_SSIM(N) strictly decreases: N={n}");
            assert!((0.0..=1.0).contains(&v));
            last = v;
        }
    }

    #[test]
    fn n_known_values() {
        assert!((af_ssim_n(1) - 1.0).abs() < 1e-12);
        // N=2: (4/5)^2 = 0.64
        assert!((af_ssim_n(2) - 0.64).abs() < 1e-12);
        // N=16: (32/257)^2 ≈ 0.0155
        assert!((af_ssim_n(16) - (32.0f64 / 257.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in 1..=16")]
    fn n_out_of_range_panics() {
        let _ = af_ssim_n(0);
    }

    #[test]
    fn try_variant_returns_typed_error() {
        assert!(try_af_ssim_n(0).is_err());
        assert!(try_af_ssim_n(17).is_err());
        assert_eq!(try_af_ssim_n(2).unwrap(), af_ssim_n(2));
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[1.0]), 0.0);
        let uniform4 = [0.25; 4];
        assert!((entropy(&uniform4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_paper_example() {
        // Fig. 11: probability vector {0.6, 0.2, 0.2}.
        let e = entropy(&[0.6, 0.2, 0.2]);
        let expected = -(0.6 * 0.6f64.log2() + 2.0 * 0.2 * 0.2f64.log2());
        assert!((e - expected).abs() < 1e-12);
        assert!(e > 0.0 && e < 3.0f64.log2());
    }

    #[test]
    fn entropy_ignores_zero_probabilities() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn txds_perfect_concentration() {
        assert_eq!(txds(&[1.0], 5), 1.0);
    }

    #[test]
    fn txds_uniform_is_zero() {
        let p = [0.2; 5];
        // Entropy log2(5) normalized by log2(5) -> Txds = 0... but sample
        // size N = 5 and 5 distinct events: exactly the upper bound.
        assert!(txds(&p, 5).abs() < 1e-12);
    }

    #[test]
    fn txds_n1_defined_as_one() {
        assert_eq!(txds(&[1.0], 1), 1.0);
    }

    #[test]
    fn txds_paper_example_value() {
        // Fig. 11: P = {0.6, 0.2, 0.2}, N = 5.
        let t = txds(&[0.6, 0.2, 0.2], 5);
        let expected = 1.0 - entropy(&[0.6, 0.2, 0.2]) / 5.0f64.log2();
        assert!((t - expected).abs() < 1e-12);
        assert!(t > 0.3 && t < 0.5, "moderate concentration, got {t}");
    }

    #[test]
    fn txds_monotone_in_concentration() {
        // More taps sharing the dominant set -> higher Txds.
        let spread = txds(&[0.4, 0.2, 0.2, 0.2], 5);
        let tight = txds(&[0.8, 0.2], 5);
        assert!(tight > spread);
    }

    #[test]
    fn af_ssim_txds_endpoints() {
        assert!(af_ssim_txds(0.0).abs() < 1e-12);
        assert!((af_ssim_txds(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn af_ssim_txds_monotone() {
        let mut last = -1.0;
        for i in 0..=10 {
            let v = af_ssim_txds(f64::from(i) / 10.0);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn unified_threshold_semantics() {
        // The same threshold separates both predictors' "approximate" sides:
        // N small / Txds high -> predicted SSIM above threshold.
        let threshold = 0.4;
        assert!(af_ssim_n(1) > threshold);
        assert!(af_ssim_n(16) < threshold);
        assert!(af_ssim_txds(0.95) > threshold);
        assert!(af_ssim_txds(0.1) < threshold);
    }
}
