//! Batched struct-of-arrays fragment→texel path.
//!
//! [`SoaBatch`] holds a run of fragments (same texture, same policy source)
//! in struct-of-arrays layout. [`PerceptionAwareTextureUnit::filter_batch`]
//! streams the whole batch through a fused predictor+filter kernel:
//!
//! - the footprint pass computes mip/anisotropy math for every lane up
//!   front, over contiguous derivative arrays;
//! - the fused per-lane kernel runs the prediction flow with tap address
//!   sets streamed straight into the 16-entry hash table (no per-tap
//!   `Vec<Vec<TexelAddress>>`), then performs only the filtering the
//!   decision demands — a demoted lane never reads the `N×8` AF texels the
//!   scalar path touches just to enumerate tap addresses;
//! - every texel address fetched lands in one contiguous per-batch buffer
//!   (`addresses`), 8 per trilinear tap, which the timing model replays via
//!   `TextureUnit::process_flat`.
//!
//! The kernel is bit-identical to the scalar
//! [`PerceptionAwareTextureUnit::filter_with`] path by construction: both
//! bottom out in `FilterPolicy::decide_streamed` (same fault-injector draw
//! sequence, same hash-table access sequence) and in the same trilinear
//! sampling routines, and lanes are processed in fragment order — batching
//! changes memory layout, never arithmetic or ordering.

use crate::policy::{FilterPolicy, PolicyDecision};
use crate::unit::PerceptionAwareTextureUnit;
use patu_gmath::Vec2;
use patu_texture::{AddressMode, Footprint, Rgba8, TexelAddress, Texture};

/// Reusable per-lane scratch buffers for the fused kernel: AF tap offsets,
/// colors and TF-level comparison keys. One instance lives inside each
/// [`SoaBatch`]; steady-state filtering performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct LaneScratch {
    pub(crate) offsets: Vec<f32>,
    pub(crate) tap_colors: Vec<Rgba8>,
    pub(crate) tap_keys: Vec<[TexelAddress; 4]>,
}

/// The fused kernel's per-lane result (the batched analogue of the scalar
/// path's `FilterOutcome`, minus the per-pixel `SampleRecord` allocation —
/// tap addresses live in the batch's contiguous buffer instead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneOutcome {
    /// Final filtered color returned to the shader.
    pub color: Rgba8,
    /// The LOD the lane's taps used.
    pub lod: f32,
    /// Trilinear taps fetched (`N` for kept AF, 1 for demotions).
    pub taps: u32,
    /// The policy decision that produced the filtering.
    pub decision: PolicyDecision,
}

/// A struct-of-arrays batch of fragments awaiting the fused kernel.
///
/// Fill it with [`SoaBatch::push`] in fragment order, run
/// [`PerceptionAwareTextureUnit::filter_batch`], then read the per-lane
/// outputs back with the accessors. All buffers are reused across
/// [`SoaBatch::clear`] cycles.
#[derive(Debug, Clone, Default)]
pub struct SoaBatch {
    // Inputs, one entry per lane, in fragment order.
    xs: Vec<u32>,
    ys: Vec<u32>,
    uvs: Vec<Vec2>,
    duv_dxs: Vec<Vec2>,
    duv_dys: Vec<Vec2>,
    // Footprint pass output.
    footprints: Vec<Footprint>,
    // Fused kernel outputs, one entry per lane.
    colors: Vec<Rgba8>,
    decisions: Vec<PolicyDecision>,
    lods: Vec<f32>,
    taps: Vec<u32>,
    addr_ranges: Vec<(u32, u32)>,
    /// Every texel address the batch fetched, contiguous, 8 per tap.
    addresses: Vec<TexelAddress>,
    scratch: LaneScratch,
}

impl SoaBatch {
    /// Creates an empty batch.
    pub fn new() -> SoaBatch {
        SoaBatch::default()
    }

    /// Appends one fragment lane (screen position, texture coordinates and
    /// derivatives).
    pub fn push(&mut self, x: u32, y: u32, uv: Vec2, duv_dx: Vec2, duv_dy: Vec2) {
        self.xs.push(x);
        self.ys.push(y);
        self.uvs.push(uv);
        self.duv_dxs.push(duv_dx);
        self.duv_dys.push(duv_dy);
    }

    /// Clears the input lanes for the next run of fragments. Capacity (and
    /// the kernel's scratch buffers) are retained.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.uvs.clear();
        self.duv_dxs.clear();
        self.duv_dys.clear();
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.uvs.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.uvs.is_empty()
    }

    /// Lane `i`'s screen x.
    pub fn x(&self, i: usize) -> u32 {
        self.xs[i]
    }

    /// Lane `i`'s screen y.
    pub fn y(&self, i: usize) -> u32 {
        self.ys[i]
    }

    /// Lane `i`'s filtered color.
    pub fn color(&self, i: usize) -> Rgba8 {
        self.colors[i]
    }

    /// Lane `i`'s policy decision.
    pub fn decision(&self, i: usize) -> PolicyDecision {
        self.decisions[i]
    }

    /// Lane `i`'s sampling LOD.
    pub fn lod(&self, i: usize) -> f32 {
        self.lods[i]
    }

    /// Lane `i`'s trilinear tap count.
    pub fn taps(&self, i: usize) -> u32 {
        self.taps[i]
    }

    /// Lane `i`'s fetched texel addresses (8 per tap, tap-major — the exact
    /// order the scalar path's `SampleRecord::addresses()` yields).
    pub fn tap_addresses(&self, i: usize) -> &[TexelAddress] {
        let (start, end) = self.addr_ranges[i];
        &self.addresses[start as usize..end as usize]
    }

    /// Footprint pass: derive every lane's [`Footprint`] and reset the
    /// output arrays.
    fn begin(&mut self, tex: &Texture, max_aniso: u32) {
        self.footprints.clear();
        self.colors.clear();
        self.decisions.clear();
        self.lods.clear();
        self.taps.clear();
        self.addr_ranges.clear();
        self.addresses.clear();
        let (w, h) = (tex.width(), tex.height());
        for i in 0..self.uvs.len() {
            self.footprints.push(Footprint::from_derivatives(
                self.duv_dxs[i],
                self.duv_dys[i],
                w,
                h,
                max_aniso,
            ));
        }
    }
}

impl PerceptionAwareTextureUnit {
    /// Streams a whole [`SoaBatch`] through the fused predictor+filter
    /// kernel. `policy_of(lane)` supplies each lane's (possibly modulated)
    /// policy — pass `|_| unit.policy()` for a uniform batch.
    ///
    /// Lanes are processed in push order; statistics, the hash table and the
    /// fault-injector stream advance exactly as if
    /// [`PerceptionAwareTextureUnit::filter_with`] had been called once per
    /// lane. Outputs are read back from the batch accessors.
    pub fn filter_batch<P>(
        &mut self,
        tex: &Texture,
        mode: AddressMode,
        max_aniso: u32,
        batch: &mut SoaBatch,
        mut policy_of: P,
    ) where
        P: FnMut(usize) -> FilterPolicy,
    {
        batch.begin(tex, max_aniso);
        let SoaBatch {
            uvs,
            footprints,
            colors,
            decisions,
            lods,
            taps,
            addr_ranges,
            addresses,
            scratch,
            ..
        } = batch;
        for (i, fp) in footprints.iter().enumerate() {
            let start = addresses.len() as u32;
            let lane = self.filter_lane(policy_of(i), tex, uvs[i], fp, mode, scratch, addresses);
            colors.push(lane.color);
            decisions.push(lane.decision);
            lods.push(lane.lod);
            taps.push(lane.taps);
            addr_ranges.push((start, addresses.len() as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patu_gpu::FaultConfig;
    use patu_texture::procedural;

    fn texture() -> Texture {
        Texture::with_mips(procedural::composite(256, 256, 0xC0FE), 0)
    }

    fn lane_inputs(count: usize) -> Vec<(u32, u32, Vec2, Vec2, Vec2)> {
        (0..count)
            .map(|i| {
                let fi = i as f32;
                let uv = Vec2::new((0.07 + fi * 0.031) % 1.0, (0.61 + fi * 0.017) % 1.0);
                let n_texels = 1.0 + (i % 13) as f32;
                (
                    i as u32 % 16,
                    i as u32 / 16,
                    uv,
                    Vec2::new(n_texels / 256.0, 0.0),
                    Vec2::new(0.0, 1.0 / 256.0),
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_scalar_unit_exactly() {
        let tex = texture();
        let policies = [
            FilterPolicy::Baseline,
            FilterPolicy::NoAf,
            FilterPolicy::SampleArea { threshold: 0.4 },
            FilterPolicy::SampleAreaTxds { threshold: 0.4 },
            FilterPolicy::Patu { threshold: 0.4 },
            FilterPolicy::Patu { threshold: 0.9 },
        ];
        for policy in policies {
            for rate in [0.0, 0.25] {
                let cfg = FaultConfig::uniform(17, rate);
                let mut scalar =
                    PerceptionAwareTextureUnit::try_with_faults(policy, 16, cfg, 3).unwrap();
                let mut batched =
                    PerceptionAwareTextureUnit::try_with_faults(policy, 16, cfg, 3).unwrap();
                scalar.set_telemetry(true);
                batched.set_telemetry(true);

                let lanes = lane_inputs(40);
                let mut batch = SoaBatch::new();
                for &(x, y, uv, dx, dy) in &lanes {
                    batch.push(x, y, uv, dx, dy);
                }
                batched.filter_batch(&tex, AddressMode::Wrap, 16, &mut batch, |_| policy);

                for (i, &(_, _, uv, dx, dy)) in lanes.iter().enumerate() {
                    let fp = Footprint::from_derivatives(dx, dy, 256, 256, 16);
                    let out = scalar.filter_with(policy, &tex, uv, &fp, AddressMode::Wrap);
                    assert_eq!(batch.color(i), out.record.color, "{policy:?} lane {i}");
                    assert_eq!(batch.decision(i), out.decision, "{policy:?} lane {i}");
                    assert_eq!(batch.lod(i), out.record.lod, "{policy:?} lane {i}");
                    assert_eq!(batch.taps(i), out.record.n, "{policy:?} lane {i}");
                    let scalar_addrs: Vec<TexelAddress> = out.record.addresses().collect();
                    assert_eq!(batch.tap_addresses(i), scalar_addrs, "{policy:?} lane {i}");
                }
                assert_eq!(
                    batched.hash_accesses(),
                    scalar.hash_accesses(),
                    "{policy:?}"
                );
                assert_eq!(
                    batched.sharing_stats(),
                    scalar.sharing_stats(),
                    "{policy:?}"
                );
                assert_eq!(batched.approx_stats(), scalar.approx_stats(), "{policy:?}");
                assert_eq!(batched.fault_counts(), scalar.fault_counts(), "{policy:?}");
            }
        }
    }

    #[test]
    fn batch_reuse_does_not_leak_state_across_runs() {
        let tex = texture();
        let policy = FilterPolicy::Patu { threshold: 0.4 };
        let mut unit = PerceptionAwareTextureUnit::new(policy);
        let mut batch = SoaBatch::new();
        let lanes = lane_inputs(12);

        // First run fills every buffer; the second must produce identical
        // outputs from recycled capacity.
        let run = |unit: &mut PerceptionAwareTextureUnit, batch: &mut SoaBatch| {
            batch.clear();
            for &(x, y, uv, dx, dy) in &lanes {
                batch.push(x, y, uv, dx, dy);
            }
            unit.filter_batch(&tex, AddressMode::Wrap, 16, batch, |_| policy);
            (0..batch.len())
                .map(|i| {
                    (
                        batch.color(i),
                        batch.decision(i),
                        batch.tap_addresses(i).to_vec(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let first = run(&mut unit, &mut batch);
        let second = run(&mut unit, &mut batch);
        assert_eq!(first, second);
    }

    #[test]
    fn per_lane_policy_modulation() {
        let tex = texture();
        let base = FilterPolicy::Patu { threshold: 0.4 };
        let mut unit = PerceptionAwareTextureUnit::new(base);
        let mut batch = SoaBatch::new();
        for &(x, y, uv, dx, dy) in &lane_inputs(8) {
            batch.push(x, y, uv, dx, dy);
        }
        // Odd lanes run NoAf; the decision surface must reflect it.
        unit.filter_batch(&tex, AddressMode::Wrap, 16, &mut batch, |i| {
            if i % 2 == 1 {
                FilterPolicy::NoAf
            } else {
                base
            }
        });
        for i in 0..batch.len() {
            if i % 2 == 1 {
                assert!(batch.decision(i).is_approximated(), "lane {i} forced off");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Baseline);
        let mut batch = SoaBatch::new();
        unit.filter_batch(&tex, AddressMode::Wrap, 16, &mut batch, |_| {
            FilterPolicy::Baseline
        });
        assert_eq!(batch.len(), 0);
        assert_eq!(unit.approx_stats().pixels, 0);
    }
}
