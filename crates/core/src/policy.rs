//! Filtering policies and the two-stage runtime prediction flow (Fig. 13).
//!
//! A [`FilterPolicy`] decides, per pixel, whether anisotropic filtering can
//! be approximated by plain trilinear filtering. The evaluation's four
//! design points (Sec. VII-B) map to:
//!
//! | Paper design point      | Policy                                  |
//! |-------------------------|-----------------------------------------|
//! | Baseline (16×AF)        | [`FilterPolicy::Baseline`]              |
//! | AF disabled (Fig. 5/7)  | [`FilterPolicy::NoAf`]                  |
//! | AF-SSIM(N)              | [`FilterPolicy::SampleArea`]            |
//! | AF-SSIM(N)+(Txds)       | [`FilterPolicy::SampleAreaTxds`]        |
//! | PATU                    | [`FilterPolicy::Patu`]                  |
//!
//! The two predictive stages share one unified threshold (Sec. IV-C(C)).

use crate::afssim::{af_ssim_txds, try_af_ssim_n, txds};
use crate::error::PatuError;
use crate::hash_table::TexelAddressTable;
use patu_gpu::FaultInjector;
use patu_texture::{Footprint, TexelAddress};

/// How the pixel is ultimately filtered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterMode {
    /// Full anisotropic filtering (`N` trilinear taps at the AF LOD).
    Anisotropic,
    /// Trilinear only, at TF's own (coarser) LOD — the naive demotion that
    /// causes the LOD shift of Sec. V-C(2).
    TrilinearTfLod,
    /// Trilinear only, reusing AF's (finer) LOD — PATU's demotion, which
    /// avoids the LOD shift and improves texture-cache locality.
    TrilinearAfLod,
}

/// Which point of the prediction flow produced the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionStage {
    /// The policy never predicts (baseline / no-AF).
    Fixed,
    /// The footprint was isotropic (`N = 1`); no AF was ever needed.
    Isotropic,
    /// Approved for approximation by AF-SSIM(N) after Texel Generation.
    SampleArea,
    /// Approved for approximation by AF-SSIM(Txds) after Texel Address
    /// Calculation.
    Distribution,
    /// Both predictors demanded AF; the pixel keeps full filtering.
    KeptAf,
    /// The prediction state was untrustworthy — a non-finite predictor
    /// value, a corrupted hash table (parity error), or an out-of-domain
    /// input — so the pixel degraded to full AF. Quality-safe: the fallback
    /// always renders at least as accurately as the prediction would have.
    Fallback,
}

/// The per-pixel outcome of a policy decision, including the architectural
/// side costs the timing/energy models charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDecision {
    /// Chosen filtering mode.
    pub mode: FilterMode,
    /// Which stage decided.
    pub stage: DecisionStage,
    /// Predictor evaluations performed (compute-logic activations).
    pub predictor_evals: u32,
    /// Texel-address hash-table lookups performed.
    pub hash_accesses: u32,
    /// Trilinear taps whose addresses were calculated and then discarded
    /// (a stage-2 approximation recalculates addresses with `N = 1`).
    pub wasted_addr_taps: u32,
}

impl PolicyDecision {
    fn fixed(mode: FilterMode) -> PolicyDecision {
        PolicyDecision {
            mode,
            stage: DecisionStage::Fixed,
            predictor_evals: 0,
            hash_accesses: 0,
            wasted_addr_taps: 0,
        }
    }

    fn fallback(predictor_evals: u32, hash_accesses: u32) -> PolicyDecision {
        PolicyDecision {
            mode: FilterMode::Anisotropic,
            stage: DecisionStage::Fallback,
            predictor_evals,
            hash_accesses,
            wasted_addr_taps: 0,
        }
    }

    /// Whether AF was approximated away (any trilinear-only mode).
    pub fn is_approximated(&self) -> bool {
        self.mode != FilterMode::Anisotropic
    }
}

/// The filtering policy of a texture unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterPolicy {
    /// Always apply full 16×AF (the paper's baseline).
    Baseline,
    /// Never apply AF (the paper's motivation experiments, Fig. 5–7).
    NoAf,
    /// Sample-area based prediction only: AF-SSIM(N) vs. `threshold`.
    SampleArea {
        /// The unified prediction threshold in `[0, 1]`.
        threshold: f64,
    },
    /// Both predictions, but demoted pixels use TF's own LOD (suffers the
    /// LOD shift).
    SampleAreaTxds {
        /// The unified prediction threshold in `[0, 1]`.
        threshold: f64,
    },
    /// The full PATU design: both predictions + AF-LOD reuse for demoted
    /// pixels.
    Patu {
        /// The unified prediction threshold in `[0, 1]`.
        threshold: f64,
    },
}

/// Error returned when parsing a [`FilterPolicy`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl std::fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid policy '{}' (expected baseline, noaf, sample-area[@T], \
             sample-area-txds[@T] or patu[@T] with T in [0,1])",
            self.input
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl std::str::FromStr for FilterPolicy {
    type Err = ParsePolicyError;

    /// Parses `baseline`, `noaf`, or a predictive policy with an optional
    /// `@threshold` suffix (default 0.4): `patu`, `patu@0.6`,
    /// `sample-area@0.2`, `sample-area-txds`.
    fn from_str(s: &str) -> Result<FilterPolicy, ParsePolicyError> {
        let err = || ParsePolicyError {
            input: s.to_string(),
        };
        let (name, threshold) = match s.split_once('@') {
            Some((n, t)) => {
                let t: f64 = t.parse().map_err(|_| err())?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(err());
                }
                (n, t)
            }
            None => (s, 0.4),
        };
        match name.to_ascii_lowercase().as_str() {
            "baseline" | "af" => Ok(FilterPolicy::Baseline),
            "noaf" | "no-af" | "off" => Ok(FilterPolicy::NoAf),
            "sample-area" | "afssim-n" => Ok(FilterPolicy::SampleArea { threshold }),
            "sample-area-txds" | "afssim-n-txds" => Ok(FilterPolicy::SampleAreaTxds { threshold }),
            "patu" => Ok(FilterPolicy::Patu { threshold }),
            _ => Err(err()),
        }
    }
}

impl FilterPolicy {
    /// The approximation mode this policy demotes pixels to.
    fn approx_mode(&self) -> FilterMode {
        match self {
            FilterPolicy::Patu { .. } => FilterMode::TrilinearAfLod,
            _ => FilterMode::TrilinearTfLod,
        }
    }

    /// The unified threshold, if the policy predicts.
    pub fn threshold(&self) -> Option<f64> {
        match *self {
            FilterPolicy::Baseline | FilterPolicy::NoAf => None,
            FilterPolicy::SampleArea { threshold }
            | FilterPolicy::SampleAreaTxds { threshold }
            | FilterPolicy::Patu { threshold } => Some(threshold),
        }
    }

    /// Returns the same policy with its threshold replaced (clamped into
    /// `[0, 1]`). Fixed policies are returned unchanged. Used by per-pixel
    /// threshold modulation such as foveated rendering, where the knob
    /// loosens with eccentricity.
    #[must_use]
    pub fn with_threshold(self, threshold: f64) -> FilterPolicy {
        let threshold = threshold.clamp(0.0, 1.0);
        match self {
            FilterPolicy::Baseline | FilterPolicy::NoAf => self,
            FilterPolicy::SampleArea { .. } => FilterPolicy::SampleArea { threshold },
            FilterPolicy::SampleAreaTxds { .. } => FilterPolicy::SampleAreaTxds { threshold },
            FilterPolicy::Patu { .. } => FilterPolicy::Patu { threshold },
        }
    }

    /// The hook for externally-governed thresholds (the serving layer's
    /// quality governor): replaces the threshold with `theta` snapped onto a
    /// grid of `steps` equal intervals across `[0, 1]`.
    ///
    /// Quantization matters for two reasons. It bounds the set of distinct
    /// policies a continuous controller can emit — so per-policy caches
    /// (rendered-frame reuse across same-scene jobs, design-point tables)
    /// actually hit — and it snaps tiny floating-point differences in the
    /// controller state to the same rendered output, keeping governed runs
    /// reproducible. A non-finite `theta` falls to the quality ceiling
    /// (1.0, the safe direction), matching `ThresholdController::new`;
    /// `steps == 0` sanitizes to 1. Fixed policies are returned unchanged.
    #[must_use]
    pub fn govern(self, theta: f64, steps: u32) -> FilterPolicy {
        let theta = if theta.is_finite() { theta } else { 1.0 };
        let steps = f64::from(steps.max(1));
        let snapped = (theta.clamp(0.0, 1.0) * steps).round() / steps;
        self.with_threshold(snapped)
    }

    /// Whether the policy runs the distribution (Txds) stage.
    pub fn uses_distribution_stage(&self) -> bool {
        matches!(
            self,
            FilterPolicy::SampleAreaTxds { .. } | FilterPolicy::Patu { .. }
        )
    }

    /// Checks the policy's configuration, reporting a non-finite or
    /// out-of-range threshold as a typed error instead of panicking.
    pub fn validate(&self) -> Result<(), PatuError> {
        if let Some(t) = self.threshold() {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(PatuError::InvalidThreshold { value: t });
            }
        }
        Ok(())
    }

    /// Runs the prediction flow (Fig. 13) for one pixel.
    ///
    /// `tap_sets` provides the texel address set of each AF trilinear tap and
    /// is only invoked when the distribution stage actually runs — exactly
    /// as in hardware, where the hash table observes the address stream that
    /// *Texel Address Calculation* produces anyway. `table` is the unit's
    /// hash table (reset here per pixel; accesses accumulate).
    ///
    /// Adversarial configurations degrade instead of panicking: a finite
    /// out-of-range threshold is clamped into `[0, 1]`, while a non-finite
    /// threshold or an out-of-domain `footprint.n` keeps full AF with
    /// [`DecisionStage::Fallback`] (quality-safe by construction).
    pub fn decide<F>(
        &self,
        footprint: &Footprint,
        table: &mut TexelAddressTable,
        tap_sets: F,
    ) -> PolicyDecision
    where
        F: FnOnce() -> Vec<Vec<TexelAddress>>,
    {
        let mut faults = FaultInjector::disabled();
        self.decide_with(footprint, table, &mut faults, tap_sets)
    }

    /// [`FilterPolicy::decide`] with a [`FaultInjector`] in the loop.
    ///
    /// This is the chaos-suite entry point: the injector may poison either
    /// predictor's output with NaN/±Inf or flip a count-tag bit in the hash
    /// table after the tap stream lands. Every such event is *detected* —
    /// non-finite predictions via an `is_finite` check, table corruption via
    /// the modeled parity bit — and degrades the pixel to full AF with
    /// [`DecisionStage::Fallback`], recording `note_fallback()`. A disabled
    /// injector draws no randomness, so `decide` is bit-identical to the
    /// pre-fault-injection flow.
    pub fn decide_with<F>(
        &self,
        footprint: &Footprint,
        table: &mut TexelAddressTable,
        faults: &mut FaultInjector,
        tap_sets: F,
    ) -> PolicyDecision
    where
        F: FnOnce() -> Vec<Vec<TexelAddress>>,
    {
        let n = footprint.n;
        self.decide_streamed(footprint, table, faults, move |table| {
            let sets = tap_sets();
            debug_assert_eq!(sets.len(), n as usize, "one address set per AF tap");
            table.reset();
            for s in &sets {
                table.insert(s);
            }
            sets.len() as u32
        })
    }

    /// The streaming form of [`FilterPolicy::decide_with`]: instead of
    /// materializing every tap's address set as a `Vec<Vec<TexelAddress>>`,
    /// the caller streams the sets straight into the table. `stream_taps` is
    /// only invoked when the distribution stage runs; it must `reset` the
    /// table, `insert` one normalized set per AF tap, and return the number
    /// of taps streamed. It must not draw from the fault injector — the
    /// injector's draw sequence is part of the bit-exact contract between
    /// the scalar and batched paths, both of which bottom out here.
    pub fn decide_streamed<F>(
        &self,
        footprint: &Footprint,
        table: &mut TexelAddressTable,
        faults: &mut FaultInjector,
        stream_taps: F,
    ) -> PolicyDecision
    where
        F: FnOnce(&mut TexelAddressTable) -> u32,
    {
        let n = footprint.n;

        // An isotropic footprint never takes the AF path, under any policy.
        if n == 1 {
            return PolicyDecision {
                mode: FilterMode::TrilinearTfLod,
                stage: DecisionStage::Isotropic,
                predictor_evals: 0,
                hash_accesses: 0,
                wasted_addr_taps: 0,
            };
        }

        let threshold = match *self {
            FilterPolicy::Baseline => return PolicyDecision::fixed(FilterMode::Anisotropic),
            FilterPolicy::NoAf => return PolicyDecision::fixed(FilterMode::TrilinearTfLod),
            FilterPolicy::SampleArea { threshold }
            | FilterPolicy::SampleAreaTxds { threshold }
            | FilterPolicy::Patu { threshold } => threshold,
        };
        // A broken knob cannot be compared against; keep full quality.
        if !threshold.is_finite() {
            faults.note_fallback();
            return PolicyDecision::fallback(0, 0);
        }
        let threshold = threshold.clamp(0.0, 1.0);

        // Stage 1: sample-area similarity check (PATU component ①),
        // right after Texel Generation.
        let mut predictor_evals = 1;
        let stage1 = match try_af_ssim_n(n) {
            Ok(v) => faults.poison_predictor(v),
            Err(_) => {
                faults.note_fallback();
                return PolicyDecision::fallback(predictor_evals, 0);
            }
        };
        if !stage1.is_finite() {
            faults.note_fallback();
            return PolicyDecision::fallback(predictor_evals, 0);
        }
        if stage1 > threshold {
            return PolicyDecision {
                mode: self.approx_mode(),
                stage: DecisionStage::SampleArea,
                predictor_evals,
                hash_accesses: 0,
                wasted_addr_taps: 0,
            };
        }

        if !self.uses_distribution_stage() {
            return PolicyDecision {
                mode: FilterMode::Anisotropic,
                stage: DecisionStage::KeptAf,
                predictor_evals,
                hash_accesses: 0,
                wasted_addr_taps: 0,
            };
        }

        // Stage 2: texel-distribution check (components ② + ③), right after
        // Texel Address Calculation.
        let hash_accesses = stream_taps(table);
        // Fault site: a soft error strikes a count tag after the tap stream
        // lands. The modeled parity bit detects it below.
        if let Some((selector, bit)) = faults.table_corruption() {
            table.corrupt_count(selector, bit);
        }
        predictor_evals += 1;
        if table.parity_error() {
            faults.note_fallback();
            return PolicyDecision::fallback(predictor_evals, hash_accesses);
        }
        let p = table.probability_vector();
        let stage2 = faults.poison_predictor(af_ssim_txds(txds(&p, n)));
        if !stage2.is_finite() {
            faults.note_fallback();
            return PolicyDecision::fallback(predictor_evals, hash_accesses);
        }
        if stage2 > threshold {
            return PolicyDecision {
                mode: self.approx_mode(),
                stage: DecisionStage::Distribution,
                predictor_evals,
                hash_accesses,
                // The controller re-calculates addresses with N = 1; the N
                // AF taps' address work is discarded.
                wasted_addr_taps: n,
            };
        }

        PolicyDecision {
            mode: FilterMode::Anisotropic,
            stage: DecisionStage::KeptAf,
            predictor_evals,
            hash_accesses,
            wasted_addr_taps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patu_gmath::Vec2;

    fn footprint(n_texels: f32) -> Footprint {
        Footprint::from_derivatives(
            Vec2::new(n_texels / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            16,
        )
    }

    fn set(base: u64) -> Vec<TexelAddress> {
        (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
    }

    /// N distinct tap address sets: worst-case distribution (Txds = 0).
    fn distinct_sets(n: u32) -> Vec<Vec<TexelAddress>> {
        (0..u64::from(n)).map(|i| set(i * 0x100)).collect()
    }

    /// N identical tap sets: perfect concentration (Txds = 1).
    fn shared_sets(n: u32) -> Vec<Vec<TexelAddress>> {
        (0..n).map(|_| set(0)).collect()
    }

    #[test]
    fn baseline_always_af() {
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Baseline.decide(&footprint(8.0), &mut t, Vec::new);
        assert_eq!(d.mode, FilterMode::Anisotropic);
        assert_eq!(d.stage, DecisionStage::Fixed);
        assert!(!d.is_approximated());
    }

    #[test]
    fn noaf_always_trilinear() {
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::NoAf.decide(&footprint(8.0), &mut t, Vec::new);
        assert_eq!(d.mode, FilterMode::TrilinearTfLod);
        assert!(d.is_approximated());
    }

    #[test]
    fn isotropic_pixels_never_need_af() {
        let mut t = TexelAddressTable::new();
        for policy in [
            FilterPolicy::Baseline,
            FilterPolicy::NoAf,
            FilterPolicy::Patu { threshold: 0.4 },
        ] {
            let d = policy.decide(&footprint(1.0), &mut t, Vec::new);
            assert_eq!(d.stage, DecisionStage::Isotropic, "{policy:?}");
            assert_eq!(d.mode, FilterMode::TrilinearTfLod);
        }
    }

    #[test]
    fn stage1_approves_small_n() {
        // N=2: AF_SSIM = 0.64 > 0.4 -> approximate at stage 1.
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: 0.4 }.decide(&footprint(2.0), &mut t, || {
            panic!("stage 2 must not run when stage 1 approves")
        });
        assert_eq!(d.stage, DecisionStage::SampleArea);
        assert_eq!(d.mode, FilterMode::TrilinearAfLod);
        assert_eq!(d.hash_accesses, 0);
        assert_eq!(d.predictor_evals, 1);
    }

    #[test]
    fn stage2_approves_concentrated_taps() {
        // N=8: AF_SSIM(N) ≈ 0.061 < 0.4 -> stage 2; all taps share texels.
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: 0.4 }
            .decide(&footprint(8.0), &mut t, || shared_sets(8));
        assert_eq!(d.stage, DecisionStage::Distribution);
        assert_eq!(d.mode, FilterMode::TrilinearAfLod);
        assert_eq!(d.hash_accesses, 8);
        assert_eq!(d.wasted_addr_taps, 8);
        assert_eq!(d.predictor_evals, 2);
    }

    #[test]
    fn stage2_keeps_af_for_spread_taps() {
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: 0.4 }
            .decide(&footprint(8.0), &mut t, || distinct_sets(8));
        assert_eq!(d.stage, DecisionStage::KeptAf);
        assert_eq!(d.mode, FilterMode::Anisotropic);
        assert_eq!(d.wasted_addr_taps, 0);
    }

    #[test]
    fn sample_area_policy_skips_stage2() {
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::SampleArea { threshold: 0.4 }.decide(&footprint(8.0), &mut t, || {
            panic!("SampleArea policy has no distribution stage")
        });
        assert_eq!(d.stage, DecisionStage::KeptAf);
        assert_eq!(d.mode, FilterMode::Anisotropic);
    }

    #[test]
    fn txds_policy_demotes_to_tf_lod() {
        let mut t = TexelAddressTable::new();
        let d =
            FilterPolicy::SampleAreaTxds { threshold: 0.4 }
                .decide(&footprint(8.0), &mut t, || shared_sets(8));
        assert_eq!(
            d.mode,
            FilterMode::TrilinearTfLod,
            "non-PATU demotion suffers the LOD shift"
        );
    }

    #[test]
    fn threshold_zero_approximates_everything() {
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: 0.0 }.decide(&footprint(16.0), &mut t, Vec::new);
        assert!(d.is_approximated(), "AF_SSIM(16) > 0 always");
        assert_eq!(d.stage, DecisionStage::SampleArea);
    }

    #[test]
    fn threshold_one_keeps_af_even_when_concentrated_differs() {
        // At threshold 1.0 only exact-1.0 predictions approve; distinct sets
        // (Txds = 0) certainly keep AF.
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: 1.0 }
            .decide(&footprint(8.0), &mut t, || distinct_sets(8));
        assert_eq!(d.mode, FilterMode::Anisotropic);
    }

    #[test]
    fn out_of_range_threshold_clamps() {
        // An adversarial threshold no longer panics: 1.5 behaves like 1.0.
        let mut t = TexelAddressTable::new();
        let wild = FilterPolicy::Patu { threshold: 1.5 }
            .decide(&footprint(8.0), &mut t, || distinct_sets(8));
        let clamped = FilterPolicy::Patu { threshold: 1.0 }
            .decide(&footprint(8.0), &mut t, || distinct_sets(8));
        assert_eq!(wild, clamped);
        assert!(FilterPolicy::Patu { threshold: 1.5 }.validate().is_err());
        assert!(FilterPolicy::Patu { threshold: 0.4 }.validate().is_ok());
    }

    #[test]
    fn nan_threshold_falls_back_to_full_af() {
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu {
            threshold: f64::NAN,
        }
        .decide(&footprint(4.0), &mut t, Vec::new);
        assert_eq!(d.stage, DecisionStage::Fallback);
        assert_eq!(d.mode, FilterMode::Anisotropic, "fallback is quality-safe");
        assert!(FilterPolicy::Patu {
            threshold: f64::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn poisoned_predictor_falls_back_and_counts() {
        use patu_gpu::{FaultConfig, FaultInjector};
        let cfg = FaultConfig {
            predictor_nan_rate: 1.0,
            ..FaultConfig::disabled()
        };
        let mut faults = FaultInjector::new(cfg);
        let mut t = TexelAddressTable::new();
        let d = FilterPolicy::Patu { threshold: 0.4 }.decide_with(
            &footprint(2.0),
            &mut t,
            &mut faults,
            Vec::new,
        );
        assert_eq!(d.stage, DecisionStage::Fallback);
        assert_eq!(d.mode, FilterMode::Anisotropic);
        assert_eq!(faults.counts().predictor_poisons, 1);
        assert_eq!(faults.counts().fallbacks, 1);
    }

    #[test]
    fn corrupted_table_is_detected_by_parity() {
        use patu_gpu::{FaultConfig, FaultInjector};
        let cfg = FaultConfig {
            table_corrupt_rate: 1.0,
            ..FaultConfig::disabled()
        };
        let mut faults = FaultInjector::new(cfg);
        let mut t = TexelAddressTable::new();
        // N=8 passes stage 1 (AF_SSIM ≈ 0.061 < 0.4) and reaches the table.
        let d = FilterPolicy::Patu { threshold: 0.4 }.decide_with(
            &footprint(8.0),
            &mut t,
            &mut faults,
            || shared_sets(8),
        );
        assert_eq!(d.stage, DecisionStage::Fallback);
        assert_eq!(d.hash_accesses, 8, "the tap stream still ran");
        assert_eq!(faults.counts().table_corruptions, 1);
        assert_eq!(faults.counts().fallbacks, 1);
    }

    #[test]
    fn disabled_injector_matches_plain_decide() {
        use patu_gpu::FaultInjector;
        let policy = FilterPolicy::Patu { threshold: 0.4 };
        for n in [1u32, 2, 8, 16] {
            let mut t1 = TexelAddressTable::new();
            let mut t2 = TexelAddressTable::new();
            let mut calm = FaultInjector::disabled();
            let fp = footprint(n as f32);
            let a = policy.decide(&fp, &mut t1, || shared_sets(n));
            let b = policy.decide_with(&fp, &mut t2, &mut calm, || shared_sets(n));
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn policy_parses_from_strings() {
        use std::str::FromStr;
        assert_eq!(
            FilterPolicy::from_str("baseline").unwrap(),
            FilterPolicy::Baseline
        );
        assert_eq!(FilterPolicy::from_str("noaf").unwrap(), FilterPolicy::NoAf);
        assert_eq!(
            FilterPolicy::from_str("patu").unwrap(),
            FilterPolicy::Patu { threshold: 0.4 },
            "default threshold is the paper's average BP"
        );
        assert_eq!(
            FilterPolicy::from_str("patu@0.8").unwrap(),
            FilterPolicy::Patu { threshold: 0.8 }
        );
        assert_eq!(
            FilterPolicy::from_str("sample-area-txds@0.2").unwrap(),
            FilterPolicy::SampleAreaTxds { threshold: 0.2 }
        );
    }

    #[test]
    fn policy_parse_errors() {
        use std::str::FromStr;
        assert!(FilterPolicy::from_str("bilinear").is_err());
        assert!(FilterPolicy::from_str("patu@1.5").is_err());
        assert!(FilterPolicy::from_str("patu@nan").is_err());
        let msg = FilterPolicy::from_str("xyz").unwrap_err().to_string();
        assert!(msg.contains("xyz"));
    }

    #[test]
    fn govern_snaps_onto_the_step_grid() {
        let p = FilterPolicy::Patu { threshold: 0.4 };
        assert_eq!(p.govern(0.437, 20), FilterPolicy::Patu { threshold: 0.45 });
        assert_eq!(p.govern(0.42, 20), FilterPolicy::Patu { threshold: 0.4 });
        assert_eq!(p.govern(0.0, 20), FilterPolicy::Patu { threshold: 0.0 });
        assert_eq!(p.govern(1.0, 20), FilterPolicy::Patu { threshold: 1.0 });
        // Two controller states in the same cell produce the same policy —
        // the property that makes governed render caches hit.
        assert_eq!(p.govern(0.4249, 20), p.govern(0.3751, 20));
    }

    #[test]
    fn govern_sanitizes_adversarial_inputs() {
        let p = FilterPolicy::SampleArea { threshold: 0.4 };
        assert_eq!(
            p.govern(f64::NAN, 20),
            FilterPolicy::SampleArea { threshold: 1.0 },
            "non-finite falls to the quality ceiling"
        );
        assert_eq!(
            p.govern(f64::NEG_INFINITY, 20),
            FilterPolicy::SampleArea { threshold: 1.0 }
        );
        assert_eq!(
            p.govern(7.0, 20),
            FilterPolicy::SampleArea { threshold: 1.0 },
            "out-of-range clamps"
        );
        assert_eq!(
            p.govern(-3.0, 20),
            FilterPolicy::SampleArea { threshold: 0.0 }
        );
        assert_eq!(
            p.govern(0.7, 0),
            FilterPolicy::SampleArea { threshold: 1.0 },
            "zero steps sanitizes to a single-interval grid"
        );
    }

    #[test]
    fn govern_leaves_fixed_policies_alone() {
        assert_eq!(
            FilterPolicy::Baseline.govern(0.3, 20),
            FilterPolicy::Baseline
        );
        assert_eq!(FilterPolicy::NoAf.govern(0.3, 20), FilterPolicy::NoAf);
    }

    #[test]
    fn hash_accesses_accumulate_in_table() {
        let mut t = TexelAddressTable::new();
        let policy = FilterPolicy::Patu { threshold: 0.4 };
        let _ = policy.decide(&footprint(8.0), &mut t, || shared_sets(8));
        let _ = policy.decide(&footprint(8.0), &mut t, || distinct_sets(8));
        assert_eq!(t.accesses(), 16, "cumulative across pixels");
    }
}
