//! Oracle similarity: the ground truth the runtime predictors approximate.
//!
//! The paper's Eq. (4) defines the similarity degree `μ∇ = Y / X` between a
//! pixel's AF color `Y` and its TF color `X`; Eq. (5) turns it into the
//! pixel's true AF-SSIM. The runtime predictors (AF-SSIM(N), AF-SSIM(Txds))
//! exist precisely because `μ∇` needs the *completed* AF filtering. This
//! module computes the oracle after the fact, so experiments can measure how
//! well each predictor tracks it (precision/recall of the approximate/keep
//! decision) — the validation behind the paper's Sec. IV design.

use crate::afssim::af_ssim_mu;
use patu_texture::Rgba8;

/// The similarity degree `μ∇ = Y / X` from the actually-filtered colors,
/// computed on luma. When the TF color is black (X ≈ 0), the ratio is
/// defined as 1 if both are black (identical) and a large value otherwise.
pub fn oracle_mu(af_color: Rgba8, tf_color: Rgba8) -> f64 {
    let y = f64::from(af_color.luma());
    let x = f64::from(tf_color.luma());
    if x < 1.0 {
        if y < 1.0 {
            1.0
        } else {
            y.max(16.0)
        }
    } else {
        y / x
    }
}

/// The pixel's true AF-SSIM per Eq. (5), from the actually-filtered colors.
pub fn oracle_af_ssim(af_color: Rgba8, tf_color: Rgba8) -> f64 {
    af_ssim_mu(oracle_mu(af_color, tf_color))
}

/// A confusion matrix comparing a runtime predictor's approximate/keep
/// decisions against the oracle's.
///
/// "Positive" means *approximate* (the pixel does not need AF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictionAccuracy {
    /// Predictor approximated, oracle agreed.
    pub true_positive: u64,
    /// Predictor approximated, oracle wanted AF (quality risk).
    pub false_positive: u64,
    /// Predictor kept AF, oracle says it was unnecessary (lost speedup).
    pub false_negative: u64,
    /// Predictor kept AF, oracle agreed.
    pub true_negative: u64,
}

impl PredictionAccuracy {
    /// Creates an empty matrix.
    pub fn new() -> PredictionAccuracy {
        PredictionAccuracy::default()
    }

    /// Records one pixel's outcome.
    pub fn record(&mut self, predicted_approx: bool, oracle_approx: bool) {
        match (predicted_approx, oracle_approx) {
            (true, true) => self.true_positive += 1,
            (true, false) => self.false_positive += 1,
            (false, true) => self.false_negative += 1,
            (false, false) => self.true_negative += 1,
        }
    }

    /// Total pixels recorded.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_positive + self.false_negative + self.true_negative
    }

    /// Fraction of decisions agreeing with the oracle.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / self.total() as f64
    }

    /// Of the pixels the predictor approximated, the fraction the oracle
    /// agrees did not need AF (quality safety).
    pub fn precision(&self) -> f64 {
        let p = self.true_positive + self.false_positive;
        if p == 0 {
            0.0
        } else {
            self.true_positive as f64 / p as f64
        }
    }

    /// Of the pixels the oracle says did not need AF, the fraction the
    /// predictor caught (captured speedup opportunity).
    pub fn recall(&self) -> f64 {
        let p = self.true_positive + self.false_negative;
        if p == 0 {
            0.0
        } else {
            self.true_positive as f64 / p as f64
        }
    }

    /// Merges counters from another matrix.
    pub fn accumulate(&mut self, other: &PredictionAccuracy) {
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.false_negative += other.false_negative;
        self.true_negative += other.true_negative;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_colors_perfect_similarity() {
        let c = Rgba8::rgb(120, 80, 60);
        assert!((oracle_mu(c, c) - 1.0).abs() < 1e-6);
        assert!(oracle_af_ssim(c, c) > 0.99);
    }

    #[test]
    fn both_black_is_similar() {
        assert_eq!(oracle_mu(Rgba8::BLACK, Rgba8::BLACK), 1.0);
    }

    #[test]
    fn black_vs_bright_is_dissimilar() {
        let s = oracle_af_ssim(Rgba8::WHITE, Rgba8::BLACK);
        assert!(s < 0.05, "got {s}");
    }

    #[test]
    fn similarity_decreases_with_ratio() {
        let base = Rgba8::gray(100);
        let near = oracle_af_ssim(Rgba8::gray(110), base);
        let far = oracle_af_ssim(Rgba8::gray(200), base);
        assert!(near > far);
    }

    #[test]
    fn oracle_symmetric_under_swap() {
        let a = Rgba8::gray(80);
        let b = Rgba8::gray(160);
        let ab = oracle_af_ssim(a, b);
        let ba = oracle_af_ssim(b, a);
        assert!((ab - ba).abs() < 1e-3, "{ab} vs {ba}");
    }

    #[test]
    fn confusion_matrix_metrics() {
        let mut m = PredictionAccuracy::new();
        // 3 TP, 1 FP, 1 FN, 5 TN.
        for _ in 0..3 {
            m.record(true, true);
        }
        m.record(true, false);
        m.record(false, true);
        for _ in 0..5 {
            m.record(false, false);
        }
        assert_eq!(m.total(), 10);
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.recall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_safe() {
        let m = PredictionAccuracy::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
    }

    #[test]
    fn accumulate_merges() {
        let mut a = PredictionAccuracy::new();
        a.record(true, true);
        let mut b = PredictionAccuracy::new();
        b.record(false, false);
        a.accumulate(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.accuracy(), 1.0);
    }
}
