//! Instrumentation the paper reports: texel-set sharing (Fig. 12),
//! quad prediction divergence (Sec. V-C(1)) and approximation coverage.

use crate::policy::{DecisionStage, PolicyDecision};
use patu_texture::TexelAddress;

/// Measures how often AF's input samples share their texel set with the TF
/// sample — the paper's Fig. 12, where an average of 62 % of AF taps share
/// texels with TF during 3D rendering.
///
/// The TF-equivalent tap is the center tap (`X_0` in Eq. 3), which shares
/// its sample center with the TF sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharingStats {
    /// Total AF trilinear taps observed.
    pub taps_total: u64,
    /// Taps whose texel address set equals the center tap's.
    pub taps_shared: u64,
}

impl SharingStats {
    /// Creates empty counters.
    pub fn new() -> SharingStats {
        SharingStats::default()
    }

    /// Records one AF request's taps. `tap_sets[0]` must be the center tap.
    /// Single-tap requests are ignored (there is nothing to share with).
    pub fn record(&mut self, tap_sets: &[Vec<TexelAddress>]) {
        if tap_sets.len() < 2 {
            return;
        }
        let mut center: Vec<TexelAddress> = tap_sets[0].clone();
        center.sort_unstable();
        center.dedup();
        for tap in &tap_sets[1..] {
            let mut key: Vec<TexelAddress> = tap.clone();
            key.sort_unstable();
            key.dedup();
            self.taps_total += 1;
            if key == center {
                self.taps_shared += 1;
            }
        }
    }

    /// Fixed-width, allocation-free form of [`SharingStats::record`] for the
    /// batched fragment path: each tap's set is the 4 TF-level bilinear
    /// addresses the hash table compares at, as a stack array. Produces
    /// exactly the counters `record` would for the equivalent `Vec` sets.
    pub fn record_fixed(&mut self, tap_sets: &[[TexelAddress; 4]]) {
        fn normalize(set: &mut [TexelAddress; 4]) -> usize {
            set.sort_unstable();
            let mut len = 0;
            for i in 0..set.len() {
                if len == 0 || set[i] != set[len - 1] {
                    set[len] = set[i];
                    len += 1;
                }
            }
            len
        }
        if tap_sets.len() < 2 {
            return;
        }
        let mut center = tap_sets[0];
        let center_len = normalize(&mut center);
        for tap in &tap_sets[1..] {
            let mut key = *tap;
            let key_len = normalize(&mut key);
            self.taps_total += 1;
            if key[..key_len] == center[..center_len] {
                self.taps_shared += 1;
            }
        }
    }

    /// Fraction of non-center AF taps sharing the center's texel set
    /// (0 when nothing was recorded).
    pub fn sharing_fraction(&self) -> f64 {
        if self.taps_total == 0 {
            0.0
        } else {
            self.taps_shared as f64 / self.taps_total as f64
        }
    }

    /// Merges counters from another instance.
    pub fn accumulate(&mut self, other: &SharingStats) {
        self.taps_total += other.taps_total;
        self.taps_shared += other.taps_shared;
    }
}

/// Tracks prediction divergence within 2×2 pixel quads (Sec. V-C(1)): quads
/// whose four pixels are not all filtered the same way. The paper measures
/// an average of 1 % (up to 1.6 %) divergent quads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DivergenceStats {
    /// Quads with at least two pixels observed.
    pub quads: u64,
    /// Quads whose pixels made different approximate/keep decisions.
    pub divergent_quads: u64,
}

impl DivergenceStats {
    /// Creates empty counters.
    pub fn new() -> DivergenceStats {
        DivergenceStats::default()
    }

    /// Records one quad: `fragments` covered fragments of which
    /// `approximated` were demoted. Divergence is a mixed quad
    /// (`0 < approximated < fragments`) — the "any outcome differs from the
    /// first" condition without materializing a per-pixel outcome list; the
    /// renderer's flat per-tile quad buffer feeds this directly. Quads with
    /// fewer than two fragments are skipped — divergence is undefined for
    /// them.
    pub fn record_quad_counts(&mut self, fragments: u64, approximated: u64) {
        if fragments < 2 {
            return;
        }
        self.quads += 1;
        if approximated != 0 && approximated != fragments {
            self.divergent_quads += 1;
        }
    }

    /// Fraction of divergent quads (0 when nothing was recorded).
    pub fn divergence_fraction(&self) -> f64 {
        if self.quads == 0 {
            0.0
        } else {
            self.divergent_quads as f64 / self.quads as f64
        }
    }

    /// Merges counters from another instance.
    pub fn accumulate(&mut self, other: &DivergenceStats) {
        self.quads += other.quads;
        self.divergent_quads += other.divergent_quads;
    }
}

/// Approximation coverage: how many pixels each decision stage handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproxStats {
    /// Pixels decided.
    pub pixels: u64,
    /// Pixels with isotropic footprints (never AF candidates).
    pub isotropic: u64,
    /// Pixels approximated by the sample-area stage.
    pub stage1_approx: u64,
    /// Pixels approximated by the distribution stage.
    pub stage2_approx: u64,
    /// Pixels that kept full AF.
    pub kept_af: u64,
    /// Pixels handled by non-predictive (fixed) policies.
    pub fixed: u64,
    /// Pixels that degraded to full AF because prediction state could not
    /// be trusted (fault-injection fallbacks).
    pub fallback: u64,
}

impl ApproxStats {
    /// Creates empty counters.
    pub fn new() -> ApproxStats {
        ApproxStats::default()
    }

    /// Records one decision.
    pub fn record(&mut self, decision: &PolicyDecision) {
        self.pixels += 1;
        match decision.stage {
            DecisionStage::Fixed => self.fixed += 1,
            DecisionStage::Isotropic => self.isotropic += 1,
            DecisionStage::SampleArea => self.stage1_approx += 1,
            DecisionStage::Distribution => self.stage2_approx += 1,
            DecisionStage::KeptAf => self.kept_af += 1,
            DecisionStage::Fallback => self.fallback += 1,
        }
    }

    /// Fraction of AF-candidate pixels (anisotropic footprints under a
    /// predictive policy) that were approximated. Fallback pixels count as
    /// candidates that kept AF.
    pub fn approximated_fraction(&self) -> f64 {
        let candidates = self.stage1_approx + self.stage2_approx + self.kept_af + self.fallback;
        if candidates == 0 {
            0.0
        } else {
            (self.stage1_approx + self.stage2_approx) as f64 / candidates as f64
        }
    }

    /// Merges counters from another instance.
    pub fn accumulate(&mut self, other: &ApproxStats) {
        self.pixels += other.pixels;
        self.isotropic += other.isotropic;
        self.stage1_approx += other.stage1_approx;
        self.stage2_approx += other.stage2_approx;
        self.kept_af += other.kept_af;
        self.fixed += other.fixed;
        self.fallback += other.fallback;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FilterMode;

    fn set(base: u64) -> Vec<TexelAddress> {
        (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
    }

    #[test]
    fn sharing_counts_matches() {
        let mut s = SharingStats::new();
        // Center + 2 sharing + 2 distinct.
        s.record(&[set(0), set(0), set(0), set(0x100), set(0x200)]);
        assert_eq!(s.taps_total, 4);
        assert_eq!(s.taps_shared, 2);
        assert!((s.sharing_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharing_ignores_single_tap() {
        let mut s = SharingStats::new();
        s.record(&[set(0)]);
        assert_eq!(s.taps_total, 0);
        assert_eq!(s.sharing_fraction(), 0.0);
    }

    #[test]
    fn sharing_order_insensitive() {
        let mut s = SharingStats::new();
        let mut shuffled = set(0);
        shuffled.reverse();
        s.record(&[set(0), shuffled]);
        assert_eq!(s.taps_shared, 1);
    }

    #[test]
    fn sharing_accumulates() {
        let mut a = SharingStats::new();
        a.record(&[set(0), set(0)]);
        let mut b = SharingStats::new();
        b.record(&[set(0), set(0x100)]);
        a.accumulate(&b);
        assert_eq!(a.taps_total, 2);
        assert_eq!(a.taps_shared, 1);
    }

    #[test]
    fn divergence_uniform_quad_not_divergent() {
        let mut d = DivergenceStats::new();
        d.record_quad_counts(4, 4);
        d.record_quad_counts(4, 0);
        assert_eq!(d.quads, 2);
        assert_eq!(d.divergent_quads, 0);
    }

    #[test]
    fn divergence_mixed_quad_divergent() {
        let mut d = DivergenceStats::new();
        d.record_quad_counts(4, 3);
        assert_eq!(d.divergent_quads, 1);
        assert_eq!(d.divergence_fraction(), 1.0);
    }

    #[test]
    fn divergence_counts_match_outcome_lists() {
        // The count form agrees with the definition over explicit outcome
        // lists: divergent iff any outcome differs from the first.
        let mut by_count = DivergenceStats::new();
        let quads: [&[bool]; 5] = [
            &[true, true, true, true],
            &[false, false],
            &[true, false, true],
            &[false],
            &[false, true, false, false],
        ];
        let mut expect_quads = 0;
        let mut expect_divergent = 0;
        for q in quads {
            let approx = q.iter().filter(|&&a| a).count() as u64;
            by_count.record_quad_counts(q.len() as u64, approx);
            if q.len() >= 2 {
                expect_quads += 1;
                expect_divergent += u64::from(q.iter().any(|&a| a != q[0]));
            }
        }
        assert_eq!(by_count.quads, expect_quads);
        assert_eq!(by_count.divergent_quads, expect_divergent);
        assert_eq!(by_count.quads, 4);
        assert_eq!(by_count.divergent_quads, 2);
    }

    #[test]
    fn divergence_skips_single_pixel_quads() {
        let mut d = DivergenceStats::new();
        d.record_quad_counts(1, 1);
        assert_eq!(d.quads, 0);
    }

    #[test]
    fn sharing_fixed_matches_vec_form() {
        // The batched path's stack-array recorder must agree with the
        // allocating form on every sharing pattern, including unsorted and
        // duplicate-bearing sets.
        let quad = |base: u64| -> [TexelAddress; 4] {
            [
                TexelAddress::new(base + 12),
                TexelAddress::new(base),
                TexelAddress::new(base + 4),
                TexelAddress::new(base + 12),
            ]
        };
        let patterns: [&[u64]; 4] = [
            &[0, 0, 0x100, 0],
            &[0, 0x100, 0x200],
            &[0x40],
            &[0, 0, 0, 0, 0],
        ];
        for bases in patterns {
            let mut by_vec = SharingStats::new();
            let mut by_fixed = SharingStats::new();
            let sets: Vec<Vec<TexelAddress>> = bases.iter().map(|&b| quad(b).to_vec()).collect();
            let fixed: Vec<[TexelAddress; 4]> = bases.iter().map(|&b| quad(b)).collect();
            by_vec.record(&sets);
            by_fixed.record_fixed(&fixed);
            assert_eq!(by_vec, by_fixed, "bases {bases:?}");
        }
    }

    #[test]
    fn approx_stats_by_stage() {
        let mut a = ApproxStats::new();
        let mk = |stage| PolicyDecision {
            mode: FilterMode::TrilinearAfLod,
            stage,
            predictor_evals: 0,
            hash_accesses: 0,
            wasted_addr_taps: 0,
        };
        a.record(&mk(DecisionStage::SampleArea));
        a.record(&mk(DecisionStage::Distribution));
        a.record(&PolicyDecision {
            mode: FilterMode::Anisotropic,
            stage: DecisionStage::KeptAf,
            predictor_evals: 2,
            hash_accesses: 8,
            wasted_addr_taps: 0,
        });
        a.record(&mk(DecisionStage::Isotropic));
        assert_eq!(a.pixels, 4);
        assert_eq!(a.stage1_approx, 1);
        assert_eq!(a.stage2_approx, 1);
        assert_eq!(a.kept_af, 1);
        assert_eq!(a.isotropic, 1);
        assert!((a.approximated_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fallback_pixels_counted_as_kept_candidates() {
        let mut a = ApproxStats::new();
        a.record(&PolicyDecision {
            mode: FilterMode::TrilinearAfLod,
            stage: DecisionStage::SampleArea,
            predictor_evals: 1,
            hash_accesses: 0,
            wasted_addr_taps: 0,
        });
        a.record(&PolicyDecision {
            mode: FilterMode::Anisotropic,
            stage: DecisionStage::Fallback,
            predictor_evals: 1,
            hash_accesses: 0,
            wasted_addr_taps: 0,
        });
        assert_eq!(a.fallback, 1);
        assert!((a.approximated_fraction() - 0.5).abs() < 1e-12);
        let mut b = ApproxStats::new();
        b.accumulate(&a);
        assert_eq!(b.fallback, 1);
    }

    #[test]
    fn approx_fraction_zero_without_candidates() {
        assert_eq!(ApproxStats::new().approximated_fraction(), 0.0);
    }
}
