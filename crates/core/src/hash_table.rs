//! The runtime texel-address hash table — PATU component ② (paper Sec. V-A).
//!
//! A 16-entry fully-associative buffer, one entry per distinct *texel address
//! set* observed among a pixel's trilinear taps, with a saturating 4-bit
//! count tag per entry. After all of a pixel's tap addresses stream through,
//! the count tags form the probability vector `P` of Eq. (8): how AF's
//! samples distribute over shared texel sets.
//!
//! The hardware table stores eight 32-bit addresses per entry plus the 4-bit
//! tag (260 bits/entry, ≈2 KB per texture unit across the 4 quad pipelines);
//! this model stores the same information and counts every access for the
//! energy model.

use patu_texture::TexelAddress;

/// Maximum entries: the max AF level of the modeled texture unit (16).
pub const TABLE_ENTRIES: usize = 16;

/// Saturation value of the 4-bit count tag.
const COUNT_TAG_MAX: u8 = 15;

/// One table entry: a tap's texel address set and its occurrence count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    /// The tap's texel addresses, sorted for order-independent comparison.
    addresses: Vec<TexelAddress>,
    /// Saturating 4-bit occurrence count.
    count: u8,
}

/// The texel-address hash table for one pixel's prediction.
///
/// ```
/// use patu_core::TexelAddressTable;
/// use patu_texture::TexelAddress;
///
/// let mut table = TexelAddressTable::new();
/// let set_a: Vec<_> = (0..8).map(|i| TexelAddress::new(i * 4)).collect();
/// let set_b: Vec<_> = (8..16).map(|i| TexelAddress::new(i * 4)).collect();
/// table.insert(&set_a);
/// table.insert(&set_a); // shared texels: count tag bumps
/// table.insert(&set_b);
/// assert_eq!(table.counts(), vec![2, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct TexelAddressTable {
    entries: Vec<Entry>,
    capacity: usize,
    accesses: u64,
    overflowed: bool,
    parity_error: bool,
    /// Key vectors retired by [`TexelAddressTable::reset`] and recycled by
    /// the next misses, so steady-state per-pixel operation stops allocating.
    /// Pure scratch: never observable, excluded from equality.
    spare: Vec<Vec<TexelAddress>>,
}

impl PartialEq for TexelAddressTable {
    fn eq(&self, other: &TexelAddressTable) -> bool {
        self.entries == other.entries
            && self.capacity == other.capacity
            && self.accesses == other.accesses
            && self.overflowed == other.overflowed
            && self.parity_error == other.parity_error
    }
}

impl Eq for TexelAddressTable {}

impl Default for TexelAddressTable {
    fn default() -> TexelAddressTable {
        TexelAddressTable::new()
    }
}

impl TexelAddressTable {
    /// Creates an empty table with the paper's 16 entries.
    pub fn new() -> TexelAddressTable {
        TexelAddressTable::with_capacity(TABLE_ENTRIES)
    }

    /// Creates an empty table with a custom entry count (for the capacity
    /// ablation study; the paper's design point is 16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. Use
    /// [`TexelAddressTable::try_with_capacity`] for a non-panicking variant.
    pub fn with_capacity(capacity: usize) -> TexelAddressTable {
        assert!(capacity > 0, "hash table needs at least one entry");
        TexelAddressTable {
            entries: Vec::new(),
            capacity,
            accesses: 0,
            overflowed: false,
            parity_error: false,
            spare: Vec::new(),
        }
    }

    /// Like [`TexelAddressTable::with_capacity`] but reports a zero capacity
    /// as a typed error instead of panicking.
    pub fn try_with_capacity(capacity: usize) -> Result<TexelAddressTable, crate::PatuError> {
        if capacity == 0 {
            return Err(crate::PatuError::InvalidTableCapacity);
        }
        Ok(TexelAddressTable::with_capacity(capacity))
    }

    /// The table's entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Streams one trilinear tap's texel address set through the table:
    /// a matching entry's count tag increments (saturating at 15); otherwise
    /// the set occupies the first available entry. Returns `true` if the set
    /// matched an existing entry.
    ///
    /// If all 16 entries are in use and the set matches none, the insert is
    /// dropped and the table is marked [`TexelAddressTable::overflowed`] —
    /// this cannot happen for well-formed AF requests, whose tap count never
    /// exceeds the max AF level of 16.
    pub fn insert(&mut self, addresses: &[TexelAddress]) -> bool {
        self.accesses += 1;
        // Sort + dedup the key on the stack for hardware-sized taps (a
        // trilinear tap has 8 addresses; the hardware comparator width is
        // 16). Only oversized test inputs take the heap path.
        if addresses.len() <= TABLE_ENTRIES {
            let mut buf = [TexelAddress::default(); TABLE_ENTRIES];
            let buf = &mut buf[..addresses.len()];
            buf.copy_from_slice(addresses);
            buf.sort_unstable();
            let mut len = 0;
            for i in 0..buf.len() {
                if len == 0 || buf[i] != buf[len - 1] {
                    buf[len] = buf[i];
                    len += 1;
                }
            }
            self.insert_key(&buf[..len])
        } else {
            let mut key = addresses.to_vec();
            key.sort_unstable();
            key.dedup();
            self.insert_key(&key)
        }
    }

    /// Inserts an already-normalized (sorted, deduplicated) key.
    fn insert_key(&mut self, key: &[TexelAddress]) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.addresses == key) {
            e.count = (e.count + 1).min(COUNT_TAG_MAX);
            return true;
        }
        if self.entries.len() < self.capacity {
            let mut addresses = self.spare.pop().unwrap_or_default();
            addresses.clear();
            addresses.extend_from_slice(key);
            self.entries.push(Entry {
                addresses,
                count: 1,
            });
        } else {
            self.overflowed = true;
        }
        false
    }

    /// The per-entry occurrence counts, in insertion order.
    pub fn counts(&self) -> Vec<u8> {
        self.entries.iter().map(|e| e.count).collect()
    }

    /// The probability vector `P` of Eq. (8): counts normalized by the total
    /// number of taps streamed in. Empty when nothing was inserted.
    pub fn probability_vector(&self) -> Vec<f64> {
        let total: u64 = self.entries.iter().map(|e| u64::from(e.count)).sum();
        if total == 0 {
            return Vec::new();
        }
        self.entries
            .iter()
            .map(|e| f64::from(e.count) / total as f64)
            .collect()
    }

    /// Number of distinct texel sets observed.
    pub fn distinct_sets(&self) -> usize {
        self.entries.len()
    }

    /// Total lookups performed (for the energy model's access count).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Whether an insert was dropped because the table was full.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Injects a soft error: flips bit `bit & 3` of one occupied entry's
    /// 4-bit count tag (selected by `entry_selector` modulo the occupancy)
    /// and raises the parity flag the modeled per-entry parity bit would.
    /// A no-op on an empty table (there is no state to corrupt).
    pub fn corrupt_count(&mut self, entry_selector: usize, bit: u8) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let idx = entry_selector % self.entries.len();
        self.entries[idx].count ^= 1 << (bit & 3);
        self.parity_error = true;
        true
    }

    /// Whether a soft error was detected since the last reset. Consumers
    /// must treat the count tags — and anything derived from them, like
    /// [`TexelAddressTable::probability_vector`] — as untrustworthy and
    /// fall back to full AF for the affected pixel.
    pub fn parity_error(&self) -> bool {
        self.parity_error
    }

    /// Clears the table for the next pixel (the paper resets it per request).
    /// The access counter is preserved — it is cumulative over a frame.
    /// Retired entries keep their key buffers in the recycle pool, so a
    /// steady-state reset→insert cycle performs no heap allocation.
    pub fn reset(&mut self) {
        for e in self.entries.drain(..) {
            self.spare.push(e.addresses);
        }
        self.overflowed = false;
        self.parity_error = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(base: u64) -> Vec<TexelAddress> {
        (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
    }

    #[test]
    fn first_insert_misses_second_hits() {
        let mut t = TexelAddressTable::new();
        assert!(!t.insert(&set(0)));
        assert!(t.insert(&set(0)));
        assert_eq!(t.counts(), vec![2]);
    }

    #[test]
    fn order_of_addresses_within_set_is_irrelevant() {
        let mut t = TexelAddressTable::new();
        let mut shuffled = set(0);
        shuffled.reverse();
        t.insert(&set(0));
        assert!(t.insert(&shuffled), "same set in different order matches");
    }

    #[test]
    fn distinct_sets_get_distinct_entries() {
        let mut t = TexelAddressTable::new();
        t.insert(&set(0));
        t.insert(&set(0x100));
        t.insert(&set(0x200));
        assert_eq!(t.distinct_sets(), 3);
        assert_eq!(t.counts(), vec![1, 1, 1]);
    }

    #[test]
    fn paper_example_probability_vector() {
        // Fig. 11: 5 taps; 3 share one set, the other two are distinct.
        let mut t = TexelAddressTable::new();
        t.insert(&set(0));
        t.insert(&set(0));
        t.insert(&set(0));
        t.insert(&set(0x100));
        t.insert(&set(0x200));
        let p = t.probability_vector();
        assert_eq!(p.len(), 3);
        assert!((p[0] - 0.6).abs() < 1e-12);
        assert!((p[1] - 0.2).abs() < 1e-12);
        assert!((p[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn probability_vector_sums_to_one() {
        let mut t = TexelAddressTable::new();
        for i in 0..7u64 {
            t.insert(&set((i % 3) * 0x100));
        }
        let sum: f64 = t.probability_vector().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_properties() {
        let t = TexelAddressTable::new();
        assert!(t.probability_vector().is_empty());
        assert_eq!(t.distinct_sets(), 0);
        assert!(!t.overflowed());
    }

    #[test]
    fn count_tag_saturates_at_15() {
        let mut t = TexelAddressTable::new();
        for _ in 0..20 {
            t.insert(&set(0));
        }
        assert_eq!(t.counts(), vec![15]);
    }

    #[test]
    fn capacity_is_sixteen_entries() {
        let mut t = TexelAddressTable::new();
        for i in 0..16u64 {
            t.insert(&set(i * 0x100));
        }
        assert_eq!(t.distinct_sets(), 16);
        assert!(!t.overflowed());
        t.insert(&set(99 * 0x100));
        assert!(t.overflowed(), "17th distinct set overflows");
        assert_eq!(t.distinct_sets(), 16);
    }

    #[test]
    fn reset_preserves_access_count() {
        let mut t = TexelAddressTable::new();
        t.insert(&set(0));
        t.insert(&set(0x100));
        t.reset();
        assert_eq!(t.distinct_sets(), 0);
        assert_eq!(t.accesses(), 2, "energy accounting is cumulative");
    }

    #[test]
    fn try_with_capacity_rejects_zero() {
        assert!(TexelAddressTable::try_with_capacity(0).is_err());
        assert_eq!(
            TexelAddressTable::try_with_capacity(8).unwrap().capacity(),
            8
        );
    }

    #[test]
    fn corruption_raises_parity_and_reset_clears_it() {
        let mut t = TexelAddressTable::new();
        assert!(
            !t.corrupt_count(0, 0),
            "empty table has no state to corrupt"
        );
        t.insert(&set(0));
        t.insert(&set(0));
        assert!(t.corrupt_count(0, 1));
        assert!(t.parity_error());
        assert_ne!(t.counts(), vec![2], "the stored tag really flipped");
        t.reset();
        assert!(!t.parity_error(), "parity clears with the per-pixel reset");
    }

    #[test]
    fn corrupted_vector_is_still_a_distribution_or_empty() {
        // Even ignoring the parity flag, downstream math stays finite: the
        // vector renormalizes over the corrupted tags.
        let mut t = TexelAddressTable::new();
        t.insert(&set(0));
        t.insert(&set(0x100));
        t.corrupt_count(1, 0); // count 1 -> 0
        let p = t.probability_vector();
        let sum: f64 = p.iter().sum();
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((sum - 1.0).abs() < 1e-12 || p.is_empty());
    }

    #[test]
    fn reset_recycling_preserves_semantics() {
        // Entry buffers recycled across resets must behave exactly like
        // fresh allocations: same counts, same insertion order.
        let mut t = TexelAddressTable::new();
        for round in 0..4u64 {
            t.reset();
            t.insert(&set(round * 0x1000));
            t.insert(&set(round * 0x1000));
            t.insert(&set(0x5000));
            assert_eq!(t.counts(), vec![2, 1], "round {round}");
            assert_eq!(t.distinct_sets(), 2);
        }
    }

    #[test]
    fn oversized_key_takes_heap_path() {
        // More than 16 addresses in one tap exceeds the stack comparator
        // width; the key must still normalize identically.
        let mut t = TexelAddressTable::new();
        let big: Vec<TexelAddress> = (0..20).map(|i| TexelAddress::new(i % 5)).collect();
        t.insert(&big);
        let small: Vec<TexelAddress> = (0..5).map(TexelAddress::new).collect();
        assert!(t.insert(&small), "deduped oversized key matches");
    }

    #[test]
    fn duplicate_addresses_within_tap_deduped() {
        // A tap whose LOD clamps at the mip-chain end repeats addresses;
        // the stored key is the distinct set.
        let mut t = TexelAddressTable::new();
        let mut tap = set(0);
        tap.extend_from_slice(&set(0));
        t.insert(&tap);
        assert!(t.insert(&set(0)), "deduped key matches the plain set");
    }
}
