//! The Perception-Aware Texture Unit, functionally: policy decision +
//! the actual filtering that follows from it (paper Sec. V).
//!
//! [`PerceptionAwareTextureUnit::filter`] is the full per-pixel data path of
//! Fig. 14: footprint in, prediction flow through components ①–③, and the
//! final [`patu_texture::SampleRecord`] out — either the original AF fetch
//! or the demoted trilinear fetch (at AF's LOD for the PATU policy, fixing
//! the LOD shift of Sec. V-C(2)). The record carries every texel address the
//! timing model must replay.

use crate::batch::{LaneOutcome, LaneScratch};
use crate::error::PatuError;
use crate::hash_table::TexelAddressTable;
use crate::policy::{FilterMode, FilterPolicy, PolicyDecision};
use crate::stats::{ApproxStats, SharingStats};
use patu_gmath::Vec2;
use patu_gpu::{FaultConfig, FaultCounts, FaultInjector};
use patu_texture::{
    sample_anisotropic, sample_trilinear_record,
    sampler::{bilinear_addresses, sample_trilinear_into},
    AddressMode, Footprint, Rgba8, SampleRecord, TexelAddress, Texture,
};

/// The complete functional result of filtering one pixel under a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutcome {
    /// The filtering actually performed (taps + texel addresses + color).
    /// This is what the timing model charges for.
    pub record: SampleRecord,
    /// The policy decision that produced it.
    pub decision: PolicyDecision,
}

impl FilterOutcome {
    /// The final texture color returned to the shader.
    pub fn color(&self) -> patu_texture::Rgba8 {
        self.record.color
    }
}

/// Telemetry-only work counts from the prediction flow, the attribution
/// profiler's weights for the `predictor` / `hash_stage1` / `hash_stage2`
/// stages. Identical between the scalar and batched kernels because both
/// accumulate from the same [`PolicyDecision`] values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionAttrib {
    /// Total predictor (AF-SSIM compute logic) evaluations.
    pub predictor_evals: u64,
    /// Pixels whose decision consulted stage 1 at all.
    pub stage1_consults: u64,
    /// Total stage-2 hash-table accesses.
    pub stage2_accesses: u64,
}

/// A texture unit with the PATU extensions, parameterized by policy.
///
/// ```
/// use patu_core::{FilterPolicy, PerceptionAwareTextureUnit};
/// use patu_texture::{procedural, AddressMode, Footprint, Texture};
/// use patu_gmath::Vec2;
///
/// let tex = Texture::with_mips(procedural::checkerboard(256, 256, 8, 1), 0);
/// let mut patu = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 });
/// let fp = Footprint::from_derivatives(
///     Vec2::new(2.0 / 256.0, 0.0),
///     Vec2::new(0.0, 1.0 / 256.0),
///     256, 256, 16,
/// );
/// let out = patu.filter(&tex, Vec2::new(0.5, 0.5), &fp, AddressMode::Wrap);
/// assert!(out.decision.is_approximated(), "N=2 footprint approximated at θ=0.4");
/// assert_eq!(out.record.n, 1, "a single trilinear tap was fetched");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerceptionAwareTextureUnit {
    policy: FilterPolicy,
    table: TexelAddressTable,
    sharing: SharingStats,
    approx: ApproxStats,
    faults: FaultInjector,
    telemetry: bool,
    tap_hist: patu_obs::Log2Histogram,
    attrib: DecisionAttrib,
}

impl PerceptionAwareTextureUnit {
    /// Creates a unit with the given policy and the paper's 16-entry table.
    pub fn new(policy: FilterPolicy) -> PerceptionAwareTextureUnit {
        PerceptionAwareTextureUnit::with_table_capacity(policy, crate::hash_table::TABLE_ENTRIES)
    }

    /// Creates a unit with a custom hash-table capacity (ablation studies).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. Use
    /// [`PerceptionAwareTextureUnit::try_with_faults`] for a fully checked
    /// constructor.
    pub fn with_table_capacity(
        policy: FilterPolicy,
        capacity: usize,
    ) -> PerceptionAwareTextureUnit {
        PerceptionAwareTextureUnit {
            policy,
            table: TexelAddressTable::with_capacity(capacity),
            sharing: SharingStats::new(),
            approx: ApproxStats::new(),
            faults: FaultInjector::disabled(),
            telemetry: false,
            tap_hist: patu_obs::Log2Histogram::new(),
            attrib: DecisionAttrib::default(),
        }
    }

    /// Fully checked constructor with a fault-injection configuration: the
    /// policy threshold, table capacity and fault rates are all validated,
    /// and the unit's injector is forked from `faults` under `tag` so
    /// per-unit streams are decorrelated but deterministic.
    pub fn try_with_faults(
        policy: FilterPolicy,
        capacity: usize,
        faults: FaultConfig,
        tag: u64,
    ) -> Result<PerceptionAwareTextureUnit, PatuError> {
        policy.validate()?;
        faults.validate()?;
        Ok(PerceptionAwareTextureUnit {
            policy,
            table: TexelAddressTable::try_with_capacity(capacity)?,
            sharing: SharingStats::new(),
            approx: ApproxStats::new(),
            faults: FaultInjector::new(faults).fork(tag),
            telemetry: false,
            tap_hist: patu_obs::Log2Histogram::new(),
            attrib: DecisionAttrib::default(),
        })
    }

    /// Enables or disables tap-count telemetry (off by default).
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry = enabled;
    }

    /// Distribution of trilinear taps actually fetched per pixel (`N` for
    /// kept AF, 1 for demotions) — how hard the approximation bites, per
    /// pixel rather than on average (telemetry only; empty unless
    /// [`PerceptionAwareTextureUnit::set_telemetry`] was enabled).
    pub fn tap_hist(&self) -> &patu_obs::Log2Histogram {
        &self.tap_hist
    }

    /// The active policy.
    pub fn policy(&self) -> FilterPolicy {
        self.policy
    }

    /// Rebases the unit's fault stream to the canonical position for `tags`
    /// (prefixed by the unit's `"PATU"` site tag so it never overlaps the
    /// memory system's `"MEMS"`-tagged streams), keeping the accumulated
    /// counts. The temporal renderer calls this with `[frame, tile]` before
    /// each tile so prediction-flow faults are a pure function of
    /// `(seed, frame, tile)` regardless of which tiles were reused.
    pub fn rekey_faults(&mut self, tags: &[u64]) {
        let mut chain = [0u64; 8];
        chain[0] = 0x5041_5455; // "PATU"
        let n = tags.len().min(chain.len() - 1);
        chain[1..=n].copy_from_slice(&tags[..n]);
        self.faults.rekey(&chain[..=n]);
    }

    /// Faults injected into (and fallbacks taken by) this unit's prediction
    /// flow since the last [`PerceptionAwareTextureUnit::reset_stats`].
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.counts()
    }

    /// Filters one pixel: runs the prediction flow, then performs the
    /// decided filtering and returns the record.
    pub fn filter(
        &mut self,
        tex: &Texture,
        uv: Vec2,
        footprint: &Footprint,
        mode: AddressMode,
    ) -> FilterOutcome {
        self.filter_with(self.policy, tex, uv, footprint, mode)
    }

    /// Like [`PerceptionAwareTextureUnit::filter`] but with a per-call
    /// policy override — used when the threshold is modulated per pixel
    /// (e.g. foveated rendering loosening it with eccentricity). Statistics
    /// and the hash table remain this unit's.
    pub fn filter_with(
        &mut self,
        policy_override: FilterPolicy,
        tex: &Texture,
        uv: Vec2,
        footprint: &Footprint,
        mode: AddressMode,
    ) -> FilterOutcome {
        // The AF record is needed (a) when AF is actually performed and
        // (b) by the distribution stage, whose hash table observes the AF
        // taps' addresses. Compute it lazily, at most once.
        let mut af_record: Option<SampleRecord> = None;
        let decision = {
            let policy = policy_override;
            let af_ref = &mut af_record;
            // The hash table compares taps by the TF-level sample area each
            // one falls into (the paper's Fig. 11: taps X_0/X_1/X_3 lie in
            // TF's yellow square). At TF's LOD the tap spacing is 1/N of a
            // texel, so neighboring taps concentrate onto few shared sets —
            // the distribution whose entropy Txds measures.
            let tf_level = footprint.tf_lod.floor() as u32;
            policy.decide_with(footprint, &mut self.table, &mut self.faults, || {
                let rec = af_ref.insert(sample_anisotropic(tex, uv, footprint, mode));
                rec.taps
                    .iter()
                    .map(|t| bilinear_addresses(tex, t.uv, tf_level, mode).to_vec())
                    .collect()
            })
        };
        self.approx.record(&decision);
        if self.telemetry {
            self.attrib.predictor_evals += u64::from(decision.predictor_evals);
            self.attrib.stage1_consults += u64::from(decision.predictor_evals >= 1);
            self.attrib.stage2_accesses += u64::from(decision.hash_accesses);
        }

        let record = match decision.mode {
            FilterMode::Anisotropic => {
                let rec = af_record.unwrap_or_else(|| sample_anisotropic(tex, uv, footprint, mode));
                // Fig. 12 instrumentation: taps sharing the center's texels,
                // at the same TF-sample-area granularity the hash table uses.
                let tf_level = footprint.tf_lod.floor() as u32;
                let sets: Vec<_> = rec
                    .taps
                    .iter()
                    .map(|t| bilinear_addresses(tex, t.uv, tf_level, mode).to_vec())
                    .collect();
                self.sharing.record(&sets);
                rec
            }
            FilterMode::TrilinearTfLod => sample_trilinear_record(tex, uv, footprint.tf_lod, mode),
            FilterMode::TrilinearAfLod => sample_trilinear_record(tex, uv, footprint.af_lod, mode),
        };

        if self.telemetry {
            self.tap_hist.record(u64::from(record.n));
        }
        FilterOutcome { record, decision }
    }

    /// The fused per-lane kernel of the batched path (see [`crate::batch`]):
    /// one pixel's prediction flow with tap addresses streamed straight into
    /// the hash table, then only the filtering the decision demands, with
    /// fetched addresses appended to the batch's flat buffer.
    ///
    /// Bit-identical to [`PerceptionAwareTextureUnit::filter_with`]: the
    /// decision bottoms out in the same `decide_streamed` flow (same fault
    /// draws, same table accesses in the same order), and the sampling
    /// routines are the `_into` forms of the exact scalar ones. The one
    /// deliberate difference is laziness, not values: a demoted lane never
    /// reads the `N×8` AF texels the scalar path fetches just to enumerate
    /// tap addresses — the stage-2 keys are pure address math.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn filter_lane(
        &mut self,
        policy_override: FilterPolicy,
        tex: &Texture,
        uv: Vec2,
        footprint: &Footprint,
        mode: AddressMode,
        scratch: &mut LaneScratch,
        addresses: &mut Vec<TexelAddress>,
    ) -> LaneOutcome {
        // TF-sample-area granularity of the hash-table keys; see filter_with.
        let tf_level = footprint.tf_lod.floor() as u32;
        let decision = {
            let scratch = &mut *scratch;
            policy_override.decide_streamed(footprint, &mut self.table, &mut self.faults, |table| {
                footprint.tap_offsets_into(&mut scratch.offsets);
                table.reset();
                for &t in &scratch.offsets {
                    let tap_uv = uv + footprint.major_axis_uv * t;
                    table.insert(&bilinear_addresses(tex, tap_uv, tf_level, mode));
                }
                scratch.offsets.len() as u32
            })
        };
        self.approx.record(&decision);
        if self.telemetry {
            self.attrib.predictor_evals += u64::from(decision.predictor_evals);
            self.attrib.stage1_consults += u64::from(decision.predictor_evals >= 1);
            self.attrib.stage2_accesses += u64::from(decision.hash_accesses);
        }

        let (color, lod, taps) = match decision.mode {
            FilterMode::Anisotropic => {
                let lod = tex.clamp_lod(footprint.af_lod);
                footprint.tap_offsets_into(&mut scratch.offsets);
                scratch.tap_colors.clear();
                scratch.tap_keys.clear();
                for &t in &scratch.offsets {
                    let tap_uv = uv + footprint.major_axis_uv * t;
                    let (c, _) = sample_trilinear_into(tex, tap_uv, lod, mode, addresses);
                    scratch.tap_colors.push(c);
                    scratch
                        .tap_keys
                        .push(bilinear_addresses(tex, tap_uv, tf_level, mode));
                }
                self.sharing.record_fixed(&scratch.tap_keys);
                (Rgba8::average(&scratch.tap_colors), lod, footprint.n)
            }
            FilterMode::TrilinearTfLod => {
                let (c, lod) = sample_trilinear_into(tex, uv, footprint.tf_lod, mode, addresses);
                (c, lod, 1)
            }
            FilterMode::TrilinearAfLod => {
                let (c, lod) = sample_trilinear_into(tex, uv, footprint.af_lod, mode, addresses);
                (c, lod, 1)
            }
        };

        if self.telemetry {
            self.tap_hist.record(u64::from(taps));
        }
        LaneOutcome {
            color,
            lod,
            taps,
            decision,
        }
    }

    /// Cumulative hash-table accesses (energy model input).
    pub fn hash_accesses(&self) -> u64 {
        self.table.accesses()
    }

    /// Texel-set sharing statistics over all AF requests seen (Fig. 12).
    pub fn sharing_stats(&self) -> SharingStats {
        self.sharing
    }

    /// Approximation coverage by stage.
    pub fn approx_stats(&self) -> ApproxStats {
        self.approx
    }

    /// Prediction-flow work counts for the cycle-attribution profiler
    /// (telemetry only; all-zero unless
    /// [`PerceptionAwareTextureUnit::set_telemetry`] was enabled).
    pub fn decision_attrib(&self) -> DecisionAttrib {
        self.attrib
    }

    /// Resets all cumulative statistics (between frames or runs). The fault
    /// injector's counters clear too, but its stream position advances
    /// monotonically — fault patterns never repeat across frames.
    pub fn reset_stats(&mut self) {
        self.table = TexelAddressTable::with_capacity(self.table.capacity());
        self.sharing = SharingStats::new();
        self.approx = ApproxStats::new();
        self.faults.reset_counts();
        self.tap_hist = patu_obs::Log2Histogram::new();
        self.attrib = DecisionAttrib::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DecisionStage;
    use patu_texture::procedural;

    fn texture() -> Texture {
        Texture::with_mips(procedural::checkerboard(256, 256, 8, 7), 0)
    }

    fn footprint(n_texels: f32) -> Footprint {
        Footprint::from_derivatives(
            Vec2::new(n_texels / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            16,
        )
    }

    fn center() -> Vec2 {
        Vec2::new(0.5, 0.5)
    }

    #[test]
    fn baseline_performs_full_af() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Baseline);
        let out = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert_eq!(out.record.n, 8);
        assert_eq!(out.record.texel_fetches(), 64);
        assert_eq!(out.decision.stage, DecisionStage::Fixed);
    }

    #[test]
    fn noaf_fetches_single_tap_at_tf_lod() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::NoAf);
        let fp = footprint(8.0);
        let out = unit.filter(&tex, center(), &fp, AddressMode::Wrap);
        assert_eq!(out.record.n, 1);
        assert_eq!(out.record.texel_fetches(), 8);
        assert!((out.record.lod - fp.tf_lod).abs() < 1e-6);
    }

    #[test]
    fn patu_demotion_reuses_af_lod() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.9 });
        let fp = footprint(2.0); // AF_SSIM(2)=0.64 < 0.9? No: 0.64 < 0.9 -> stage 2.
        let out = unit.filter(&tex, center(), &fp, AddressMode::Wrap);
        if out.decision.is_approximated() {
            assert!(
                (out.record.lod - fp.af_lod).abs() < 1e-6,
                "PATU samples at AF's LOD"
            );
        }
    }

    #[test]
    fn patu_low_threshold_approximates_and_saves_fetches() {
        let tex = texture();
        // AF_SSIM(8) ≈ 0.061 > 0.05: stage 1 approves the demotion.
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.05 });
        let out = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert!(out.decision.is_approximated());
        assert_eq!(out.record.texel_fetches(), 8, "8 instead of 64 texels");
    }

    #[test]
    fn lod_shift_visible_between_policies() {
        // The same demoted pixel samples different mip levels under
        // SampleAreaTxds (TF LOD) vs PATU (AF LOD).
        let tex = texture();
        let fp = footprint(8.0);
        let mut naive =
            PerceptionAwareTextureUnit::new(FilterPolicy::SampleAreaTxds { threshold: 0.99 });
        let mut patu = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.99 });
        let a = naive.filter(&tex, center(), &fp, AddressMode::Wrap);
        let b = patu.filter(&tex, center(), &fp, AddressMode::Wrap);
        // Threshold 0.99 forces stage-2; whether each approximates depends on
        // texel sharing, but when both do, their LODs must differ by the shift.
        if a.decision.is_approximated() && b.decision.is_approximated() {
            assert!(a.record.lod > b.record.lod, "TF LOD coarser than AF LOD");
        }
    }

    #[test]
    fn approx_stats_accumulate() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 });
        for i in 0..10 {
            let fp = footprint(1.0 + i as f32);
            let _ = unit.filter(&tex, center(), &fp, AddressMode::Wrap);
        }
        let stats = unit.approx_stats();
        assert_eq!(stats.pixels, 10);
        assert!(stats.isotropic >= 1, "the N=1 footprint counted");
    }

    #[test]
    fn sharing_stats_only_from_af_requests() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::NoAf);
        let _ = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert_eq!(
            unit.sharing_stats().taps_total,
            0,
            "no AF -> no sharing data"
        );

        let mut base = PerceptionAwareTextureUnit::new(FilterPolicy::Baseline);
        let _ = base.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert_eq!(base.sharing_stats().taps_total, 7, "N-1 non-center taps");
    }

    #[test]
    fn color_matches_af_when_kept() {
        let tex = texture();
        let fp = footprint(8.0);
        // Threshold 0 under SampleArea... actually keep AF via threshold that
        // stage-1 rejects and a policy without stage 2.
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::SampleArea { threshold: 0.4 });
        let out = unit.filter(&tex, center(), &fp, AddressMode::Wrap);
        let reference = sample_anisotropic(&tex, center(), &fp, AddressMode::Wrap);
        assert_eq!(out.record.color, reference.color);
        assert_eq!(out.decision.stage, DecisionStage::KeptAf);
    }

    #[test]
    fn reset_stats_clears() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 });
        let _ = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        unit.reset_stats();
        assert_eq!(unit.approx_stats().pixels, 0);
        assert_eq!(unit.hash_accesses(), 0);
    }

    #[test]
    fn faulty_unit_degrades_but_never_dies() {
        let tex = texture();
        let cfg = FaultConfig::uniform(11, 1.0);
        let mut unit = PerceptionAwareTextureUnit::try_with_faults(
            FilterPolicy::Patu { threshold: 0.4 },
            crate::hash_table::TABLE_ENTRIES,
            cfg,
            0,
        )
        .unwrap();
        for i in 0..8 {
            let fp = footprint(2.0 + i as f32);
            let out = unit.filter(&tex, center(), &fp, AddressMode::Wrap);
            assert_eq!(
                out.decision.stage,
                DecisionStage::Fallback,
                "rate 1.0 poisons every prediction"
            );
            assert_eq!(out.record.n, fp.n, "fallback performs real AF");
        }
        let counts = unit.fault_counts();
        assert_eq!(counts.fallbacks, 8);
        assert!(counts.predictor_poisons >= 8);
        unit.reset_stats();
        assert_eq!(unit.fault_counts(), patu_gpu::FaultCounts::default());
    }

    #[test]
    fn try_with_faults_validates_everything() {
        let bad_rate = FaultConfig {
            cache_bitflip_rate: 2.0,
            ..FaultConfig::disabled()
        };
        assert!(PerceptionAwareTextureUnit::try_with_faults(
            FilterPolicy::Baseline,
            16,
            bad_rate,
            0
        )
        .is_err());
        assert!(PerceptionAwareTextureUnit::try_with_faults(
            FilterPolicy::Patu {
                threshold: f64::NAN
            },
            16,
            FaultConfig::disabled(),
            0
        )
        .is_err());
        assert!(PerceptionAwareTextureUnit::try_with_faults(
            FilterPolicy::Baseline,
            0,
            FaultConfig::disabled(),
            0
        )
        .is_err());
    }

    #[test]
    fn tap_hist_gates_on_telemetry_and_sees_demotions() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.05 });
        let _ = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert!(unit.tap_hist().is_empty(), "off by default");
        unit.set_telemetry(true);
        let demoted = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert!(demoted.decision.is_approximated());
        let mut baseline = PerceptionAwareTextureUnit::new(FilterPolicy::Baseline);
        baseline.set_telemetry(true);
        let _ = baseline.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert_eq!(unit.tap_hist().max(), 1, "demotion fetched a single tap");
        assert_eq!(baseline.tap_hist().max(), 8, "baseline fetched all N taps");
        unit.reset_stats();
        assert!(unit.tap_hist().is_empty(), "reset clears telemetry");
    }

    #[test]
    fn decision_attrib_gates_on_telemetry_and_mirrors_decisions() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 });
        let _ = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert_eq!(
            unit.decision_attrib(),
            DecisionAttrib::default(),
            "off by default"
        );
        unit.set_telemetry(true);
        let out = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        let attrib = unit.decision_attrib();
        assert_eq!(
            attrib.predictor_evals,
            u64::from(out.decision.predictor_evals)
        );
        assert_eq!(attrib.stage1_consults, 1, "one pixel consulted stage 1");
        assert_eq!(
            attrib.stage2_accesses,
            u64::from(out.decision.hash_accesses)
        );
        assert!(
            attrib.stage2_accesses > 0,
            "N=8 at θ=0.4 reaches the hash table"
        );
        unit.reset_stats();
        assert_eq!(
            unit.decision_attrib(),
            DecisionAttrib::default(),
            "reset clears attribution"
        );
    }

    #[test]
    fn hash_accesses_counted_for_stage2_pixels() {
        let tex = texture();
        let mut unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 });
        // N=8 fails stage 1 at θ=0.4, so the hash table sees 8 taps.
        let _ = unit.filter(&tex, center(), &footprint(8.0), AddressMode::Wrap);
        assert_eq!(unit.hash_accesses(), 8);
    }
}
