//! The typed error hierarchy rooted at [`PatuError`].
//!
//! Every layer wraps the one below: `patu-gpu` raises
//! [`patu_gpu::GpuError`], this crate wraps it plus its own prediction and
//! table failures, and `patu-sim` wraps both plus workload errors — so a
//! bench binary's `main() -> Result<..>` surfaces the original failure site
//! in one `Display` chain instead of a panic backtrace.

use patu_gpu::GpuError;
use std::fmt;

/// Errors raised by the PATU prediction model on adversarial inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum PatuError {
    /// An underlying GPU-model error (cache geometry, fault rates…).
    Gpu(GpuError),
    /// A predictive policy's threshold was not a finite value in `[0, 1]`.
    InvalidThreshold {
        /// The offending threshold.
        value: f64,
    },
    /// An AF sample size outside the paper's `1..=16` domain.
    InvalidSampleSize {
        /// The offending sample size.
        n: u32,
    },
    /// A texel-address hash table cannot have zero entries.
    InvalidTableCapacity,
    /// A predictor produced (or was fed) a non-finite value. Consumers on
    /// the render path degrade to full AF instead of raising this; it is
    /// surfaced only by the checked entry points.
    NonFinitePrediction {
        /// Which predictor stage saw the value.
        stage: &'static str,
        /// The non-finite value.
        value: f64,
    },
}

impl fmt::Display for PatuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatuError::Gpu(e) => write!(f, "gpu model: {e}"),
            PatuError::InvalidThreshold { value } => {
                write!(
                    f,
                    "prediction threshold must be a finite value in [0, 1], got {value}"
                )
            }
            PatuError::InvalidSampleSize { n } => {
                write!(f, "AF sample size N must be in 1..=16, got {n}")
            }
            PatuError::InvalidTableCapacity => {
                write!(f, "texel-address hash table needs at least one entry")
            }
            PatuError::NonFinitePrediction { stage, value } => {
                write!(f, "non-finite prediction at stage `{stage}`: {value}")
            }
        }
    }
}

impl std::error::Error for PatuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PatuError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for PatuError {
    fn from(e: GpuError) -> PatuError {
        PatuError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_gpu_errors() {
        let gpu = GpuError::ClusterOutOfRange {
            cluster: 5,
            clusters: 4,
        };
        let e = PatuError::from(gpu.clone());
        assert_eq!(e, PatuError::Gpu(gpu));
        assert!(e.to_string().contains("cluster 5"));
        use std::error::Error;
        assert!(e.source().is_some(), "source chain preserved");
    }

    #[test]
    fn messages_are_specific() {
        assert!(PatuError::InvalidThreshold { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(PatuError::InvalidSampleSize { n: 99 }
            .to_string()
            .contains("99"));
        assert!(PatuError::NonFinitePrediction {
            stage: "txds",
            value: f64::NAN
        }
        .to_string()
        .contains("txds"));
    }
}
