//! # patu-core
//!
//! The paper's primary contribution (HPCA 2018): **AF-SSIM**, a runtime
//! predictor of the perceptual similarity between a pixel filtered with and
//! without anisotropic filtering, and **PATU**, the Perception-Aware Texture
//! Unit that uses it to demote non-perceivable pixels from AF to plain
//! trilinear filtering.
//!
//! The model chain, following the paper Sec. IV–V:
//!
//! 1. AF's output is the average of `N` trilinear samples (Eq. 3), so
//!    `Y = μ∇ · X` (Eq. 4) where `μ∇` is the *similarity degree* between the
//!    AF color `Y` and TF color `X`.
//! 2. Substituting into SSIM collapses it to a function of `μ∇` alone —
//!    [`afssim::af_ssim_mu`] (Eq. 5).
//! 3. Two runtime proxies for `μ∇`, both available before texel fetch:
//!    the sample size `N` ([`afssim::af_ssim_n`], Eq. 6) and the texel
//!    distribution similarity ([`afssim::txds`] + [`afssim::af_ssim_txds`],
//!    Eq. 8–10) computed from the texel-address hash table
//!    ([`hash_table::TexelAddressTable`], PATU component ②).
//! 4. The two-stage prediction flow (Fig. 13) and the full texture-unit
//!    policy — including the LOD-shift fix of Sec. V-C(2) — live in
//!    [`policy`] and [`unit::PerceptionAwareTextureUnit`].
//!
//! # Examples
//!
//! ```
//! use patu_core::afssim;
//!
//! // An isotropic pixel (N = 1) looks identical with or without AF:
//! assert!((afssim::af_ssim_n(1) - 1.0).abs() < 1e-9);
//! // A maximally anisotropic pixel does not:
//! assert!(afssim::af_ssim_n(16) < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afssim;
pub mod batch;
pub mod error;
pub mod hash_table;
pub mod oracle;
pub mod policy;
pub mod stats;
pub mod unit;

pub use afssim::{af_ssim_mu, af_ssim_n, af_ssim_txds, entropy, try_af_ssim_n, txds};
pub use batch::{LaneOutcome, LaneScratch, SoaBatch};
pub use error::PatuError;
pub use hash_table::TexelAddressTable;
pub use oracle::{oracle_af_ssim, oracle_mu, PredictionAccuracy};
pub use policy::{DecisionStage, FilterMode, FilterPolicy, ParsePolicyError, PolicyDecision};
pub use stats::{ApproxStats, DivergenceStats, SharingStats};
pub use unit::{DecisionAttrib, FilterOutcome, PerceptionAwareTextureUnit};
