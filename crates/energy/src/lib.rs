//! # patu-energy
//!
//! A McPAT-style event-based energy model for the simulated GPU, standing in
//! for the paper's McPAT + Micron DDR3 power methodology (Sec. VI): every
//! micro-architectural event carries a fixed dynamic energy cost at a
//! 28 nm-class operating point, and leakage accrues per cycle. Total GPU
//! energy (the paper's Fig. 20 metric, DRAM included) is
//!
//! ```text
//! E = Σ events × cost(event) + P_static × cycles
//! ```
//!
//! Because energy is an explicit function of the same event counts the
//! timing model produces, the paper's energy effects — less texel traffic
//! and shorter runtime beating PATU's small overheads (hash table accesses,
//! slightly higher texel throughput power) — arise mechanically.
//!
//! # Examples
//!
//! ```
//! use patu_energy::{EnergyModel, EnergyReport};
//! use patu_gpu::FrameStats;
//!
//! let model = EnergyModel::default();
//! let mut stats = FrameStats::default();
//! stats.cycles = 1_000_000;
//! stats.events.trilinear_ops = 500_000;
//! let report = model.frame_energy(&stats);
//! assert!(report.total_joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use patu_gpu::FrameStats;

/// Per-event dynamic energy costs in picojoules, plus leakage.
///
/// Defaults approximate a 28 nm mobile GPU (the paper models PATU with
/// McPAT at 28 nm): SRAM accesses scale with array size, DRAM costs
/// dominate per byte, and the PATU additions (a 2 KB hash table and a few
/// comparators) are orders of magnitude cheaper than the texel traffic they
/// remove.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Shader ALU operation (pJ).
    pub shader_alu_pj: f64,
    /// One trilinear filtering operation — 8 texel blends (pJ).
    pub trilinear_pj: f64,
    /// One texel address calculation (pJ).
    pub address_calc_pj: f64,
    /// Texture L1 access (pJ).
    pub l1_access_pj: f64,
    /// L2 access (pJ).
    pub l2_access_pj: f64,
    /// DRAM transfer cost per byte (pJ/B), Micron-style.
    pub dram_pj_per_byte: f64,
    /// Vertex processing cost per vertex (pJ).
    pub vertex_pj: f64,
    /// PATU texel-address hash table access (pJ) — a 2 KB SRAM.
    pub hash_table_pj: f64,
    /// PATU predictor evaluation (compute logic ①/③) (pJ).
    pub predictor_pj: f64,
    /// Static (leakage + clock) power of GPU + DRAM in watts.
    pub static_watts: f64,
    /// Core frequency in Hz (converts cycles to seconds for leakage).
    pub frequency_hz: f64,
    /// PATU area overhead in mm² per unified shader cluster (Sec. V-D:
    /// ≈0.15 mm², 0.2 % of a 66 mm² GPU).
    pub patu_area_mm2_per_cluster: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            shader_alu_pj: 2.0,
            trilinear_pj: 18.0,
            address_calc_pj: 1.2,
            l1_access_pj: 6.0,
            l2_access_pj: 18.0,
            dram_pj_per_byte: 24.0,
            vertex_pj: 40.0,
            hash_table_pj: 1.5,
            predictor_pj: 0.8,
            static_watts: 0.35,
            frequency_hz: 1e9,
            patu_area_mm2_per_cluster: 0.15,
        }
    }
}

/// The energy of one frame (or any accumulated [`FrameStats`]), split by
/// component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Shader core dynamic energy (J).
    pub shader_joules: f64,
    /// Texture unit dynamic energy — filtering + address ALUs (J).
    pub texture_unit_joules: f64,
    /// Cache dynamic energy, L1 + L2 (J).
    pub cache_joules: f64,
    /// DRAM dynamic energy (J).
    pub dram_joules: f64,
    /// Geometry front-end energy (J).
    pub geometry_joules: f64,
    /// PATU overhead energy — hash table + predictors (J).
    pub patu_overhead_joules: f64,
    /// Static/leakage energy over the frame (J).
    pub static_joules: f64,
}

impl EnergyReport {
    /// Total GPU + DRAM energy in joules (the Fig. 20 metric).
    pub fn total_joules(&self) -> f64 {
        self.shader_joules
            + self.texture_unit_joules
            + self.cache_joules
            + self.dram_joules
            + self.geometry_joules
            + self.patu_overhead_joules
            + self.static_joules
    }

    /// Dynamic energy only (everything except leakage).
    pub fn dynamic_joules(&self) -> f64 {
        self.total_joules() - self.static_joules
    }

    /// Average power over the frame in watts, given its cycle count.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `cycles` is zero.
    pub fn average_watts(&self, cycles: u64, frequency_hz: f64) -> f64 {
        debug_assert!(cycles > 0, "cannot compute power over zero cycles");
        let seconds = cycles as f64 / frequency_hz;
        self.total_joules() / seconds
    }
}

impl EnergyModel {
    /// Computes the energy of a frame from its timing/event statistics.
    pub fn frame_energy(&self, stats: &FrameStats) -> EnergyReport {
        const PJ: f64 = 1e-12;
        let e = &stats.events;
        EnergyReport {
            shader_joules: e.shader_alu_ops as f64 * self.shader_alu_pj * PJ,
            texture_unit_joules: (e.trilinear_ops as f64 * self.trilinear_pj
                + e.address_calc_ops as f64 * self.address_calc_pj)
                * PJ,
            cache_joules: (e.l1_accesses as f64 * self.l1_access_pj
                + e.l2_accesses as f64 * self.l2_access_pj)
                * PJ,
            dram_joules: e.dram_bytes as f64 * self.dram_pj_per_byte * PJ,
            geometry_joules: e.vertices as f64 * self.vertex_pj * PJ,
            patu_overhead_joules: (e.hash_table_accesses as f64 * self.hash_table_pj
                + e.predictor_evals as f64 * self.predictor_pj)
                * PJ,
            static_joules: self.static_watts * stats.cycles as f64 / self.frequency_hz,
        }
    }

    /// PATU's total area overhead in mm² for `clusters` clusters
    /// (Sec. V-D reports 0.15 mm² per cluster, ≈0.2 % of a 66 mm² GPU).
    pub fn patu_area_overhead_mm2(&self, clusters: u32) -> f64 {
        self.patu_area_mm2_per_cluster * f64::from(clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patu_gpu::EventCounts;

    fn stats_with(events: EventCounts, cycles: u64) -> FrameStats {
        FrameStats {
            cycles,
            events,
            ..FrameStats::default()
        }
    }

    #[test]
    fn zero_events_zero_cycles_zero_energy() {
        let r = EnergyModel::default().frame_energy(&FrameStats::default());
        assert_eq!(r.total_joules(), 0.0);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let m = EnergyModel::default();
        let a = m.frame_energy(&stats_with(EventCounts::default(), 1_000_000));
        let b = m.frame_energy(&stats_with(EventCounts::default(), 2_000_000));
        assert!((b.static_joules / a.static_joules - 2.0).abs() < 1e-9);
        assert_eq!(a.dynamic_joules(), 0.0);
    }

    #[test]
    fn known_static_value() {
        // 0.35 W for 1e6 cycles at 1 GHz = 0.35 mJ * 1e-3 = 0.35e-3 J... 1e6/1e9 s = 1 ms.
        let m = EnergyModel::default();
        let r = m.frame_energy(&stats_with(EventCounts::default(), 1_000_000));
        assert!((r.static_joules - 0.35e-3).abs() < 1e-12);
    }

    #[test]
    fn dram_dominates_sram_per_byte() {
        let m = EnergyModel::default();
        // Fetching 64 bytes from DRAM vs one L1 access.
        assert!(64.0 * m.dram_pj_per_byte > 10.0 * m.l1_access_pj);
    }

    #[test]
    fn component_attribution() {
        let m = EnergyModel::default();
        let events = EventCounts {
            trilinear_ops: 1000,
            address_calc_ops: 8000,
            l1_accesses: 8000,
            l2_accesses: 500,
            dram_bytes: 64 * 100,
            shader_alu_ops: 5000,
            vertices: 10,
            hash_table_accesses: 200,
            predictor_evals: 100,
            ..EventCounts::default()
        };
        let r = m.frame_energy(&stats_with(events, 0));
        assert!(r.texture_unit_joules > 0.0);
        assert!(r.cache_joules > 0.0);
        assert!(r.dram_joules > 0.0);
        assert!(r.shader_joules > 0.0);
        assert!(r.geometry_joules > 0.0);
        assert!(r.patu_overhead_joules > 0.0);
        // PATU overhead is tiny next to the traffic it polices.
        assert!(r.patu_overhead_joules < 0.01 * r.total_joules());
    }

    #[test]
    fn fewer_texel_events_lower_energy() {
        let m = EnergyModel::default();
        let af = EventCounts {
            trilinear_ops: 16_000,
            address_calc_ops: 128_000,
            l1_accesses: 128_000,
            l2_accesses: 20_000,
            dram_bytes: 64 * 10_000,
            ..EventCounts::default()
        };
        let tf = EventCounts {
            trilinear_ops: 1_000,
            address_calc_ops: 8_000,
            l1_accesses: 8_000,
            l2_accesses: 1_500,
            dram_bytes: 64 * 900,
            ..EventCounts::default()
        };
        let e_af = m.frame_energy(&stats_with(af, 1_000_000)).total_joules();
        let e_tf = m.frame_energy(&stats_with(tf, 700_000)).total_joules();
        assert!(e_tf < e_af);
    }

    #[test]
    fn average_watts() {
        let m = EnergyModel::default();
        let r = m.frame_energy(&stats_with(EventCounts::default(), 1_000_000));
        // Pure leakage: average power equals static_watts.
        assert!((r.average_watts(1_000_000, 1e9) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn area_overhead_matches_paper() {
        let m = EnergyModel::default();
        let total = m.patu_area_overhead_mm2(4);
        assert!((total - 0.6).abs() < 1e-12);
        // 0.15 mm² per cluster is ~0.2% of the 66 mm² GPU the paper cites.
        assert!(m.patu_area_mm2_per_cluster / 66.0 < 0.003);
    }
}
