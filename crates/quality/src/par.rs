//! Deterministic row-band parallelism for the SSIM scans.
//!
//! The quality crate stays off the simulator's runtime, so it carries its
//! own tiny banding helper instead of sharing one. The contract matches
//! it exactly: workers compute disjoint row bands, results are concatenated
//! in band order, and every reduction happens *after* the concatenation on
//! the calling thread — so the output is bit-identical for every thread
//! count, including the inline serial path.

use std::num::NonZeroUsize;

/// Resolves the worker count: an explicit knob wins, then the
/// `PATU_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Unparseable or zero values
/// sanitize to the next fallback; the result is always at least 1.
pub(crate) fn thread_count(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    // patu-lint: allow(knob-at-construction) — sanctioned PATU_THREADS fallback,
    // consulted only when the caller configured no explicit thread count
    std::env::var("PATU_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Maps `per_row` over `rows` row indices and concatenates the per-row
/// output vectors in row order. With `threads <= 1` (or a single row) the
/// map runs inline on the caller; otherwise rows are split into contiguous
/// bands, one scoped worker per band, and band outputs are stitched in band
/// order. Because each row's output is a pure function of the row index,
/// the concatenation is identical for every band partition.
///
/// # Panics
///
/// Propagates panics from `per_row`.
pub(crate) fn map_rows<T, F>(threads: usize, rows: usize, per_row: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    if threads <= 1 || rows <= 1 {
        return (0..rows).flat_map(per_row).collect();
    }
    let workers = threads.min(rows);
    let band = rows.div_ceil(workers);
    let mut out = Vec::new();
    // patu-lint: allow(thread-spawn) — the banded-SSIM runner: scoped workers, band-ordered merge, bit-identical to serial
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let per_row = &per_row;
                scope.spawn(move || {
                    let lo = w * band;
                    let hi = rows.min(lo + band);
                    let mut values = Vec::new();
                    for row in lo..hi {
                        values.extend(per_row(row));
                    }
                    values
                })
            })
            .collect();
        for handle in handles {
            // patu-lint: allow(panic-path) — a worker panic must propagate verbatim, not be converted to a quality result
            out.extend(handle.join().expect("SSIM band worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_map_matches_serial_for_any_thread_count() {
        let per_row = |row: usize| {
            (0..5)
                .map(|col| (row * 31 + col) as u64)
                .collect::<Vec<u64>>()
        };
        let serial = map_rows(1, 13, per_row);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(map_rows(threads, 13, per_row), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_row_inputs() {
        let per_row = |row: usize| vec![row];
        assert!(map_rows(4, 0, per_row).is_empty());
        assert_eq!(map_rows(4, 1, per_row), vec![0]);
    }

    #[test]
    fn explicit_thread_knob_wins_and_sanitizes() {
        assert_eq!(thread_count(Some(3)), 3);
        assert_eq!(thread_count(Some(0)), 1, "zero sanitizes to one");
        assert!(thread_count(None) >= 1);
    }
}
