//! Grayscale images: the input domain of SSIM.

use std::io::{self, Write};

/// A single-channel floating-point image with values nominally in
/// `[0, 255]` (Rec. 601 luma of a rendered frame).
///
/// ```
/// use patu_quality::GrayImage;
/// let img = GrayImage::new(2, 2, vec![0.0, 255.0, 128.0, 64.0]);
/// assert_eq!(img.get(1, 0), 255.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates an image from row-major samples.
    ///
    /// # Panics
    ///
    /// Panics if the image is empty or `data.len() != width * height`.
    pub fn new(width: u32, height: u32, data: Vec<f32>) -> GrayImage {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert_eq!(
            data.len(),
            (width as usize) * (height as usize),
            "data length must equal width * height"
        );
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// An image filled with a constant value.
    pub fn filled(width: u32, height: u32, value: f32) -> GrayImage {
        GrayImage::new(
            width,
            height,
            vec![value; (width as usize) * (height as usize)],
        )
    }

    /// Image width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Writes sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y as usize) * (self.width as usize) + x as usize] = v;
    }

    /// All samples in row-major order.
    pub fn samples(&self) -> &[f32] {
        &self.data
    }

    /// Mean sample value.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Serializes as binary PGM (P5), clamping samples into `[0, 255]` —
    /// used to dump SSIM index maps (Fig. 8) for inspection.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_pgm<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "P5\n{} {}\n255", self.width, self.height)?;
        let bytes: Vec<u8> = self
            .data
            .iter()
            .map(|&v| v.clamp(0.0, 255.0) as u8)
            .collect();
        w.write_all(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut img = GrayImage::filled(3, 2, 0.0);
        img.set(2, 1, 42.0);
        assert_eq!(img.get(2, 1), 42.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn mean_of_gradient() {
        let img = GrayImage::new(2, 1, vec![0.0, 100.0]);
        assert_eq!(img.mean(), 50.0);
    }

    #[test]
    #[should_panic(expected = "width * height")]
    fn wrong_length_panics() {
        let _ = GrayImage::new(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let img = GrayImage::filled(2, 2, 0.0);
        let _ = img.get(0, 2);
    }

    #[test]
    fn pgm_output() {
        let img = GrayImage::new(2, 1, vec![-5.0, 300.0]);
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n2 1\n255\n"));
        let body = &buf[b"P5\n2 1\n255\n".len()..];
        assert_eq!(body, &[0u8, 255], "samples clamped");
    }
}
