//! # patu-quality
//!
//! Perceptual image-quality metrics for the PATU simulator: the Structural
//! Similarity index (SSIM) of Wang et al. (2004), its mean (MSSIM) and
//! per-pixel index maps, plus MSE/PSNR for reference.
//!
//! The PATU paper (HPCA 2018) uses SSIM throughout: Eq. (1) defines the
//! windowed SSIM between a frame rendered with 16× anisotropic filtering and
//! the same frame with AF disabled or approximated; Eq. (2) averages it into
//! MSSIM; and Fig. 8's SSIM *index map* is the per-pixel visualization that
//! motivates approximating only non-perceivable pixels.
//!
//! The implementation uses integral images so a full-resolution sliding
//! window map costs O(width × height) regardless of window size.
//!
//! # Examples
//!
//! ```
//! use patu_quality::{GrayImage, SsimConfig};
//!
//! let a = GrayImage::new(32, 32, vec![128.0; 32 * 32]);
//! let b = a.clone();
//! let mssim = SsimConfig::default().mssim(&a, &b);
//! assert!((mssim - 1.0).abs() < 1e-6, "identical images have MSSIM 1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaussian;
pub mod image;
pub mod metrics;
mod par;
pub mod sampled;
pub mod ssim;

pub use gaussian::{GaussianSsimConfig, SsimComponents};
pub use image::GrayImage;
pub use metrics::{mse, psnr};
pub use sampled::SampledSsimConfig;
pub use ssim::{SsimConfig, SsimMap};
