//! Structural Similarity (SSIM) per Wang, Bovik, Sheikh & Simoncelli (2004),
//! the paper's Eq. (1)/(2), with per-pixel index maps (Fig. 8).
//!
//! For each pixel, local statistics (means, variances, covariance) are
//! gathered over a square window and combined as
//!
//! ```text
//! SSIM(x, y) = (2 μx μy + C1)(2 σxy + C2) / ((μx² + μy² + C1)(σx² + σy² + C2))
//! ```
//!
//! with `C1 = (K1 L)²`, `C2 = (K2 L)²`, `L = 255`. Local sums are computed
//! with integral images, so a full map costs O(W × H) for any window size.

use crate::image::GrayImage;

/// SSIM parameters.
///
/// The defaults follow the reference implementation: 8×8 uniform windows,
/// `K1 = 0.01`, `K2 = 0.03`, dynamic range 255.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Window edge length in pixels.
    pub window: u32,
    /// Luminance stabilization constant factor.
    pub k1: f32,
    /// Contrast stabilization constant factor.
    pub k2: f32,
    /// Dynamic range of the samples (255 for 8-bit luma).
    pub dynamic_range: f32,
    /// Worker threads for the banded map computation. `None` resolves the
    /// `PATU_THREADS` environment variable, falling back to
    /// [`std::thread::available_parallelism`]. The result is bit-identical
    /// for every thread count: window values are pure functions of shared
    /// integral images, bands concatenate in row order, and the mean is
    /// reduced serially afterwards.
    pub threads: Option<usize>,
}

impl Default for SsimConfig {
    fn default() -> SsimConfig {
        SsimConfig {
            window: 8,
            k1: 0.01,
            k2: 0.03,
            dynamic_range: 255.0,
            threads: None,
        }
    }
}

impl SsimConfig {
    /// Pins the banded computation to `threads` workers (1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SsimConfig {
        self.threads = Some(threads);
        self
    }
}

/// A per-pixel SSIM index map — the paper's Fig. 8 visualization, where
/// lighter (closer to 1) means the pixel looks the same with and without AF.
#[derive(Debug, Clone, PartialEq)]
pub struct SsimMap {
    width: u32,
    height: u32,
    values: Vec<f32>,
}

impl SsimMap {
    /// Map width (smaller than the image by `window - 1`).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Map height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// SSIM value at window position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height);
        self.values[(y as usize) * (self.width as usize) + x as usize]
    }

    /// All SSIM values in row-major order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The mean SSIM — the paper's Eq. (2) MSSIM.
    pub fn mean(&self) -> f32 {
        self.values.iter().sum::<f32>() / self.values.len() as f32
    }

    /// Fraction of windows with SSIM at or above `threshold` — the paper's
    /// "non-perceivable pixel" population for a given tuning point.
    pub fn fraction_above(&self, threshold: f32) -> f32 {
        let n = self.values.iter().filter(|&&v| v >= threshold).count();
        n as f32 / self.values.len() as f32
    }

    /// Converts to a grayscale image scaled to `[0, 255]` for PGM dumps.
    pub fn to_gray_image(&self) -> GrayImage {
        GrayImage::new(
            self.width,
            self.height,
            self.values
                .iter()
                .map(|v| v.clamp(0.0, 1.0) * 255.0)
                .collect(),
        )
    }
}

/// Double-precision integral image (summed-area table) over `f(x) ⋅ g(x)`.
struct Integral {
    width: usize,
    sums: Vec<f64>,
}

impl Integral {
    /// Builds the summed-area table of the product of two sample planes.
    fn of_product(a: &GrayImage, b: &GrayImage) -> Integral {
        let (w, h) = (a.width() as usize, a.height() as usize);
        // One extra row/column of zeros simplifies window queries.
        let stride = w + 1;
        let mut sums = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_acc = 0.0f64;
            for x in 0..w {
                row_acc +=
                    f64::from(a.get(x as u32, y as u32)) * f64::from(b.get(x as u32, y as u32));
                sums[(y + 1) * stride + (x + 1)] = sums[y * stride + (x + 1)] + row_acc;
            }
        }
        Integral {
            width: stride,
            sums,
        }
    }

    /// Sum over the half-open window `[x0, x1) × [y0, y1)`.
    #[inline]
    fn window_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        self.sums[y1 * self.width + x1]
            - self.sums[y0 * self.width + x1]
            - self.sums[y1 * self.width + x0]
            + self.sums[y0 * self.width + x0]
    }
}

impl SsimConfig {
    /// Computes the sliding-window SSIM index map between reference `x`
    /// (e.g. the 16×AF frame) and test image `y`.
    ///
    /// The map has one entry per window position:
    /// `(W - window + 1) × (H - window + 1)` values.
    ///
    /// # Panics
    ///
    /// Panics if the images differ in size or are smaller than the window.
    pub fn ssim_map(&self, x: &GrayImage, y: &GrayImage) -> SsimMap {
        assert_eq!(x.width(), y.width(), "image widths differ");
        assert_eq!(x.height(), y.height(), "image heights differ");
        assert!(
            x.width() >= self.window && x.height() >= self.window,
            "images smaller than the SSIM window"
        );
        let ones = GrayImage::filled(x.width(), x.height(), 1.0);
        let sx = Integral::of_product(x, &ones);
        let sy = Integral::of_product(y, &ones);
        let sxx = Integral::of_product(x, x);
        let syy = Integral::of_product(y, y);
        let sxy = Integral::of_product(x, y);

        let win = self.window as usize;
        let n = (win * win) as f64;
        let c1 = f64::from((self.k1 * self.dynamic_range).powi(2));
        let c2 = f64::from((self.k2 * self.dynamic_range).powi(2));

        let out_w = x.width() - self.window + 1;
        let out_h = x.height() - self.window + 1;
        // Banded over window rows: every value is a pure function of the
        // shared integrals, and bands concatenate in row order, so the map
        // is bit-identical for any worker count (see [`SsimConfig::threads`]).
        let threads = crate::par::thread_count(self.threads);
        let values = crate::par::map_rows(threads, out_h as usize, |wy| {
            let mut row = Vec::with_capacity(out_w as usize);
            for wx in 0..out_w as usize {
                let (x0, y0, x1, y1) = (wx, wy, wx + win, wy + win);
                let mx = sx.window_sum(x0, y0, x1, y1) / n;
                let my = sy.window_sum(x0, y0, x1, y1) / n;
                let vx = (sxx.window_sum(x0, y0, x1, y1) / n - mx * mx).max(0.0);
                let vy = (syy.window_sum(x0, y0, x1, y1) / n - my * my).max(0.0);
                let cov = sxy.window_sum(x0, y0, x1, y1) / n - mx * my;
                let ssim = ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                    / ((mx * mx + my * my + c1) * (vx + vy + c2));
                row.push(ssim as f32);
            }
            row
        });
        SsimMap {
            width: out_w,
            height: out_h,
            values,
        }
    }

    /// The mean SSIM between two images (the paper's Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SsimConfig::ssim_map`].
    pub fn mssim(&self, x: &GrayImage, y: &GrayImage) -> f32 {
        self.ssim_map(x, y).mean()
    }

    /// Like [`SsimConfig::mssim`], but records a `quality::ssim` span and
    /// window counters into `telemetry` on the analysis track.
    ///
    /// SSIM runs off-pipeline, so its span is clocked in deterministic work
    /// units — one per window evaluated, starting at 0 — not GPU cycles.
    /// The recorded numbers are pure functions of the image dimensions and
    /// SSIM parameters, never of the thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SsimConfig::ssim_map`].
    pub fn mssim_traced(
        &self,
        telemetry: &mut patu_obs::Collector,
        x: &GrayImage,
        y: &GrayImage,
    ) -> f32 {
        let map = self.ssim_map(x, y);
        let windows = u64::from(map.width()) * u64::from(map.height());
        telemetry.span_arg("quality::ssim", 0, windows, "windows", windows);
        telemetry.add("ssim::windows", windows);
        telemetry.add(
            "ssim::pixels_in",
            u64::from(x.width()) * u64::from(x.height()),
        );
        map.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: u32, height: u32) -> GrayImage {
        let data = (0..height)
            .flat_map(|y| (0..width).map(move |x| ((x * 7 + y * 13) % 256) as f32))
            .collect();
        GrayImage::new(width, height, data)
    }

    #[test]
    fn identical_images_score_one() {
        let img = gradient(32, 24);
        let m = SsimConfig::default().mssim(&img, &img);
        assert!((m - 1.0).abs() < 1e-6, "got {m}");
    }

    #[test]
    fn flat_images_same_value_score_one() {
        let a = GrayImage::filled(16, 16, 100.0);
        let m = SsimConfig::default().mssim(&a, &a.clone());
        assert!((m - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverted_image_scores_low() {
        let img = gradient(32, 32);
        let inv = GrayImage::new(32, 32, img.samples().iter().map(|v| 255.0 - v).collect());
        let m = SsimConfig::default().mssim(&img, &inv);
        assert!(m < 0.3, "structural inversion must score low, got {m}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = gradient(24, 24);
        let mut b = a.clone();
        for i in 0..24 {
            b.set(i, i, 255.0 - b.get(i, i));
        }
        let cfg = SsimConfig::default();
        let ab = cfg.mssim(&a, &b);
        let ba = cfg.mssim(&b, &a);
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn ssim_bounded_above_by_one() {
        let a = gradient(24, 24);
        let mut b = a.clone();
        b.set(5, 5, 0.0);
        let map = SsimConfig::default().ssim_map(&a, &b);
        for &v in map.values() {
            assert!(v <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn local_damage_is_localized() {
        let a = gradient(64, 64);
        let mut b = a.clone();
        // Damage an 8x8 block in the corner.
        for y in 0..8 {
            for x in 0..8 {
                b.set(x, y, 255.0 - b.get(x, y));
            }
        }
        let map = SsimConfig::default().ssim_map(&a, &b);
        let damaged = map.get(0, 0);
        let pristine = map.get(40, 40);
        assert!(damaged < 0.7, "damaged window scores low, got {damaged}");
        assert!(
            (pristine - 1.0).abs() < 1e-5,
            "far window untouched, got {pristine}"
        );
    }

    #[test]
    fn blur_lowers_ssim_less_than_inversion() {
        let a = gradient(32, 32);
        // 3x1 horizontal blur.
        let mut blurred = a.clone();
        for y in 0..32 {
            for x in 1..31 {
                let v = (a.get(x - 1, y) + a.get(x, y) + a.get(x + 1, y)) / 3.0;
                blurred.set(x, y, v);
            }
        }
        let inv = GrayImage::new(32, 32, a.samples().iter().map(|v| 255.0 - v).collect());
        let cfg = SsimConfig::default();
        let m_blur = cfg.mssim(&a, &blurred);
        let m_inv = cfg.mssim(&a, &inv);
        assert!(
            m_blur > m_inv,
            "blur {m_blur} should beat inversion {m_inv}"
        );
        assert!(m_blur < 1.0);
    }

    #[test]
    fn banded_map_bit_identical_across_thread_counts() {
        let a = gradient(48, 37);
        let mut b = a.clone();
        for i in 0..37 {
            b.set(i, i, 255.0 - b.get(i, i));
        }
        let serial = SsimConfig::default().with_threads(1).ssim_map(&a, &b);
        for threads in [2, 3, 4, 16] {
            let banded = SsimConfig::default().with_threads(threads).ssim_map(&a, &b);
            assert_eq!(serial, banded, "threads={threads}");
            let ms = SsimConfig::default().with_threads(1).mssim(&a, &b);
            let mb = SsimConfig::default().with_threads(threads).mssim(&a, &b);
            assert_eq!(ms.to_bits(), mb.to_bits(), "MSSIM bits, threads={threads}");
        }
    }

    #[test]
    fn traced_mssim_matches_and_records_analysis_span() {
        use patu_obs::{Collector, TelemetryConfig, TraceLevel, Track};
        let a = gradient(32, 24);
        let cfg = SsimConfig::default();
        let plain = cfg.mssim(&a, &a.clone());
        let mut telemetry = Collector::new(
            TelemetryConfig::with_level(TraceLevel::Spans),
            Track::Analysis,
        );
        let traced = cfg.mssim_traced(&mut telemetry, &a, &a.clone());
        assert_eq!(
            plain.to_bits(),
            traced.to_bits(),
            "tracing must not change the metric"
        );
        let mut frame = patu_obs::FrameTelemetry::new(TraceLevel::Spans, 0, "p".into(), 0);
        frame.absorb(telemetry);
        assert_eq!(frame.stage_totals(), vec![("quality::ssim", 1, 25 * 17)]);
        assert_eq!(frame.counters["ssim::windows"], 25 * 17);
        assert_eq!(frame.counters["ssim::pixels_in"], 32 * 24);
    }

    #[test]
    fn map_dimensions() {
        let a = gradient(32, 20);
        let map = SsimConfig::default().ssim_map(&a, &a.clone());
        assert_eq!(map.width(), 25);
        assert_eq!(map.height(), 13);
        assert_eq!(map.values().len(), 25 * 13);
    }

    #[test]
    fn fraction_above_threshold() {
        let a = gradient(32, 32);
        let map = SsimConfig::default().ssim_map(&a, &a.clone());
        assert_eq!(map.fraction_above(0.99), 1.0);
        assert_eq!(map.fraction_above(1.5), 0.0);
    }

    #[test]
    fn window_size_is_respected() {
        let a = gradient(32, 32);
        let cfg = SsimConfig {
            window: 11,
            ..SsimConfig::default()
        };
        let map = cfg.ssim_map(&a, &a.clone());
        assert_eq!(map.width(), 22);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_sizes_panic() {
        let a = gradient(16, 16);
        let b = gradient(17, 16);
        let _ = SsimConfig::default().mssim(&a, &b);
    }

    #[test]
    #[should_panic(expected = "smaller than the SSIM window")]
    fn tiny_image_panics() {
        let a = GrayImage::filled(4, 4, 0.0);
        let _ = SsimConfig::default().mssim(&a, &a.clone());
    }

    #[test]
    fn to_gray_image_scales() {
        let a = gradient(16, 16);
        let map = SsimConfig::default().ssim_map(&a, &a.clone());
        let img = map.to_gray_image();
        assert!(
            img.samples().iter().all(|&v| v > 254.0),
            "all-ones map -> white"
        );
    }

    #[test]
    fn mean_shift_penalized_by_luminance_term() {
        let a = GrayImage::filled(16, 16, 50.0);
        let b = GrayImage::filled(16, 16, 200.0);
        let m = SsimConfig::default().mssim(&a, &b);
        assert!(m < 0.6, "large luminance shift penalized, got {m}");
    }
}
