//! Gaussian-weighted SSIM: the reference implementation's 11×11 window with
//! a σ = 1.5 circular-symmetric Gaussian, plus the decomposition of SSIM
//! into its luminance / contrast / structure components.
//!
//! The uniform-window variant in [`crate::ssim`] is what the integral-image
//! fast path computes and what the experiment harness uses frame-by-frame;
//! this module provides the original formulation for validation and for
//! analyses that need the component split (e.g. distinguishing AF's
//! *contrast* damage from *structure* damage).

use crate::image::GrayImage;

/// Parameters for the Gaussian-weighted SSIM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSsimConfig {
    /// Window edge length (11 in the reference implementation).
    pub window: u32,
    /// Gaussian standard deviation in pixels (1.5 in the reference).
    pub sigma: f32,
    /// Luminance stabilization factor (`K1 = 0.01`).
    pub k1: f32,
    /// Contrast stabilization factor (`K2 = 0.03`).
    pub k2: f32,
    /// Sample dynamic range (255).
    pub dynamic_range: f32,
    /// Worker threads for the banded scan (`None` = `PATU_THREADS`, then
    /// [`std::thread::available_parallelism`]). Banding is bit-identical to
    /// the serial scan: per-window values are concatenated in row order and
    /// reduced serially afterwards.
    pub threads: Option<usize>,
}

impl Default for GaussianSsimConfig {
    fn default() -> GaussianSsimConfig {
        GaussianSsimConfig {
            window: 11,
            sigma: 1.5,
            k1: 0.01,
            k2: 0.03,
            dynamic_range: 255.0,
            threads: None,
        }
    }
}

/// The three SSIM components of one comparison, each in `(0, 1]` for
/// non-degenerate inputs, with `ssim = luminance × contrast × structure`
/// (structure may be negative for anti-correlated content).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimComponents {
    /// Mean-luminance agreement `(2 μx μy + C1) / (μx² + μy² + C1)`.
    pub luminance: f64,
    /// Contrast agreement `(2 σx σy + C2) / (σx² + σy² + C2)`.
    pub contrast: f64,
    /// Structure correlation `(σxy + C3) / (σx σy + C3)`, `C3 = C2 / 2`.
    pub structure: f64,
}

impl SsimComponents {
    /// The combined SSIM value.
    pub fn ssim(&self) -> f64 {
        self.luminance * self.contrast * self.structure
    }
}

impl GaussianSsimConfig {
    fn kernel(&self) -> Vec<f64> {
        let n = self.window as i64;
        let half = (n - 1) as f64 / 2.0;
        let s2 = 2.0 * f64::from(self.sigma) * f64::from(self.sigma);
        let mut k = Vec::with_capacity((n * n) as usize);
        let mut sum = 0.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - half;
                let dy = y as f64 - half;
                let w = (-(dx * dx + dy * dy) / s2).exp();
                k.push(w);
                sum += w;
            }
        }
        for w in &mut k {
            *w /= sum;
        }
        k
    }

    /// Weighted local statistics of the window anchored at `(x0, y0)`.
    fn window_components(
        &self,
        a: &GrayImage,
        b: &GrayImage,
        kernel: &[f64],
        x0: u32,
        y0: u32,
    ) -> SsimComponents {
        let n = self.window;
        let (mut mx, mut my) = (0.0f64, 0.0f64);
        for wy in 0..n {
            for wx in 0..n {
                let w = kernel[(wy * n + wx) as usize];
                mx += w * f64::from(a.get(x0 + wx, y0 + wy));
                my += w * f64::from(b.get(x0 + wx, y0 + wy));
            }
        }
        let (mut vx, mut vy, mut cov) = (0.0f64, 0.0f64, 0.0f64);
        for wy in 0..n {
            for wx in 0..n {
                let w = kernel[(wy * n + wx) as usize];
                let da = f64::from(a.get(x0 + wx, y0 + wy)) - mx;
                let db = f64::from(b.get(x0 + wx, y0 + wy)) - my;
                vx += w * da * da;
                vy += w * db * db;
                cov += w * da * db;
            }
        }
        let c1 = f64::from((self.k1 * self.dynamic_range).powi(2));
        let c2 = f64::from((self.k2 * self.dynamic_range).powi(2));
        let c3 = c2 / 2.0;
        let (sx, sy) = (vx.max(0.0).sqrt(), vy.max(0.0).sqrt());
        SsimComponents {
            luminance: (2.0 * mx * my + c1) / (mx * mx + my * my + c1),
            contrast: (2.0 * sx * sy + c2) / (vx + vy + c2),
            structure: (cov + c3) / (sx * sy + c3),
        }
    }

    /// Mean SSIM over all (strided) window positions.
    ///
    /// `stride = 1` is the exact reference computation; larger strides trade
    /// accuracy for speed on large frames.
    ///
    /// # Panics
    ///
    /// Panics if the images differ in size, are smaller than the window, or
    /// `stride == 0`.
    pub fn mssim_strided(&self, a: &GrayImage, b: &GrayImage, stride: u32) -> f64 {
        assert_eq!(a.width(), b.width(), "image widths differ");
        assert_eq!(a.height(), b.height(), "image heights differ");
        assert!(stride > 0, "stride must be positive");
        assert!(
            a.width() >= self.window && a.height() >= self.window,
            "images smaller than the SSIM window"
        );
        let kernel = self.kernel();
        // Window rows banded across workers; the reduction runs serially on
        // the concatenated values, in the same order as the serial scan, so
        // the mean's floating-point rounding is thread-count independent.
        let rows: Vec<u32> = (0..a.height())
            .step_by(stride as usize)
            .take_while(|y| y + self.window <= a.height())
            .collect();
        let threads = crate::par::thread_count(self.threads);
        let values = crate::par::map_rows(threads, rows.len(), |row| {
            let y = rows[row];
            let mut out = Vec::new();
            let mut x = 0;
            while x + self.window <= a.width() {
                out.push(self.window_components(a, b, &kernel, x, y).ssim());
                x += stride;
            }
            out
        });
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Mean SSIM with unit stride (the reference computation).
    ///
    /// # Panics
    ///
    /// See [`GaussianSsimConfig::mssim_strided`].
    pub fn mssim(&self, a: &GrayImage, b: &GrayImage) -> f64 {
        self.mssim_strided(a, b, 1)
    }

    /// Mean component decomposition over all (strided) windows.
    ///
    /// # Panics
    ///
    /// See [`GaussianSsimConfig::mssim_strided`].
    pub fn components_strided(&self, a: &GrayImage, b: &GrayImage, stride: u32) -> SsimComponents {
        assert_eq!(a.width(), b.width(), "image widths differ");
        assert_eq!(a.height(), b.height(), "image heights differ");
        assert!(stride > 0, "stride must be positive");
        assert!(a.width() >= self.window && a.height() >= self.window);
        let kernel = self.kernel();
        let (mut l, mut c, mut s) = (0.0f64, 0.0f64, 0.0f64);
        let mut count = 0u64;
        let mut y = 0;
        while y + self.window <= a.height() {
            let mut x = 0;
            while x + self.window <= a.width() {
                let comp = self.window_components(a, b, &kernel, x, y);
                l += comp.luminance;
                c += comp.contrast;
                s += comp.structure;
                count += 1;
                x += stride;
            }
            y += stride;
        }
        let n = count as f64;
        SsimComponents {
            luminance: l / n,
            contrast: c / n,
            structure: s / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssim::SsimConfig;

    fn gradient(width: u32, height: u32, phase: u32) -> GrayImage {
        let data = (0..height)
            .flat_map(|y| (0..width).map(move |x| ((x * 7 + y * 13 + phase) % 256) as f32))
            .collect();
        GrayImage::new(width, height, data)
    }

    #[test]
    fn identical_images_score_one() {
        let img = gradient(24, 24, 0);
        let m = GaussianSsimConfig::default().mssim(&img, &img.clone());
        assert!((m - 1.0).abs() < 1e-9, "got {m}");
    }

    #[test]
    fn kernel_sums_to_one() {
        let cfg = GaussianSsimConfig::default();
        let k = cfg.kernel();
        assert_eq!(k.len(), 121);
        let sum: f64 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Center weight is the largest.
        let center = k[(5 * 11 + 5) as usize];
        assert!(k.iter().all(|&w| w <= center + 1e-15));
    }

    #[test]
    fn tracks_uniform_window_variant() {
        // Both implementations should agree on direction and rough scale.
        let a = gradient(32, 32, 0);
        let mut b = a.clone();
        for i in 0..32 {
            b.set(i, 16, 255.0 - b.get(i, 16));
        }
        let gauss = GaussianSsimConfig::default().mssim(&a, &b);
        let uniform = f64::from(SsimConfig::default().mssim(&a, &b));
        assert!(gauss < 1.0 && uniform < 1.0);
        assert!(
            (gauss - uniform).abs() < 0.25,
            "gauss {gauss} vs uniform {uniform}"
        );
    }

    #[test]
    fn components_multiply_to_ssim() {
        let a = gradient(16, 16, 0);
        let b = gradient(16, 16, 40);
        let cfg = GaussianSsimConfig::default();
        let kernel = cfg.kernel();
        let comp = cfg.window_components(&a, &b, &kernel, 0, 0);
        let direct = comp.ssim();
        assert!((direct - comp.luminance * comp.contrast * comp.structure).abs() < 1e-12);
    }

    #[test]
    fn luminance_shift_hits_luminance_term() {
        let a = GrayImage::filled(16, 16, 60.0);
        let b = GrayImage::filled(16, 16, 180.0);
        let comp = GaussianSsimConfig::default().components_strided(&a, &b, 1);
        assert!(
            comp.luminance < 0.8,
            "luminance term drops: {}",
            comp.luminance
        );
        // Flat images: contrast/structure terms stay at their stabilized 1.
        assert!((comp.contrast - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contrast_loss_hits_contrast_term() {
        let a = gradient(22, 22, 0);
        let mean = a.mean();
        // b = flattened version of a (half contrast around the mean).
        let b = GrayImage::new(
            22,
            22,
            a.samples()
                .iter()
                .map(|&v| mean + (v - mean) * 0.3)
                .collect(),
        );
        let comp = GaussianSsimConfig::default().components_strided(&a, &b, 1);
        assert!(
            comp.contrast < 0.9,
            "contrast term drops: {}",
            comp.contrast
        );
        assert!(
            comp.structure > 0.95,
            "structure preserved: {}",
            comp.structure
        );
    }

    #[test]
    fn structure_inversion_hits_structure_term() {
        let a = gradient(22, 22, 0);
        let b = GrayImage::new(22, 22, a.samples().iter().map(|&v| 255.0 - v).collect());
        let comp = GaussianSsimConfig::default().components_strided(&a, &b, 1);
        assert!(comp.structure < 0.0, "anti-correlated: {}", comp.structure);
    }

    #[test]
    fn banded_scan_bit_identical_across_thread_counts() {
        let a = gradient(40, 33, 0);
        let b = gradient(40, 33, 17);
        for stride in [1u32, 3] {
            let serial = GaussianSsimConfig {
                threads: Some(1),
                ..Default::default()
            }
            .mssim_strided(&a, &b, stride);
            for threads in [2usize, 4, 9] {
                let banded = GaussianSsimConfig {
                    threads: Some(threads),
                    ..Default::default()
                }
                .mssim_strided(&a, &b, stride);
                assert_eq!(
                    serial.to_bits(),
                    banded.to_bits(),
                    "stride={stride} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn stride_approximation_close_to_exact() {
        let a = gradient(44, 44, 0);
        let b = gradient(44, 44, 9);
        let cfg = GaussianSsimConfig::default();
        let exact = cfg.mssim(&a, &b);
        let fast = cfg.mssim_strided(&a, &b, 4);
        assert!((exact - fast).abs() < 0.05, "{exact} vs {fast}");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let a = gradient(16, 16, 0);
        let _ = GaussianSsimConfig::default().mssim_strided(&a, &a.clone(), 0);
    }
}
