//! Deterministic sampled MSSIM: a stratified-tile estimator of Eq. (2).
//!
//! Full MSSIM ([`SsimConfig::mssim`]) builds five full-resolution integral
//! images before scanning every window position — the global table build
//! dominates the cost at production resolutions. The sampled estimator
//! avoids it entirely:
//!
//! 1. window positions are partitioned into square tiles of
//!    [`SampledSsimConfig::tile`] × `tile` positions, row-major;
//! 2. consecutive runs of `S = round(1 / fraction)` tiles form strata, and a
//!    [`DetRng`] seeded with [`SampledSsimConfig::seed`] picks exactly one
//!    tile per stratum (one draw per stratum — the plan is a pure function
//!    of the seed and the image dimensions, so the estimate is bit-identical
//!    across runs, machines and `PATU_THREADS` settings);
//! 3. each sampled tile is evaluated over *local* integral images covering
//!    only its `(tile + window − 1)²` pixel support, with the same window
//!    arithmetic as the full map;
//! 4. per-window `f32` SSIM values accumulate in `f64` and the mean over
//!    sampled windows is the estimate.
//!
//! Work therefore scales with the sampled fraction instead of the frame
//! area: at the default 1/4 fraction a 512×512 comparison evaluates ~1/4 of
//! the windows and never touches the other 3/4 of the frame.
//!
//! # Error bound
//!
//! Each stratum contributes the exact mean of one of its `S` tiles, so the
//! estimate deviates from the full MSSIM by at most the mean within-stratum
//! spread: `|est − MSSIM| ≤ mean_s(max_tile_mean(s) − min_tile_mean(s))`,
//! which is 0 for spatially uniform quality and degrades gracefully as
//! quality becomes patchy (SSIM itself is bounded in `[−1, 1]`, so the
//! bound never exceeds 2). Rendered-frame comparisons — same scene, same
//! camera, different filtering — have strongly correlated neighboring
//! tiles; the acceptance suite (`tests/batch_equivalence.rs`) pins the
//! observed error at ≤ 0.005 against the full MSSIM on every seed scene.
//!
//! # The `PATU_SSIM_SAMPLE` knob
//!
//! When [`SampledSsimConfig::fraction`] is `None`, the environment variable
//! `PATU_SSIM_SAMPLE` selects the mode: `off` (case-insensitive) forces the
//! full computation, a float in `(0, 1)` sets the sampled fraction, and
//! anything else (including unset) falls back to the default fraction
//! [`DEFAULT_FRACTION`]. Values ≥ 1 also run the full computation — a
//! fraction of 1 *is* the full scan.

use crate::image::GrayImage;
use crate::ssim::SsimConfig;
use patu_gmath::DetRng;

/// The sampled fraction used when neither the config nor the
/// `PATU_SSIM_SAMPLE` environment variable picks one: 1/4 of the tiles.
///
/// Paired with the default 8-window tile this is the coarsest plan that
/// keeps the observed estimator error within 0.005 of the full MSSIM on
/// every seed scene (see `tests/batch_equivalence.rs`).
pub const DEFAULT_FRACTION: f64 = 0.25;

/// Configuration of the stratified sampled-MSSIM estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledSsimConfig {
    /// Window parameters shared with the full computation (and used verbatim
    /// when the estimator falls back to the full scan).
    pub ssim: SsimConfig,
    /// Tile edge length in window positions (default 8).
    pub tile: u32,
    /// Sampled fraction of tiles in `(0, 1)`. `None` resolves the
    /// `PATU_SSIM_SAMPLE` environment variable, then [`DEFAULT_FRACTION`];
    /// values outside `(0, 1)` run the full computation.
    pub fraction: Option<f64>,
    /// Seed of the tile-selection plan. Equal seeds and dimensions yield
    /// identical plans — and therefore bit-identical estimates.
    pub seed: u64,
}

impl SampledSsimConfig {
    /// Default estimator (8×8 windows, 8-window tiles) with the given plan
    /// seed.
    pub fn new(seed: u64) -> SampledSsimConfig {
        SampledSsimConfig {
            ssim: SsimConfig::default(),
            tile: 8,
            fraction: None,
            seed,
        }
    }

    /// Overrides the sampled fraction, bypassing `PATU_SSIM_SAMPLE`.
    #[must_use]
    pub fn with_fraction(mut self, fraction: f64) -> SampledSsimConfig {
        self.fraction = Some(fraction);
        self
    }

    /// Overrides the tile edge length (window positions per tile side).
    #[must_use]
    pub fn with_tile(mut self, tile: u32) -> SampledSsimConfig {
        self.tile = tile;
        self
    }

    /// Overrides the underlying SSIM window parameters.
    #[must_use]
    pub fn with_ssim(mut self, ssim: SsimConfig) -> SampledSsimConfig {
        self.ssim = ssim;
        self
    }

    /// The effective sampled fraction: `Some(f)` for a sampled run, `None`
    /// when the estimator would run the full computation (explicit or
    /// `PATU_SSIM_SAMPLE=off`, or a fraction outside `(0, 1)`).
    pub fn resolved_fraction(&self) -> Option<f64> {
        match self.fraction {
            Some(f) => sanitize(f),
            None => match env_mode() {
                EnvMode::Off => None,
                EnvMode::Fraction(f) => sanitize(f),
                EnvMode::Default => Some(DEFAULT_FRACTION),
            },
        }
    }

    /// Estimates the mean SSIM between `x` and `y` from a deterministic
    /// stratified sample of window tiles (or computes it exactly when the
    /// resolved mode is full — see [`SampledSsimConfig::resolved_fraction`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SsimConfig::ssim_map`]: images
    /// that differ in size or are smaller than the window.
    pub fn mssim_sampled(&self, x: &GrayImage, y: &GrayImage) -> f32 {
        self.mssim_with(x, y, self.resolved_fraction())
    }

    /// Estimates with a mode resolved ahead of time: `None` runs the full
    /// computation, `Some(f)` the stratified estimate at fraction `f`.
    ///
    /// This is the construction-time path for long-lived callers — resolve
    /// [`SampledSsimConfig::resolved_fraction`] once when the service is
    /// built and pass the value down, instead of re-reading
    /// `PATU_SSIM_SAMPLE` on every estimate.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SsimConfig::ssim_map`]: images
    /// that differ in size or are smaller than the window.
    pub fn mssim_with(&self, x: &GrayImage, y: &GrayImage, resolved: Option<f64>) -> f32 {
        match resolved.and_then(sanitize) {
            None => self.ssim.mssim(x, y),
            Some(fraction) => self.estimate(x, y, fraction),
        }
    }

    fn estimate(&self, x: &GrayImage, y: &GrayImage, fraction: f64) -> f32 {
        assert_eq!(x.width(), y.width(), "image widths differ");
        assert_eq!(x.height(), y.height(), "image heights differ");
        assert!(
            x.width() >= self.ssim.window && x.height() >= self.ssim.window,
            "images smaller than the SSIM window"
        );
        let win = self.ssim.window as usize;
        let out_w = (x.width() - self.ssim.window + 1) as usize;
        let out_h = (x.height() - self.ssim.window + 1) as usize;
        let tile = (self.tile.max(1)) as usize;
        let tiles_x = out_w.div_ceil(tile);
        let tiles_y = out_h.div_ceil(tile);
        let total = tiles_x * tiles_y;
        let stride = (1.0 / fraction).round().max(1.0) as usize;

        let n = (win * win) as f64;
        let c1 = f64::from((self.ssim.k1 * self.ssim.dynamic_range).powi(2));
        let c2 = f64::from((self.ssim.k2 * self.ssim.dynamic_range).powi(2));

        let mut rng = DetRng::new(self.seed);
        let mut scratch = TileIntegrals::default();
        let mut sum = 0.0f64;
        let mut count = 0u64;
        let mut s = 0;
        while s < total {
            let len = (total - s).min(stride);
            let pick = s + rng.range(len as u64) as usize;
            let wx0 = (pick % tiles_x) * tile;
            let wy0 = (pick / tiles_x) * tile;
            let tw = tile.min(out_w - wx0);
            let th = tile.min(out_h - wy0);
            scratch.build(x, y, wx0 as u32, wy0 as u32, tw + win - 1, th + win - 1);
            for wy in 0..th {
                for wx in 0..tw {
                    let (x0, y0, x1, y1) = (wx, wy, wx + win, wy + win);
                    let mx = scratch.win(&scratch.sx, x0, y0, x1, y1) / n;
                    let my = scratch.win(&scratch.sy, x0, y0, x1, y1) / n;
                    let vx = (scratch.win(&scratch.sxx, x0, y0, x1, y1) / n - mx * mx).max(0.0);
                    let vy = (scratch.win(&scratch.syy, x0, y0, x1, y1) / n - my * my).max(0.0);
                    let cov = scratch.win(&scratch.sxy, x0, y0, x1, y1) / n - mx * my;
                    let ssim = ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                        / ((mx * mx + my * my + c1) * (vx + vy + c2));
                    sum += f64::from(ssim as f32);
                }
            }
            count += (tw * th) as u64;
            s += len;
        }
        (sum / count as f64) as f32
    }
}

/// What the environment variable asked for.
enum EnvMode {
    Off,
    Fraction(f64),
    Default,
}

fn env_mode() -> EnvMode {
    // patu-lint: allow(knob-at-construction) — resolved once per estimator or
    // service construction (resolved_fraction); per-frame callers use mssim_with
    match std::env::var("PATU_SSIM_SAMPLE") {
        Ok(v) => {
            let v = v.trim();
            if v.eq_ignore_ascii_case("off") {
                EnvMode::Off
            } else {
                match v.parse::<f64>() {
                    Ok(f) => EnvMode::Fraction(f),
                    Err(_) => EnvMode::Default,
                }
            }
        }
        Err(_) => EnvMode::Default,
    }
}

/// `Some(f)` for a usable sampled fraction, `None` (full scan) otherwise.
fn sanitize(f: f64) -> Option<f64> {
    (f.is_finite() && f > 0.0 && f < 1.0).then_some(f)
}

/// Five local summed-area tables over one sampled tile's pixel support,
/// rebuilt (into recycled buffers) per tile. Indexed in tile-local
/// coordinates; one extra zero row/column simplifies window queries, exactly
/// like the full-resolution tables in [`crate::ssim`].
#[derive(Default)]
struct TileIntegrals {
    stride: usize,
    sx: Vec<f64>,
    sy: Vec<f64>,
    sxx: Vec<f64>,
    syy: Vec<f64>,
    sxy: Vec<f64>,
}

impl TileIntegrals {
    fn build(&mut self, a: &GrayImage, b: &GrayImage, px0: u32, py0: u32, w: usize, h: usize) {
        let stride = w + 1;
        self.stride = stride;
        for sums in [
            &mut self.sx,
            &mut self.sy,
            &mut self.sxx,
            &mut self.syy,
            &mut self.sxy,
        ] {
            sums.clear();
            sums.resize(stride * (h + 1), 0.0);
        }
        for y in 0..h {
            let mut acc_x = 0.0f64;
            let mut acc_y = 0.0f64;
            let mut acc_xx = 0.0f64;
            let mut acc_yy = 0.0f64;
            let mut acc_xy = 0.0f64;
            for x in 0..w {
                let av = f64::from(a.get(px0 + x as u32, py0 + y as u32));
                let bv = f64::from(b.get(px0 + x as u32, py0 + y as u32));
                acc_x += av;
                acc_y += bv;
                acc_xx += av * av;
                acc_yy += bv * bv;
                acc_xy += av * bv;
                let i = (y + 1) * stride + (x + 1);
                let up = y * stride + (x + 1);
                self.sx[i] = self.sx[up] + acc_x;
                self.sy[i] = self.sy[up] + acc_y;
                self.sxx[i] = self.sxx[up] + acc_xx;
                self.syy[i] = self.syy[up] + acc_yy;
                self.sxy[i] = self.sxy[up] + acc_xy;
            }
        }
    }

    /// Sum over the half-open window `[x0, x1) × [y0, y1)` (tile-local).
    #[inline]
    fn win(&self, sums: &[f64], x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        sums[y1 * self.stride + x1] - sums[y0 * self.stride + x1] - sums[y1 * self.stride + x0]
            + sums[y0 * self.stride + x0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(width: u32, height: u32, phase: u32) -> GrayImage {
        let data = (0..height)
            .flat_map(|y| (0..width).map(move |x| ((x * 7 + y * 13 + phase) % 256) as f32))
            .collect();
        GrayImage::new(width, height, data)
    }

    #[test]
    fn identical_images_estimate_one() {
        let img = gradient(128, 96, 0);
        let m = SampledSsimConfig::new(7)
            .with_fraction(0.25)
            .mssim_sampled(&img, &img);
        assert!((m - 1.0).abs() < 1e-6, "got {m}");
    }

    #[test]
    fn estimate_is_deterministic_per_seed() {
        let a = gradient(160, 120, 0);
        let b = gradient(160, 120, 40);
        let cfg = SampledSsimConfig::new(99).with_fraction(0.125);
        let m1 = cfg.mssim_sampled(&a, &b);
        let m2 = cfg.mssim_sampled(&a, &b);
        assert_eq!(m1.to_bits(), m2.to_bits(), "same seed, same estimate");
    }

    #[test]
    fn estimate_tracks_the_full_mssim() {
        // A spatially uniform distortion (gain + bias), the shape rendered
        // frame pairs take: per-tile means stay close, so stratified
        // sampling tracks tightly. (Two *phase-shifted* periodic gradients
        // would instead alias against the plan — the integration suite pins
        // real frame pairs at ≤ 0.005.)
        let a = gradient(160, 120, 0);
        let b = GrayImage::new(
            160,
            120,
            a.samples().iter().map(|v| v * 0.92 + 5.0).collect(),
        );
        let full = SsimConfig::default().with_threads(1).mssim(&a, &b);
        for seed in [1, 2, 17, 99] {
            let est = SampledSsimConfig::new(seed)
                .with_tile(8)
                .with_fraction(0.125)
                .mssim_sampled(&a, &b);
            assert!(
                (est - full).abs() <= 0.005,
                "seed {seed}: estimate {est} vs full {full}"
            );
        }
    }

    #[test]
    fn out_of_range_fraction_runs_the_full_scan() {
        let a = gradient(96, 96, 0);
        let b = gradient(96, 96, 70);
        let full = SsimConfig::default().with_threads(1).mssim(&a, &b);
        for f in [1.0, 2.0, 0.0, -0.5, f64::NAN] {
            let est = SampledSsimConfig::new(3)
                .with_ssim(SsimConfig::default().with_threads(1))
                .with_fraction(f)
                .mssim_sampled(&a, &b);
            assert_eq!(est.to_bits(), full.to_bits(), "fraction {f}");
        }
    }

    #[test]
    fn sampled_windows_match_the_full_map_values() {
        // The local-integral window arithmetic must agree with the global
        // tables to within f32 rounding: estimate at fraction ~1 (every
        // stratum holds one tile, so every tile is sampled) and compare to
        // the exact mean computed the same way from the full map's values.
        let a = gradient(96, 64, 0);
        let b = gradient(96, 64, 25);
        let est = SampledSsimConfig::new(5)
            .with_fraction(0.9999)
            .mssim_sampled(&a, &b);
        let map = SsimConfig::default().with_threads(1).ssim_map(&a, &b);
        let exact = (map.values().iter().map(|&v| f64::from(v)).sum::<f64>()
            / map.values().len() as f64) as f32;
        assert!((est - exact).abs() < 1e-6, "est {est} vs exact {exact}");
    }

    #[test]
    fn small_images_and_tiny_tiles_work() {
        let a = gradient(16, 12, 0);
        let b = gradient(16, 12, 9);
        let m = SampledSsimConfig::new(1)
            .with_tile(4)
            .with_fraction(0.5)
            .mssim_sampled(&a, &b);
        assert!(m.is_finite() && m <= 1.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_sizes_panic() {
        let a = gradient(32, 32, 0);
        let b = gradient(33, 32, 0);
        let _ = SampledSsimConfig::new(0)
            .with_fraction(0.5)
            .mssim_sampled(&a, &b);
    }

    #[test]
    fn sanitize_accepts_only_open_unit_interval() {
        assert_eq!(sanitize(0.125), Some(0.125));
        assert_eq!(sanitize(0.0), None);
        assert_eq!(sanitize(1.0), None);
        assert_eq!(sanitize(-1.0), None);
        assert_eq!(sanitize(f64::INFINITY), None);
        assert_eq!(sanitize(f64::NAN), None);
    }
}
