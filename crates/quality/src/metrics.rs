//! Reference distortion metrics: MSE and PSNR.
//!
//! The paper cites SSIM as superior to these for perceived quality
//! (Sec. II-C); they are provided for cross-checking and for tests.

use crate::image::GrayImage;

/// Mean squared error between two images.
///
/// # Panics
///
/// Panics if the images differ in size.
///
/// ```
/// use patu_quality::{mse, GrayImage};
/// let a = GrayImage::filled(4, 4, 10.0);
/// let b = GrayImage::filled(4, 4, 13.0);
/// assert_eq!(mse(&a, &b), 9.0);
/// ```
pub fn mse(a: &GrayImage, b: &GrayImage) -> f32 {
    assert_eq!(a.width(), b.width(), "image widths differ");
    assert_eq!(a.height(), b.height(), "image heights differ");
    let sum: f64 = a
        .samples()
        .iter()
        .zip(b.samples())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    (sum / a.samples().len() as f64) as f32
}

/// Peak signal-to-noise ratio in dB (peak 255). Identical images yield
/// `f32::INFINITY`.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f32 {
    let e = mse(a, b);
    if e == 0.0 {
        f32::INFINITY
    } else {
        10.0 * (255.0f32 * 255.0 / e).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let a = GrayImage::filled(8, 8, 42.0);
        assert_eq!(mse(&a, &a.clone()), 0.0);
    }

    #[test]
    fn psnr_infinite_for_identical() {
        let a = GrayImage::filled(8, 8, 42.0);
        assert!(psnr(&a, &a.clone()).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = GrayImage::filled(8, 8, 100.0);
        let b = GrayImage::filled(8, 8, 105.0);
        let c = GrayImage::filled(8, 8, 150.0);
        assert!(psnr(&a, &b) > psnr(&a, &c));
    }

    #[test]
    fn known_psnr_value() {
        // MSE = 25 -> PSNR = 10 log10(65025 / 25) ≈ 34.15 dB.
        let a = GrayImage::filled(4, 4, 0.0);
        let b = GrayImage::filled(4, 4, 5.0);
        assert!((psnr(&a, &b) - 34.1514).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn size_mismatch_panics() {
        let a = GrayImage::filled(4, 4, 0.0);
        let b = GrayImage::filled(5, 4, 0.0);
        let _ = mse(&a, &b);
    }
}
