//! Dirty-rect invalidation: diff two consecutive [`FrameScene`]s and
//! classify every screen tile.
//!
//! The engine is deliberately conservative about *what changed* and
//! empirically bounded about *how far it moved*:
//!
//! - Camera intrinsics or mesh-list shape changes invalidate everything.
//! - A mesh whose vertices, transform or material changed dirties every
//!   tile its projected bounds touch, under both the previous and the
//!   current camera (the object moved *from* somewhere *to* somewhere).
//! - For unchanged meshes under a moving camera, screen-space motion is
//!   estimated by reprojecting a 3×3×3 lattice of the mesh's world-space
//!   bounding box through both cameras. The lattice is consumed as eight
//!   octant sub-boxes: each octant splats its *maximum* corner displacement
//!   over the full screen rect the octant covers, so every tile a surface
//!   touches is charged a conservative motion bound — interior tiles
//!   between samples cannot silently go stale. Near octants splat large
//!   parallax over their (near, large) rects; far octants splat small
//!   motion — so a floor plane's near edge does not smear across the whole
//!   frame, but is never under-charged either.
//!
//! Motion is accumulated across reused frames (`drift`), so a slow creep
//! eventually forces a rerender; the bench's MSSIM floor is the empirical
//! backstop for the sampling approximation.

use crate::config::TemporalConfig;
use patu_gmath::{Mat4, Vec3};
use patu_raster::Mesh;
use patu_scenes::FrameScene;

/// Extra tiles dirtied/splatted around any projected rect, absorbing
/// rasterization coverage the sparse sample lattice misses.
const TILE_MARGIN: u32 = 1;

/// Clip-space `w` below which a sample counts as behind the near plane.
const MIN_W: f32 = 1e-3;

/// What the temporal pipeline does with one tile this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileClass {
    /// Blit the stored pixels; skip the fragment→texel path entirely.
    Reuse,
    /// Blit the stored pixels but refresh the tile's PATU decision summary
    /// (decisions stale, geometry stable).
    Repredict,
    /// Render from scratch.
    #[default]
    Rerender,
}

/// The per-tile verdict for one frame, over the full viewport tile grid
/// (row-major, including tiles the geometry pass leaves empty).
#[derive(Debug, Clone, PartialEq)]
pub struct FramePlan {
    tiles_x: u32,
    tiles_y: u32,
    classes: Vec<TileClass>,
    /// Accumulated screen-space drift carried by each surviving tile
    /// (zeroed where the class is [`TileClass::Rerender`]).
    drift: Vec<f32>,
}

impl FramePlan {
    /// A uniform plan (used when there is no previous frame to diff).
    pub fn uniform(tiles_x: u32, tiles_y: u32, class: TileClass) -> FramePlan {
        let n = (tiles_x as usize) * (tiles_y as usize);
        FramePlan {
            tiles_x,
            tiles_y,
            classes: vec![class; n],
            drift: vec![0.0; n],
        }
    }

    /// Grid width in tiles.
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Grid height in tiles.
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// The class of tile `(tx, ty)`; out-of-grid coordinates rerender.
    pub fn class(&self, tx: u32, ty: u32) -> TileClass {
        if tx >= self.tiles_x || ty >= self.tiles_y {
            return TileClass::Rerender;
        }
        self.classes[(ty * self.tiles_x + tx) as usize]
    }

    /// Accumulated drift carried into the next frame by grid index.
    pub fn drift(&self, idx: usize) -> f32 {
        self.drift.get(idx).copied().unwrap_or(0.0)
    }

    /// `(reused, repredicted, rerendered)` tile counts over the grid.
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut c = (0u64, 0u64, 0u64);
        for class in &self.classes {
            match class {
                TileClass::Reuse => c.0 += 1,
                TileClass::Repredict => c.1 += 1,
                TileClass::Rerender => c.2 += 1,
            }
        }
        c
    }

    /// Whether any tile avoids a full render.
    pub fn any_reused(&self) -> bool {
        self.classes.iter().any(|&c| c != TileClass::Rerender)
    }
}

/// Screen-space position of a world point under `vp`, or `None` when the
/// point sits behind (or numerically on) the near plane. Matches the
/// rasterizer's viewport transform, including the Y flip.
fn project(vp: &Mat4, p: Vec3, width: f32, height: f32) -> Option<(f32, f32)> {
    let clip = *vp * p.extend(1.0);
    if clip.w <= MIN_W {
        return None;
    }
    let ndc = clip.perspective_divide();
    Some(((ndc.x + 1.0) * 0.5 * width, (1.0 - ndc.y) * 0.5 * height))
}

/// The mesh's world-space bounding box (transform applied), or `None` for
/// an empty mesh.
fn world_bounds(mesh: &Mesh) -> Option<(Vec3, Vec3)> {
    let mut verts = mesh.vertices.iter();
    let first = mesh.transform.transform_point(verts.next()?.position);
    let mut lo = first;
    let mut hi = first;
    for v in verts {
        let p = mesh.transform.transform_point(v.position);
        lo = lo.min(p);
        hi = hi.max(p);
    }
    Some((lo, hi))
}

/// The 27 lattice points of the box: corners, edge midpoints, face centers
/// and the center — enough spatial resolution to localize parallax without
/// rasterizing the mesh.
fn lattice(lo: Vec3, hi: Vec3) -> [Vec3; 27] {
    let mid = lo.lerp(hi, 0.5);
    let xs = [lo.x, mid.x, hi.x];
    let ys = [lo.y, mid.y, hi.y];
    let zs = [lo.z, mid.z, hi.z];
    let mut out = [Vec3::default(); 27];
    let mut i = 0;
    for &x in &xs {
        for &y in &ys {
            for &z in &zs {
                out[i] = Vec3::new(x, y, z);
                i += 1;
            }
        }
    }
    out
}

/// Per-tile working state while diffing one frame pair.
struct Grid {
    tiles_x: u32,
    tiles_y: u32,
    tile_size: f32,
    motion: Vec<f32>,
    dirty: Vec<bool>,
}

impl Grid {
    fn new(tiles_x: u32, tiles_y: u32, tile_size: u32) -> Grid {
        let n = (tiles_x as usize) * (tiles_y as usize);
        Grid {
            tiles_x,
            tiles_y,
            tile_size: tile_size as f32,
            motion: vec![0.0; n],
            dirty: vec![false; n],
        }
    }

    /// Tile range covered by the screen rect `[min, max]` expanded by
    /// [`TILE_MARGIN`], clamped to the grid; `None` when fully off screen.
    fn tile_range(&self, min: (f32, f32), max: (f32, f32)) -> Option<(u32, u32, u32, u32)> {
        let w = self.tiles_x as f32 * self.tile_size;
        let h = self.tiles_y as f32 * self.tile_size;
        if max.0 < 0.0 || max.1 < 0.0 || min.0 >= w || min.1 >= h {
            return None;
        }
        let tx0 = ((min.0.max(0.0) / self.tile_size) as u32).saturating_sub(TILE_MARGIN);
        let ty0 = ((min.1.max(0.0) / self.tile_size) as u32).saturating_sub(TILE_MARGIN);
        let tx1 = ((max.0.min(w - 1.0).max(0.0) / self.tile_size) as u32 + TILE_MARGIN)
            .min(self.tiles_x - 1);
        let ty1 = ((max.1.min(h - 1.0).max(0.0) / self.tile_size) as u32 + TILE_MARGIN)
            .min(self.tiles_y - 1);
        Some((tx0, ty0, tx1, ty1))
    }

    fn splat_motion(&mut self, min: (f32, f32), max: (f32, f32), displacement: f32) {
        if let Some((tx0, ty0, tx1, ty1)) = self.tile_range(min, max) {
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    let idx = (ty * self.tiles_x + tx) as usize;
                    if displacement > self.motion[idx] {
                        self.motion[idx] = displacement;
                    }
                }
            }
        }
    }

    fn mark_dirty(&mut self, min: (f32, f32), max: (f32, f32)) {
        if let Some((tx0, ty0, tx1, ty1)) = self.tile_range(min, max) {
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    self.dirty[(ty * self.tiles_x + tx) as usize] = true;
                }
            }
        }
    }
}

/// Screen-space AABB as `(min, max)` corner pairs.
type ScreenRect = ((f32, f32), (f32, f32));

/// Extends `rect` (screen-space min/max accumulator) by a point.
fn grow(rect: &mut Option<ScreenRect>, p: (f32, f32)) {
    match rect {
        None => *rect = Some((p, p)),
        Some((min, max)) => {
            min.0 = min.0.min(p.0);
            min.1 = min.1.min(p.1);
            max.0 = max.0.max(p.0);
            max.1 = max.1.max(p.1);
        }
    }
}

/// Screen AABB of the mesh's bound lattice under `vp` (valid samples only).
fn screen_rect(mesh: &Mesh, vp: &Mat4, width: f32, height: f32) -> Option<ScreenRect> {
    let (lo, hi) = world_bounds(mesh)?;
    let mut rect = None;
    for p in lattice(lo, hi) {
        if let Some(s) = project(vp, p, width, height) {
            grow(&mut rect, s);
        }
    }
    rect
}

/// Diffs `prev` → `cur` and classifies every tile of a `width`×`height`
/// viewport gridded at `tile_size`. `ages` and `prev_drift` are the store's
/// per-tile frames-since-render and accumulated drift (empty slices mean
/// zero). See the module docs for the rules.
#[allow(clippy::too_many_arguments)]
pub fn classify(
    prev: &FrameScene,
    cur: &FrameScene,
    ages: &[u16],
    prev_drift: &[f32],
    cfg: &TemporalConfig,
    width: u32,
    height: u32,
    tile_size: u32,
) -> FramePlan {
    let tiles_x = width.div_ceil(tile_size);
    let tiles_y = height.div_ceil(tile_size);
    let all_rerender = || FramePlan::uniform(tiles_x, tiles_y, TileClass::Rerender);

    if cfg.mode.is_off() || cfg.force_invalidate {
        return all_rerender();
    }
    // A projection change moves every pixel at once; so does a mesh list
    // whose shape changed (pairwise diffing needs stable identity).
    let (pc, cc) = (&prev.camera, &cur.camera);
    if pc.fovy != cc.fovy
        || pc.aspect != cc.aspect
        || pc.near != cc.near
        || pc.far != cc.far
        || pc.up != cc.up
        || prev.meshes.len() != cur.meshes.len()
    {
        return all_rerender();
    }

    let (fw, fh) = (width as f32, height as f32);
    let prev_vp = pc.view_projection();
    let cur_vp = cc.view_projection();
    let mut grid = Grid::new(tiles_x, tiles_y, tile_size);

    for (old, new) in prev.meshes.iter().zip(&cur.meshes) {
        if old != new {
            // The object itself changed: dirty where it was and where it is.
            if let Some((min, max)) = screen_rect(old, &prev_vp, fw, fh) {
                grid.mark_dirty(min, max);
            }
            if let Some((min, max)) = screen_rect(new, &cur_vp, fw, fh) {
                grid.mark_dirty(min, max);
            }
            continue;
        }
        let Some((lo, hi)) = world_bounds(new) else {
            continue;
        };
        let pts = lattice(lo, hi);
        let prev_s = pts.map(|p| project(&prev_vp, p, fw, fh));
        let cur_s = pts.map(|p| project(&cur_vp, p, fw, fh));
        // Lattice order is x-major (`idx = ix*9 + iy*3 + iz`); each octant
        // reads its 8 corners out of the shared 27-point grid.
        for ox in 0..2usize {
            for oy in 0..2usize {
                for oz in 0..2usize {
                    let mut rect = None;
                    let mut displacement = 0.0f32;
                    let mut crossed = false;
                    for dx in 0..2 {
                        for dy in 0..2 {
                            for dz in 0..2 {
                                let idx = (ox + dx) * 9 + (oy + dy) * 3 + (oz + dz);
                                match (prev_s[idx], cur_s[idx]) {
                                    (Some(a), Some(b)) => {
                                        grow(&mut rect, a);
                                        grow(&mut rect, b);
                                        let d = ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt();
                                        displacement = displacement.max(d);
                                    }
                                    // The corner crossed the near plane
                                    // between frames: the octant's visible
                                    // footprint is suspect wholesale.
                                    (Some(s), None) | (None, Some(s)) => {
                                        grow(&mut rect, s);
                                        crossed = true;
                                    }
                                    (None, None) => {}
                                }
                            }
                        }
                    }
                    if let Some((min, max)) = rect {
                        if crossed {
                            grid.mark_dirty(min, max);
                        } else {
                            grid.splat_motion(min, max, displacement);
                        }
                    }
                }
            }
        }
    }

    let mut classes = Vec::with_capacity(grid.motion.len());
    let mut drift = Vec::with_capacity(grid.motion.len());
    for idx in 0..grid.motion.len() {
        let age = ages.get(idx).copied().unwrap_or(0);
        let carried = prev_drift.get(idx).copied().unwrap_or(0.0) + grid.motion[idx];
        let class = if grid.dirty[idx] || carried > cfg.repredict_px || age >= cfg.max_age {
            TileClass::Rerender
        } else if carried > cfg.reuse_px || age >= cfg.max_age / 2 {
            TileClass::Repredict
        } else {
            TileClass::Reuse
        };
        drift.push(if class == TileClass::Rerender {
            0.0
        } else {
            carried
        });
        classes.push(class);
    }
    FramePlan {
        tiles_x,
        tiles_y,
        classes,
        drift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TemporalMode;
    use patu_gmath::Vec2;
    use patu_raster::Camera;
    use patu_scenes::FrameScene;

    fn quad_scene(eye: Vec3) -> FrameScene {
        let mesh = Mesh::quad(
            [
                Vec3::new(-4.0, -4.0, -10.0),
                Vec3::new(4.0, -4.0, -10.0),
                Vec3::new(4.0, 4.0, -10.0),
                Vec3::new(-4.0, 4.0, -10.0),
            ],
            Vec2::new(1.0, 1.0),
            0,
        );
        FrameScene {
            meshes: vec![mesh],
            camera: Camera::new(eye, Vec3::new(0.0, 0.0, -10.0), 1.0, 4.0 / 3.0),
        }
    }

    fn on_cfg() -> TemporalConfig {
        TemporalConfig::for_mode(TemporalMode::On)
    }

    #[test]
    fn static_scene_reuses_everything() {
        let scene = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let plan = classify(&scene, &scene, &[], &[], &on_cfg(), 128, 96, 16);
        let (reused, repredicted, rerendered) = plan.counts();
        assert_eq!(rerendered, 0, "nothing moved");
        assert_eq!(repredicted, 0);
        assert_eq!(reused, 8 * 6);
        assert!(plan.any_reused());
    }

    #[test]
    fn off_mode_and_forced_invalidation_rerender_everything() {
        let scene = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let off = classify(
            &scene,
            &scene,
            &[],
            &[],
            &TemporalConfig::off(),
            128,
            96,
            16,
        );
        assert!(!off.any_reused());
        let forced = classify(
            &scene,
            &scene,
            &[],
            &[],
            &on_cfg().with_force_invalidate(),
            128,
            96,
            16,
        );
        assert!(!forced.any_reused());
    }

    #[test]
    fn large_camera_jump_rerenders_covered_tiles() {
        let a = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let b = quad_scene(Vec3::new(3.0, 0.0, 0.0));
        let plan = classify(&a, &b, &[], &[], &on_cfg(), 128, 96, 16);
        let (_, _, rerendered) = plan.counts();
        assert!(rerendered > 0, "a 3-unit strafe moves the quad many pixels");
    }

    #[test]
    fn faster_motion_means_less_reuse() {
        let base = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let slow = quad_scene(Vec3::new(0.01, 0.0, 0.0));
        let fast = quad_scene(Vec3::new(0.6, 0.0, 0.0));
        let reuse = |cur: &FrameScene| {
            let (r, p, _) = classify(&base, cur, &[], &[], &on_cfg(), 128, 96, 16).counts();
            r + p
        };
        assert!(reuse(&slow) >= reuse(&fast));
        assert!(reuse(&slow) > 0);
    }

    #[test]
    fn changed_mesh_dirties_its_tiles_only() {
        let a = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let mut b = a.clone();
        b.meshes[0].material = 1;
        let plan = classify(&a, &b, &[], &[], &on_cfg(), 256, 192, 16);
        let (reused, _, rerendered) = plan.counts();
        assert!(rerendered > 0, "material change invalidates the quad");
        assert!(reused > 0, "tiles away from the quad still reuse");
    }

    #[test]
    fn intrinsics_change_invalidates_everything() {
        let a = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let mut b = a.clone();
        b.camera.fovy *= 1.01;
        assert!(!classify(&a, &b, &[], &[], &on_cfg(), 128, 96, 16).any_reused());
        let mut c = a.clone();
        c.meshes.push(c.meshes[0].clone());
        assert!(!classify(&a, &c, &[], &[], &on_cfg(), 128, 96, 16).any_reused());
    }

    #[test]
    fn age_limits_force_refresh_and_rerender() {
        let scene = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let cfg = on_cfg();
        let tiles = (128u32.div_ceil(16) * 96u32.div_ceil(16)) as usize;
        let half = vec![cfg.max_age / 2; tiles];
        let plan = classify(&scene, &scene, &half, &[], &cfg, 128, 96, 16);
        assert_eq!(plan.counts().1 as usize, tiles, "mid-life tiles repredict");
        let old = vec![cfg.max_age; tiles];
        let plan = classify(&scene, &scene, &old, &[], &cfg, 128, 96, 16);
        assert_eq!(plan.counts().2 as usize, tiles, "aged-out tiles rerender");
    }

    #[test]
    fn drift_accumulates_until_rerender() {
        let a = quad_scene(Vec3::new(0.0, 0.0, 0.0));
        let b = quad_scene(Vec3::new(0.02, 0.0, 0.0));
        let cfg = on_cfg();
        let mut drift = Vec::new();
        let mut saw_rerender = false;
        for _ in 0..200 {
            let plan = classify(&a, &b, &[], &drift, &cfg, 128, 96, 16);
            if plan.counts().2 > 0 {
                saw_rerender = true;
                break;
            }
            drift = (0..plan.classes.len()).map(|i| plan.drift(i)).collect();
        }
        assert!(
            saw_rerender,
            "per-frame sub-threshold motion must accumulate into a rerender"
        );
    }
}
