//! # patu-temporal — cross-frame tile reuse
//!
//! Frame sequences rendered by the simulator are highly coherent: a slow
//! camera moves most tiles by well under a pixel per frame. This crate
//! carries rendered tile pixels and per-tile PATU decision summaries
//! forward across a sequence, so coherent tiles are *blitted* instead of
//! re-running the fragment→texel path.
//!
//! Two pieces:
//!
//! - [`invalidate`]: diffs consecutive [`patu_scenes::FrameScene`]s
//!   (camera delta, per-mesh change detection, screen-space projected
//!   motion per tile) and classifies each tile [`TileClass::Reuse`],
//!   [`TileClass::Repredict`] (pixels stable, decisions stale) or
//!   [`TileClass::Rerender`].
//! - [`store`]: the [`TileStore`] owning the previous frame's pixels,
//!   per-tile ages/drift and [`TileDecision`] summaries, committed after
//!   each rendered frame.
//!
//! The renderer (in `patu-sim`) is responsible for making reuse
//! *deterministic*: fault streams are re-keyed per `(frame, tile)` so a
//! blitted tile consumes no fault-stream state, keeping sequences
//! bit-identical across `PATU_THREADS` and under fault injection.
//!
//! The ambient policy comes from the `PATU_TEMPORAL` environment knob
//! (`off` | `on` | `aggressive`), read once at construction by
//! [`TemporalConfig::from_env`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod invalidate;
pub mod store;

pub use config::{TemporalConfig, TemporalMode};
pub use invalidate::{classify, FramePlan, TileClass};
pub use store::{TileDecision, TileStore};
