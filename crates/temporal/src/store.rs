//! The cross-frame [`TileStore`]: pixels, ages, drift and PATU decision
//! summaries carried from one rendered frame to the next.

use crate::config::TemporalConfig;
use crate::invalidate::{classify, FramePlan, TileClass};
use patu_raster::Framebuffer;
use patu_scenes::FrameScene;

/// Summary of the PATU decisions a tile rendered with, carried forward so a
/// reused tile can report approximation stats without re-running prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileDecision {
    /// Fragments the tile shaded when it was last rendered.
    pub fragments: u64,
    /// Fragments PATU demoted to the approximate path.
    pub demoted: u64,
    /// Effective threshold in basis points (threshold × 10⁴) the tile's
    /// demotions were decided under.
    pub threshold_bp: u32,
    /// Order-independent digest of the Txds hash-table consults behind the
    /// tile's decisions; lets a repredict cheaply detect a stale summary.
    pub summary: u64,
}

impl TileDecision {
    /// Builds a decision summary, deriving the digest from the fields.
    pub fn new(fragments: u64, demoted: u64, threshold_bp: u32) -> TileDecision {
        // FNV-1a over the three fields: stable, order-defined, cheap.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [fragments, demoted, threshold_bp as u64] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        TileDecision {
            fragments,
            demoted,
            threshold_bp,
            summary: h,
        }
    }
}

/// Everything retained from the last committed frame.
#[derive(Debug, Clone)]
struct StoredFrame {
    scene: FrameScene,
    image: Framebuffer,
    tiles_x: u32,
    tiles_y: u32,
    tile_size: u32,
    /// Frames since each tile's last full render.
    ages: Vec<u16>,
    /// Accumulated screen-space drift since each tile's last full render.
    drift: Vec<f32>,
    decisions: Vec<TileDecision>,
}

/// Cross-frame tile cache: owns the invalidation policy ([`TemporalConfig`])
/// and the previous frame's pixels/decisions. Drive it with
/// [`TileStore::plan`] before rendering a frame and [`TileStore::commit`]
/// after, in frame order.
#[derive(Debug, Clone)]
pub struct TileStore {
    cfg: TemporalConfig,
    prev: Option<StoredFrame>,
}

impl TileStore {
    /// An empty store with the given policy.
    pub fn new(cfg: TemporalConfig) -> TileStore {
        TileStore { cfg, prev: None }
    }

    /// An empty store configured from the `PATU_TEMPORAL` knob.
    pub fn from_env() -> TileStore {
        TileStore::new(TemporalConfig::from_env())
    }

    /// The policy this store classifies with.
    pub fn config(&self) -> &TemporalConfig {
        &self.cfg
    }

    /// Whether a committed frame is available for reuse.
    pub fn has_frame(&self) -> bool {
        self.prev.is_some()
    }

    /// Classifies every tile of the upcoming frame against the stored one.
    /// With no stored frame (or a resolution/tiling change) everything
    /// rerenders.
    pub fn plan(&self, cur: &FrameScene, width: u32, height: u32, tile_size: u32) -> FramePlan {
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        match &self.prev {
            Some(prev)
                if prev.tiles_x == tiles_x
                    && prev.tiles_y == tiles_y
                    && prev.tile_size == tile_size
                    && prev.image.width() == width
                    && prev.image.height() == height =>
            {
                classify(
                    &prev.scene,
                    cur,
                    &prev.ages,
                    &prev.drift,
                    &self.cfg,
                    width,
                    height,
                    tile_size,
                )
            }
            _ => FramePlan::uniform(tiles_x, tiles_y, TileClass::Rerender),
        }
    }

    /// The stored frame's pixels, for blitting reused tiles.
    pub fn prev_image(&self) -> Option<&Framebuffer> {
        self.prev.as_ref().map(|p| &p.image)
    }

    /// The stored decision summary for tile `(tx, ty)`.
    pub fn decision(&self, tx: u32, ty: u32) -> Option<TileDecision> {
        let prev = self.prev.as_ref()?;
        if tx >= prev.tiles_x || ty >= prev.tiles_y {
            return None;
        }
        Some(prev.decisions[(ty * prev.tiles_x + tx) as usize])
    }

    /// Commits a rendered frame. `plan` must be the one this frame was
    /// rendered under and `fresh` the per-grid-index decision summaries the
    /// renderer produced (only consulted where the plan rerendered or
    /// repredicted; reused tiles carry their stored summary forward).
    ///
    /// # Panics
    ///
    /// Panics when `fresh` does not cover the plan's grid.
    pub fn commit(
        &mut self,
        scene: FrameScene,
        image: Framebuffer,
        tile_size: u32,
        plan: &FramePlan,
        fresh: &[TileDecision],
    ) {
        let tiles = (plan.tiles_x() as usize) * (plan.tiles_y() as usize);
        assert_eq!(fresh.len(), tiles, "decision grid must match the plan");
        let mut ages = Vec::with_capacity(tiles);
        let mut drift = Vec::with_capacity(tiles);
        let mut decisions = Vec::with_capacity(tiles);
        for (idx, &summary) in fresh.iter().enumerate() {
            let tx = (idx as u32) % plan.tiles_x();
            let ty = (idx as u32) / plan.tiles_x();
            match plan.class(tx, ty) {
                TileClass::Rerender => {
                    ages.push(0);
                    drift.push(0.0);
                    decisions.push(summary);
                }
                TileClass::Repredict => {
                    ages.push(self.age_at(idx).saturating_add(1));
                    drift.push(plan.drift(idx));
                    decisions.push(summary);
                }
                TileClass::Reuse => {
                    ages.push(self.age_at(idx).saturating_add(1));
                    drift.push(plan.drift(idx));
                    decisions.push(
                        self.prev
                            .as_ref()
                            .map(|p| p.decisions[idx])
                            .unwrap_or(summary),
                    );
                }
            }
        }
        self.prev = Some(StoredFrame {
            tiles_x: plan.tiles_x(),
            tiles_y: plan.tiles_y(),
            tile_size,
            scene,
            image,
            ages,
            drift,
            decisions,
        });
    }

    /// Drops the stored frame; the next plan rerenders everything.
    pub fn reset(&mut self) {
        self.prev = None;
    }

    fn age_at(&self, idx: usize) -> u16 {
        self.prev
            .as_ref()
            .and_then(|p| p.ages.get(idx).copied())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TemporalMode;
    use patu_gmath::{Vec2, Vec3};
    use patu_raster::{Camera, Mesh};
    use patu_texture::Rgba8;

    fn scene() -> FrameScene {
        let mesh = Mesh::quad(
            [
                Vec3::new(-4.0, -4.0, -10.0),
                Vec3::new(4.0, -4.0, -10.0),
                Vec3::new(4.0, 4.0, -10.0),
                Vec3::new(-4.0, 4.0, -10.0),
            ],
            Vec2::new(1.0, 1.0),
            0,
        );
        FrameScene {
            meshes: vec![mesh],
            camera: Camera::new(
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(0.0, 0.0, -10.0),
                1.0,
                4.0 / 3.0,
            ),
        }
    }

    fn image(w: u32, h: u32, v: u8) -> Framebuffer {
        Framebuffer::new(w, h, Rgba8::rgb(v, v, v))
    }

    fn all_fresh(plan: &FramePlan) -> Vec<TileDecision> {
        let n = (plan.tiles_x() * plan.tiles_y()) as usize;
        (0..n)
            .map(|i| TileDecision::new(i as u64, 0, 4000))
            .collect()
    }

    #[test]
    fn decision_digest_tracks_fields() {
        let a = TileDecision::new(10, 3, 4000);
        let b = TileDecision::new(10, 3, 4000);
        let c = TileDecision::new(10, 4, 4000);
        assert_eq!(a, b);
        assert_ne!(a.summary, c.summary);
    }

    #[test]
    fn first_frame_rerenders_then_static_scene_reuses() {
        let mut store = TileStore::new(TemporalConfig::for_mode(TemporalMode::On));
        assert!(!store.has_frame());
        let s = scene();
        let plan = store.plan(&s, 128, 96, 16);
        assert!(!plan.any_reused(), "cold store has nothing to reuse");
        let fresh = all_fresh(&plan);
        store.commit(s.clone(), image(128, 96, 7), 16, &plan, &fresh);
        assert!(store.has_frame());

        let plan2 = store.plan(&s, 128, 96, 16);
        let (reused, _, rerendered) = plan2.counts();
        assert_eq!(rerendered, 0);
        assert!(reused > 0);
        // Reused tiles keep the decision summaries from the rendered frame.
        store.commit(
            s.clone(),
            image(128, 96, 7),
            16,
            &plan2,
            &vec![TileDecision::default(); fresh.len()],
        );
        assert_eq!(store.decision(0, 0), Some(fresh[0]));
        assert_eq!(store.prev_image().unwrap().get(3, 3).r, 7);
    }

    #[test]
    fn resolution_change_and_reset_invalidate() {
        let mut store = TileStore::new(TemporalConfig::for_mode(TemporalMode::On));
        let s = scene();
        let plan = store.plan(&s, 128, 96, 16);
        let fresh = all_fresh(&plan);
        store.commit(s.clone(), image(128, 96, 0), 16, &plan, &fresh);
        assert!(!store.plan(&s, 256, 192, 16).any_reused());
        assert!(!store.plan(&s, 128, 96, 8).any_reused());
        store.reset();
        assert!(!store.has_frame());
        assert!(!store.plan(&s, 128, 96, 16).any_reused());
    }

    #[test]
    fn ages_advance_until_the_store_forces_refresh() {
        let cfg = TemporalConfig::for_mode(TemporalMode::On);
        let mut store = TileStore::new(cfg);
        let s = scene();
        let mut saw_repredict = false;
        let mut saw_rerender_again = false;
        for _ in 0..(cfg.max_age as usize + 2) {
            let plan = store.plan(&s, 128, 96, 16);
            let (_, repredicted, rerendered) = plan.counts();
            if store.has_frame() {
                saw_repredict |= repredicted > 0;
                saw_rerender_again |= rerendered > 0;
            }
            let fresh = all_fresh(&plan);
            store.commit(s.clone(), image(128, 96, 1), 16, &plan, &fresh);
        }
        assert!(saw_repredict, "half-life must trigger repredicts");
        assert!(saw_rerender_again, "max age must trigger rerenders");
    }
}
