//! Temporal-reuse configuration and the `PATU_TEMPORAL` knob.
//!
//! This file is the registered reader of the `PATU_TEMPORAL` environment
//! knob (see `patu-lint`'s `ENV_KNOBS` table): the ambient mode is read
//! exactly once, at construction time, and flows everywhere else as plain
//! [`TemporalConfig`] fields — the per-frame reuse/invalidation paths never
//! touch the environment.

use std::fmt;

/// How aggressively the tile store trades freshness for throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemporalMode {
    /// No cross-frame reuse: every tile of every frame renders from
    /// scratch (the store still tracks frames so switching modes later
    /// starts warm).
    #[default]
    Off,
    /// Conservative reuse: sub-pixel accumulated motion only, short tile
    /// lifetimes. The default quality/throughput trade.
    On,
    /// Loose thresholds and long lifetimes: maximum reuse, bounded only by
    /// the bench's MSSIM floor.
    Aggressive,
}

impl TemporalMode {
    /// Parses the knob's value; unknown or empty strings mean [`TemporalMode::Off`].
    pub fn parse(value: &str) -> TemporalMode {
        match value.trim() {
            "on" => TemporalMode::On,
            "aggressive" => TemporalMode::Aggressive,
            _ => TemporalMode::Off,
        }
    }

    /// Whether reuse is disabled entirely.
    pub fn is_off(self) -> bool {
        self == TemporalMode::Off
    }
}

impl fmt::Display for TemporalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TemporalMode::Off => "off",
            TemporalMode::On => "on",
            TemporalMode::Aggressive => "aggressive",
        })
    }
}

/// Thresholds driving the per-tile reuse decision. All limits apply to the
/// *accumulated* screen-space drift since a tile's last full render, so a
/// slowly creeping camera cannot smear a tile indefinitely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalConfig {
    /// The reuse mode the thresholds below were derived from.
    pub mode: TemporalMode,
    /// Accumulated drift (pixels) at or below which a stable tile's pixels
    /// are blitted forward unchanged.
    pub reuse_px: f32,
    /// Accumulated drift (pixels) at or below which the tile's pixels are
    /// still blitted but its PATU decision summary is refreshed.
    pub repredict_px: f32,
    /// Frames a tile may survive without a full render; reaching the limit
    /// forces a rerender regardless of motion.
    pub max_age: u16,
    /// Testing hook: classify every tile `Rerender` every frame. The
    /// sequence path still runs (per-`(frame, tile)` fault keying, temporal
    /// counters), making `off` vs `on` outputs byte-comparable.
    pub force_invalidate: bool,
}

impl TemporalConfig {
    /// The canonical thresholds for `mode`.
    pub fn for_mode(mode: TemporalMode) -> TemporalConfig {
        let (reuse_px, repredict_px, max_age) = match mode {
            TemporalMode::Off => (0.0, 0.0, 0),
            TemporalMode::On => (0.15, 0.35, 16),
            TemporalMode::Aggressive => (0.8, 1.8, 64),
        };
        TemporalConfig {
            mode,
            reuse_px,
            repredict_px,
            max_age,
            force_invalidate: false,
        }
    }

    /// Reuse disabled.
    pub fn off() -> TemporalConfig {
        TemporalConfig::for_mode(TemporalMode::Off)
    }

    /// Resolves the mode from the `PATU_TEMPORAL` environment variable
    /// (`off` | `on` | `aggressive`; unset or unknown values mean `off`).
    /// Call once at construction — the resolved config is a plain value.
    pub fn from_env() -> TemporalConfig {
        // patu-lint: allow(knob-at-construction) — resolved once while the
        // owning service/bench is built; the mode flows down as a field
        let mode = std::env::var("PATU_TEMPORAL")
            .map(|v| TemporalMode::parse(&v))
            .unwrap_or_default();
        TemporalConfig::for_mode(mode)
    }

    /// Testing hook: force every tile to rerender every frame.
    #[must_use]
    pub fn with_force_invalidate(mut self) -> TemporalConfig {
        self.force_invalidate = true;
        self
    }
}

impl Default for TemporalConfig {
    fn default() -> TemporalConfig {
        TemporalConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_round_trips() {
        for mode in [
            TemporalMode::Off,
            TemporalMode::On,
            TemporalMode::Aggressive,
        ] {
            assert_eq!(TemporalMode::parse(&mode.to_string()), mode);
        }
        assert_eq!(TemporalMode::parse("  on "), TemporalMode::On);
        assert_eq!(TemporalMode::parse("bogus"), TemporalMode::Off);
        assert_eq!(TemporalMode::parse(""), TemporalMode::Off);
    }

    #[test]
    fn aggressive_is_looser_than_on() {
        let on = TemporalConfig::for_mode(TemporalMode::On);
        let aggressive = TemporalConfig::for_mode(TemporalMode::Aggressive);
        assert!(aggressive.reuse_px > on.reuse_px);
        assert!(aggressive.repredict_px > on.repredict_px);
        assert!(aggressive.max_age > on.max_age);
        assert!(TemporalConfig::off().mode.is_off());
        assert!(!on.force_invalidate);
        assert!(on.with_force_invalidate().force_invalidate);
    }
}
