//! The benchmark inventory — the paper's Table II.

/// One row of Table II: a game at a resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Short name used on the command line and in figures (`hl2`, `doom3`, ...).
    pub name: &'static str,
    /// Full title of the game the workload stands in for.
    pub title: &'static str,
    /// Render resolution (width, height).
    pub resolution: (u32, u32),
    /// Rendering library of the original trace (DirectX3D / OpenGL).
    pub library: &'static str,
}

impl WorkloadSpec {
    /// A display label like `hl2-1600x1200`.
    pub fn label(&self) -> String {
        format!("{}-{}x{}", self.name, self.resolution.0, self.resolution.1)
    }

    /// Total pixels per frame.
    pub fn pixels(&self) -> u64 {
        u64::from(self.resolution.0) * u64::from(self.resolution.1)
    }
}

/// The seven game names of Table II (excluding `rbench`).
pub fn game_names() -> [&'static str; 7] {
    ["hl2", "doom3", "grid", "nfs", "stal", "ut3", "wolf"]
}

/// Every Table II row: `hl2` and `doom3` at three resolutions each, the
/// rest at their single supported resolution.
pub fn catalog() -> Vec<WorkloadSpec> {
    let mut rows = Vec::new();
    for res in [(1600, 1200), (1280, 1024), (640, 480)] {
        rows.push(WorkloadSpec {
            name: "hl2",
            title: "Half-Life 2",
            resolution: res,
            library: "DirectX3D",
        });
    }
    for res in [(1600, 1200), (1280, 1024), (640, 480)] {
        rows.push(WorkloadSpec {
            name: "doom3",
            title: "Doom 3",
            resolution: res,
            library: "OpenGL",
        });
    }
    rows.push(WorkloadSpec {
        name: "grid",
        title: "GRID",
        resolution: (1280, 1024),
        library: "DirectX3D",
    });
    rows.push(WorkloadSpec {
        name: "nfs",
        title: "Need For Speed",
        resolution: (1280, 1024),
        library: "DirectX3D",
    });
    rows.push(WorkloadSpec {
        name: "stal",
        title: "S.T.A.L.K.E.R.: Call of Pripyat",
        resolution: (1280, 1024),
        library: "DirectX3D",
    });
    rows.push(WorkloadSpec {
        name: "ut3",
        title: "Unreal Tournament 3",
        resolution: (1280, 1024),
        library: "DirectX3D",
    });
    rows.push(WorkloadSpec {
        name: "wolf",
        title: "Wolfenstein",
        resolution: (640, 480),
        library: "DirectX3D",
    });
    rows
}

/// The deterministic slow-camera frame-sequence presets that drive the
/// temporal-reuse path (`patu-temporal`). Not Table II rows — [`catalog`]
/// is unchanged — but selectable by name through
/// [`Workload::build`](crate::Workload::build) like any game.
pub fn sequence_specs() -> [WorkloadSpec; 2] {
    [
        WorkloadSpec {
            name: "orbit",
            title: "Arena slow orbit (sequence preset)",
            resolution: (640, 480),
            library: "DirectX3D",
        },
        WorkloadSpec {
            name: "dolly",
            title: "Corridor first-person dolly (sequence preset)",
            resolution: (640, 480),
            library: "OpenGL",
        },
    ]
}

/// The default single resolution per game used by most experiments
/// (1280×1024 where supported, per Sec. VI's benchmarking policy).
pub fn default_specs() -> Vec<WorkloadSpec> {
    // Every game has its default resolution in the catalog (asserted by
    // `default_specs_cover_all_games`); a hypothetical gap drops the game
    // rather than panicking mid-experiment.
    game_names()
        .into_iter()
        .filter_map(|name| {
            let res = if name == "wolf" {
                (640, 480)
            } else {
                (1280, 1024)
            };
            catalog()
                .into_iter()
                .find(|s| s.name == name && s.resolution == res)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2_shape() {
        let rows = catalog();
        assert_eq!(rows.len(), 11, "3 + 3 + 5 rows");
        assert_eq!(rows.iter().filter(|r| r.name == "hl2").count(), 3);
        assert_eq!(rows.iter().filter(|r| r.name == "doom3").count(), 3);
        assert_eq!(rows.iter().filter(|r| r.name == "wolf").count(), 1);
    }

    #[test]
    fn doom3_is_opengl_rest_directx() {
        for row in catalog() {
            if row.name == "doom3" {
                assert_eq!(row.library, "OpenGL");
            } else {
                assert_eq!(row.library, "DirectX3D");
            }
        }
    }

    #[test]
    fn labels_and_pixels() {
        let spec = WorkloadSpec {
            name: "hl2",
            title: "Half-Life 2",
            resolution: (1600, 1200),
            library: "DirectX3D",
        };
        assert_eq!(spec.label(), "hl2-1600x1200");
        assert_eq!(spec.pixels(), 1_920_000);
    }

    #[test]
    fn sequence_specs_build_as_workloads() {
        for spec in sequence_specs() {
            let w = crate::Workload::build(spec.name, spec.resolution).expect(spec.name);
            assert_eq!(w.name(), spec.name);
            assert!(
                catalog().iter().all(|row| row.name != spec.name),
                "{} must not perturb Table II",
                spec.name
            );
        }
    }

    #[test]
    fn default_specs_cover_all_games() {
        let defaults = default_specs();
        assert_eq!(defaults.len(), 7);
        assert!(defaults
            .iter()
            .all(|s| s.resolution == (1280, 1024) || s.name == "wolf"));
    }
}
