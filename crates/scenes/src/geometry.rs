//! Reusable scene-building geometry: ground planes, walls, corridors, boxes.

use patu_gmath::{Vec2, Vec3};
use patu_raster::Mesh;

/// A horizontal ground plane at height `y`, spanning `[-half_w, half_w]` in X
/// and `[z_near, z_far]` in Z (both negative, away from the camera), UV-tiled
/// `tiles` times. Front face up.
pub fn ground_plane(
    y: f32,
    half_w: f32,
    z_near: f32,
    z_far: f32,
    tiles: Vec2,
    material: usize,
) -> Mesh {
    Mesh::quad(
        [
            Vec3::new(-half_w, y, z_near),
            Vec3::new(half_w, y, z_near),
            Vec3::new(half_w, y, z_far),
            Vec3::new(-half_w, y, z_far),
        ],
        tiles,
        material,
    )
}

/// A ceiling plane (front face down) mirroring [`ground_plane`].
pub fn ceiling_plane(
    y: f32,
    half_w: f32,
    z_near: f32,
    z_far: f32,
    tiles: Vec2,
    material: usize,
) -> Mesh {
    Mesh::quad(
        [
            Vec3::new(-half_w, y, z_far),
            Vec3::new(half_w, y, z_far),
            Vec3::new(half_w, y, z_near),
            Vec3::new(-half_w, y, z_near),
        ],
        tiles,
        material,
    )
}

/// A vertical wall along Z at `x`, from `z_near` to `z_far`, `height` tall
/// starting at `y0`. `faces_positive_x` picks the visible side.
#[allow(clippy::too_many_arguments)]
pub fn side_wall(
    x: f32,
    y0: f32,
    height: f32,
    z_near: f32,
    z_far: f32,
    tiles: Vec2,
    material: usize,
    faces_positive_x: bool,
) -> Mesh {
    let (za, zb) = if faces_positive_x {
        (z_near, z_far)
    } else {
        (z_far, z_near)
    };
    Mesh::quad(
        [
            Vec3::new(x, y0, za),
            Vec3::new(x, y0, zb),
            Vec3::new(x, y0 + height, zb),
            Vec3::new(x, y0 + height, za),
        ],
        tiles,
        material,
    )
}

/// A wall facing the camera (+Z normal) at depth `z`, centered at `cx`.
pub fn facing_wall(
    cx: f32,
    y0: f32,
    width: f32,
    height: f32,
    z: f32,
    tiles: Vec2,
    material: usize,
) -> Mesh {
    let hw = width / 2.0;
    Mesh::quad(
        [
            Vec3::new(cx - hw, y0, z),
            Vec3::new(cx + hw, y0, z),
            Vec3::new(cx + hw, y0 + height, z),
            Vec3::new(cx - hw, y0 + height, z),
        ],
        tiles,
        material,
    )
}

/// An axis-aligned box (prop) with all six faces textured with `material`.
/// Faces wind outward.
pub fn prop_box(center: Vec3, size: Vec3, material: usize) -> Mesh {
    let h = size * 0.5;
    let (cx, cy, cz) = (center.x, center.y, center.z);
    let corners = [
        Vec3::new(cx - h.x, cy - h.y, cz + h.z), // 0: left  bottom front
        Vec3::new(cx + h.x, cy - h.y, cz + h.z), // 1: right bottom front
        Vec3::new(cx + h.x, cy + h.y, cz + h.z), // 2: right top    front
        Vec3::new(cx - h.x, cy + h.y, cz + h.z), // 3: left  top    front
        Vec3::new(cx - h.x, cy - h.y, cz - h.z), // 4: left  bottom back
        Vec3::new(cx + h.x, cy - h.y, cz - h.z), // 5: right bottom back
        Vec3::new(cx + h.x, cy + h.y, cz - h.z), // 6: right top    back
        Vec3::new(cx - h.x, cy + h.y, cz - h.z), // 7: left  top    back
    ];
    let faces: [[usize; 4]; 6] = [
        [0, 1, 2, 3], // front (+z)
        [5, 4, 7, 6], // back (-z)
        [4, 0, 3, 7], // left (-x)
        [1, 5, 6, 2], // right (+x)
        [3, 2, 6, 7], // top (+y)
        [4, 5, 1, 0], // bottom (-y)
    ];
    let mut vertices = Vec::with_capacity(24);
    let mut triangles = Vec::with_capacity(12);
    for face in faces {
        let base = vertices.len() as u32;
        let uvs = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ];
        for (i, &ci) in face.iter().enumerate() {
            vertices.push(patu_raster::Vertex::new(corners[ci], uvs[i]));
        }
        triangles.push([base, base + 1, base + 2]);
        triangles.push([base, base + 2, base + 3]);
    }
    Mesh::new(vertices, triangles, material)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patu_gmath::Mat4;
    use patu_raster::{Camera, Pipeline};

    fn render(meshes: &[Mesh], eye: Vec3, target: Vec3) -> u64 {
        let cam = Camera::new(eye, target, 1.0, 1.0);
        Pipeline::new(64, 64)
            .run(meshes, &cam)
            .stats
            .fragments_shaded
    }

    #[test]
    fn ground_plane_visible_from_above() {
        let g = ground_plane(0.0, 50.0, -0.5, -100.0, Vec2::new(10.0, 100.0), 0);
        let shaded = render(&[g], Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, -30.0));
        assert!(shaded > 500);
    }

    #[test]
    fn ceiling_visible_from_below() {
        let c = ceiling_plane(3.0, 50.0, -0.5, -100.0, Vec2::new(10.0, 100.0), 0);
        let shaded = render(&[c], Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 2.0, -30.0));
        assert!(shaded > 500);
    }

    #[test]
    fn side_walls_face_inward() {
        let left = side_wall(-3.0, 0.0, 4.0, -0.5, -80.0, Vec2::new(40.0, 2.0), 0, true);
        let right = side_wall(3.0, 0.0, 4.0, -0.5, -80.0, Vec2::new(40.0, 2.0), 0, false);
        let shaded = render(
            &[left, right],
            Vec3::new(0.0, 1.5, 0.0),
            Vec3::new(0.0, 1.5, -30.0),
        );
        assert!(shaded > 500, "both corridor walls visible");
    }

    #[test]
    fn facing_wall_visible_head_on() {
        let w = facing_wall(0.0, 0.0, 20.0, 10.0, -15.0, Vec2::new(4.0, 2.0), 0);
        let shaded = render(&[w], Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 2.0, -15.0));
        assert!(shaded > 1000);
    }

    #[test]
    fn prop_box_shows_at_most_three_faces() {
        let b = prop_box(Vec3::new(0.0, 1.0, -10.0), Vec3::splat(2.0), 0);
        assert_eq!(b.triangles.len(), 12);
        let cam = Camera::new(
            Vec3::new(3.0, 3.0, 0.0),
            Vec3::new(0.0, 1.0, -10.0),
            1.0,
            1.0,
        );
        let out = Pipeline::new(64, 64).run(&[b], &cam);
        // Half the faces are culled as back-facing.
        assert!(out.stats.triangles_culled >= 6);
        assert!(out.stats.fragments_shaded > 50);
    }

    #[test]
    fn transformed_mesh_moves() {
        let b = prop_box(Vec3::new(0.0, 1.0, -10.0), Vec3::splat(2.0), 0)
            .with_transform(Mat4::translation(Vec3::new(1000.0, 0.0, 0.0)));
        let shaded = render(&[b], Vec3::new(3.0, 3.0, 0.0), Vec3::new(0.0, 1.0, -10.0));
        assert_eq!(shaded, 0, "translated out of view");
    }
}
