//! A draw-command trace format and trace-driven replay.
//!
//! The paper's methodology is trace-based: ATTILA replays captured
//! OpenGL/Direct3D command streams. This module provides the analogous
//! capability for the synthetic workloads — a frame's draw commands (camera
//! state + meshes with vertices, indices and material bindings) serialize to
//! a plain-text format that can be stored, diffed, and replayed through the
//! simulator without the generating code.
//!
//! The format is line-oriented:
//!
//! ```text
//! trace v1
//! frame <index>
//! camera <eye xyz> <target xyz> <up xyz> <fovy> <aspect> <near> <far>
//! mesh <material> <vertex-count> <triangle-count>
//! v <x> <y> <z> <u> <v>          (vertex-count lines)
//! t <i0> <i1> <i2>               (triangle-count lines)
//! end
//! ```

use crate::games::FrameScene;
use patu_gmath::{Vec2, Vec3};
use patu_raster::{Camera, Mesh, Vertex};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing a malformed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> ParseTraceError {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseTraceError {}

/// A captured multi-frame trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    frames: Vec<(u32, FrameScene)>,
}

impl PartialEq for FrameScene {
    fn eq(&self, other: &FrameScene) -> bool {
        self.camera == other.camera && self.meshes == other.meshes
    }
}

impl Trace {
    /// Captures the given frame indices of a workload into a trace.
    pub fn capture(workload: &crate::games::Workload, frames: &[u32]) -> Trace {
        Trace {
            frames: frames.iter().map(|&i| (i, workload.frame(i))).collect(),
        }
    }

    /// Builds a trace directly from frames.
    pub fn from_frames(frames: Vec<(u32, FrameScene)>) -> Trace {
        Trace { frames }
    }

    /// The captured frames, in capture order.
    pub fn frames(&self) -> &[(u32, FrameScene)] {
        &self.frames
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Serializes the trace to its text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("trace v1\n");
        for (index, scene) in &self.frames {
            let _ = writeln!(out, "frame {index}");
            let c = &scene.camera;
            let _ = writeln!(
                out,
                "camera {} {} {} {} {} {} {} {} {} {} {} {} {}",
                c.eye.x,
                c.eye.y,
                c.eye.z,
                c.target.x,
                c.target.y,
                c.target.z,
                c.up.x,
                c.up.y,
                c.up.z,
                c.fovy,
                c.aspect,
                c.near,
                c.far
            );
            for mesh in &scene.meshes {
                let _ = writeln!(
                    out,
                    "mesh {} {} {}",
                    mesh.material,
                    mesh.vertices.len(),
                    mesh.triangles.len()
                );
                for v in &mesh.vertices {
                    let _ = writeln!(
                        out,
                        "v {} {} {} {} {}",
                        v.position.x, v.position.y, v.position.z, v.uv.x, v.uv.y
                    );
                }
                for t in &mesh.triangles {
                    let _ = writeln!(out, "t {} {} {}", t[0], t[1], t[2]);
                }
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses a trace from its text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(1, "empty trace"))?;
        if header.trim() != "trace v1" {
            return Err(ParseTraceError::new(1, "expected header 'trace v1'"));
        }

        fn floats(n: usize, rest: &str, line: usize) -> Result<Vec<f32>, ParseTraceError> {
            let vals: Result<Vec<f32>, _> =
                rest.split_whitespace().map(str::parse::<f32>).collect();
            let vals = vals.map_err(|e| ParseTraceError::new(line, format!("bad float: {e}")))?;
            if vals.len() != n {
                return Err(ParseTraceError::new(
                    line,
                    format!("expected {n} numbers, found {}", vals.len()),
                ));
            }
            Ok(vals)
        }

        let mut frames = Vec::new();
        let mut current: Option<(u32, Camera, Vec<Mesh>)> = None;

        while let Some((i, raw)) = lines.next() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
            match word {
                "frame" => {
                    if current.is_some() {
                        return Err(ParseTraceError::new(
                            line_no,
                            "nested frame (missing 'end')",
                        ));
                    }
                    let index: u32 = rest
                        .trim()
                        .parse()
                        .map_err(|e| ParseTraceError::new(line_no, format!("bad index: {e}")))?;
                    // Placeholder camera until the camera line arrives.
                    current = Some((
                        index,
                        Camera::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0), 1.0, 1.0),
                        Vec::new(),
                    ));
                }
                "camera" => {
                    let vals = floats(13, rest, line_no)?;
                    let (_, cam, _) = current
                        .as_mut()
                        .ok_or_else(|| ParseTraceError::new(line_no, "camera outside frame"))?;
                    *cam = Camera {
                        eye: Vec3::new(vals[0], vals[1], vals[2]),
                        target: Vec3::new(vals[3], vals[4], vals[5]),
                        up: Vec3::new(vals[6], vals[7], vals[8]),
                        fovy: vals[9],
                        aspect: vals[10],
                        near: vals[11],
                        far: vals[12],
                    };
                }
                "mesh" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    if parts.len() != 3 {
                        return Err(ParseTraceError::new(line_no, "mesh needs 3 fields"));
                    }
                    let material: usize = parts[0]
                        .parse()
                        .map_err(|e| ParseTraceError::new(line_no, format!("bad material: {e}")))?;
                    let n_verts: usize = parts[1]
                        .parse()
                        .map_err(|e| ParseTraceError::new(line_no, format!("bad count: {e}")))?;
                    let n_tris: usize = parts[2]
                        .parse()
                        .map_err(|e| ParseTraceError::new(line_no, format!("bad count: {e}")))?;

                    let mut vertices = Vec::with_capacity(n_verts);
                    for _ in 0..n_verts {
                        let (vi, vline) = lines
                            .next()
                            .ok_or_else(|| ParseTraceError::new(line_no, "truncated vertices"))?;
                        let vline = vline.trim();
                        let body = vline
                            .strip_prefix("v ")
                            .ok_or_else(|| ParseTraceError::new(vi + 1, "expected vertex line"))?;
                        let vals = floats(5, body, vi + 1)?;
                        vertices.push(Vertex::new(
                            Vec3::new(vals[0], vals[1], vals[2]),
                            Vec2::new(vals[3], vals[4]),
                        ));
                    }
                    let mut triangles = Vec::with_capacity(n_tris);
                    for _ in 0..n_tris {
                        let (ti, tline) = lines
                            .next()
                            .ok_or_else(|| ParseTraceError::new(line_no, "truncated triangles"))?;
                        let tline = tline.trim();
                        let body = tline.strip_prefix("t ").ok_or_else(|| {
                            ParseTraceError::new(ti + 1, "expected triangle line")
                        })?;
                        let idx: Result<Vec<u32>, _> =
                            body.split_whitespace().map(str::parse::<u32>).collect();
                        let idx = idx
                            .map_err(|e| ParseTraceError::new(ti + 1, format!("bad index: {e}")))?;
                        if idx.len() != 3 {
                            return Err(ParseTraceError::new(ti + 1, "triangle needs 3 indices"));
                        }
                        if idx.iter().any(|&k| k as usize >= n_verts) {
                            return Err(ParseTraceError::new(
                                ti + 1,
                                "triangle index out of range",
                            ));
                        }
                        triangles.push([idx[0], idx[1], idx[2]]);
                    }
                    let (_, _, meshes) = current
                        .as_mut()
                        .ok_or_else(|| ParseTraceError::new(line_no, "mesh outside frame"))?;
                    meshes.push(Mesh::new(vertices, triangles, material));
                }
                "end" => {
                    let (index, camera, meshes) = current
                        .take()
                        .ok_or_else(|| ParseTraceError::new(line_no, "'end' outside frame"))?;
                    frames.push((index, FrameScene { meshes, camera }));
                }
                other => {
                    return Err(ParseTraceError::new(
                        line_no,
                        format!("unknown record '{other}'"),
                    ));
                }
            }
        }
        if current.is_some() {
            return Err(ParseTraceError::new(
                text.lines().count(),
                "unterminated frame",
            ));
        }
        Ok(Trace { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::games::Workload;

    #[test]
    fn capture_roundtrips_through_text() {
        let w = Workload::build("wolf", (160, 120)).unwrap();
        let trace = Trace::capture(&w, &[0, 50]);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("roundtrip parses");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn replayed_frames_render_identically() {
        use patu_raster::Pipeline;
        let w = Workload::build("doom3", (160, 120)).unwrap();
        let trace = Trace::capture(&w, &[30]);
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        let (_, original) = &trace.frames()[0];
        let (_, replayed) = &parsed.frames()[0];
        let p = Pipeline::new(160, 120);
        let a = p.run(&original.meshes, &original.camera);
        let b = p.run(&replayed.meshes, &replayed.camera);
        assert_eq!(a.stats, b.stats, "replay produces the exact same work");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_frames(vec![]);
        assert!(t.is_empty());
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn bad_header_rejected() {
        let err = Trace::from_text("not a trace\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn truncated_frame_rejected() {
        let text = "trace v1\nframe 0\ncamera 0 0 0 0 0 -1 0 1 0 1 1 0.1 100\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn out_of_range_triangle_rejected() {
        let text = "trace v1\nframe 0\ncamera 0 0 0 0 0 -1 0 1 0 1 1 0.1 100\nmesh 0 3 1\nv 0 0 0 0 0\nv 1 0 0 1 0\nv 0 1 0 0 1\nt 0 1 9\nend\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unknown_record_rejected() {
        let text = "trace v1\nbogus record\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn nested_frame_rejected() {
        let text = "trace v1\nframe 0\nframe 1\n";
        let err = Trace::from_text(text).unwrap_err();
        assert!(err.to_string().contains("nested"));
    }
}
