//! The workload implementations: one procedural scene per game of Table II,
//! plus `rbench`.

use crate::geometry::{ceiling_plane, facing_wall, ground_plane, prop_box, side_wall};
use patu_gmath::{Vec2, Vec3};
use patu_raster::{Camera, Mesh};
use patu_texture::{procedural, Texture};
use std::error::Error;
use std::fmt;

/// The fragment-shading response applied to a material's filtered texture
/// color.
///
/// Real game shaders are rarely linear in the texel value: specular powers,
/// alpha tests and emissive thresholds amplify small texture-filtering
/// differences into full-scale luminance changes — the mechanism behind the
/// paper's Fig. 8 observations (water ripples and smoke effects *vanishing*
/// when AF is disabled, not merely blurring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShaderKind {
    /// Linear diffuse: output = filtered texel.
    #[default]
    Diffuse,
    /// Steep threshold response (specular/emissive/alpha-test class):
    /// a logistic curve on luma around `pivot` that snaps values to dark or
    /// bright. Filtering that moves a texel across the pivot flips the
    /// shaded output entirely — thin bright features (road markings, wire,
    /// ripples) vanish when coarse-mip blur pulls them below it.
    Threshold {
        /// Luma value the gate is centered on; pick inside the material's
        /// luma range.
        pivot: u8,
    },
}

impl ShaderKind {
    /// Applies the response to a filtered texture color.
    pub fn apply(self, color: patu_texture::Rgba8) -> patu_texture::Rgba8 {
        match self {
            ShaderKind::Diffuse => color,
            ShaderKind::Threshold { pivot } => {
                let l = f64::from(color.luma());
                let gate = 255.0 / (1.0 + (-(l - f64::from(pivot)) / 10.0).exp());
                let scale = if l > 1.0 { gate / l } else { 0.0 };
                let c = color.to_f32();
                patu_texture::Rgba8::from_f32([
                    (c[0] as f64 * scale) as f32,
                    (c[1] as f64 * scale) as f32,
                    (c[2] as f64 * scale) as f32,
                    c[3],
                ])
            }
        }
    }
}

/// One frame's renderable content.
#[derive(Debug, Clone)]
pub struct FrameScene {
    /// The meshes to draw, in submission order.
    pub meshes: Vec<Mesh>,
    /// The camera for this frame.
    pub camera: Camera,
}

/// Error returned for an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    name: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload '{}' (expected one of hl2, doom3, grid, nfs, stal, ut3, wolf, rbench, orbit, dolly)",
            self.name
        )
    }
}

impl Error for WorkloadError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Hl2,
    Doom3,
    Grid,
    Nfs,
    Stal,
    Ut3,
    Wolf,
    Rbench,
    Orbit,
    Dolly,
}

/// A buildable, animatable game workload.
///
/// See the [crate-level documentation](crate) for the scene profiles.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    kind: Kind,
    resolution: (u32, u32),
    textures: Vec<Texture>,
    shaders: Vec<ShaderKind>,
}

/// Lays textures out back-to-back in the simulated memory space,
/// 64-byte-aligned, like a driver's texture heap.
fn alloc_textures(images: Vec<procedural::Image>) -> Vec<Texture> {
    let mut base = 0u64;
    let mut out = Vec::with_capacity(images.len());
    for img in images {
        let tex = Texture::with_mips(img, base);
        base += tex.size_bytes().div_ceil(64) * 64;
        out.push(tex);
    }
    out
}

impl Workload {
    /// Builds a workload by name at a resolution.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for names outside the supported set.
    pub fn build(name: &str, resolution: (u32, u32)) -> Result<Workload, WorkloadError> {
        let (kind, static_name): (Kind, &'static str) = match name {
            "hl2" => (Kind::Hl2, "hl2"),
            "doom3" => (Kind::Doom3, "doom3"),
            "grid" => (Kind::Grid, "grid"),
            "nfs" => (Kind::Nfs, "nfs"),
            "stal" => (Kind::Stal, "stal"),
            "ut3" => (Kind::Ut3, "ut3"),
            "wolf" => (Kind::Wolf, "wolf"),
            "rbench" => (Kind::Rbench, "rbench"),
            "orbit" => (Kind::Orbit, "orbit"),
            "dolly" => (Kind::Dolly, "dolly"),
            other => {
                return Err(WorkloadError {
                    name: other.to_string(),
                })
            }
        };
        let textures = alloc_textures(match kind {
            Kind::Hl2 => vec![
                procedural::plaid(256, 256, 0x11),          // 0 grass/field surface
                procedural::stripes(256, 256, 6, 0x12),     // 1 water ripples
                procedural::composite(256, 256, 0x13),      // 2 cliff
                procedural::bricks(256, 256, 32, 12, 0x14), // 3 building
                procedural::value_noise(256, 256, 5, 0x15), // 4 foliage
            ],
            Kind::Doom3 => vec![
                procedural::plaid(256, 256, 0x21),          // 0 floor plating
                procedural::bricks(256, 256, 24, 10, 0x22), // 1 walls
                procedural::glyphs(256, 256, 0x23),         // 2 panel decals
                procedural::value_noise(256, 256, 3, 0x24), // 3 ceiling grime
            ],
            Kind::Grid => vec![
                procedural::road(256, 256, 0x31),       // 0 track
                procedural::stripes(256, 256, 8, 0x32), // 1 barriers
                procedural::glyphs(256, 256, 0x33),     // 2 billboards
                procedural::plaid(256, 256, 0x34),      // 3 verge/terrain
            ],
            Kind::Nfs => vec![
                procedural::plaid(256, 256, 0x41),     // 0 paved street
                procedural::composite(256, 256, 0x42), // 1 buildings
                procedural::glyphs(256, 256, 0x43),    // 2 signage
            ],
            Kind::Stal => vec![
                procedural::plaid(256, 256, 0x51),      // 0 terrain
                procedural::stripes(256, 256, 4, 0x52), // 1 fence
                procedural::composite(256, 256, 0x53),  // 2 ruins
            ],
            Kind::Ut3 => vec![
                procedural::plaid(256, 256, 0x61),     // 0 arena floor
                procedural::composite(256, 256, 0x62), // 1 walls
                procedural::glyphs(256, 256, 0x63),    // 2 trim
            ],
            Kind::Wolf => vec![
                procedural::checkerboard(256, 256, 32, 0x71), // 0 floor
                procedural::bricks(256, 256, 32, 16, 0x72),   // 1 walls
            ],
            Kind::Rbench => vec![
                procedural::glyphs(512, 512, 0x81),          // 0 dense detail
                procedural::stripes(512, 512, 3, 0x82),      // 1 high-frequency
                procedural::plaid(512, 512, 0x83),           // 2 multi-scale grid
                procedural::checkerboard(512, 512, 4, 0x84), // 3 fine checker
            ],
            Kind::Orbit => vec![
                procedural::value_noise(256, 256, 2, 0x91), // 0 arena floor
                procedural::value_noise(256, 256, 3, 0x92), // 1 walls
                procedural::composite(256, 256, 0x93),      // 2 trim
            ],
            Kind::Dolly => vec![
                procedural::value_noise(256, 256, 2, 0xA1), // 0 floor plating
                procedural::value_noise(256, 256, 3, 0xA2), // 1 walls
                procedural::composite(256, 256, 0xA3),      // 2 panel decals
                procedural::value_noise(256, 256, 3, 0xA4), // 3 ceiling grime
            ],
        });
        use ShaderKind::Diffuse as D;
        let t = |pivot: u8| ShaderKind::Threshold { pivot };
        let shaders: Vec<ShaderKind> = match kind {
            // Materials with specular/emissive/cutout-class response; pivots
            // sit inside each material's luma range.
            Kind::Hl2 => vec![t(128), t(120), D, D, t(90)], // field sheen, ripples, foliage
            Kind::Doom3 => vec![t(128), D, t(125), D],      // floor sheen, glowing decals
            Kind::Grid => vec![t(130), t(120), t(125), D],  // road markings, barriers, billboards
            Kind::Nfs => vec![t(128), D, t(125)],           // street markings, signage
            Kind::Stal => vec![t(128), t(120), t(130)],     // terrain sheen, wire, highlights
            Kind::Ut3 => vec![t(128), D, t(125)],           // emissive floor, trim
            Kind::Wolf => vec![D, D],
            Kind::Rbench => vec![D, t(120), t(128), t(128)],
            Kind::Orbit => vec![t(128), D, t(125)], // emissive floor, trim
            Kind::Dolly => vec![t(128), D, t(125), D], // floor sheen, decals
        };
        debug_assert_eq!(shaders.len(), textures.len());
        Ok(Workload {
            name: static_name,
            kind,
            resolution: resolution_checked(resolution),
            textures,
            shaders,
        })
    }

    /// The workload's short name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The render resolution.
    pub fn resolution(&self) -> (u32, u32) {
        self.resolution
    }

    /// Viewport aspect ratio.
    pub fn aspect(&self) -> f32 {
        self.resolution.0 as f32 / self.resolution.1 as f32
    }

    /// The workload's texture table; mesh `material` indices point here.
    pub fn textures(&self) -> &[Texture] {
        &self.textures
    }

    /// The fragment-shading response of a material.
    ///
    /// # Panics
    ///
    /// Panics if `material` is out of range.
    pub fn shader(&self, material: usize) -> ShaderKind {
        self.shaders[material]
    }

    /// The scene content of frame `index`. Deterministic; any index is valid
    /// (camera paths loop smoothly after [`Workload::loop_frames`] frames).
    pub fn frame(&self, index: u32) -> FrameScene {
        let t = f32::from((index % self.loop_frames()) as u16);
        let aspect = self.aspect();
        match self.kind {
            Kind::Hl2 => hl2_frame(t, aspect),
            Kind::Doom3 => doom3_frame(t, aspect),
            Kind::Grid => grid_frame(t, aspect),
            Kind::Nfs => nfs_frame(t, aspect),
            Kind::Stal => stal_frame(t, aspect),
            Kind::Ut3 => ut3_frame(t, aspect),
            Kind::Wolf => wolf_frame(t, aspect),
            Kind::Rbench => rbench_frame(t, aspect),
            Kind::Orbit => orbit_frame(t, aspect),
            Kind::Dolly => dolly_frame(t, aspect),
        }
    }

    /// Number of frames before the camera path repeats.
    pub fn loop_frames(&self) -> u32 {
        600
    }
}

fn resolution_checked(resolution: (u32, u32)) -> (u32, u32) {
    assert!(
        resolution.0 > 0 && resolution.1 > 0,
        "workload resolution must be non-empty"
    );
    resolution
}

const FOVY: f32 = std::f32::consts::FRAC_PI_3; // 60 degrees

fn forward_camera(t: f32, speed: f32, height: f32, sway: f32, aspect: f32) -> Camera {
    let z = -t * speed;
    let sway_x = (t * 0.05).sin() * sway;
    Camera::new(
        Vec3::new(sway_x, height, z),
        Vec3::new(sway_x * 0.5, height * 0.8, z - 30.0),
        FOVY,
        aspect,
    )
}

/// Outdoor valley: grass, water strip, distant cliff, one building, foliage
/// props. High-anisotropy ground dominates the lower half of the frame.
fn hl2_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 0.35, 1.7, 2.0, aspect);
    let z0 = cam.eye.z;
    let mut meshes = vec![
        ground_plane(0.0, 90.0, z0 - 0.6, z0 - 300.0, Vec2::new(8.0, 22.0), 0),
        // Water strip to the left, slightly above the ground to win depth.
        ground_plane(0.02, 25.0, z0 - 2.0, z0 - 260.0, Vec2::new(3.0, 18.0), 1)
            .with_transform(patu_gmath::Mat4::translation(Vec3::new(-55.0, 0.0, 0.0))),
        // Distant cliff face.
        facing_wall(0.0, 0.0, 260.0, 60.0, z0 - 290.0, Vec2::new(10.0, 3.0), 2),
        // Sky backdrop: screen-facing, magnified (isotropic, cheap).
        facing_wall(0.0, 55.0, 900.0, 260.0, z0 - 295.0, Vec2::new(3.0, 1.0), 4),
        // A building on the right.
        prop_box(
            Vec3::new(30.0, 6.0, z0 - 80.0),
            Vec3::new(18.0, 12.0, 24.0),
            3,
        ),
    ];
    // Foliage props along the path.
    for k in 0..6 {
        let kz = z0 - 30.0 - 40.0 * k as f32;
        let kx = if k % 2 == 0 { -14.0 } else { 16.0 };
        meshes.push(prop_box(
            Vec3::new(kx, 2.0, kz),
            Vec3::new(3.0, 4.0, 3.0),
            4,
        ));
    }
    FrameScene {
        meshes,
        camera: cam,
    }
}

/// Indoor corridor: floor, ceiling and both walls all stretch to the
/// vanishing point — the most anisotropy-heavy profile.
fn doom3_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 0.3, 1.6, 0.8, aspect);
    let z0 = cam.eye.z;
    let (z_near, z_far) = (z0 - 0.4, z0 - 220.0);
    let mut meshes = vec![
        ground_plane(0.0, 4.0, z_near, z_far, Vec2::new(2.0, 16.0), 0),
        ceiling_plane(3.2, 4.0, z_near, z_far, Vec2::new(2.0, 16.0), 3),
        side_wall(-4.0, 0.0, 3.2, z_near, z_far, Vec2::new(16.0, 1.0), 1, true),
        side_wall(4.0, 0.0, 3.2, z_near, z_far, Vec2::new(16.0, 1.0), 1, false),
        // End cap so the vanishing point is closed.
        facing_wall(0.0, 0.0, 8.0, 3.2, z_far + 1.0, Vec2::new(2.0, 1.0), 1),
    ];
    // Panel decals on the walls every 25 units.
    for k in 0..8 {
        let kz = z0 - 12.0 - 25.0 * k as f32;
        meshes.push(prop_box(
            Vec3::new(if k % 2 == 0 { -3.4 } else { 3.4 }, 1.5, kz),
            Vec3::new(0.8, 1.2, 0.8),
            2,
        ));
    }
    FrameScene {
        meshes,
        camera: cam,
    }
}

/// Race circuit: a low, fast camera over a road — extreme anisotropy on most
/// covered pixels, plus barrier walls and billboards.
fn grid_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 1.1, 0.9, 1.2, aspect);
    let z0 = cam.eye.z;
    let mut meshes = vec![
        ground_plane(0.0, 9.0, z0 - 0.4, z0 - 500.0, Vec2::new(2.0, 34.0), 0),
        // Grass verges outside the barriers.
        ground_plane(-0.02, 120.0, z0 - 0.4, z0 - 500.0, Vec2::new(10.0, 34.0), 3),
        side_wall(
            -9.0,
            0.0,
            1.2,
            z0 - 0.4,
            z0 - 480.0,
            Vec2::new(34.0, 1.0),
            1,
            true,
        ),
        side_wall(
            9.0,
            0.0,
            1.2,
            z0 - 0.4,
            z0 - 480.0,
            Vec2::new(34.0, 1.0),
            1,
            false,
        ),
        // Horizon sky backdrop.
        facing_wall(0.0, 8.0, 1200.0, 320.0, z0 - 495.0, Vec2::new(3.0, 1.0), 3),
    ];
    for k in 0..5 {
        let kz = z0 - 60.0 - 90.0 * k as f32;
        meshes.push(facing_wall(
            if k % 2 == 0 { -16.0 } else { 16.0 },
            1.0,
            14.0,
            7.0,
            kz,
            Vec2::new(2.0, 1.0),
            2,
        ));
    }
    FrameScene {
        meshes,
        camera: cam,
    }
}

/// City street: road with building canyons on both sides.
fn nfs_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 0.9, 1.3, 1.5, aspect);
    let z0 = cam.eye.z;
    let mut meshes = vec![
        ground_plane(0.0, 14.0, z0 - 0.4, z0 - 420.0, Vec2::new(2.0, 30.0), 0),
        side_wall(
            -14.0,
            0.0,
            22.0,
            z0 - 0.4,
            z0 - 400.0,
            Vec2::new(16.0, 2.0),
            1,
            true,
        ),
        side_wall(
            14.0,
            0.0,
            22.0,
            z0 - 0.4,
            z0 - 400.0,
            Vec2::new(16.0, 2.0),
            1,
            false,
        ),
        // Street-end backdrop.
        facing_wall(0.0, 0.0, 600.0, 200.0, z0 - 415.0, Vec2::new(4.0, 2.0), 1),
    ];
    for k in 0..6 {
        let kz = z0 - 35.0 - 60.0 * k as f32;
        meshes.push(facing_wall(
            if k % 2 == 0 { -10.0 } else { 10.0 },
            4.0,
            6.0,
            4.0,
            kz,
            Vec2::new(1.0, 1.0),
            2,
        ));
    }
    FrameScene {
        meshes,
        camera: cam,
    }
}

/// Open terrain: undulating ground (several tilted patches), fence lines and
/// scattered ruins.
fn stal_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 0.25, 1.9, 3.0, aspect);
    let z0 = cam.eye.z;
    let mut meshes = vec![
        ground_plane(0.0, 150.0, z0 - 0.6, z0 - 350.0, Vec2::new(12.0, 24.0), 0),
        // A rising hillside patch on the right (tilted quad -> varying N).
        Mesh::quad(
            [
                Vec3::new(20.0, 0.0, z0 - 20.0),
                Vec3::new(120.0, 0.0, z0 - 20.0),
                Vec3::new(120.0, 25.0, z0 - 260.0),
                Vec3::new(20.0, 18.0, z0 - 260.0),
            ],
            Vec2::new(8.0, 16.0),
            0,
        ),
        // Overcast sky backdrop.
        facing_wall(0.0, 20.0, 1000.0, 300.0, z0 - 345.0, Vec2::new(3.0, 1.0), 0),
        // Fence line along the left.
        side_wall(
            -20.0,
            0.0,
            2.0,
            z0 - 5.0,
            z0 - 320.0,
            Vec2::new(24.0, 1.0),
            1,
            true,
        ),
    ];
    for k in 0..5 {
        let kz = z0 - 40.0 - 55.0 * k as f32;
        meshes.push(prop_box(
            Vec3::new(-8.0 + 5.0 * k as f32, 1.5, kz),
            Vec3::new(4.0, 3.0, 4.0),
            2,
        ));
    }
    FrameScene {
        meshes,
        camera: cam,
    }
}

/// The arena's world-fixed mesh set (`ut3`).
fn arena_meshes() -> Vec<Mesh> {
    vec![
        ground_plane(0.0, 45.0, -0.5, -75.0, Vec2::new(6.0, 10.0), 0),
        facing_wall(0.0, 0.0, 90.0, 14.0, -74.0, Vec2::new(9.0, 2.0), 1),
        side_wall(-45.0, 0.0, 14.0, -0.5, -74.0, Vec2::new(8.0, 2.0), 1, true),
        side_wall(45.0, 0.0, 14.0, -0.5, -74.0, Vec2::new(8.0, 2.0), 1, false),
        prop_box(Vec3::new(0.0, 3.0, -30.0), Vec3::new(6.0, 6.0, 6.0), 2),
        prop_box(Vec3::new(-14.0, 2.0, -42.0), Vec3::new(4.0, 4.0, 4.0), 2),
        prop_box(Vec3::new(13.0, 2.0, -20.0), Vec3::new(4.0, 4.0, 4.0), 2),
    ]
}

/// Arena: an orbiting camera around mixed facing/oblique architecture —
/// the lowest-anisotropy profile of the set.
fn ut3_frame(t: f32, aspect: f32) -> FrameScene {
    let angle = t * 0.01;
    let eye = Vec3::new(angle.cos() * 26.0, 4.0, -30.0 + angle.sin() * 26.0);
    let camera = Camera::new(eye, Vec3::new(0.0, 2.0, -30.0), FOVY, aspect);
    FrameScene {
        meshes: arena_meshes(),
        camera,
    }
}

/// Slow-orbit sequence preset: the arena geometry anchored in world space
/// with a camera orbiting at ~1/50 of `ut3`'s angular speed — sub-pixel
/// screen motion per frame, the primary temporal-reuse workload.
fn orbit_frame(t: f32, aspect: f32) -> FrameScene {
    let angle = t * 0.0002;
    let eye = Vec3::new(angle.cos() * 26.0, 4.0, -30.0 + angle.sin() * 26.0);
    let camera = Camera::new(eye, Vec3::new(0.0, 2.0, -30.0), FOVY, aspect);
    // The `ut3` arena layout with gentler UV tiling: the preset's surfaces
    // sit below screen Nyquist so sub-pixel blit drift degrades gracefully
    // (the perceptual regime temporal reuse is aimed at) instead of
    // decorrelating a near-aliasing pattern.
    let meshes = vec![
        ground_plane(0.0, 45.0, -0.5, -75.0, Vec2::new(2.0, 3.0), 0),
        facing_wall(0.0, 0.0, 90.0, 14.0, -74.0, Vec2::new(3.0, 1.0), 1),
        side_wall(-45.0, 0.0, 14.0, -0.5, -74.0, Vec2::new(3.0, 1.0), 1, true),
        side_wall(45.0, 0.0, 14.0, -0.5, -74.0, Vec2::new(3.0, 1.0), 1, false),
        prop_box(Vec3::new(0.0, 3.0, -30.0), Vec3::new(6.0, 6.0, 6.0), 2),
        prop_box(Vec3::new(-14.0, 2.0, -42.0), Vec3::new(4.0, 4.0, 4.0), 2),
        prop_box(Vec3::new(13.0, 2.0, -20.0), Vec3::new(4.0, 4.0, 4.0), 2),
    ];
    FrameScene { meshes, camera }
}

/// First-person dolly sequence preset: a doom3-style corridor anchored in
/// world space (unlike `doom3`, whose geometry tracks the camera) with the
/// camera creeping forward ~0.012 units/frame under a faint sway. The
/// corridor shells are chunked along z so the dirty-rect engine can
/// invalidate the fast-moving near segments while the depths keep reusing.
fn dolly_frame(t: f32, aspect: f32) -> FrameScene {
    let z = -t * 0.004;
    let sway_x = (t * 0.01).sin() * 0.15;
    let camera = Camera::new(
        Vec3::new(sway_x, 1.6, z),
        Vec3::new(sway_x * 0.5, 1.3, z - 30.0),
        FOVY,
        aspect,
    );
    // Geometric chunk boundaries: perspective compresses depth, so equal
    // *screen* extents need exponentially growing world-space segments —
    // the near chunks (fast parallax, few screen rows) can then rerender
    // without dragging the slow-moving depths with them.
    let bounds: [f32; 8] = [-0.4, -1.0, -2.5, -6.3, -16.0, -40.0, -100.0, -260.0];
    let z_far = bounds[bounds.len() - 1];
    let mut meshes = Vec::new();
    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        meshes.push(ground_plane(0.0, 4.0, a, b, Vec2::new(2.0, 2.0), 0));
        meshes.push(ceiling_plane(3.2, 4.0, a, b, Vec2::new(2.0, 2.0), 3));
        meshes.push(side_wall(
            -4.0,
            0.0,
            3.2,
            a,
            b,
            Vec2::new(2.0, 1.0),
            1,
            true,
        ));
        meshes.push(side_wall(
            4.0,
            0.0,
            3.2,
            a,
            b,
            Vec2::new(2.0, 1.0),
            1,
            false,
        ));
    }
    meshes.push(facing_wall(
        0.0,
        0.0,
        8.0,
        3.2,
        z_far + 1.0,
        Vec2::new(2.0, 1.0),
        1,
    ));
    for k in 0..9 {
        let kz = -12.0 - 25.0 * k as f32;
        meshes.push(prop_box(
            Vec3::new(if k % 2 == 0 { -3.4 } else { 3.4 }, 1.5, kz),
            Vec3::new(0.8, 1.2, 0.8),
            2,
        ));
    }
    FrameScene { meshes, camera }
}

/// Retro corridor: chunky textures, low resolution.
fn wolf_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 0.28, 1.5, 0.5, aspect);
    let z0 = cam.eye.z;
    let meshes = vec![
        ground_plane(0.0, 3.0, z0 - 0.4, z0 - 150.0, Vec2::new(1.0, 12.0), 0),
        ceiling_plane(3.0, 3.0, z0 - 0.4, z0 - 150.0, Vec2::new(1.0, 12.0), 0),
        side_wall(
            -3.0,
            0.0,
            3.0,
            z0 - 0.4,
            z0 - 150.0,
            Vec2::new(12.0, 1.0),
            1,
            true,
        ),
        side_wall(
            3.0,
            0.0,
            3.0,
            z0 - 0.4,
            z0 - 150.0,
            Vec2::new(12.0, 1.0),
            1,
            false,
        ),
        facing_wall(0.0, 0.0, 6.0, 3.0, z0 - 149.0, Vec2::new(1.5, 0.8), 1),
    ];
    FrameScene {
        meshes,
        camera: cam,
    }
}

/// The texture-stress benchmark: several overlapping oblique planes carrying
/// dense high-frequency textures — maximal texel demand per pixel.
fn rbench_frame(t: f32, aspect: f32) -> FrameScene {
    let cam = forward_camera(t, 0.2, 2.2, 1.0, aspect);
    let z0 = cam.eye.z;
    let meshes = vec![
        ground_plane(0.0, 80.0, z0 - 0.5, z0 - 300.0, Vec2::new(28.0, 70.0), 0),
        // A ramp rising to the left.
        Mesh::quad(
            [
                Vec3::new(-60.0, 0.0, z0 - 10.0),
                Vec3::new(-5.0, 0.0, z0 - 10.0),
                Vec3::new(-5.0, 30.0, z0 - 240.0),
                Vec3::new(-60.0, 38.0, z0 - 240.0),
            ],
            Vec2::new(20.0, 50.0),
            1,
        ),
        // A canted billboard wall on the right.
        Mesh::quad(
            [
                Vec3::new(10.0, 0.0, z0 - 30.0),
                Vec3::new(70.0, 0.0, z0 - 160.0),
                Vec3::new(70.0, 22.0, z0 - 160.0),
                Vec3::new(10.0, 22.0, z0 - 30.0),
            ],
            Vec2::new(24.0, 5.0),
            2,
        ),
        facing_wall(0.0, 0.0, 200.0, 45.0, z0 - 290.0, Vec2::new(26.0, 7.0), 3),
    ];
    FrameScene {
        meshes,
        camera: cam,
    }
}

#[cfg(test)]
mod tests {
    // Tests may hash: iteration order is never observed in assertions.
    #![allow(clippy::disallowed_types)]
    use super::*;
    use patu_raster::Pipeline;

    const ALL: [&str; 10] = [
        "hl2", "doom3", "grid", "nfs", "stal", "ut3", "wolf", "rbench", "orbit", "dolly",
    ];

    #[test]
    fn unknown_name_errors() {
        let err = Workload::build("quake", (640, 480)).unwrap_err();
        assert!(err.to_string().contains("quake"));
    }

    #[test]
    fn all_workloads_build() {
        for name in ALL {
            let w = Workload::build(name, (320, 240)).expect(name);
            assert_eq!(w.name(), name);
            assert!(!w.textures().is_empty(), "{name} has textures");
        }
    }

    #[test]
    fn texture_addresses_do_not_overlap() {
        for name in ALL {
            let w = Workload::build(name, (320, 240)).unwrap();
            let mut regions: Vec<(u64, u64)> = w
                .textures()
                .iter()
                .map(|t| (t.base_address(), t.base_address() + t.size_bytes()))
                .collect();
            regions.sort_unstable();
            for pair in regions.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0,
                    "{name}: overlapping texture regions"
                );
            }
        }
    }

    #[test]
    fn material_indices_within_texture_table() {
        for name in ALL {
            let w = Workload::build(name, (320, 240)).unwrap();
            let frame = w.frame(0);
            for m in &frame.meshes {
                assert!(
                    m.material < w.textures().len(),
                    "{name}: material {}",
                    m.material
                );
            }
        }
    }

    #[test]
    fn every_workload_renders_fragments() {
        for name in ALL {
            let w = Workload::build(name, (320, 240)).unwrap();
            let frame = w.frame(0);
            let out = Pipeline::new(320, 240).run(&frame.meshes, &frame.camera);
            let coverage = out.stats.fragments_shaded as f64 / (320.0 * 240.0);
            assert!(
                coverage > 0.5,
                "{name}: only {coverage:.2} of pixels covered"
            );
        }
    }

    #[test]
    fn frames_are_deterministic() {
        let w = Workload::build("doom3", (320, 240)).unwrap();
        let a = w.frame(42);
        let b = w.frame(42);
        assert_eq!(a.meshes.len(), b.meshes.len());
        assert_eq!(a.camera, b.camera);
    }

    #[test]
    fn camera_advances_between_frames() {
        for name in [
            "hl2", "doom3", "grid", "nfs", "stal", "wolf", "rbench", "orbit", "dolly",
        ] {
            let w = Workload::build(name, (320, 240)).unwrap();
            let a = w.frame(0).camera;
            let b = w.frame(50).camera;
            assert_ne!(a.eye, b.eye, "{name}: camera must move");
        }
    }

    #[test]
    fn sequence_presets_are_world_fixed_and_slow() {
        for name in ["orbit", "dolly"] {
            let w = Workload::build(name, (320, 240)).unwrap();
            let a = w.frame(0);
            let b = w.frame(1);
            assert_eq!(
                a.meshes, b.meshes,
                "{name}: geometry must be anchored in world space"
            );
            assert_ne!(a.camera.eye, b.camera.eye, "{name}: camera must creep");
            let d = b.camera.eye - a.camera.eye;
            let step = (d.x * d.x + d.y * d.y + d.z * d.z).sqrt();
            assert!(step < 0.1, "{name}: slow camera, moved {step} units/frame");
        }
    }

    #[test]
    fn corridor_workloads_have_high_anisotropy() {
        // doom3/grid must present large-N footprints; ut3 much fewer.
        use patu_texture::{Footprint, MAX_ANISO};
        let mut frac = std::collections::HashMap::new();
        for name in ["doom3", "grid", "ut3"] {
            let w = Workload::build(name, (320, 240)).unwrap();
            let frame = w.frame(0);
            let out = Pipeline::new(320, 240).run(&frame.meshes, &frame.camera);
            let (mut high, mut total) = (0u64, 0u64);
            for f in out.fragments() {
                let tex = &w.textures()[f.material];
                let fp = Footprint::from_derivatives(
                    f.duv_dx,
                    f.duv_dy,
                    tex.width(),
                    tex.height(),
                    MAX_ANISO,
                );
                total += 1;
                if fp.n >= 4 {
                    high += 1;
                }
            }
            frac.insert(name, high as f64 / total as f64);
        }
        // After calibration toward the paper's traffic profile (texel
        // fetches drop ~28% when AF is disabled), high-N pixels are a
        // minority everywhere — but they must exist, or AF (and PATU)
        // would have nothing to do.
        for name in ["doom3", "grid", "ut3"] {
            assert!(
                frac[name] > 0.02 && frac[name] < 0.8,
                "{name} high-N fraction {}",
                frac[name]
            );
        }
    }

    #[test]
    fn loop_wraps_camera_path() {
        let w = Workload::build("grid", (320, 240)).unwrap();
        let a = w.frame(0).camera;
        let b = w.frame(w.loop_frames()).camera;
        assert_eq!(a.eye, b.eye, "path loops");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_resolution_panics() {
        let _ = Workload::build("hl2", (0, 480));
    }
}
