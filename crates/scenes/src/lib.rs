//! # patu-scenes
//!
//! Synthetic 3D gaming workloads standing in for the seven commercial game
//! traces of the PATU paper's Table II (HPCA 2018), plus the `rbench`
//! texture-stress benchmark used in its Fig. 4 motivation experiment.
//!
//! Licensed game art and captured API traces cannot be redistributed; what
//! the paper's results actually depend on is the *distribution of texture
//! sampling footprints* each game presents — how much of the screen is
//! covered by oblique, high-anisotropy surfaces (floors, roads, terrain)
//! versus screen-facing ones (walls, UI) — and the spatial-frequency content
//! of the textures. Each workload here is a procedural scene tuned to a
//! distinct profile (see [`catalog()`](catalog())):
//!
//! * `hl2` — outdoor valley: grass ground, water strip, distant cliff.
//! * `doom3` — indoor corridor: floor/ceiling/walls all stretch to a far
//!   vanishing point (anisotropy-heavy, dark palette).
//! * `grid` — race circuit: low camera over a road plane (extreme N).
//! * `nfs` — city street: road plus building canyons.
//! * `stal` — open terrain with scattered props and fencing.
//! * `ut3` — arena: mixed facing/oblique architecture.
//! * `wolf` — retro corridor at 640×480.
//! * `rbench` — overlapping oblique high-frequency planes at 2K/4K.
//!
//! All scenes are deterministic (seeded) and animated: [`Workload::frame`]
//! returns the meshes and camera for any frame index, so multi-frame
//! experiments (replay, vsync studies) are reproducible.
//!
//! # Examples
//!
//! ```
//! use patu_scenes::Workload;
//!
//! let workload = Workload::build("doom3", (640, 480)).expect("known game");
//! let frame = workload.frame(0);
//! assert!(!frame.meshes.is_empty());
//! assert!(!workload.textures().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod games;
pub mod geometry;
pub mod trace;

pub use catalog::{catalog, default_specs, game_names, sequence_specs, WorkloadSpec};
pub use games::{FrameScene, ShaderKind, Workload, WorkloadError};
pub use trace::{ParseTraceError, Trace};
