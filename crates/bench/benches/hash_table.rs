//! Texel-address hash table (PATU component ②) insert/readout costs.

use patu_bench::micro;
use patu_core::TexelAddressTable;
use patu_texture::TexelAddress;
use std::hint::black_box;

fn tap_set(base: u64) -> Vec<TexelAddress> {
    (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
}

fn main() {
    let mut group = micro::group("hash_table");

    let shared: Vec<Vec<TexelAddress>> = (0..16).map(|_| tap_set(0)).collect();
    let distinct: Vec<Vec<TexelAddress>> = (0..16u64).map(|i| tap_set(i * 0x100)).collect();

    for (name, sets) in [("16_shared_taps", &shared), ("16_distinct_taps", &distinct)] {
        group.bench_batched(name, TexelAddressTable::new, |mut table| {
            for s in sets {
                table.insert(black_box(s));
            }
            table.probability_vector()
        });
    }
    group.write_json();
}
