//! Filtering-throughput microbenchmarks: trilinear vs. anisotropic vs. the
//! PATU-demoted path.

use patu_bench::micro;
use patu_core::{FilterPolicy, PerceptionAwareTextureUnit, SoaBatch};
use patu_gmath::Vec2;
use patu_texture::{
    procedural, sample_anisotropic, sample_trilinear_record, AddressMode, Footprint, Texture,
};
use std::hint::black_box;

fn texture() -> Texture {
    Texture::with_mips(procedural::composite(512, 512, 0xBE), 0)
}

fn footprint(n_texels: f32) -> Footprint {
    Footprint::from_derivatives(
        Vec2::new(n_texels / 512.0, 0.0),
        Vec2::new(0.0, 1.0 / 512.0),
        512,
        512,
        16,
    )
}

fn main() {
    let tex = texture();
    let uv = Vec2::new(0.37, 0.61);
    let mut group = micro::group("filtering");

    group.bench("trilinear", || {
        sample_trilinear_record(&tex, black_box(uv), 1.5, AddressMode::Wrap)
    });

    for n in [4.0f32, 8.0, 16.0] {
        let fp = footprint(n);
        group.bench(&format!("anisotropic_n{}", fp.n), || {
            sample_anisotropic(&tex, black_box(uv), &fp, AddressMode::Wrap)
        });
    }

    let fp = footprint(8.0);
    group.bench_batched(
        "patu_decide_and_filter_n8",
        || PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 }),
        |mut unit| unit.filter(&tex, black_box(uv), &fp, AddressMode::Wrap),
    );

    // The fused SoA kernel over a 64-lane batch of the same pixel, reported
    // per lane — directly comparable with `patu_decide_and_filter_n8`
    // (bit-identical outputs, batched layout and lazy AF fetch).
    const LANES: usize = 64;
    group.bench_batched_scaled(
        "patu_batched_n8",
        LANES as u64,
        || {
            let unit = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 });
            let mut batch = SoaBatch::new();
            for i in 0..LANES {
                let (x, y) = (i as u32 % 8, i as u32 / 8);
                batch.push(
                    x,
                    y,
                    uv,
                    Vec2::new(8.0 / 512.0, 0.0),
                    Vec2::new(0.0, 1.0 / 512.0),
                );
            }
            (unit, batch)
        },
        |(mut unit, mut batch)| {
            unit.filter_batch(&tex, AddressMode::Wrap, 16, &mut batch, |_| {
                FilterPolicy::Patu { threshold: 0.4 }
            });
            black_box(batch.color(LANES - 1))
        },
    );
    group.write_json();
}
