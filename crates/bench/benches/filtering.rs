//! Filtering-throughput microbenchmarks: trilinear vs. anisotropic vs. the
//! PATU-demoted path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use patu_core::{FilterPolicy, PerceptionAwareTextureUnit};
use patu_gmath::Vec2;
use patu_texture::{
    procedural, sample_anisotropic, sample_trilinear_record, AddressMode, Footprint, Texture,
};
use std::hint::black_box;

fn texture() -> Texture {
    Texture::with_mips(procedural::composite(512, 512, 0xBE), 0)
}

fn footprint(n_texels: f32) -> Footprint {
    Footprint::from_derivatives(
        Vec2::new(n_texels / 512.0, 0.0),
        Vec2::new(0.0, 1.0 / 512.0),
        512,
        512,
        16,
    )
}

fn bench_filtering(c: &mut Criterion) {
    let tex = texture();
    let uv = Vec2::new(0.37, 0.61);
    let mut group = c.benchmark_group("filtering");

    group.bench_function("trilinear", |b| {
        b.iter(|| sample_trilinear_record(&tex, black_box(uv), 1.5, AddressMode::Wrap))
    });

    for n in [4.0f32, 8.0, 16.0] {
        let fp = footprint(n);
        group.bench_function(format!("anisotropic_n{}", fp.n), |b| {
            b.iter(|| sample_anisotropic(&tex, black_box(uv), &fp, AddressMode::Wrap))
        });
    }

    let fp = footprint(8.0);
    group.bench_function("patu_decide_and_filter_n8", |b| {
        b.iter_batched(
            || PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: 0.4 }),
            |mut unit| unit.filter(&tex, black_box(uv), &fp, AddressMode::Wrap),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_filtering);
criterion_main!(benches);
