//! Texture cache model throughput under streaming and reuse patterns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use patu_gpu::{Cache, GpuConfig};
use patu_texture::TexelAddress;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut group = c.benchmark_group("cache");

    // Streaming: every access a new line.
    group.bench_function("l1_streaming_4k_accesses", |b| {
        b.iter_batched(
            || Cache::new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.access(black_box(TexelAddress::new(i * 64)));
                }
                cache.stats().hits
            },
            BatchSize::SmallInput,
        )
    });

    // Reuse: a texture-tile-like working set re-touched repeatedly.
    group.bench_function("l1_reuse_4k_accesses", |b| {
        b.iter_batched(
            || Cache::new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.access(black_box(TexelAddress::new((i % 128) * 64)));
                }
                cache.stats().hits
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
