//! Texture cache model throughput under streaming and reuse patterns.

use patu_bench::micro;
use patu_gpu::{Cache, GpuConfig};
use patu_texture::TexelAddress;
use std::hint::black_box;

fn main() {
    let cfg = GpuConfig::default();
    let mut group = micro::group("cache");

    // Streaming: every access a new line.
    group.bench_batched(
        "l1_streaming_4k_accesses",
        || Cache::new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes),
        |mut cache| {
            for i in 0..4096u64 {
                cache.access(black_box(TexelAddress::new(i * 64)));
            }
            cache.stats().hits
        },
    );

    // Reuse: a texture-tile-like working set re-touched repeatedly.
    group.bench_batched(
        "l1_reuse_4k_accesses",
        || Cache::new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes),
        |mut cache| {
            for i in 0..4096u64 {
                cache.access(black_box(TexelAddress::new((i % 128) * 64)));
            }
            cache.stats().hits
        },
    );
    group.write_json();
}
