//! Rasterization pipeline throughput.

use patu_bench::micro;
use patu_raster::Pipeline;
use patu_scenes::Workload;
use std::hint::black_box;

fn main() {
    let group = micro::group("raster");
    for (game, res) in [("doom3", (320u32, 256u32)), ("grid", (320, 256))] {
        let workload = Workload::build(game, res).expect("known game");
        let frame = workload.frame(0);
        let pipeline = Pipeline::new(res.0, res.1);
        group.bench(&format!("{game}_{}x{}", res.0, res.1), || {
            pipeline.run(black_box(&frame.meshes), &frame.camera)
        });
    }
}
