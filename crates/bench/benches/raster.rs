//! Rasterization pipeline throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use patu_raster::Pipeline;
use patu_scenes::Workload;
use std::hint::black_box;

fn bench_raster(c: &mut Criterion) {
    let mut group = c.benchmark_group("raster");
    group.sample_size(20);
    for (game, res) in [("doom3", (320u32, 256u32)), ("grid", (320, 256))] {
        let workload = Workload::build(game, res).expect("known game");
        let frame = workload.frame(0);
        let pipeline = Pipeline::new(res.0, res.1);
        group.bench_function(format!("{game}_{}x{}", res.0, res.1), |b| {
            b.iter(|| pipeline.run(black_box(&frame.meshes), &frame.camera))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raster);
criterion_main!(benches);
