//! Rasterization pipeline throughput, plus the reusable flat-grid quad
//! divergence accounting the render loop uses. (The retired
//! `HashMap<QuadId, Vec<bool>>` baseline it replaced measured ~9.5× slower
//! — see BENCH_raster.json history — and was dropped along with the dead
//! per-tile HashMap code path.)

use patu_bench::micro;
use patu_core::DivergenceStats;
use patu_raster::Pipeline;
use patu_scenes::Workload;
use std::hint::black_box;

const TILE: u32 = 16;

fn main() {
    let mut group = micro::group("raster");
    for (game, res) in [("doom3", (320u32, 256u32)), ("grid", (320, 256))] {
        let workload = Workload::build(game, res).expect("known game");
        let frame = workload.frame(0);
        let pipeline = Pipeline::new(res.0, res.1);
        group.bench(&format!("{game}_{}x{}", res.0, res.1), || {
            pipeline.run(black_box(&frame.meshes), &frame.camera)
        });
    }

    // Quad accounting: the reusable flat grid the render loop ships with.
    let workload = Workload::build("doom3", (320, 256)).expect("known game");
    let frame = workload.frame(0);
    let geometry = Pipeline::with_tile_size(320, 256, TILE).run(&frame.meshes, &frame.camera);

    let quads_per_side = (TILE as usize).div_ceil(2);
    let mut fragments = vec![0u32; quads_per_side * quads_per_side];
    let mut approximated = vec![0u32; quads_per_side * quads_per_side];
    group.bench("quad_accounting/flat_reused", || {
        let mut divergence = DivergenceStats::new();
        for tile in &geometry.tiles {
            let (x0, y0) = (tile.tx * TILE, tile.ty * TILE);
            for frag in &tile.fragments {
                let idx =
                    ((frag.y - y0) / 2) as usize * quads_per_side + ((frag.x - x0) / 2) as usize;
                fragments[idx] += 1;
                approximated[idx] += u32::from(frag.x % 3 == 0);
            }
            for (count, approx) in fragments.iter_mut().zip(&mut approximated) {
                if *count > 0 {
                    divergence.record_quad_counts(u64::from(*count), u64::from(*approx));
                    *count = 0;
                    *approx = 0;
                }
            }
        }
        black_box(divergence)
    });

    group.write_json();
}
