//! AF-SSIM predictor cost: the compute PATU adds per pixel.

use patu_bench::micro;
use patu_core::{af_ssim_n, af_ssim_txds, entropy, txds, FilterPolicy, TexelAddressTable};
use patu_gmath::Vec2;
use patu_texture::{Footprint, TexelAddress};
use std::hint::black_box;

fn tap_set(base: u64) -> Vec<TexelAddress> {
    (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
}

fn main() {
    let mut group = micro::group("predictor");

    group.bench("af_ssim_n", || af_ssim_n(black_box(8)));

    let p = [0.6, 0.2, 0.2];
    group.bench("entropy", || entropy(black_box(&p)));
    group.bench("txds_plus_afssim", || af_ssim_txds(txds(black_box(&p), 5)));

    let fp = Footprint::from_derivatives(
        Vec2::new(8.0 / 512.0, 0.0),
        Vec2::new(0.0, 1.0 / 512.0),
        512,
        512,
        16,
    );
    let sets: Vec<Vec<TexelAddress>> = (0..8).map(|i| tap_set((i % 3) * 0x100)).collect();
    let mut table = TexelAddressTable::new();
    let policy = FilterPolicy::Patu { threshold: 0.4 };
    group.bench("full_two_stage_decision", || {
        policy.decide(black_box(&fp), &mut table, || sets.clone())
    });
    group.write_json();
}
