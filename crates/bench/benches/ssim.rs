//! SSIM analyzer throughput (the analysis layer's dominant cost).

use patu_bench::micro;
use patu_quality::{GrayImage, SampledSsimConfig, SsimConfig};
use std::hint::black_box;

fn gradient(width: u32, height: u32, phase: u32) -> GrayImage {
    let data = (0..height)
        .flat_map(|y| (0..width).map(move |x| ((x * 7 + y * 13 + phase) % 256) as f32))
        .collect();
    GrayImage::new(width, height, data)
}

fn main() {
    let mut group = micro::group("ssim");
    for size in [128u32, 256, 512] {
        let a = gradient(size, size, 0);
        let b = gradient(size, size, 11);
        group.bench(&format!("mssim_{size}x{size}"), || {
            SsimConfig::default().mssim(black_box(&a), black_box(&b))
        });
    }
    let a = gradient(256, 256, 0);
    let b = gradient(256, 256, 11);
    group.bench("full_map_256", || {
        SsimConfig::default().ssim_map(black_box(&a), black_box(&b))
    });

    // The stratified sampled estimator at the default 1/4 fraction —
    // compare with `mssim_512x512` for the sampling speedup (the fraction
    // is pinned so the row never depends on `PATU_SSIM_SAMPLE`).
    let a = gradient(512, 512, 0);
    let b = gradient(512, 512, 11);
    let sampled =
        SampledSsimConfig::new(0x55A9).with_fraction(patu_quality::sampled::DEFAULT_FRACTION);
    group.bench("sampled_512x512", || {
        sampled.mssim_sampled(black_box(&a), black_box(&b))
    });
    group.write_json();
}
