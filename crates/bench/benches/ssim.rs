//! SSIM analyzer throughput (the analysis layer's dominant cost).

use criterion::{criterion_group, criterion_main, Criterion};
use patu_quality::{GrayImage, SsimConfig};
use std::hint::black_box;

fn gradient(width: u32, height: u32, phase: u32) -> GrayImage {
    let data = (0..height)
        .flat_map(|y| (0..width).map(move |x| ((x * 7 + y * 13 + phase) % 256) as f32))
        .collect();
    GrayImage::new(width, height, data)
}

fn bench_ssim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssim");
    for size in [128u32, 256, 512] {
        let a = gradient(size, size, 0);
        let b = gradient(size, size, 11);
        group.bench_function(format!("mssim_{size}x{size}"), |bch| {
            bch.iter(|| SsimConfig::default().mssim(black_box(&a), black_box(&b)))
        });
    }
    let a = gradient(256, 256, 0);
    let b = gradient(256, 256, 11);
    group.bench_function("full_map_256", |bch| {
        bch.iter(|| SsimConfig::default().ssim_map(black_box(&a), black_box(&b)))
    });
    group.finish();
}

criterion_group!(benches, bench_ssim);
criterion_main!(benches);
