//! Ablation: intra-tile fragment traversal order (row-major vs Morton) and
//! its effect on texture-cache locality under full 16×AF.
//!
//! Real GPUs traverse tiles in locality-preserving orders; the effect shows
//! up in the L1 texture-cache hit rate and therefore in filtering latency.

use patu_bench::RunOptions;
use patu_core::FilterPolicy;
use patu_raster::TraversalOrder;
use patu_scenes::{default_specs, Workload};
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "ABLATION: fragment traversal order ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:<16} {:>13} {:>13} {:>16} {:>16}",
        "game", "cycles row", "cycles morton", "L1 misses row", "L1 misses mort"
    );

    let (mut rows, mut morts) = (0u64, 0u64);
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let row = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
        let mort = render_frame(
            &workload,
            0,
            &RenderConfig::new(FilterPolicy::Baseline).with_traversal(TraversalOrder::Morton),
        )?;
        println!(
            "{:<16} {:>13} {:>13} {:>16} {:>16}",
            spec.label(),
            row.stats.cycles,
            mort.stats.cycles,
            row.stats.events.l1_misses,
            mort.stats.events.l1_misses
        );
        rows += row.stats.cycles;
        morts += mort.stats.cycles;
    }
    println!(
        "\ntotal cycles: row-major {rows} vs morton {morts} ({:+.2}%)",
        (morts as f64 / rows as f64 - 1.0) * 100.0
    );
    println!(
        "Traversal order is orthogonal to PATU; both are locality plays on the \
         same texture hierarchy (compare with Fig. 21's cache-scaling study)."
    );
    Ok(())
}
