//! Sec. V-C(1): prediction divergence within 2×2 quads under PATU.

use patu_bench::{paper_note, pct, RunOptions};
use patu_core::FilterPolicy;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::run_policies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "SEC. V-C(1): quad prediction divergence under PATU θ=0.4 ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:<16} {:>12} {:>14} {:>10}",
        "game", "quads", "divergent", "fraction"
    );

    let mut fractions = Vec::new();
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(
            &workload,
            &[("PATU", FilterPolicy::Patu { threshold: 0.4 })],
            &opts.experiment(),
        )?;
        let d = results[0].divergence;
        println!(
            "{:<16} {:>12} {:>14} {:>10}",
            spec.label(),
            d.quads,
            d.divergent_quads,
            pct(d.divergence_fraction())
        );
        fractions.push(d.divergence_fraction());
    }
    println!(
        "\nmean divergence: {} (max {})",
        pct(fractions.iter().sum::<f64>() / fractions.len() as f64),
        pct(fractions.iter().cloned().fold(0.0, f64::max))
    );

    paper_note(
        "Sec. V-C(1)",
        "only 1% of quads on average (up to 1.6%) diverge in their per-pixel \
         predictions — no special divergence hardware is justified",
    );
    Ok(())
}
