//! Calibration diagnostic: per-game mean AF tap count, cycles with AF
//! on/off, filtering latency, L2 miss rate, texture traffic share, and the
//! AF-off texel ratio — the quantities DESIGN.md §5b/§5c calibrate against.

use patu_core::FilterPolicy;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["hl2", "doom3", "grid", "nfs", "stal", "ut3", "wolf"] {
        let res = if name == "wolf" { (320, 240) } else { (640, 512) };
        let w = Workload::build(name, res).unwrap();
        let base = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
        let noaf = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf))?;
        let e = &base.stats.events;
        let n_avg = e.trilinear_ops as f64 / base.stats.filter_requests as f64;
        println!(
            "{name:>6}: N_avg {:.2} | base cycles {:>10} noaf {:>10} ({:.2}x) | mean filt lat base {:.0} noaf {:.0} | l2miss rate base {:.2} | texfrac {:.2} | texel ratio {:.2}",
            n_avg,
            base.stats.cycles,
            noaf.stats.cycles,
            base.stats.cycles as f64 / noaf.stats.cycles as f64,
            base.stats.mean_filter_latency(),
            noaf.stats.mean_filter_latency(),
            e.l2_misses as f64 / e.l2_accesses.max(1) as f64,
            base.stats.bandwidth.texture_fraction(),
            noaf.stats.events.texel_fetches as f64 / e.texel_fetches as f64,
        );
    }
    Ok(())
}
