//! Calibration diagnostic: per-game mean AF tap count, cycles with AF
//! on/off, filtering latency (mean and tail), L2 miss rate, texture traffic
//! share, and the AF-off texel ratio — the quantities DESIGN.md §5b/§5c
//! calibrate against. Rendered through the telemetry layer's single
//! run-summary formatter ([`patu_obs::Table`]).

use patu_core::FilterPolicy;
use patu_obs::Table;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(&[
        "game",
        "N_avg",
        "base cycles",
        "noaf cycles",
        "ratio",
        "lat mean",
        "lat p95",
        "lat p99",
        "l2miss",
        "texfrac",
        "texel ratio",
    ]);
    for name in ["hl2", "doom3", "grid", "nfs", "stal", "ut3", "wolf"] {
        let res = if name == "wolf" {
            (320, 240)
        } else {
            (640, 512)
        };
        let w = Workload::build(name, res).unwrap();
        let base = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
        let noaf = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf))?;
        let e = &base.stats.events;
        let n_avg = e.trilinear_ops as f64 / base.stats.filter_requests as f64;
        table.row(&[
            name.to_string(),
            format!("{n_avg:.2}"),
            base.stats.cycles.to_string(),
            noaf.stats.cycles.to_string(),
            format!(
                "{:.2}x",
                base.stats.cycles as f64 / noaf.stats.cycles as f64
            ),
            format!("{:.0}", base.stats.mean_filter_latency()),
            base.stats.filter_latency_p95().to_string(),
            base.stats.filter_latency_p99().to_string(),
            format!("{:.2}", e.l2_misses as f64 / e.l2_accesses.max(1) as f64),
            format!("{:.2}", base.stats.bandwidth.texture_fraction()),
            format!(
                "{:.2}",
                noaf.stats.events.texel_fetches as f64 / e.texel_fetches as f64
            ),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}
