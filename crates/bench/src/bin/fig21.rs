//! Fig. 21: cache-sensitivity study — performance at scaled texture-cache /
//! LLC capacities, with and without PATU.

use patu_bench::{paper_note, pct_delta, RunOptions};
use patu_core::FilterPolicy;
use patu_gpu::GpuConfig;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{run_policies, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 21: cache scaling with and without PATU ({})",
        opts.profile_banner()
    );

    let configs: Vec<(&str, GpuConfig)> = vec![
        ("1x (Table I)", GpuConfig::default()),
        ("2xLLC", GpuConfig::default().with_llc_scale(2)),
        ("4xLLC", GpuConfig::default().with_llc_scale(4)),
        (
            "2xTC+4xLLC",
            GpuConfig::default().with_tc_scale(2).with_llc_scale(4),
        ),
    ];

    // Reference: baseline policy on the 1x configuration, per game.
    println!(
        "\n{:<14} {:>16} {:>16}",
        "cache config", "no PATU", "PATU θ=0.4"
    );
    let mut rows = Vec::new();
    for (label, gpu) in &configs {
        let (mut no_patu, mut with_patu, mut games) = (0.0f64, 0.0f64, 0.0f64);
        for spec in default_specs() {
            let workload = Workload::build(spec.name, opts.resolution(&spec))?;
            // 1x baseline for normalization.
            let base_cfg = ExperimentConfig {
                gpu: GpuConfig::default(),
                ..opts.experiment()
            };
            let ref_run = run_policies(
                &workload,
                &[("Baseline", FilterPolicy::Baseline)],
                &base_cfg,
            )?;
            let scaled_cfg = ExperimentConfig {
                gpu: *gpu,
                ..opts.experiment()
            };
            let scaled = run_policies(
                &workload,
                &[
                    ("Baseline", FilterPolicy::Baseline),
                    ("PATU", FilterPolicy::Patu { threshold: 0.4 }),
                ],
                &scaled_cfg,
            )?;
            no_patu += ref_run[0].mean_cycles / scaled[0].mean_cycles;
            with_patu += ref_run[0].mean_cycles / scaled[1].mean_cycles;
            games += 1.0;
        }
        println!(
            "{:<14} {:>15.3}x {:>15.3}x",
            label,
            no_patu / games,
            with_patu / games
        );
        rows.push((label.to_string(), no_patu / games, with_patu / games));
    }

    println!(
        "\nPATU gain at 2xLLC: {} | 4xLLC: {} | 2xTC+4xLLC: {} over the 1x baseline",
        pct_delta(rows[1].2),
        pct_delta(rows[2].2),
        pct_delta(rows[3].2),
    );

    paper_note(
        "Fig. 21",
        "capacity scaling alone barely helps (bandwidth-bound); adding PATU delivers \
         24.1% / 28.0% / 28.3% speedups over the baseline at 2xLLC / 4xLLC / 2xTC+4xLLC — \
         PATU is orthogonal to cache scaling",
    );
    Ok(())
}
