//! Validates telemetry JSONL artifacts against the in-repo schema
//! (`patu_obs::schema`). Every line a sink writes must re-parse and carry
//! the fields its record type promises — CI runs this after `trace_smoke`.
//!
//! Usage: `trace_check <file.jsonl>...`; with no arguments it checks
//! `$PATU_TRACE_OUT/trace_smoke.jsonl`.

use std::path::PathBuf;
use std::process::ExitCode;

use patu_obs::{schema, trace_out_dir};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<PathBuf> = if args.is_empty() {
        match trace_out_dir() {
            Some(dir) => vec![dir.join("trace_smoke.jsonl")],
            None => {
                eprintln!("usage: trace_check <file.jsonl>... (or set PATU_TRACE_OUT)");
                return ExitCode::from(2);
            }
        }
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };

    let mut failed = false;
    for path in paths {
        match std::fs::read_to_string(&path) {
            Ok(text) => match schema::check_stream(&text) {
                Ok(lines) => println!("{}: {lines} lines ok", path.display()),
                Err((line, err)) => {
                    eprintln!("{}:{line}: {err}", path.display());
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
