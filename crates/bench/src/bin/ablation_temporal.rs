//! Ablation: temporal stability under approximation.
//!
//! Per-frame MSSIM against the baseline (Figs. 17/19) cannot see *flicker* —
//! a pixel demoted in one frame but not the next. This study measures the
//! mean SSIM between consecutive frames of the same run: if a policy's
//! inter-frame SSIM tracks the baseline's, the approximation adds no
//! temporal noise on top of the camera motion.

use patu_bench::RunOptions;
use patu_core::FilterPolicy;
use patu_scenes::Workload;
use patu_sim::experiment::{temporal_stability, temporal_stability_with_store};
use patu_temporal::{TemporalConfig, TemporalMode, TileStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "ABLATION: temporal stability (consecutive-frame SSIM) ({})",
        opts.profile_banner()
    );
    // Consecutive frame indices: the camera moves a small step between them.
    let frames: Vec<u32> = (0..6).collect();
    let cfg = opts.experiment();

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10}",
        "game", "baseline", "PATU@0.4", "PATU@0.1", "no AF"
    );
    for name in ["doom3", "grid", "stal"] {
        let spec = patu_scenes::default_specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("game in default set");
        let workload = Workload::build(name, opts.resolution(&spec))?;
        let mut row = Vec::new();
        for policy in [
            FilterPolicy::Baseline,
            FilterPolicy::Patu { threshold: 0.4 },
            FilterPolicy::Patu { threshold: 0.1 },
            FilterPolicy::NoAf,
        ] {
            row.push(temporal_stability(&workload, policy, &frames, &cfg)?);
        }
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            name, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "\nInter-frame SSIM is dominated by camera motion; a policy whose column \
         tracks the baseline adds no flicker of its own. Large drops relative to \
         the baseline column would indicate frame-to-frame decision instability."
    );

    // Reuse ablation: the same consecutive-frame stability measured through
    // the temporal tile store on the slow-camera sequence presets. Blitting
    // a tile forward is perfectly stable by construction, so the `on`
    // column should sit at or above `off` while reusing most tiles.
    println!("\nreuse ablation (sequence presets, PATU@0.4, temporal off vs on):");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "preset", "off", "on", "reused"
    );
    for spec in patu_scenes::sequence_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let policy = FilterPolicy::Patu { threshold: 0.4 };
        let mut off_store = TileStore::new(TemporalConfig::off());
        let off = temporal_stability_with_store(&workload, policy, &frames, &cfg, &mut off_store)?;
        let mut on_store = TileStore::new(TemporalConfig::for_mode(TemporalMode::On));
        let on = temporal_stability_with_store(&workload, policy, &frames, &cfg, &mut on_store)?;
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>7.0}%",
            spec.name,
            off.stability,
            on.stability,
            on.reused_fraction * 100.0
        );
    }
    Ok(())
}
