//! Ablation: temporal stability under approximation.
//!
//! Per-frame MSSIM against the baseline (Figs. 17/19) cannot see *flicker* —
//! a pixel demoted in one frame but not the next. This study measures the
//! mean SSIM between consecutive frames of the same run: if a policy's
//! inter-frame SSIM tracks the baseline's, the approximation adds no
//! temporal noise on top of the camera motion.

use patu_bench::RunOptions;
use patu_core::FilterPolicy;
use patu_scenes::Workload;
use patu_sim::experiment::temporal_stability;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "ABLATION: temporal stability (consecutive-frame SSIM) ({})",
        opts.profile_banner()
    );
    // Consecutive frame indices: the camera moves a small step between them.
    let frames: Vec<u32> = (0..6).collect();
    let cfg = opts.experiment();

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10}",
        "game", "baseline", "PATU@0.4", "PATU@0.1", "no AF"
    );
    for name in ["doom3", "grid", "stal"] {
        let spec = patu_scenes::default_specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("game in default set");
        let workload = Workload::build(name, opts.resolution(&spec))?;
        let mut row = Vec::new();
        for policy in [
            FilterPolicy::Baseline,
            FilterPolicy::Patu { threshold: 0.4 },
            FilterPolicy::Patu { threshold: 0.1 },
            FilterPolicy::NoAf,
        ] {
            row.push(temporal_stability(&workload, policy, &frames, &cfg)?);
        }
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            name, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "\nInter-frame SSIM is dominated by camera motion; a policy whose column \
         tracks the baseline adds no flicker of its own. Large drops relative to \
         the baseline column would indicate frame-to-frame decision instability."
    );
    Ok(())
}
