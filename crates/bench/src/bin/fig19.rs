//! Fig. 19: normalized speedup (bars) and perceived quality / MSSIM (lines)
//! of the overall 3D rendering under the four design points at θ = 0.4.

use patu_bench::{paper_note, pct_delta, RunOptions};
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{design_points, run_policies};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 19: speedup and MSSIM under the design points ({})",
        opts.profile_banner()
    );
    let points = design_points(0.4);

    let mut speedup_sum = vec![0.0f64; points.len()];
    let mut mssim_sum = vec![0.0f64; points.len()];
    let mut games = 0.0;

    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(&workload, &points, &opts.experiment())?;
        let base = results[0].clone();
        println!("\n{}:", spec.label());
        println!("{:<20} {:>9} {:>8}", "design", "speedup", "MSSIM");
        for (i, r) in results.iter().enumerate() {
            let s = r.speedup_vs(&base);
            println!("{:<20} {:>8.3}x {:>8.3}", r.label, s, r.mssim);
            speedup_sum[i] += s;
            mssim_sum[i] += r.mssim;
        }
        games += 1.0;
    }

    println!("\nMEAN ACROSS GAMES:");
    println!("{:<20} {:>9} {:>8}", "design", "speedup", "MSSIM");
    for (i, (label, _)) in points.iter().enumerate() {
        println!(
            "{:<20} {:>8.3}x {:>8.3}",
            label,
            speedup_sum[i] / games,
            mssim_sum[i] / games
        );
    }
    println!(
        "\nPATU: overall speedup {} at {:.1}% MSSIM",
        pct_delta(speedup_sum[3] / games),
        100.0 * mssim_sum[3] / games
    );

    paper_note(
        "Fig. 19",
        "AF-SSIM(N)+(Txds) is fastest (+18% avg, up to 26%) but loses 16% quality; \
         AF-SSIM(N) gains only 10%; PATU fixes the LOD shift for >10% quality back at \
         1.3% performance cost — +17% speedup (up to 24%) at 93% MSSIM (up to 98%)",
    );
    Ok(())
}
