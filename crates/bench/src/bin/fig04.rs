//! Fig. 4: frame rate of the R.Bench texture-stress workload at 2K and 4K
//! with AF enabled and disabled.
//!
//! The paper runs Relative Benchmark on an iPhone 7 Plus; here the same
//! mechanism (AF's texel storm throttling fps, worse at higher resolution)
//! is driven through the simulator's `rbench` workload.

use patu_bench::{paper_note, pct_delta, RunOptions};
use patu_core::FilterPolicy;
use patu_gpu::GpuConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 4: R.Bench fps with AF on/off ({})",
        opts.profile_banner()
    );

    let freq = GpuConfig::default().frequency_hz;
    for (label, full_res) in [("2K", (2560u32, 1440u32)), ("4K", (3840, 2160))] {
        let res = if opts.full {
            full_res
        } else {
            (full_res.0 / 4, full_res.1 / 4)
        };
        let workload = Workload::build("rbench", res)?;
        println!("\n{label} ({}x{}):", res.0, res.1);
        println!(
            "{:>6} {:>12} {:>12} {:>10}",
            "frame", "fps AF-on", "fps AF-off", "gain"
        );

        let (mut sum_on, mut sum_off) = (0.0f64, 0.0f64);
        for i in 0..opts.frames {
            let frame = i * 150;
            let on = render_frame(&workload, frame, &RenderConfig::new(FilterPolicy::Baseline))?;
            let off = render_frame(&workload, frame, &RenderConfig::new(FilterPolicy::NoAf))?;
            let fps_on = on.stats.fps(freq);
            let fps_off = off.stats.fps(freq);
            sum_on += fps_on;
            sum_off += fps_off;
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>10}",
                frame,
                fps_on,
                fps_off,
                pct_delta(fps_off / fps_on)
            );
        }
        let n = f64::from(opts.frames);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>10}",
            "mean",
            sum_on / n,
            sum_off / n,
            pct_delta(sum_off / sum_on)
        );
    }

    paper_note(
        "Fig. 4",
        "disabling AF improves fps by 21% (up to 54%) at 2K and 43% (up to 83%) at 4K; \
         most frames miss the 60 fps target with AF on",
    );
    Ok(())
}
