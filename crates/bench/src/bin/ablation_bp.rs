//! Ablation: per-game Best-Point thresholds vs the unified average BP.
//!
//! Sec. IV-C(C) uses one unified threshold for both predictors and (in the
//! evaluation) one average BP across games. This study quantifies what a
//! per-game tuned threshold would add.

use patu_bench::RunOptions;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{best_point, threshold_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "ABLATION: per-game BP vs unified threshold ({})",
        opts.profile_banner()
    );
    let thresholds: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();
    let unified = 0.4;

    println!(
        "\n{:<16} {:>6} {:>16} {:>18} {:>8}",
        "game", "BP", "metric @ BP", "metric @ 0.4", "gain"
    );
    let (mut sum_bp, mut sum_uni, mut games) = (0.0f64, 0.0f64, 0.0f64);
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let (baseline, sweep) = threshold_sweep(&workload, &thresholds, &opts.experiment())?;
        let bp = best_point(&baseline, &sweep);
        let at = |t: f64| {
            sweep
                .iter()
                .find(|(x, _)| (*x - t).abs() < 1e-9)
                .map(|(_, r)| r.tuning_metric(&baseline))
                .expect("threshold in sweep")
        };
        let m_bp = at(bp);
        let m_uni = at(unified);
        println!(
            "{:<16} {:>6.1} {:>16.3} {:>18.3} {:>7.1}%",
            spec.label(),
            bp,
            m_bp,
            m_uni,
            (m_bp / m_uni - 1.0) * 100.0
        );
        sum_bp += m_bp;
        sum_uni += m_uni;
        games += 1.0;
    }
    println!(
        "\nmean speedup*MSSIM: per-game BP {:.3} vs unified θ={unified} {:.3} ({:+.1}%)",
        sum_bp / games,
        sum_uni / games,
        (sum_bp / sum_uni - 1.0) * 100.0
    );
    println!(
        "The unified threshold gives up only a small fraction of the per-game \
         optimum — supporting the paper's single-knob design (Sec. IV-C(C))."
    );
    Ok(())
}
