//! Ablation: maximum AF level (2× / 4× / 8× / 16×) on the baseline.
//!
//! The paper's baseline is 16×AF. Lower caps are the conventional
//! quality/performance knob PATU competes with: they shrink every pixel's
//! sample budget uniformly, whereas PATU removes work only where it is not
//! perceivable.

use patu_bench::RunOptions;
use patu_core::FilterPolicy;
use patu_gpu::GpuConfig;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!("ABLATION: max AF level vs PATU ({})", opts.profile_banner());

    let spec = patu_scenes::default_specs()
        .into_iter()
        .find(|s| s.name == "grid")
        .expect("grid is in the default set");
    let workload = Workload::build(spec.name, opts.resolution(&spec))?;

    // Reference: full 16x AF.
    let reference = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
    let ref_luma = reference.luma();
    let ssim = SsimConfig::default();

    println!(
        "\n{:<22} {:>12} {:>9} {:>8}",
        "configuration", "cycles", "speedup", "MSSIM"
    );
    for max_aniso in [2u32, 4, 8, 16] {
        let gpu = GpuConfig {
            max_aniso,
            ..GpuConfig::default()
        };
        let r = render_frame(
            &workload,
            0,
            &RenderConfig::new(FilterPolicy::Baseline).with_gpu(gpu),
        )?;
        let mssim = if max_aniso == 16 {
            1.0
        } else {
            f64::from(ssim.mssim(&ref_luma, &r.luma()))
        };
        println!(
            "{:<22} {:>12} {:>8.3}x {:>8.3}",
            format!("{max_aniso}x AF cap"),
            r.stats.cycles,
            reference.stats.cycles as f64 / r.stats.cycles as f64,
            mssim
        );
    }
    let patu = render_frame(
        &workload,
        0,
        &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
    )?;
    println!(
        "{:<22} {:>12} {:>8.3}x {:>8.3}",
        "PATU θ=0.4 (16x cap)",
        patu.stats.cycles,
        reference.stats.cycles as f64 / patu.stats.cycles as f64,
        f64::from(ssim.mssim(&ref_luma, &patu.luma()))
    );

    println!(
        "\nLowering the AF cap trades quality uniformly; PATU reaches similar \
         speedups while only touching pixels its predictor marks non-perceivable \
         (Sec. II: 'reducing its sampling size can seriously hurt user experience')."
    );
    Ok(())
}
