//! Chaos benchmark for the serving subsystem: every named failure
//! scenario, resilience on vs off, on real `patu_sim` renders.
//!
//! The headline acceptance claim: under the correlated half-pool outage at
//! 1.5× offered load, the resilience stack (retries + hedged dispatch +
//! circuit breakers + brownout) strictly lowers the contract-violation
//! rate versus the resilience-off control while holding mean delivered
//! SSIM at or above 0.9 — and every scenario replays bit-identically
//! between `threads = 1` and `threads = 4`. Results land in
//! `BENCH_chaos.json` at the repository root.
//!
//! `--smoke` runs a miniature grid (96×64, fewer jobs) that checks
//! determinism, conservation and schema-cleanliness only, writing no
//! JSON — the CI gate.

use patu_bench::micro;
use patu_obs::json::num_fixed;
use patu_serve::{
    run_session, ResilienceConfig, Scenario, ServeConfig, ServeReport, SimFrameService,
};

fn cfg(scenario: Scenario, resilient: bool, threads: usize, smoke: bool) -> ServeConfig {
    let mut cfg = ServeConfig {
        seed: 1207,
        scenario,
        load: 1.5,
        threads: Some(threads),
        // A gentler pressure gain than the default: queue pressure alone
        // must not rail the governor to its floor, or the brownout ladder
        // (the resilient arm's capacity lever) has no headroom left to
        // trade quality for throughput when half the pool drops out.
        pressure_gain: 0.4,
        resilience: if resilient {
            ResilienceConfig::default()
        } else {
            ResilienceConfig::disabled()
        },
        ..ServeConfig::default()
    };
    if smoke {
        cfg.clients = 3;
        cfg.jobs_per_client = 4;
        cfg.resolution = (96, 64);
        cfg.frame_span = 2;
    } else {
        cfg.clients = 6;
        cfg.jobs_per_client = 6;
    }
    cfg
}

fn run(cfg: &ServeConfig) -> Result<(ServeReport, f64), Box<dyn std::error::Error>> {
    let mut service = SimFrameService::new(cfg)?;
    let (report, ms) = micro::timed(|| run_session(cfg, &mut service));
    Ok((report?, ms))
}

struct Arm {
    scenario: Scenario,
    on: ServeReport,
    off: ServeReport,
    on_ms: f64,
    bit_identical: bool,
}

fn check_session(report: &ServeReport, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let s = &report.stats;
    if s.delivered + s.shed + s.failed != s.submitted {
        return Err(format!(
            "{label}: jobs not conserved ({} delivered + {} shed + {} failed != {} submitted)",
            s.delivered, s.shed, s.failed, s.submitted
        )
        .into());
    }
    let checked = patu_obs::schema::check_stream(&report.log)
        .map_err(|(line, err)| format!("{label}: serve log line {line}: {err}"))?;
    if checked as u64 != s.submitted {
        return Err(format!(
            "{label}: schema checked {checked} lines but {} jobs were submitted",
            s.submitted
        )
        .into());
    }
    Ok(())
}

fn stats_json(report: &ServeReport) -> String {
    let s = &report.stats;
    format!(
        "{{\"violation_rate\": {}, \"miss_rate\": {}, \"mean_ssim\": {}, \
         \"delivered\": {}, \"shed\": {}, \"failed\": {}, \"retries\": {}, \
         \"hedges\": {}, \"hedge_wins\": {}, \"breaker_opens\": {}, \
         \"outages\": {}, \"straggles\": {}, \"corrupt_frames\": {}, \
         \"degrades\": {}, \"makespan\": {}}}",
        num_fixed(s.violation_rate(), 4),
        num_fixed(s.miss_rate(), 4),
        num_fixed(s.mean_ssim(), 4),
        s.delivered,
        s.shed,
        s.failed,
        s.retries,
        s.hedges,
        s.hedge_wins,
        s.breaker_opens,
        s.outages,
        s.straggles,
        s.corrupt_frames,
        s.degrades,
        s.makespan,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "CHAOS: every scenario at 1.5x load, resilience on vs off{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut arms = Vec::new();
    for scenario in Scenario::ALL {
        let (on, on_ms) = run(&cfg(scenario, true, 1, smoke))?;
        let (wide, _) = run(&cfg(scenario, true, 4, smoke))?;
        let (off, _) = run(&cfg(scenario, false, 1, smoke))?;
        check_session(&on, scenario.label())?;
        check_session(&off, &format!("{} (control)", scenario.label()))?;
        let bit_identical = on.log == wide.log
            && on.chrome_trace() == wide.chrome_trace()
            && on.completed == wide.completed;
        arms.push(Arm {
            scenario,
            on,
            off,
            on_ms,
            bit_identical,
        });
    }

    println!(
        "\n{:<18} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "viol(on)", "viol(off)", "ssim(on)", "retries", "hedges", "opens", "1==4"
    );
    for a in &arms {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>10.4} {:>8} {:>8} {:>8} {:>8}",
            a.scenario.label(),
            a.on.stats.violation_rate(),
            a.off.stats.violation_rate(),
            a.on.stats.mean_ssim(),
            a.on.stats.retries,
            a.on.stats.hedges,
            a.on.stats.breaker_opens,
            a.bit_identical,
        );
    }

    let all_bit_identical = arms.iter().all(|a| a.bit_identical);
    let headline = arms
        .iter()
        .find(|a| a.scenario == Scenario::HalfPoolOutage)
        .ok_or("half-pool arm missing")?;
    let resilience_wins = headline.on.stats.violation_rate() < headline.off.stats.violation_rate();
    let quality_holds = headline.on.stats.mean_ssim() >= 0.9;
    println!(
        "\nhalf-pool outage: resilience strictly lowers violation rate: {resilience_wins}; \
         mean SSIM >= 0.9: {quality_holds}; \
         threads 1 vs 4 bit-identical everywhere: {all_bit_identical}"
    );

    if smoke {
        // The smoke bar: deterministic, conserved, schema-clean sessions.
        // The statistical claims are judged at the full benchmark size.
        if !all_bit_identical {
            return Err("chaos smoke: sessions diverge across thread counts".into());
        }
        println!("chaos smoke: all scenarios deterministic and schema-clean");
        return Ok(());
    }

    let mut rows = String::new();
    for (i, a) in arms.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"on_ms\": {}, \"bit_identical\": {}, \
             \"resilient\": {}, \"control\": {}}}",
            a.scenario.label(),
            num_fixed(a.on_ms, 1),
            a.bit_identical,
            stats_json(&a.on),
            stats_json(&a.off),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"load\": 1.5,\n  \
         \"resilience_wins_half_pool\": {resilience_wins},\n  \
         \"half_pool_mean_ssim_holds\": {quality_holds},\n  \
         \"outputs_bit_identical\": {all_bit_identical},\n  \"scenarios\": [\n{rows}\n  ]\n}}\n"
    );
    let path = micro::repo_root().join("BENCH_chaos.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());

    if !(resilience_wins && quality_holds && all_bit_identical) {
        return Err("chaos acceptance criteria not met".into());
    }
    Ok(())
}
