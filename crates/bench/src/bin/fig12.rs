//! Fig. 12: percentage of AF's input samples (trilinear taps) that share
//! the same set of texels with the TF sample during 3D rendering.

use patu_bench::{paper_note, pct, RunOptions};
use patu_core::FilterPolicy;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::run_policies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 12: AF taps sharing texel sets with TF ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:<16} {:>14} {:>14} {:>10}",
        "game", "AF taps", "sharing taps", "share"
    );

    let mut fractions = Vec::new();
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        // Sharing is measured on the baseline (full-AF) rendering.
        let results = run_policies(
            &workload,
            &[("Baseline", FilterPolicy::Baseline)],
            &opts.experiment(),
        )?;
        let sharing = results[0].sharing;
        println!(
            "{:<16} {:>14} {:>14} {:>10}",
            spec.label(),
            sharing.taps_total,
            sharing.taps_shared,
            pct(sharing.sharing_fraction())
        );
        fractions.push(sharing.sharing_fraction());
    }
    println!(
        "\nmean sharing fraction: {}",
        pct(fractions.iter().sum::<f64>() / fractions.len() as f64)
    );

    paper_note(
        "Fig. 12",
        "an average of 62% of AF's input samples share the same set of texels with TF",
    );
    Ok(())
}
