//! Telemetry smoke run: renders a few PATU frames at the level given by
//! `PATU_TRACE`, folds the SSIM analysis onto each frame's analysis track,
//! prints the per-frame report, and (when `PATU_TRACE_OUT` is set) writes
//! the JSONL + Chrome-trace artifacts that `trace_check` validates. With
//! `PATU_OBS_DUMP=<dir>` it additionally writes per-frame PPM maps: an
//! SSIM-error heatmap (per-tile mean |baseline − approx| luma) and a
//! demotion-decision map (per-tile share of fragments the predictor
//! demoted to a cheaper filter).

use patu_core::FilterPolicy;
use patu_obs::{
    heat_color, obs_dump_dir, sink, trace_out_dir, Collector, TelemetryConfig, TraceLevel, Track,
};
use patu_quality::{GrayImage, SsimConfig};
use patu_scenes::Workload;
use patu_sim::render::{render_frame, FrameResult, RenderConfig};
use std::path::Path;

/// Cell size (pixels per tile) in the dumped PPM maps.
const DUMP_CELL: usize = 8;
/// Gain applied to the mean per-tile luma error before the color ramp —
/// raw errors rarely exceed a few percent, so the map would be all-blue
/// without amplification.
const HEAT_GAIN: u64 = 8;

/// Writes `<prefix>_ssim_error.ppm` and `<prefix>_demotion.ppm` for one
/// frame: both maps share the render's tile grid, one cell per tile.
fn dump_frame_maps(
    dir: &Path,
    index: u32,
    tile_size: u32,
    baseline: &GrayImage,
    approx: &GrayImage,
    result: &FrameResult,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    let (width, height) = (baseline.width(), baseline.height());
    let tiles_x = width.div_ceil(tile_size) as usize;
    let tiles_y = height.div_ceil(tile_size) as usize;

    // SSIM-error heatmap: per-tile mean absolute luma difference between
    // the baseline and approximated frames, on a cold-to-hot ramp.
    let mut heat = patu_obs::TileGrid::new(tiles_x, tiles_y, DUMP_CELL);
    for ty in 0..tiles_y as u32 {
        for tx in 0..tiles_x as u32 {
            let x0 = tx * tile_size;
            let y0 = ty * tile_size;
            let mut sum_x1000 = 0u64;
            let mut pixels = 0u64;
            for y in y0..(y0 + tile_size).min(height) {
                for x in x0..(x0 + tile_size).min(width) {
                    let diff = (baseline.get(x, y) - approx.get(x, y)).abs();
                    // Quantize before accumulating so the map is exactly
                    // reproducible regardless of summation order.
                    sum_x1000 += (f64::from(diff) * 1000.0).round() as u64;
                    pixels += 1;
                }
            }
            // Mean error as a share of full scale (samples are 0..255).
            let mean_x1000 = sum_x1000 / (pixels.max(1) * 255);
            heat.paint(tx as usize, ty as usize, heat_color(mean_x1000 * HEAT_GAIN));
        }
    }
    let heat_path = dir.join(format!("trace_smoke_f{index:03}_ssim_error.ppm"));
    heat.write(&heat_path)?;

    // Demotion-decision map: the share of each tile's fragments the
    // perception predictor demoted, on the same ramp.
    let mut demo = patu_obs::TileGrid::new(tiles_x, tiles_y, DUMP_CELL);
    for t in &result.tile_stats {
        let share_x1000 = t.demoted * 1000 / t.fragments.max(1);
        demo.paint(t.tx as usize, t.ty as usize, heat_color(share_x1000));
    }
    let demo_path = dir.join(format!("trace_smoke_f{index:03}_demotion.ppm"));
    demo.write(&demo_path)?;
    Ok(vec![heat_path, demo_path])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = TelemetryConfig::from_env();
    println!("trace_smoke: PATU_TRACE={}", telemetry.level.name());
    if telemetry.level == TraceLevel::Off {
        println!("telemetry off — set PATU_TRACE=counters|spans to record");
    }

    let workload = Workload::build("doom3", (256, 192))?;
    let base_cfg = RenderConfig::new(FilterPolicy::Baseline);
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_telemetry(telemetry);
    let ssim = SsimConfig::default();

    let dump_dir = obs_dump_dir();
    let mut frames = Vec::new();
    for index in [0u32, 40, 80] {
        let baseline = render_frame(&workload, index, &base_cfg)?;
        let mut result = render_frame(&workload, index, &cfg)?;
        let (base_luma, approx_luma) = (baseline.luma(), result.luma());
        if let Some(dir) = &dump_dir {
            let paths = dump_frame_maps(
                dir,
                index,
                cfg.gpu.tile_size,
                &base_luma,
                &approx_luma,
                &result,
            )?;
            for path in paths {
                println!("dumped {}", path.display());
            }
        }
        if let Some(mut t) = result.telemetry.take() {
            // The quality analysis rides the frame's analysis track, so the
            // artifact shows render and SSIM work side by side.
            let mut analysis = Collector::new(telemetry, Track::Analysis);
            let score = ssim.mssim_traced(&mut analysis, &base_luma, &approx_luma);
            t.absorb(analysis);
            println!("frame {index}: mssim {score:.4}");
            frames.push(*t);
        }
    }

    for frame in &frames {
        print!("{}", sink::report(frame));
    }
    if frames.is_empty() {
        return Ok(());
    }
    match trace_out_dir() {
        Some(dir) => {
            for path in sink::write_artifacts(&dir, "trace_smoke", &frames)? {
                println!("wrote {}", path.display());
            }
        }
        None => println!("PATU_TRACE_OUT unset; skipping artifact files"),
    }
    Ok(())
}
