//! Telemetry smoke run: renders a few PATU frames at the level given by
//! `PATU_TRACE`, folds the SSIM analysis onto each frame's analysis track,
//! prints the per-frame report, and (when `PATU_TRACE_OUT` is set) writes
//! the JSONL + Chrome-trace artifacts that `trace_check` validates.

use patu_core::FilterPolicy;
use patu_obs::{sink, trace_out_dir, Collector, TelemetryConfig, TraceLevel, Track};
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = TelemetryConfig::from_env();
    println!("trace_smoke: PATU_TRACE={}", telemetry.level.name());
    if telemetry.level == TraceLevel::Off {
        println!("telemetry off — set PATU_TRACE=counters|spans to record");
    }

    let workload = Workload::build("doom3", (256, 192))?;
    let base_cfg = RenderConfig::new(FilterPolicy::Baseline);
    let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_telemetry(telemetry);
    let ssim = SsimConfig::default();

    let mut frames = Vec::new();
    for index in [0u32, 40, 80] {
        let baseline = render_frame(&workload, index, &base_cfg)?;
        let mut result = render_frame(&workload, index, &cfg)?;
        if let Some(mut t) = result.telemetry.take() {
            // The quality analysis rides the frame's analysis track, so the
            // artifact shows render and SSIM work side by side.
            let mut analysis = Collector::new(telemetry, Track::Analysis);
            let score = ssim.mssim_traced(&mut analysis, &baseline.luma(), &result.luma());
            t.absorb(analysis);
            println!("frame {index}: mssim {score:.4}");
            frames.push(*t);
        }
    }

    for frame in &frames {
        print!("{}", sink::report(frame));
    }
    if frames.is_empty() {
        return Ok(());
    }
    match trace_out_dir() {
        Some(dir) => {
            for path in sink::write_artifacts(&dir, "trace_smoke", &frames)? {
                println!("wrote {}", path.display());
            }
        }
        None => println!("PATU_TRACE_OUT unset; skipping artifact files"),
    }
    Ok(())
}
