//! Cross-frame tile-reuse benchmark (`patu-temporal` + `render_sequence`).
//!
//! Full mode sweeps both slow-camera sequence presets (`orbit`, `dolly`)
//! at their catalog resolution through temporal modes `off`/`on`/
//! `aggressive`, measuring simulated-cycle sequence throughput against the
//! reuse-disabled run and per-frame MSSIM against its exact pixels, and
//! writes `BENCH_temporal.json` at the repo root. The acceptance gate:
//! each preset must reach ≥2× sequence throughput in some reuse mode while
//! that mode's mean MSSIM stays at or above 0.93.
//!
//! `--smoke` is the CI stage: a miniature orbit sequence asserting reuse
//! actually fires, the MSSIM floor holds, `threads = 1` and `threads = 4`
//! sequences are byte-identical, and every emitted `"temporal"` JSONL line
//! validates against the in-repo schema. Exits non-zero on any violation.
//!
//! All throughput numbers are simulated GPU cycles — this bench never
//! reads a wall clock, so its artifact is bit-reproducible on any host.

use patu_bench::micro;
use patu_core::FilterPolicy;
use patu_obs::json::{num, num_fixed};
use patu_quality::SsimConfig;
use patu_scenes::{sequence_specs, Workload};
use patu_sim::render::{render_sequence, RenderConfig};
use patu_sim::FrameResult;
use patu_temporal::{TemporalConfig, TemporalMode, TileStore};

const GATE_SPEEDUP: f64 = 2.0;
const GATE_MSSIM: f64 = 0.93;

fn run_sequence(
    workload: &Workload,
    frames: &[u32],
    mode: TemporalMode,
    threads: Option<usize>,
) -> Result<Vec<FrameResult>, Box<dyn std::error::Error>> {
    let mut cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
    if let Some(n) = threads {
        cfg = cfg.with_threads(n);
    }
    let mut store = TileStore::new(TemporalConfig::for_mode(mode));
    Ok(render_sequence(workload, frames, &cfg, &mut store)?)
}

struct ModeRow {
    mode: TemporalMode,
    cycles: u64,
    speedup: f64,
    mean_mssim: f64,
    min_mssim: f64,
    reused_fraction: f64,
}

fn measure_mode(reference: &[FrameResult], results: &[FrameResult], mode: TemporalMode) -> ModeRow {
    let ssim = SsimConfig::default();
    let (mut sum, mut min) = (0.0f64, f64::INFINITY);
    for (off, on) in reference.iter().zip(results) {
        let m = f64::from(ssim.mssim(&off.luma(), &on.luma()));
        sum += m;
        min = min.min(m);
    }
    let cycles: u64 = results.iter().map(|f| f.stats.cycles).sum();
    let reference_cycles: u64 = reference.iter().map(|f| f.stats.cycles).sum();
    let kept: u64 = results
        .iter()
        .map(|f| f.stats.temporal.tiles_reused + f.stats.temporal.tiles_repredicted)
        .sum();
    let total: u64 = results.iter().map(|f| f.stats.temporal.tiles_total()).sum();
    ModeRow {
        mode,
        cycles,
        speedup: reference_cycles as f64 / cycles.max(1) as f64,
        mean_mssim: sum / reference.len().max(1) as f64,
        min_mssim: if min.is_finite() { min } else { 1.0 },
        reused_fraction: kept as f64 / total.max(1) as f64,
    }
}

fn smoke() -> Result<(), Box<dyn std::error::Error>> {
    let frames: Vec<u32> = (0..6).collect();
    let workload = Workload::build("orbit", (192, 144))?;
    let off = run_sequence(&workload, &frames, TemporalMode::Off, Some(1))?;
    let on = run_sequence(&workload, &frames, TemporalMode::On, Some(1))?;
    let wide = run_sequence(&workload, &frames, TemporalMode::On, Some(4))?;

    for (i, (a, b)) in on.iter().zip(&wide).enumerate() {
        if a.image.pixels() != b.image.pixels() || a.stats != b.stats {
            return Err(format!("frame {i} diverges between threads=1 and threads=4").into());
        }
    }
    let row = measure_mode(&off, &on, TemporalMode::On);
    if row.reused_fraction <= 0.0 {
        return Err("slow orbit reused no tiles".into());
    }
    if row.mean_mssim < GATE_MSSIM {
        return Err(format!(
            "smoke MSSIM {:.4} under the {GATE_MSSIM} floor",
            row.mean_mssim
        )
        .into());
    }
    let mut checked = 0usize;
    for (frame, f) in frames.iter().zip(&on) {
        let line = f.stats.temporal.jsonl_line(*frame);
        patu_obs::schema::check_line(&line)
            .map_err(|e| format!("temporal line for frame {frame}: {e}"))?;
        checked += 1;
    }
    println!(
        "temporal smoke: reuse {:.0}% of tiles, {:.2}x cycles, MSSIM {:.4}, \
         {checked} schema-clean temporal lines, threads 1 == 4",
        row.reused_fraction * 100.0,
        row.speedup,
        row.mean_mssim
    );
    Ok(())
}

fn full() -> Result<(), Box<dyn std::error::Error>> {
    println!("BENCH: temporal tile reuse (simulated cycles, sequence presets)");
    let frames: Vec<u32> = (0..12).collect();
    let mut scene_blocks = Vec::new();
    let mut gate_passed = true;

    for spec in sequence_specs() {
        let workload = Workload::build(spec.name, spec.resolution)?;
        let off = run_sequence(&workload, &frames, TemporalMode::Off, None)?;
        let off_cycles: u64 = off.iter().map(|f| f.stats.cycles).sum();
        println!(
            "\n{} ({}x{}, {} frames): off = {off_cycles} cycles",
            spec.name,
            spec.resolution.0,
            spec.resolution.1,
            frames.len()
        );
        println!(
            "{:<12} {:>14} {:>9} {:>11} {:>10} {:>8}",
            "mode", "cycles", "speedup", "mean-mssim", "min-mssim", "reused"
        );
        let mut rows = Vec::new();
        for mode in [TemporalMode::On, TemporalMode::Aggressive] {
            let results = run_sequence(&workload, &frames, mode, None)?;
            let row = measure_mode(&off, &results, mode);
            println!(
                "{:<12} {:>14} {:>8.2}x {:>11.4} {:>10.4} {:>7.0}%",
                row.mode.to_string(),
                row.cycles,
                row.speedup,
                row.mean_mssim,
                row.min_mssim,
                row.reused_fraction * 100.0
            );
            rows.push(row);
        }
        let scene_gate = rows
            .iter()
            .any(|r| r.speedup >= GATE_SPEEDUP && r.mean_mssim >= GATE_MSSIM);
        if !scene_gate {
            gate_passed = false;
        }
        let mode_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "      {{\"mode\": \"{}\", \"cycles\": {}, \"speedup\": {}, \
                     \"mean_mssim\": {}, \"min_mssim\": {}, \"reused_fraction\": {}}}",
                    r.mode,
                    r.cycles,
                    num_fixed(r.speedup, 3),
                    num(r.mean_mssim),
                    num(r.min_mssim),
                    num_fixed(r.reused_fraction, 4)
                )
            })
            .collect();
        scene_blocks.push(format!(
            "    {{\"scene\": \"{}\", \"resolution\": [{}, {}], \"frames\": {}, \
             \"off_cycles\": {}, \"gate_passed\": {}, \"modes\": [\n{}\n    ]}}",
            spec.name,
            spec.resolution.0,
            spec.resolution.1,
            frames.len(),
            off_cycles,
            scene_gate,
            mode_json.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"temporal\",\n  \"gate_speedup_min\": {},\n  \
         \"gate_mssim_floor\": {},\n  \"gate_passed\": {gate_passed},\n  \"scenes\": [\n{}\n  ]\n}}\n",
        num_fixed(GATE_SPEEDUP, 1),
        num_fixed(GATE_MSSIM, 2),
        scene_blocks.join(",\n")
    );
    let path = micro::repo_root().join("BENCH_temporal.json");
    std::fs::write(&path, json)?;
    println!("\nwrote {}", path.display());

    if !gate_passed {
        return Err(format!(
            "temporal acceptance gate failed: need ≥{GATE_SPEEDUP}x at MSSIM ≥{GATE_MSSIM} \
             on every sequence preset"
        )
        .into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--smoke") {
        smoke()
    } else {
        full()
    }
}
