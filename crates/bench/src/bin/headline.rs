//! The paper's abstract in one table: PATU's overall speedup, energy
//! reduction, filtering-latency reduction and MSSIM at the conservative
//! θ = 0.4 tuning point, averaged over the Table II games.
//!
//! The sweep runs twice — `threads = 1` (serial) and `threads = 4` — to
//! measure the deterministic parallel runtime's wall-clock speedup and to
//! verify the two runs agree bit-for-bit. Both timings, the host core
//! count, and the headline metrics land in `BENCH_headline.json` at the
//! repository root.

use patu_bench::{micro, paper_note, pct, pct_delta, RunOptions};
use patu_obs::json::num_fixed;
use patu_obs::{Log2Histogram, TelemetryConfig, TraceLevel};
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{design_points, run_policies, AggregateResult};
use patu_sim::render::{render_frame, RenderConfig};

struct Headline {
    speedup: f64,
    energy: f64,
    latency: f64,
    mssim: f64,
}

fn sweep(
    opts: &RunOptions,
    threads: usize,
) -> Result<(Headline, Vec<AggregateResult>), Box<dyn std::error::Error>> {
    let points = design_points(0.4);
    let cfg = opts.experiment().with_threads(threads);
    let (mut speedup, mut energy, mut latency, mut mssim, mut games) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut all = Vec::new();
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(&workload, &points, &cfg)?;
        let base = &results[0];
        let patu = &results[3];
        speedup += patu.speedup_vs(base);
        energy += patu.energy_ratio_vs(base);
        latency += patu.filter_latency_ratio_vs(base);
        mssim += patu.mssim;
        games += 1.0;
        all.extend(results);
    }
    Ok((
        Headline {
            speedup: speedup / games,
            energy: energy / games,
            latency: latency / games,
            mssim: mssim / games,
        },
        all,
    ))
}

/// Bit-level agreement between two sweep runs: every aggregate's stats and
/// `f64` metrics must match exactly, not approximately.
fn identical(a: &[AggregateResult], b: &[AggregateResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.stats == y.stats
                && x.mssim.to_bits() == y.mssim.to_bits()
                && x.energy_joules.to_bits() == y.energy_joules.to_bits()
                && x.mean_cycles.to_bits() == y.mean_cycles.to_bits()
                && x.mean_filter_latency.to_bits() == y.mean_filter_latency.to_bits()
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "HEADLINE: PATU at the conservative tuning point ({})",
        opts.profile_banner()
    );

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (serial_run, serial_ms) = micro::timed(|| sweep(&opts, 1));
    let (headline, serial_results) = serial_run?;

    let (parallel_run, parallel_ms) = micro::timed(|| sweep(&opts, 4));
    let (_, parallel_results) = parallel_run?;
    let same = identical(&serial_results, &parallel_results);

    // Reference render_frame wall time: one doom3 frame at the fast profile,
    // once with telemetry off and once at full span tracing, so the JSON
    // records the observation overhead of this build.
    let spec = default_specs()
        .into_iter()
        .find(|s| s.name == "doom3")
        .expect("doom3 spec");
    let workload = Workload::build(spec.name, opts.resolution(&spec))?;
    let rc = RenderConfig::new(patu_core::FilterPolicy::Patu { threshold: 0.4 });
    let (reference_run, reference_ms) = micro::timed(|| render_frame(&workload, 0, &rc));
    reference_run?;
    let traced_rc = rc.with_telemetry(TelemetryConfig::with_level(TraceLevel::Spans));
    let (traced_run, trace_spans_ms) = micro::timed(|| render_frame(&workload, 0, &traced_rc));
    traced_run?;

    println!("\n{:<38} {:>10} {:>10}", "metric", "paper", "measured");
    println!(
        "{:<38} {:>10} {:>10}",
        "3D rendering speedup",
        "+17%",
        pct_delta(headline.speedup)
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "total GPU energy reduction",
        "11%",
        pct(1.0 - headline.energy)
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "texture filtering latency reduction",
        "29%",
        pct(1.0 - headline.latency)
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "perceived quality (MSSIM)",
        ">=93%",
        pct(headline.mssim)
    );

    // Per-request filtering-latency distribution, merged over every game:
    // the mean alone hides the tail that AF's texel storms create.
    let mut base_hist = Log2Histogram::new();
    let mut patu_hist = Log2Histogram::new();
    for chunk in serial_results.chunks(4) {
        base_hist.accumulate(&chunk[0].stats.filter_latency_hist);
        patu_hist.accumulate(&chunk[3].stats.filter_latency_hist);
    }
    println!(
        "\n{:<12} {:>10} {:>8} {:>8} {:>8}",
        "filter lat.", "mean", "p50", "p95", "p99"
    );
    for (label, hist) in [("baseline", &base_hist), ("patu", &patu_hist)] {
        println!(
            "{:<12} {:>10.1} {:>8} {:>8} {:>8}",
            label,
            hist.mean(),
            hist.p50(),
            hist.p95(),
            hist.p99()
        );
    }

    println!(
        "\nparallel runtime: serial {serial_ms:.0} ms, 4 threads {parallel_ms:.0} ms \
         ({:.2}x on {host_cores} host core(s)), outputs bit-identical: {same}",
        serial_ms / parallel_ms
    );

    // Every float routes through `num_fixed`, which emits `null` instead of
    // the unparseable `inf`/`NaN` tokens (e.g. a zero-cycle frame's fps).
    let json = format!(
        "{{\n  \"bench\": \"headline\",\n  \"host_cores\": {host_cores},\n  \
         \"serial_ms\": {},\n  \"parallel_ms_4_threads\": {},\n  \
         \"speedup\": {},\n  \"outputs_bit_identical\": {same},\n  \
         \"reference_render_frame_ms\": {},\n  \
         \"trace_off_ms\": {},\n  \"trace_spans_ms\": {},\n  \
         \"rendering_speedup_vs_baseline\": {},\n  \"energy_ratio\": {},\n  \
         \"filter_latency_ratio\": {},\n  \"mssim\": {},\n  \
         \"patu_filter_latency_p50\": {},\n  \"patu_filter_latency_p95\": {},\n  \
         \"patu_filter_latency_p99\": {}\n}}\n",
        num_fixed(serial_ms, 1),
        num_fixed(parallel_ms, 1),
        num_fixed(serial_ms / parallel_ms, 3),
        num_fixed(reference_ms, 1),
        num_fixed(reference_ms, 1),
        num_fixed(trace_spans_ms, 1),
        num_fixed(headline.speedup, 4),
        num_fixed(headline.energy, 4),
        num_fixed(headline.latency, 4),
        num_fixed(headline.mssim, 4),
        patu_hist.p50(),
        patu_hist.p95(),
        patu_hist.p99(),
    );
    let path = micro::repo_root().join("BENCH_headline.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());

    paper_note(
        "Abstract",
        "a significant average speedup of 17% for the overall 3D rendering along with \
         11% total GPU energy reduction, without visible image quality loss (MSSIM >= 93%); \
         29% texture filtering latency reduction",
    );
    Ok(())
}
