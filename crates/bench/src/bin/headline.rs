//! The paper's abstract in one table: PATU's overall speedup, energy
//! reduction, filtering-latency reduction and MSSIM at the conservative
//! θ = 0.4 tuning point, averaged over the Table II games.

use patu_bench::{paper_note, pct, pct_delta, RunOptions};
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{run_policies, design_points};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!("HEADLINE: PATU at the conservative tuning point ({})", opts.profile_banner());

    let points = design_points(0.4);
    let (mut speedup, mut energy, mut latency, mut mssim, mut games) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(&workload, &points, &opts.experiment())?;
        let base = &results[0];
        let patu = &results[3];
        speedup += patu.speedup_vs(base);
        energy += patu.energy_ratio_vs(base);
        latency += patu.filter_latency_ratio_vs(base);
        mssim += patu.mssim;
        games += 1.0;
    }

    println!("\n{:<38} {:>10} {:>10}", "metric", "paper", "measured");
    println!(
        "{:<38} {:>10} {:>10}",
        "3D rendering speedup",
        "+17%",
        pct_delta(speedup / games)
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "total GPU energy reduction",
        "11%",
        pct(1.0 - energy / games)
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "texture filtering latency reduction",
        "29%",
        pct(1.0 - latency / games)
    );
    println!(
        "{:<38} {:>10} {:>10}",
        "perceived quality (MSSIM)",
        ">=93%",
        pct(mssim / games)
    );

    paper_note(
        "Abstract",
        "a significant average speedup of 17% for the overall 3D rendering along with \
         11% total GPU energy reduction, without visible image quality loss (MSSIM >= 93%); \
         29% texture filtering latency reduction",
    );
    Ok(())
}
