//! Prints Table I: the baseline simulator configuration.

use patu_gpu::GpuConfig;

fn main() {
    println!("TABLE I: BASELINE SIMULATOR CONFIGURATION");
    println!("{}", "-".repeat(72));
    for (name, value) in GpuConfig::default().table1() {
        println!("{name:<32} | {value}");
    }
}
