//! CI bench smoke gate: re-measures the two tentpole perf pairs — the
//! batched SoA kernel vs. the scalar filter path, and the sampled MSSIM
//! estimator vs. the full scan — and hard-fails (exit 1) when either
//! *ratio* regresses more than 10% against the recorded `BENCH_*.json`
//! baselines at the repository root.
//!
//! Ratios, not absolute nanoseconds: CI machines differ in clock speed, but
//! fast-path / slow-path quotients measured on the same machine in the same
//! process are stable. Each pair gets up to [`ATTEMPTS`] measurements and
//! passes on the first one under its limit — a genuine regression fails
//! every attempt, while scheduler noise does not repeat. The gate also
//! enforces the absolute design floors regardless of what the baselines
//! recorded: batched ≤ 0.5× scalar (≥ 2× speedup) and sampled ≤ 0.2× full
//! (≥ 5× speedup).

use patu_bench::micro;
use patu_core::{FilterPolicy, PerceptionAwareTextureUnit, SoaBatch};
use patu_gmath::Vec2;
use patu_quality::{GrayImage, SampledSsimConfig, SsimConfig};
use patu_texture::{procedural, AddressMode, Footprint, Texture};
use std::hint::black_box;
use std::process::ExitCode;

/// Maximum allowed ratio regression against the recorded baseline ratio.
const SLACK: f64 = 1.10;

/// Absolute ratio headroom on top of [`SLACK`]. At very small baseline
/// ratios (the sampled estimator runs ~20× faster than the full scan) a
/// pure relative bound sits inside timer granularity; one extra percentage
/// point keeps the gate meaningful without tripping on quantization.
const ABS_MARGIN: f64 = 0.01;

/// Measurement attempts per pair before declaring a regression.
const ATTEMPTS: usize = 3;

fn gradient(size: u32, phase: u32) -> GrayImage {
    let data = (0..size)
        .flat_map(|y| (0..size).map(move |x| ((x * 7 + y * 13 + phase) % 256) as f32))
        .collect();
    GrayImage::new(size, size, data)
}

/// Extracts `median_ns` of `label` from a recorded `BENCH_*.json` artifact.
fn recorded_median(json: &str, label: &str) -> Option<f64> {
    let pos = json.find(&format!("\"label\": \"{label}\""))?;
    let rest = &json[pos..];
    let key = "\"median_ns\": ";
    let tail = &rest[rest.find(key)? + key.len()..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

/// One fresh fast/slow measurement of the filtering pair (ns medians).
fn filtering_pair(attempt: usize) -> (f64, f64) {
    let tex = Texture::with_mips(procedural::composite(512, 512, 0xBE), 0);
    let uv = Vec2::new(0.37, 0.61);
    let fp = Footprint::from_derivatives(
        Vec2::new(8.0 / 512.0, 0.0),
        Vec2::new(0.0, 1.0 / 512.0),
        512,
        512,
        16,
    );
    let policy = FilterPolicy::Patu { threshold: 0.4 };
    let mut group = micro::group(&format!("smoke_filtering_{attempt}"));
    group.bench_batched(
        "scalar_n8",
        || PerceptionAwareTextureUnit::new(policy),
        |mut unit| unit.filter(&tex, black_box(uv), &fp, AddressMode::Wrap),
    );
    const LANES: usize = 64;
    group.bench_batched_scaled(
        "batched_n8",
        LANES as u64,
        || {
            let unit = PerceptionAwareTextureUnit::new(policy);
            let mut batch = SoaBatch::new();
            for i in 0..LANES {
                let (x, y) = (i as u32 % 8, i as u32 / 8);
                batch.push(
                    x,
                    y,
                    uv,
                    Vec2::new(8.0 / 512.0, 0.0),
                    Vec2::new(0.0, 1.0 / 512.0),
                );
            }
            (unit, batch)
        },
        |(mut unit, mut batch)| {
            unit.filter_batch(&tex, AddressMode::Wrap, 16, &mut batch, |_| policy);
            black_box(batch.color(LANES - 1))
        },
    );
    let r = group.results();
    (r[1].median_ns, r[0].median_ns)
}

/// One fresh fast/slow measurement of the SSIM pair (ns medians).
fn ssim_pair(attempt: usize) -> (f64, f64) {
    let a = gradient(512, 0);
    let b = gradient(512, 11);
    let mut group = micro::group(&format!("smoke_ssim_{attempt}"));
    group.bench("full_512", || {
        SsimConfig::default()
            .with_threads(1)
            .mssim(black_box(&a), black_box(&b))
    });
    let sampled =
        SampledSsimConfig::new(0x55A9).with_fraction(patu_quality::sampled::DEFAULT_FRACTION);
    group.bench("sampled_512", || {
        sampled.mssim_sampled(black_box(&a), black_box(&b))
    });
    let r = group.results();
    (r[1].median_ns, r[0].median_ns)
}

/// Retries `measure` up to [`ATTEMPTS`] times; passes on the first ratio
/// under both the regression limit and the absolute floor.
fn gate(
    name: &str,
    recorded_ratio: f64,
    floor: f64,
    mut measure: impl FnMut(usize) -> (f64, f64),
) -> bool {
    let limit = recorded_ratio * SLACK + ABS_MARGIN;
    let mut worst = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let (fast, slow) = measure(attempt);
        let ratio = fast / slow;
        worst = worst.min(ratio);
        if ratio <= limit && ratio <= floor {
            println!(
                "bench_smoke PASS {name}: ratio {ratio:.3} \
                 (recorded {recorded_ratio:.3}, limit {limit:.3}, floor {floor:.3})"
            );
            return true;
        }
        println!(
            "bench_smoke retry {name}: attempt {attempt} ratio {ratio:.3} over \
             limit {limit:.3} or floor {floor:.3}"
        );
    }
    eprintln!(
        "bench_smoke FAIL {name}: best ratio {worst:.3} \
         (recorded {recorded_ratio:.3}, limit {limit:.3}, floor {floor:.3})"
    );
    false
}

fn main() -> ExitCode {
    let root = micro::repo_root();
    let filtering = std::fs::read_to_string(root.join("BENCH_filtering.json"));
    let ssim = std::fs::read_to_string(root.join("BENCH_ssim.json"));
    let (Ok(filtering), Ok(ssim)) = (filtering, ssim) else {
        eprintln!("bench_smoke: missing recorded BENCH_filtering.json / BENCH_ssim.json");
        eprintln!("bench_smoke: run scripts/bench.sh once to record baselines");
        return ExitCode::FAILURE;
    };
    let recorded = |json: &str, label: &str| -> f64 {
        recorded_median(json, label).unwrap_or_else(|| {
            eprintln!("bench_smoke: recorded baseline lacks {label}");
            std::process::exit(1);
        })
    };

    let filtering_recorded = recorded(&filtering, "filtering/patu_batched_n8")
        / recorded(&filtering, "filtering/patu_decide_and_filter_n8");
    let ssim_recorded =
        recorded(&ssim, "ssim/sampled_512x512") / recorded(&ssim, "ssim/mssim_512x512");

    let mut ok = gate(
        "filtering batched/scalar",
        filtering_recorded,
        0.5,
        filtering_pair,
    );
    ok &= gate("ssim sampled/full", ssim_recorded, 0.2, ssim_pair);

    if ok {
        println!("bench_smoke: all perf gates hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
