//! Fig. 6: memory-bandwidth usage breakdown before and after disabling AF.

use patu_bench::{paper_note, pct, RunOptions};
use patu_core::FilterPolicy;
use patu_gpu::BandwidthBreakdown;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::run_policies;

fn print_breakdown(label: &str, b: &BandwidthBreakdown) {
    let total = b.total().max(1) as f64;
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>12} {:>9} | total {:.1} MB",
        label,
        pct(b.texture as f64 / total),
        pct(b.vertex as f64 / total),
        pct(b.depth as f64 / total),
        pct(b.framebuffer as f64 / total),
        pct(b.other as f64 / total),
        b.total() as f64 / 1e6,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 6: memory bandwidth breakdown, AF on vs off ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:<20} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "", "texture", "vertex", "depth", "framebuffer", "other"
    );

    let mut on_total = BandwidthBreakdown::default();
    let mut off_total = BandwidthBreakdown::default();
    let mut texture_reduction = Vec::new();

    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(
            &workload,
            &[
                ("Baseline", FilterPolicy::Baseline),
                ("NoAF", FilterPolicy::NoAf),
            ],
            &opts.experiment(),
        )?;
        let on = results[0].stats.bandwidth;
        let off = results[1].stats.bandwidth;
        print_breakdown(&format!("{} AF-on", spec.label()), &on);
        print_breakdown(&format!("{} AF-off", spec.label()), &off);
        on_total.accumulate(&on);
        off_total.accumulate(&off);
        texture_reduction.push(1.0 - off.total() as f64 / on.total() as f64);
    }

    println!();
    print_breakdown("MEAN AF-on", &on_total);
    print_breakdown("MEAN AF-off", &off_total);
    println!(
        "\ntexture share with AF on: {} | total traffic reduction when AF off: {}",
        pct(on_total.texture_fraction()),
        pct(texture_reduction.iter().sum::<f64>() / texture_reduction.len() as f64)
    );

    paper_note(
        "Fig. 6",
        "texture fetching accounts for ~71% of memory bandwidth; disabling AF cuts \
         memory access by 28% on average (up to 51%)",
    );
    Ok(())
}
