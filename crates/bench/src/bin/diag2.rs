//! Calibration diagnostic: per-game SSIM-bucket histogram of the AF-on vs
//! AF-off index map and the anisotropy (N) distribution across fragments.

use patu_core::FilterPolicy;
use patu_quality::SsimConfig;
use patu_raster::Pipeline;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use patu_texture::{Footprint, MAX_ANISO};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["doom3", "grid", "stal"] {
        let res = (640, 512);
        let w = Workload::build(name, res).unwrap();
        let on = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
        let off = render_frame(&w, 0, &RenderConfig::new(FilterPolicy::NoAf))?;
        let map = SsimConfig::default().ssim_map(&on.luma(), &off.luma());
        let mut lows = [0u64; 5];
        for &v in map.values() {
            let b = ((v.clamp(0.0, 0.999)) * 5.0) as usize;
            lows[b] += 1;
        }
        // N distribution
        let frame = w.frame(0);
        let out = Pipeline::new(res.0, res.1).run(&frame.meshes, &frame.camera);
        let mut nbins = [0u64; 5];
        let mut total = 0u64;
        for f in out.fragments() {
            let t = &w.textures()[f.material];
            let fp =
                Footprint::from_derivatives(f.duv_dx, f.duv_dy, t.width(), t.height(), MAX_ANISO);
            let b = match fp.n {
                1 => 0,
                2 => 1,
                3..=4 => 2,
                5..=8 => 3,
                _ => 4,
            };
            nbins[b] += 1;
            total += 1;
        }
        println!("{name}: MSSIM {:.3}", map.mean());
        println!(
            "  ssim buckets [0-.2,.2-.4,.4-.6,.6-.8,.8-1]: {:?} (of {})",
            lows,
            map.values().len()
        );
        println!(
            "  N buckets [1,2,3-4,5-8,9-16]: {:?} pct {:?}",
            nbins,
            nbins.iter().map(|&b| 100 * b / total).collect::<Vec<_>>()
        );
    }
    Ok(())
}
