//! Ablation: texel-address hash-table capacity (4 / 8 / 16 / 32 entries).
//!
//! The paper fixes the table at 16 entries (the max AF level). A smaller
//! table overflows when a pixel's taps hit many distinct texel sets,
//! truncating the probability vector and biasing Txds; this study measures
//! how much capacity the distribution stage actually needs.

use patu_bench::{pct, RunOptions};
use patu_core::FilterPolicy;
use patu_scenes::{default_specs, Workload};
use patu_sim::render::{render_frame, RenderConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "ABLATION: hash-table capacity vs stage-2 behavior ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:>9} {:>12} {:>14} {:>14} {:>12}",
        "entries", "cycles", "stage2 approx", "kept AF", "approx frac"
    );

    for capacity in [4usize, 8, 16, 32] {
        let (mut cycles, mut stage2, mut kept, mut frac, mut games) =
            (0u64, 0u64, 0u64, 0.0f64, 0.0f64);
        for spec in default_specs() {
            let workload = Workload::build(spec.name, opts.resolution(&spec))?;
            let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
                .with_hash_table_capacity(capacity);
            let r = render_frame(&workload, 0, &cfg)?;
            cycles += r.stats.cycles;
            stage2 += r.approx.stage2_approx;
            kept += r.approx.kept_af;
            frac += r.approx.approximated_fraction();
            games += 1.0;
        }
        println!(
            "{:>9} {:>12} {:>14} {:>14} {:>12}",
            capacity,
            cycles,
            stage2,
            kept,
            pct(frac / games)
        );
    }

    println!(
        "\nThe paper's 16-entry table matches the max AF level, so well-formed \
         requests never overflow; capacities below the common tap count lose \
         stage-2 approvals (overflowed probability vectors under-estimate Txds)."
    );
    Ok(())
}
