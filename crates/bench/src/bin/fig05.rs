//! Fig. 5: normalized speedup and energy reduction of 3D rendering when AF
//! is disabled, per game.

use patu_bench::{paper_note, pct_delta, RunOptions};
use patu_core::FilterPolicy;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::run_policies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 5: AF-off speedup and energy reduction ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:<16} {:>10} {:>16} {:>18}",
        "game", "speedup", "energy ratio", "filter-lat ratio"
    );

    let (mut s_sum, mut e_sum, mut n) = (0.0, 0.0, 0);
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(
            &workload,
            &[
                ("Baseline", FilterPolicy::Baseline),
                ("NoAF", FilterPolicy::NoAf),
            ],
            &opts.experiment(),
        )?;
        let base = &results[0];
        let noaf = &results[1];
        let speedup = noaf.speedup_vs(base);
        let energy = noaf.energy_ratio_vs(base);
        println!(
            "{:<16} {:>9.3}x {:>16.3} {:>18.3}",
            spec.label(),
            speedup,
            energy,
            noaf.filter_latency_ratio_vs(base)
        );
        s_sum += speedup;
        e_sum += energy;
        n += 1;
    }
    let nf = f64::from(n);
    println!(
        "\nmean: speedup {} | energy reduction {}",
        pct_delta(s_sum / nf),
        pct_delta(e_sum / nf)
    );

    paper_note(
        "Fig. 5",
        "AF-off speeds rendering up by 41% on average (up to 60%) with 28% average \
         energy reduction (up to 33%); filter latency falls 47% (Sec. II-B)",
    );
    Ok(())
}
