//! Renders one frame of every workload to `out/scene_<name>.ppm` for visual
//! inspection of the synthetic Table II stand-ins.

use patu_bench::RunOptions;
use patu_core::FilterPolicy;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    std::fs::create_dir_all("out")?;
    for name in [
        "hl2", "doom3", "grid", "nfs", "stal", "ut3", "wolf", "rbench",
    ] {
        let res = if opts.full { (1280, 1024) } else { (640, 512) };
        let workload = Workload::build(name, res)?;
        let frame = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
        let path = format!("out/scene_{name}.ppm");
        frame
            .image
            .write_ppm(BufWriter::new(File::create(&path)?))?;
        println!(
            "{path}: {}x{} | {} fragments | texture share {:.0}%",
            res.0,
            res.1,
            frame.stats.filter_requests,
            frame.stats.bandwidth.texture_fraction() * 100.0
        );
    }
    Ok(())
}
