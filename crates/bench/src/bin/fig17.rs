//! Fig. 17: the threshold sweep — performance–quality tradeoff per game,
//! with the Best Point (BP) maximizing speedup × MSSIM, and the average
//! case across games.

use patu_bench::{paper_note, RunOptions};
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{best_point, threshold_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 17: threshold sweep per game ({})",
        opts.profile_banner()
    );
    let thresholds: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();

    // Per-threshold accumulators for the average subfigure (I).
    let mut avg_speedup = vec![0.0f64; thresholds.len()];
    let mut avg_mssim = vec![0.0f64; thresholds.len()];
    let mut bps = Vec::new();
    let mut games = 0.0f64;

    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let (baseline, sweep) = threshold_sweep(&workload, &thresholds, &opts.experiment())?;
        let bp = best_point(&baseline, &sweep);
        bps.push((spec.label(), bp));
        games += 1.0;

        println!("\n{} (BP = {bp:.1}):", spec.label());
        println!(
            "{:>9} {:>9} {:>8} {:>15}",
            "threshold", "speedup", "MSSIM", "speedup*MSSIM"
        );
        for (i, (t, r)) in sweep.iter().enumerate() {
            let s = r.speedup_vs(&baseline);
            println!(
                "{:>9.1} {:>8.3}x {:>8.3} {:>15.3}",
                t,
                s,
                r.mssim,
                r.tuning_metric(&baseline)
            );
            avg_speedup[i] += s;
            avg_mssim[i] += r.mssim;
        }
    }

    println!("\n(I) AVERAGE ACROSS GAMES:");
    println!(
        "{:>9} {:>9} {:>8} {:>15}",
        "threshold", "speedup", "MSSIM", "speedup*MSSIM"
    );
    let mut best = (0.0, f64::MIN);
    for (i, &t) in thresholds.iter().enumerate() {
        let s = avg_speedup[i] / games;
        let q = avg_mssim[i] / games;
        println!("{:>9.1} {:>8.3}x {:>8.3} {:>15.3}", t, s, q, s * q);
        if s * q > best.1 {
            best = (t, s * q);
        }
    }
    println!("\naverage BP = {:.1}", best.0);
    println!("per-game BPs: {:?}", bps);

    paper_note(
        "Fig. 17",
        "speedup and MSSIM form an X-shaped near-linear tradeoff; MSSIM jumps sharply \
         from θ=0 to 0.1; most BPs lie in 0.1–0.9; higher resolutions have smaller BPs; \
         the average BP is 0.4 (94% MSSIM)",
    );
    Ok(())
}
