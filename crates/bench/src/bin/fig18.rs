//! Fig. 18: normalized texture-filtering latency under the four design
//! points (Baseline, AF-SSIM(N), AF-SSIM(N)+(Txds), PATU) at θ = 0.4.

use patu_bench::{paper_note, pct, RunOptions};
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::{design_points, run_policies};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 18: normalized texture filtering latency ({})",
        opts.profile_banner()
    );
    let points = design_points(0.4);
    println!(
        "\n{:<16} {:>10} {:>12} {:>18} {:>8}",
        "game", "Baseline", "AF-SSIM(N)", "AF-SSIM(N)+(Txds)", "PATU"
    );

    let mut sums = vec![0.0f64; points.len()];
    let mut games = 0.0;
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(&workload, &points, &opts.experiment())?;
        let base = results[0].clone();
        let ratios: Vec<f64> = results
            .iter()
            .map(|r| r.filter_latency_ratio_vs(&base))
            .collect();
        println!(
            "{:<16} {:>10.3} {:>12.3} {:>18.3} {:>8.3}",
            spec.label(),
            ratios[0],
            ratios[1],
            ratios[2],
            ratios[3]
        );
        for (s, r) in sums.iter_mut().zip(&ratios) {
            *s += r;
        }
        games += 1.0;
    }
    println!(
        "{:<16} {:>10.3} {:>12.3} {:>18.3} {:>8.3}",
        "MEAN",
        sums[0] / games,
        sums[1] / games,
        sums[2] / games,
        sums[3] / games
    );
    println!(
        "\nPATU mean filtering-latency reduction: {}",
        pct(1.0 - sums[3] / games)
    );

    paper_note(
        "Fig. 18",
        "AF-SSIM(N)+(Txds) and PATU reduce texture filtering latency by 29% on average \
         (up to 42%), beating AF-SSIM(N) alone",
    );
    Ok(())
}
