//! Load sweep over the frame-serving subsystem: offered load vs.
//! throughput, deadline-miss rate and mean delivered SSIM, with the
//! quality governor on and off at every point.
//!
//! The sweep demonstrates the serving tentpole's claims on a fixed seed:
//! under overload (load ≥ 2×) the governor strictly lowers the
//! deadline-miss rate versus the ungoverned control while holding mean
//! delivered SSIM at or above 0.9, and the whole session is bit-identical
//! between `threads = 1` and `threads = 4`. Results land in
//! `BENCH_serve.json` at the repository root.

use patu_bench::micro;
use patu_obs::json::num_fixed;
use patu_serve::{run_session, ServeConfig, ServeReport, SimFrameService};

const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn cfg(load: f64, governor: bool, threads: usize) -> ServeConfig {
    ServeConfig {
        seed: 42,
        clients: 6,
        jobs_per_client: 6,
        load,
        governor,
        threads: Some(threads),
        ..ServeConfig::default()
    }
}

fn run(cfg: &ServeConfig) -> Result<(ServeReport, f64), Box<dyn std::error::Error>> {
    let mut service = SimFrameService::new(cfg)?;
    let (report, ms) = micro::timed(|| run_session(cfg, &mut service));
    Ok((report?, ms))
}

struct Point {
    load: f64,
    governed: ServeReport,
    ungoverned: ServeReport,
    governed_ms: f64,
    bit_identical: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SERVE: load sweep, governor on vs off (fixed seed, 2 GPUs)");

    let mut points = Vec::new();
    for load in LOADS {
        let (governed, governed_ms) = run(&cfg(load, true, 1))?;
        let (wide, _) = run(&cfg(load, true, 4))?;
        let (ungoverned, _) = run(&cfg(load, false, 1))?;
        let bit_identical = governed.log == wide.log
            && governed.chrome_trace() == wide.chrome_trace()
            && governed
                .completed
                .iter()
                .zip(&wide.completed)
                .all(|(a, b)| a.image_hash == b.image_hash);
        points.push(Point {
            load,
            governed,
            ungoverned,
            governed_ms,
            bit_identical,
        });
    }

    println!(
        "\n{:<6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "load", "thrpt/Mcyc", "miss(gov)", "miss(off)", "ssim(gov)", "shed", "1==4"
    );
    for p in &points {
        println!(
            "{:<6} {:>12.3} {:>12.4} {:>12.4} {:>12.4} {:>10} {:>8}",
            p.load,
            p.governed.stats.throughput(),
            p.governed.stats.miss_rate(),
            p.ungoverned.stats.miss_rate(),
            p.governed.stats.mean_ssim(),
            p.governed.stats.shed,
            p.bit_identical,
        );
    }

    let overload: Vec<&Point> = points.iter().filter(|p| p.load >= 2.0).collect();
    let governor_wins = !overload.is_empty()
        && overload
            .iter()
            .all(|p| p.governed.stats.miss_rate() < p.ungoverned.stats.miss_rate());
    let quality_holds = overload.iter().all(|p| p.governed.stats.mean_ssim() >= 0.9);
    let all_bit_identical = points.iter().all(|p| p.bit_identical);
    println!(
        "\ngovernor strictly lowers overload miss rate: {governor_wins}; \
         overload mean SSIM >= 0.9: {quality_holds}; \
         threads 1 vs 4 bit-identical: {all_bit_identical}"
    );

    if let Some(worst) = overload.last() {
        println!("\nper-tier latency at load {}x (governed):", worst.load);
        println!("{}", worst.governed.table());
    }

    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"load\": {}, \"governed_ms\": {}, \"bit_identical\": {}, \
             \"governed\": {{\"throughput_per_mcycle\": {}, \"miss_rate\": {}, \
             \"mean_ssim\": {}, \"shed\": {}, \"degrades\": {}}}, \
             \"ungoverned\": {{\"throughput_per_mcycle\": {}, \"miss_rate\": {}, \
             \"mean_ssim\": {}, \"shed\": {}, \"degrades\": {}}}}}",
            num_fixed(p.load, 2),
            num_fixed(p.governed_ms, 1),
            p.bit_identical,
            num_fixed(p.governed.stats.throughput(), 4),
            num_fixed(p.governed.stats.miss_rate(), 4),
            num_fixed(p.governed.stats.mean_ssim(), 4),
            p.governed.stats.shed,
            p.governed.stats.degrades,
            num_fixed(p.ungoverned.stats.throughput(), 4),
            num_fixed(p.ungoverned.stats.miss_rate(), 4),
            num_fixed(p.ungoverned.stats.mean_ssim(), 4),
            p.ungoverned.stats.shed,
            p.ungoverned.stats.degrades,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"governor_wins_at_overload\": {governor_wins},\n  \
         \"overload_mean_ssim_holds\": {quality_holds},\n  \
         \"outputs_bit_identical\": {all_bit_identical},\n  \"points\": [\n{rows}\n  ]\n}}\n"
    );
    let path = micro::repo_root().join("BENCH_serve.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());

    if !(governor_wins && quality_holds && all_bit_identical) {
        return Err("serve acceptance criteria not met".into());
    }
    Ok(())
}
