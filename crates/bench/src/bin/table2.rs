//! Prints Table II: the 3D gaming benchmark inventory.

use patu_scenes::catalog;

fn main() {
    println!("TABLE II: 3D GAMING BENCHMARKS");
    println!("{}", "-".repeat(72));
    println!(
        "{:<7} {:<32} {:<12} {:<10}",
        "Abbr.", "Name", "Resolution", "Library"
    );
    for spec in catalog() {
        println!(
            "{:<7} {:<32} {:<12} {:<10}",
            spec.name,
            spec.title,
            format!("{}x{}", spec.resolution.0, spec.resolution.1),
            spec.library
        );
    }
    println!("\n(Each workload is a procedural stand-in scene; see DESIGN.md §2.)");
}
