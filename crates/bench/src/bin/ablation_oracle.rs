//! Ablation: how well the runtime predictors track the oracle similarity.
//!
//! For every anisotropic pixel we compute the *true* per-pixel AF-SSIM from
//! the actually-filtered AF and TF colors (Eq. 4–5) and compare the oracle's
//! approximate/keep verdict at θ = 0.4 against each runtime predictor's.

use patu_bench::{pct, RunOptions};
use patu_core::{
    af_ssim_n, af_ssim_txds, oracle_af_ssim, txds, FilterPolicy, PerceptionAwareTextureUnit,
    PredictionAccuracy, TexelAddressTable,
};
use patu_raster::Pipeline;
use patu_scenes::{default_specs, Workload};
use patu_texture::{
    sample_anisotropic, sample_trilinear_record, sampler::bilinear_addresses, AddressMode,
    Footprint, MAX_ANISO,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    let theta = 0.4;
    println!(
        "ABLATION: predictor accuracy vs oracle at θ={theta} ({})",
        opts.profile_banner()
    );
    println!(
        "\n{:<16} {:>10} | {:>8} {:>9} {:>8} | {:>8} {:>9} {:>8}",
        "game", "pixels", "N acc", "N prec", "N rec", "2st acc", "2st prec", "2st rec"
    );

    let mut total_n = PredictionAccuracy::new();
    let mut total_flow = PredictionAccuracy::new();
    for spec in default_specs() {
        let res = opts.resolution(&spec);
        let workload = Workload::build(spec.name, res)?;
        let scene = workload.frame(0);
        let geometry = Pipeline::new(res.0, res.1).run(&scene.meshes, &scene.camera);

        let mut acc_n = PredictionAccuracy::new();
        let mut acc_flow = PredictionAccuracy::new();
        let mut table = TexelAddressTable::new();
        let mut patu = PerceptionAwareTextureUnit::new(FilterPolicy::Patu { threshold: theta });
        let mode = AddressMode::Wrap;

        for frag in geometry.fragments() {
            let tex = &workload.textures()[frag.material];
            let fp = Footprint::from_derivatives(
                frag.duv_dx,
                frag.duv_dy,
                tex.width(),
                tex.height(),
                MAX_ANISO,
            );
            if fp.n < 2 {
                continue; // isotropic pixels are trivially approximable
            }
            // Oracle: filter both ways and compare the colors.
            let af = sample_anisotropic(tex, frag.uv, &fp, mode);
            let tf = sample_trilinear_record(tex, frag.uv, fp.tf_lod, mode);
            let oracle_approx = oracle_af_ssim(af.color, tf.color) > theta;

            // Predictor 1: sample-area only.
            let n_approx = af_ssim_n(fp.n) > theta;
            acc_n.record(n_approx, oracle_approx);

            // Predictor 2: the full two-stage flow (stage 1 + Txds).
            let flow_approx = if n_approx {
                true
            } else {
                table.reset();
                let tf_level = fp.tf_lod.floor() as u32;
                for tap in &af.taps {
                    table.insert(&bilinear_addresses(tex, tap.uv, tf_level, mode));
                }
                af_ssim_txds(txds(&table.probability_vector(), fp.n)) > theta
            };
            acc_flow.record(flow_approx, oracle_approx);

            // Keep the PATU unit exercised so its stats stay comparable.
            let _ = patu.filter(tex, frag.uv, &fp, mode);
        }

        println!(
            "{:<16} {:>10} | {:>8} {:>9} {:>8} | {:>8} {:>9} {:>8}",
            spec.label(),
            acc_n.total(),
            pct(acc_n.accuracy()),
            pct(acc_n.precision()),
            pct(acc_n.recall()),
            pct(acc_flow.accuracy()),
            pct(acc_flow.precision()),
            pct(acc_flow.recall()),
        );
        total_n.accumulate(&acc_n);
        total_flow.accumulate(&acc_flow);
    }

    println!(
        "\nMEAN: sample-area acc {} prec {} rec {} | two-stage acc {} prec {} rec {}",
        pct(total_n.accuracy()),
        pct(total_n.precision()),
        pct(total_n.recall()),
        pct(total_flow.accuracy()),
        pct(total_flow.precision()),
        pct(total_flow.recall()),
    );
    println!(
        "Recall is the captured speedup opportunity; precision is quality safety. \
         The distribution stage exists to recover the recall the conservative \
         sample-area check leaves behind (Sec. IV-C(B))."
    );
    Ok(())
}
