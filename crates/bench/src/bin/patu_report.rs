//! patu_report: renders patu JSONL telemetry artifacts into a
//! self-contained Markdown (or HTML) dashboard, and doubles as the
//! observability CI gate.
//!
//! Modes:
//!
//! * `patu_report <artifact.jsonl> [--html] [-o <path>]` — summarize a
//!   JSONL stream (serve lines, causal trace trees, SLO alerts, cycle
//!   attribution) into one document. With `--html` the same tables render
//!   as a standalone HTML page; `-o` writes to a file instead of stdout.
//! * `patu_report --check` — the CI smoke stage: renders every bundled
//!   scene and hard-fails unless per-frame cycle attribution conserves
//!   (stage sums equal total frame cycles), runs a half-pool-outage chaos
//!   session with traces + SLO tracking on and checks every artifact is
//!   schema-clean, bit-identical across `threads ∈ {1, 4}`, and that
//!   burn-rate alerts fire at deterministic cycles — then diffs each
//!   scene's top-k attribution shares against `BENCH_attribution.json`.
//! * `patu_report --record` — (re)records `BENCH_attribution.json`.

use patu_bench::micro;
use patu_core::FilterPolicy;
use patu_obs::{schema, Attribution, SloOptions, Stage, TelemetryConfig, TraceLevel};
use patu_scenes::{game_names, Workload};
use patu_serve::{
    run_session, Scenario, ServeConfig, ServeReport, SimFrameService, SyntheticService,
};
use patu_sim::render::{render_frame, RenderConfig};

/// Resolution for the attribution baseline renders — small enough for CI,
/// large enough that every pipeline stage shows up.
const ATTRIB_RES: (u32, u32) = (96, 64);
/// Threshold for the attribution baseline renders.
const ATTRIB_THETA: f64 = 0.4;
/// Stages compared against the recorded baseline per scene.
const TOP_K: usize = 4;
/// Allowed per-stage share drift vs the baseline, in ×10000 units (500 =
/// 5 percentage points).
const SHARE_TOLERANCE_X10000: u64 = 500;

// ---------------------------------------------------------------------------
// Tiny JSONL field extraction (the artifacts are flat, machine-written
// lines; no general JSON parser needed).

/// Extracts the raw text of `"key":` up to the next comma/brace at this
/// nesting level — good enough for the flat numeric/string fields the
/// sinks emit.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = rest.len();
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            ',' | '}' | ']' if depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some(rest[..end].trim())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field_raw(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

// ---------------------------------------------------------------------------
// Dashboard model: sections of rows, rendered as Markdown or HTML.

struct Section {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

fn render_markdown(title: &str, sections: &[Section]) -> String {
    let mut out = format!("# {title}\n");
    for s in sections {
        out.push_str(&format!("\n## {}\n\n", s.title));
        if !s.rows.is_empty() {
            out.push_str(&format!("| {} |\n", s.header.join(" | ")));
            out.push_str(&format!(
                "|{}\n",
                s.header.iter().map(|_| "---|").collect::<String>()
            ));
            for row in &s.rows {
                out.push_str(&format!("| {} |\n", row.join(" | ")));
            }
        }
        for n in &s.notes {
            out.push_str(&format!("\n{n}\n"));
        }
    }
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn render_html(title: &str, sections: &[Section]) -> String {
    let mut out = format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{0}</title>\n\
         <style>body{{font-family:monospace;margin:2em}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #999;padding:2px 8px;text-align:right}}\
         th{{background:#eee}}td:first-child,th:first-child{{text-align:left}}</style>\n\
         </head><body><h1>{0}</h1>\n",
        html_escape(title)
    );
    for s in sections {
        out.push_str(&format!("<h2>{}</h2>\n", html_escape(&s.title)));
        if !s.rows.is_empty() {
            out.push_str("<table><tr>");
            for h in &s.header {
                out.push_str(&format!("<th>{}</th>", html_escape(h)));
            }
            out.push_str("</tr>\n");
            for row in &s.rows {
                out.push_str("<tr>");
                for cell in row {
                    out.push_str(&format!("<td>{}</td>", html_escape(cell)));
                }
                out.push_str("</tr>\n");
            }
            out.push_str("</table>\n");
        }
        for n in &s.notes {
            out.push_str(&format!("<p>{}</p>\n", html_escape(n)));
        }
    }
    out.push_str("</body></html>\n");
    out
}

/// A proportional unicode bar for flame-style share columns.
fn bar(share_x10000: u64) -> String {
    "█".repeat(((share_x10000 * 24).div_ceil(10_000)) as usize)
}

/// Builds the dashboard sections from one JSONL stream.
fn dashboard(stream: &str) -> Vec<Section> {
    let mut sections = Vec::new();

    // Line inventory.
    let mut kinds: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for line in stream.lines() {
        let kind = field_str(line, "type").unwrap_or("?");
        *kinds.entry(kind).or_insert(0) += 1;
    }
    sections.push(Section {
        title: "Line inventory".into(),
        header: vec!["type".into(), "lines".into()],
        rows: kinds
            .iter()
            .map(|(k, v)| vec![(*k).to_string(), v.to_string()])
            .collect(),
        notes: Vec::new(),
    });

    // Serve outcomes.
    let serve: Vec<&str> = stream
        .lines()
        .filter(|l| field_str(l, "type") == Some("serve"))
        .collect();
    if !serve.is_empty() {
        let count = |o: &str| {
            serve
                .iter()
                .filter(|l| field_str(l, "outcome") == Some(o))
                .count()
        };
        let missed = serve
            .iter()
            .filter(|l| {
                field_str(l, "outcome") == Some("delivered")
                    && field_u64(l, "finish")
                        .zip(field_u64(l, "deadline"))
                        .is_some_and(|(f, d)| f > d)
            })
            .count();
        sections.push(Section {
            title: "Serve outcomes".into(),
            header: vec!["outcome".into(), "jobs".into()],
            rows: vec![
                vec!["delivered".into(), count("delivered").to_string()],
                vec!["  of which late".into(), missed.to_string()],
                vec!["shed".into(), count("shed").to_string()],
                vec!["failed".into(), count("failed").to_string()],
            ],
            notes: Vec::new(),
        });
    }

    // Causal traces: span-name totals across every tree.
    let mut span_names: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut traces = 0u64;
    for line in stream.lines() {
        if field_str(line, "type") != Some("trace") {
            continue;
        }
        traces += 1;
        // Spans are objects inside the "spans" array; each carries
        // name/start/end.
        for chunk in line.split("{\"id\":").skip(1) {
            let obj = format!("{{\"id\":{chunk}");
            if let (Some(name), Some(start), Some(end)) = (
                field_str(&obj, "name"),
                field_u64(&obj, "start"),
                field_u64(&obj, "end"),
            ) {
                let e = span_names.entry(name.to_string()).or_insert((0, 0));
                e.0 += 1;
                e.1 += end.saturating_sub(start);
            }
        }
    }
    if traces > 0 {
        sections.push(Section {
            title: format!("Causal traces ({traces} jobs)"),
            header: vec!["span".into(), "count".into(), "total cycles".into()],
            rows: span_names
                .iter()
                .map(|(n, (c, cy))| vec![n.clone(), c.to_string(), cy.to_string()])
                .collect(),
            notes: Vec::new(),
        });
    }

    // SLO burn-rate alerts.
    let slo_rows: Vec<Vec<String>> = stream
        .lines()
        .filter(|l| field_str(l, "type") == Some("slo"))
        .map(|l| {
            vec![
                field_str(l, "slo").unwrap_or("?").to_string(),
                field_u64(l, "cycle").unwrap_or(0).to_string(),
                field_u64(l, "job").unwrap_or(0).to_string(),
                format!(
                    "{:.1}x",
                    field_u64(l, "burn_fast_x1000").unwrap_or(0) as f64 / 1000.0
                ),
                format!(
                    "{:.1}x",
                    field_u64(l, "burn_slow_x1000").unwrap_or(0) as f64 / 1000.0
                ),
            ]
        })
        .collect();
    if !slo_rows.is_empty() {
        sections.push(Section {
            title: "SLO burn-rate alerts".into(),
            header: vec![
                "objective".into(),
                "cycle".into(),
                "job".into(),
                "fast burn".into(),
                "slow burn".into(),
            ],
            rows: slo_rows,
            notes: Vec::new(),
        });
    }

    // Cycle attribution, accumulated over every attrib line.
    let mut attrib = Attribution::new();
    let mut frames = 0u64;
    for line in stream.lines() {
        if field_str(line, "type") != Some("attrib") {
            continue;
        }
        frames += 1;
        for stage in Stage::ALL {
            if let Some(cycles) = field_u64(line, stage.name()) {
                attrib.add(stage, cycles);
            }
        }
    }
    if frames > 0 {
        let rows = attrib
            .shares_x10000()
            .into_iter()
            .map(|(name, share)| {
                vec![
                    name.to_string(),
                    attrib
                        .get(Stage::from_name(name).unwrap_or(Stage::Setup))
                        .to_string(),
                    format!("{:.1}%", share as f64 / 100.0),
                    bar(share),
                ]
            })
            .collect();
        sections.push(Section {
            title: format!("Cycle attribution ({frames} frames)"),
            header: vec!["stage".into(), "cycles".into(), "share".into(), "".into()],
            rows,
            notes: vec![format!(
                "Render-path stages conserve: {} cycles total (ssim_baseline is analysis-track).",
                attrib.frame_total()
            )],
        });
    }

    sections
}

// ---------------------------------------------------------------------------
// Attribution baseline (BENCH_attribution.json).

/// Renders frame 0 of `scene` at the baseline resolution and returns its
/// cycle attribution + total cycles, hard-checking conservation.
fn scene_attribution(scene: &str) -> Result<(Attribution, u64), Box<dyn std::error::Error>> {
    let workload = Workload::build(scene, ATTRIB_RES)?;
    let cfg = RenderConfig::new(FilterPolicy::Patu {
        threshold: ATTRIB_THETA,
    })
    .with_telemetry(TelemetryConfig::with_level(TraceLevel::Counters));
    let result = render_frame(&workload, 0, &cfg)?;
    let telemetry = result
        .telemetry
        .as_ref()
        .ok_or("telemetry missing at counters level")?;
    let attrib = telemetry.attrib.clone();
    if attrib.frame_total() != result.stats.cycles {
        return Err(format!(
            "{scene}: attribution leaks cycles ({} attributed != {} total)",
            attrib.frame_total(),
            result.stats.cycles
        )
        .into());
    }
    // The schema checker enforces the same invariant on the wire format.
    schema::check_stream(&format!("{}\n", attrib.jsonl_line(0)))
        .map_err(|(_, e)| format!("{scene}: attrib line rejected: {e}"))?;
    Ok((attrib, result.stats.cycles))
}

fn record_baseline() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = String::new();
    for (i, scene) in game_names().into_iter().enumerate() {
        let (attrib, total) = scene_attribution(scene)?;
        if i > 0 {
            rows.push_str(",\n");
        }
        let mut stages = String::new();
        for (j, (name, share)) in attrib.shares_x10000().into_iter().enumerate() {
            if j > 0 {
                stages.push_str(", ");
            }
            stages.push_str(&format!("\"{name}\": {share}"));
        }
        rows.push_str(&format!(
            "    {{\"scene\": \"{scene}\", \"total\": {total}, \"shares_x10000\": {{{stages}}}}}"
        ));
        println!("recorded {scene}: {total} cycles");
    }
    let json = format!(
        "{{\n  \"bench\": \"attribution\",\n  \"resolution\": [{}, {}],\n  \
         \"threshold\": {ATTRIB_THETA},\n  \"scenes\": [\n{rows}\n  ]\n}}\n",
        ATTRIB_RES.0, ATTRIB_RES.1
    );
    let path = micro::repo_root().join("BENCH_attribution.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Extracts `"<stage>": <n>` for `scene` from the recorded baseline.
fn recorded_share(json: &str, scene: &str, stage: &str) -> Option<u64> {
    let pos = json.find(&format!("\"scene\": \"{scene}\""))?;
    let obj_end = json[pos..].find('}')? + pos + 1;
    field_u64(&json[pos..obj_end].replace(": ", ":"), stage)
}

/// Diffs each scene's top-k attribution shares against the recorded
/// baseline; any drift beyond tolerance is a hard failure with a
/// regeneration hint.
fn check_against_baseline() -> Result<(), Box<dyn std::error::Error>> {
    let path = micro::repo_root().join("BENCH_attribution.json");
    let json = std::fs::read_to_string(&path).map_err(|_| {
        "BENCH_attribution.json missing; record it with \
         `cargo run --release -p patu-bench --bin patu_report -- --record`"
    })?;
    for scene in game_names() {
        let (attrib, _) = scene_attribution(scene)?;
        let mut shares = attrib.shares_x10000();
        shares.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (stage, measured) in shares.into_iter().take(TOP_K) {
            let recorded = recorded_share(&json, scene, stage).ok_or_else(|| {
                format!("BENCH_attribution.json lacks {scene}/{stage}; re-record it")
            })?;
            let drift = measured.abs_diff(recorded);
            if drift > SHARE_TOLERANCE_X10000 {
                return Err(format!(
                    "{scene}: stage `{stage}` share drifted {:.1}pp (measured {:.1}%, \
                     recorded {:.1}%). If the stage mix change is intended, regenerate \
                     the baseline with `cargo run --release -p patu-bench --bin \
                     patu_report -- --record`.",
                    drift as f64 / 100.0,
                    measured as f64 / 100.0,
                    recorded as f64 / 100.0,
                )
                .into());
            }
        }
        println!("attribution baseline holds for {scene} (top-{TOP_K} within tolerance)");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CI check mode.

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        seed: 1207,
        scenario: Scenario::HalfPoolOutage,
        load: 1.5,
        gpus: 2,
        queue_capacity: 8,
        trace: TraceLevel::Spans,
        slo: SloOptions::default(),
        pressure_gain: 0.4,
        ..ServeConfig::default()
    }
}

fn check_report(report: &ServeReport, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let checked = schema::check_stream(&report.log)
        .map_err(|(line, err)| format!("{label}: log line {line}: {err}"))?;
    let traces = report
        .log
        .lines()
        .filter(|l| field_str(l, "type") == Some("trace"))
        .count();
    if traces as u64 != report.stats.submitted {
        return Err(format!(
            "{label}: {traces} trace trees for {} submitted jobs",
            report.stats.submitted
        )
        .into());
    }
    let expected = report.stats.submitted * 2 + report.stats.slo_alerts;
    if checked as u64 != expected {
        return Err(format!("{label}: schema checked {checked} lines, expected {expected}").into());
    }
    Ok(())
}

fn run_check() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Per-frame attribution conserves on every bundled scene, and the
    //    recorded stage mix has not drifted.
    println!("== attribution conservation + baseline diff ==");
    check_against_baseline()?;

    // 2. A half-pool-outage session at 1.5x load with traces and SLOs on:
    //    schema-clean, and burn-rate alerts fire at deterministic cycles.
    println!("== chaos traces + SLO burn alerts (synthetic plant) ==");
    let burn_cfg = ServeConfig {
        clients: 4,
        jobs_per_client: 48,
        ..chaos_cfg()
    };
    let mut plant = SyntheticService::new(1_000_000, burn_cfg.governor_steps);
    let a = run_session(&burn_cfg, &mut plant)?;
    let mut plant = SyntheticService::new(1_000_000, burn_cfg.governor_steps);
    let b = run_session(&burn_cfg, &mut plant)?;
    check_report(&a, "burn session")?;
    if a.alerts.is_empty() {
        return Err("half-pool outage at 1.5x load fired no burn-rate alerts".into());
    }
    if a.alerts != b.alerts || a.log != b.log {
        return Err("burn session replays diverge".into());
    }
    println!(
        "   {} alerts, first `{}` at cycle {}",
        a.alerts.len(),
        a.alerts[0].slo,
        a.alerts[0].cycle
    );

    // 3. The same chaos scenario on real renders, threads 1 vs 4: every
    //    artifact byte-identical.
    println!("== thread invariance on real renders ==");
    let sim_cfg = ServeConfig {
        clients: 3,
        jobs_per_client: 4,
        resolution: (96, 64),
        frame_span: 2,
        ..chaos_cfg()
    };
    let narrow_cfg = ServeConfig {
        threads: Some(1),
        ..sim_cfg.clone()
    };
    let wide_cfg = ServeConfig {
        threads: Some(4),
        ..sim_cfg
    };
    let mut svc = SimFrameService::new(&narrow_cfg)?;
    let narrow = run_session(&narrow_cfg, &mut svc)?;
    let baseline_cycles = svc.baseline_cycles();
    let mut svc = SimFrameService::new(&wide_cfg)?;
    let wide = run_session(&wide_cfg, &mut svc)?;
    check_report(&narrow, "sim session")?;
    if narrow.log != wide.log || narrow.chrome_trace() != wide.chrome_trace() {
        return Err("serve artifacts diverge between threads 1 and 4".into());
    }
    if baseline_cycles != svc.baseline_cycles() {
        return Err("ssim-baseline cycle accounting diverges between thread counts".into());
    }
    println!(
        "   log + chrome trace byte-identical; {} analysis-track baseline cycles",
        baseline_cycles
    );

    // 4. The dashboard renders from the artifact it just produced.
    let sections = dashboard(&narrow.log);
    let md = render_markdown("patu serve session", &sections);
    let html = render_html("patu serve session", &sections);
    for needle in ["Line inventory", "Causal traces", "serve::lifecycle"] {
        if !md.contains(needle) || !html.contains(needle) {
            return Err(format!("dashboard is missing `{needle}`").into());
        }
    }
    println!("== dashboard renders ({} sections) ==", sections.len());

    println!("patu_report --check: all gates green");
    Ok(())
}

// ---------------------------------------------------------------------------

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        return run_check();
    }
    if args.iter().any(|a| a == "--record") {
        return record_baseline();
    }
    let html = args.iter().any(|a| a == "--html");
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1).cloned());
    let input = args
        .iter()
        .find(|a| !a.starts_with('-') && Some(a.as_str()) != out_path.as_deref())
        .ok_or("usage: patu_report <artifact.jsonl> [--html] [-o out] | --check | --record")?;
    let stream = std::fs::read_to_string(input)?;
    let sections = dashboard(&stream);
    let title = format!("patu report: {input}");
    let doc = if html {
        render_html(&title, &sections)
    } else {
        render_markdown(&title, &sections)
    };
    match out_path {
        Some(path) => {
            std::fs::write(&path, doc)?;
            println!("wrote {path}");
        }
        None => print!("{doc}"),
    }
    Ok(())
}
