//! Lint-throughput gate: cold vs warm wall time of a full `patu-lint`
//! incremental run over this workspace.
//!
//! A cold run lexes, indexes and dataflow-analyzes every `.rs` file before
//! the interprocedural pass; a warm run replays the per-file analyses from
//! `target/patu-lint/cache.json` and only recomputes the global pass. The
//! cache pays for itself only if the warm path is decisively faster, so
//! this binary hard-fails unless warm is at least [`MIN_SPEEDUP`]× cold,
//! and records the measurement as `BENCH_lint.json` at the repo root.

use patu_bench::micro;
use patu_lint::Options;
use patu_obs::json::num_fixed;

/// The acceptance floor for `cold_ms / warm_ms`.
const MIN_SPEEDUP: f64 = 3.0;

/// Wall-clock noise guard: re-measure up to this many times before failing.
const ATTEMPTS: usize = 3;

struct Measurement {
    cold_ms: f64,
    warm_ms: f64,
    files: usize,
    reused: usize,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_ms.max(1e-6)
    }
}

fn measure(
    root: &std::path::Path,
    opts: &Options,
) -> Result<Measurement, Box<dyn std::error::Error>> {
    let cache_dir = root.join("target").join("patu-lint");
    if cache_dir.exists() {
        std::fs::remove_dir_all(&cache_dir)?;
    }

    let (cold, cold_ms) = micro::timed(|| patu_lint::run_with(root, opts));
    let cold = cold?;
    if !cold.diags.is_empty() {
        return Err(format!(
            "workspace must lint clean before benchmarking, found {} violation(s)",
            cold.diags.len()
        )
        .into());
    }

    // Best-of-3 warm runs: the first may still be cache-filesystem cold.
    let mut warm_ms = f64::INFINITY;
    let mut reused = 0usize;
    for _ in 0..3 {
        let (warm, ms) = micro::timed(|| patu_lint::run_with(root, opts));
        let warm = warm?;
        if warm.reused == 0 {
            return Err("warm run reused nothing — the cache is not persisting".into());
        }
        reused = warm.reused;
        if ms < warm_ms {
            warm_ms = ms;
        }
    }

    Ok(Measurement {
        cold_ms,
        warm_ms,
        files: cold.files,
        reused,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = micro::repo_root();
    let opts = Options {
        incremental: true,
        debt: true,
    };

    let mut best: Option<Measurement> = None;
    for attempt in 1..=ATTEMPTS {
        let m = measure(&root, &opts)?;
        println!(
            "lint bench attempt {attempt}: cold {:.1} ms, warm {:.1} ms ({} files, {} reused), speedup {:.1}x",
            m.cold_ms, m.warm_ms, m.files, m.reused, m.speedup()
        );
        let done = m.speedup() >= MIN_SPEEDUP;
        if best.as_ref().is_none_or(|b| m.speedup() > b.speedup()) {
            best = Some(m);
        }
        if done {
            break;
        }
    }
    let Some(best) = best else {
        return Err("no measurement completed".into());
    };

    let ok = best.speedup() >= MIN_SPEEDUP;
    let json = format!(
        "{{\n  \"bench\": \"lint\",\n  \"files\": {},\n  \"reused\": {},\n  \
         \"cold_ms\": {},\n  \"warm_ms\": {},\n  \"speedup\": {},\n  \
         \"min_speedup\": {},\n  \"warm_speedup_ok\": {}\n}}\n",
        best.files,
        best.reused,
        num_fixed(best.cold_ms, 2),
        num_fixed(best.warm_ms, 2),
        num_fixed(best.speedup(), 2),
        num_fixed(MIN_SPEEDUP, 1),
        ok
    );
    let path = micro::repo_root().join("BENCH_lint.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());

    if !ok {
        return Err(format!(
            "incremental cache speedup {:.1}x is below the {MIN_SPEEDUP:.0}x acceptance floor",
            best.speedup()
        )
        .into());
    }
    Ok(())
}
