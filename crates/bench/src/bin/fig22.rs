//! Fig. 22: user satisfaction over thresholds, via the vsync replay and the
//! synthetic satisfaction model (the documented stand-in for the paper's
//! 30-participant study — see DESIGN.md §2 and `patu_sim::satisfaction`).

use patu_bench::{paper_note, RunOptions};
use patu_core::FilterPolicy;
use patu_obs::Log2Histogram;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use patu_sim::replay::ReplayModel;
use patu_sim::satisfaction::SatisfactionModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 22: user satisfaction vs threshold ({})",
        opts.profile_banner()
    );
    println!("(synthetic satisfaction model — Fig. 22 substitution, DESIGN.md §2)\n");

    let thresholds = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    // The synthetic raters' visibility knee is placed where *this*
    // simulator's MSSIM actually varies (our quality scale is compressed
    // relative to the paper's commercial-content scale; see EXPERIMENTS.md).
    let rater = SatisfactionModel {
        quality_knee: 0.995,
        quality_power: 8,
        ..SatisfactionModel::default()
    };
    let ssim = SsimConfig::default();
    let frame_count = opts.frames.max(3);

    let cases: Vec<(&str, (u32, u32))> = vec![
        ("doom3", if opts.full { (1280, 1024) } else { (640, 512) }),
        ("doom3", if opts.full { (640, 480) } else { (320, 240) }),
        ("hl2", if opts.full { (1280, 1024) } else { (640, 512) }),
        ("hl2", if opts.full { (640, 480) } else { (320, 240) }),
    ];

    for (game, res) in cases {
        let workload = Workload::build(game, res)?;
        let frames: Vec<u32> = (0..frame_count).map(|i| i * 80).collect();
        let baselines: Vec<_> = frames
            .iter()
            .map(|&f| render_frame(&workload, f, &RenderConfig::new(FilterPolicy::Baseline)))
            .collect::<Result<_, _>>()?;

        // Display normalization: scale the replay clock so the 16xAF
        // baseline lands in the paper's 33-58 fps band (the simulator's
        // absolute cycle counts are not ATTILA's; the *relative* frame
        // times across thresholds are what the study ranks).
        let mean_base_cycles =
            baselines.iter().map(|r| r.stats.cycles).sum::<u64>() / baselines.len() as u64;
        let clock = mean_base_cycles as f64 * 33.0;
        let replay = ReplayModel {
            gpu_frequency_hz: clock,
            cpu_latency_cycles: (clock / 120.0) as u64,
            ..ReplayModel::default()
        };

        println!("{game} @ {}x{}:", res.0, res.1);
        println!(
            "{:>9} {:>8} {:>8} {:>12} {:>9} {:>7} {:>7} {:>7}",
            "threshold", "fps", "MSSIM", "satisfaction", "lat mean", "p50", "p95", "p99"
        );
        let mut best = (0.0, f64::MIN);
        for &t in &thresholds {
            let policy = if t >= 1.0 {
                FilterPolicy::Baseline
            } else if t <= 0.0 {
                FilterPolicy::NoAf
            } else {
                FilterPolicy::Patu { threshold: t }
            };
            let mut cycles = Vec::new();
            let mut mssim_sum = 0.0;
            let mut latency = Log2Histogram::new();
            for (i, &f) in frames.iter().enumerate() {
                let r = if matches!(policy, FilterPolicy::Baseline) {
                    baselines[i].clone()
                } else {
                    render_frame(&workload, f, &RenderConfig::new(policy))?
                };
                mssim_sum += if matches!(policy, FilterPolicy::Baseline) {
                    1.0
                } else {
                    f64::from(ssim.mssim(&baselines[i].luma(), &r.luma()))
                };
                latency.accumulate(&r.stats.filter_latency_hist);
                cycles.push(r.stats.cycles);
            }
            let mssim = mssim_sum / frames.len() as f64;
            // Smooth fps (capped at the refresh rate); the short uniform
            // replay quantizes too coarsely under strict vsync, so vsync is
            // used for stall accounting only.
            let mean_cycles = cycles.iter().sum::<u64>() as f64 / cycles.len() as f64;
            let fps = (replay.gpu_frequency_hz / mean_cycles).min(replay.refresh_hz);
            let _ = replay.replay(&cycles);
            let score = rater.score(mssim, fps, u64::from(res.0) * u64::from(res.1));
            println!(
                "{:>9.1} {:>8.1} {:>8.3} {:>12.2} {:>9.1} {:>7} {:>7} {:>7}",
                t,
                fps,
                mssim,
                score,
                latency.mean(),
                latency.p50(),
                latency.p95(),
                latency.p99()
            );
            if score > best.1 {
                best = (t, score);
            }
        }
        println!("  preferred threshold: {:.1}\n", best.0);
    }

    paper_note(
        "Fig. 22",
        "PATU's intermediate thresholds outscore both AF-on (θ=1) and AF-off (θ=0); \
         high-resolution users prefer smaller thresholds (e.g. 0.2 for doom3-1280x1024), \
         low-resolution users prefer larger ones (0.8)",
    );
    Ok(())
}
