//! Fig. 8: an hl2 frame with AF on / AF off and their SSIM index map,
//! written as image files plus summary statistics.

use patu_bench::{paper_note, pct, RunOptions};
use patu_core::FilterPolicy;
use patu_quality::SsimConfig;
use patu_scenes::Workload;
use patu_sim::render::{render_frame, RenderConfig};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    let res = if opts.full { (1600, 1200) } else { (800, 600) };
    println!(
        "FIG. 8: hl2 AF-on/AF-off SSIM index map ({})",
        opts.profile_banner()
    );

    let workload = Workload::build("hl2", res)?;
    let on = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::Baseline))?;
    let off = render_frame(&workload, 0, &RenderConfig::new(FilterPolicy::NoAf))?;
    let map = SsimConfig::default().ssim_map(&on.luma(), &off.luma());

    std::fs::create_dir_all("out")?;
    on.image
        .write_ppm(BufWriter::new(File::create("out/fig08_af_on.ppm")?))?;
    off.image
        .write_ppm(BufWriter::new(File::create("out/fig08_af_off.ppm")?))?;
    map.to_gray_image()
        .write_pgm(BufWriter::new(File::create("out/fig08_ssim_map.pgm")?))?;

    println!("\nwrote out/fig08_af_on.ppm, out/fig08_af_off.ppm, out/fig08_ssim_map.pgm");
    println!("MSSIM (AF-off vs AF-on): {:.3}", map.mean());
    println!(
        "windows with SSIM >= 0.95 (light areas / non-perceivable): {}",
        pct(f64::from(map.fraction_above(0.95)))
    );
    println!(
        "windows with SSIM <  0.70 (dark areas / AF-critical):      {}",
        pct(1.0 - f64::from(map.fraction_above(0.70)))
    );

    paper_note(
        "Fig. 8",
        "the SSIM map preserves where AF matters; more than half of the pixels keep \
         high perceived quality without AF — the approximation opportunity",
    );
    Ok(())
}
