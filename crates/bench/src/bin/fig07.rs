//! Fig. 7: impact of disabling AF on perceived image quality (MSSIM).

use patu_bench::{paper_note, pct, RunOptions};
use patu_core::FilterPolicy;
use patu_scenes::{default_specs, Workload};
use patu_sim::experiment::run_policies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    println!(
        "FIG. 7: MSSIM when AF is disabled ({})",
        opts.profile_banner()
    );
    println!("\n{:<16} {:>8} {:>14}", "game", "MSSIM", "quality loss");

    let mut losses = Vec::new();
    for spec in default_specs() {
        let workload = Workload::build(spec.name, opts.resolution(&spec))?;
        let results = run_policies(
            &workload,
            &[("NoAF", FilterPolicy::NoAf)],
            &opts.experiment(),
        )?;
        let mssim = results[0].mssim;
        println!(
            "{:<16} {:>8.3} {:>14}",
            spec.label(),
            mssim,
            pct(1.0 - mssim)
        );
        losses.push(1.0 - mssim);
    }
    println!(
        "\nmean quality loss: {} (max {})",
        pct(losses.iter().sum::<f64>() / losses.len() as f64),
        pct(losses.iter().cloned().fold(0.0, f64::max))
    );

    paper_note(
        "Fig. 7",
        "disabling AF damages perceived quality by 28% on average (up to 39%)",
    );
    Ok(())
}
