//! CI smoke for the serving subsystem: one small overloaded workload run
//! at `threads = 1` and `threads = 4`, asserting the sessions are
//! bit-identical and the serve log validates line-by-line against the
//! in-repo JSONL schema — at spans level that log carries one `"serve"`
//! line plus one causal `"trace"` tree per job, and (SLO tracking
//! resolves from `PATU_SLO`, on by default) an `"slo"` line per burn
//! alert. Exits non-zero on any violation, so `ci.sh` can gate on it.

use patu_obs::{SloOptions, TraceLevel};
use patu_serve::{run_session, ServeConfig, ServeReport, SimFrameService};

fn run(threads: usize) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let cfg = ServeConfig {
        seed: 7,
        clients: 3,
        jobs_per_client: 4,
        resolution: (96, 64),
        frame_span: 2,
        load: 2.0,
        queue_capacity: 6,
        threads: Some(threads),
        trace: TraceLevel::Spans,
        slo: SloOptions::from_env(),
        ..ServeConfig::default()
    };
    let mut service = SimFrameService::new(&cfg)?;
    Ok(run_session(&cfg, &mut service)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let serial = run(1)?;
    let parallel = run(4)?;

    if serial.log != parallel.log
        || serial.completed != parallel.completed
        || serial.chrome_trace() != parallel.chrome_trace()
    {
        return Err("serve sessions diverge between threads=1 and threads=4".into());
    }

    let checked = patu_obs::schema::check_stream(&serial.log)
        .map_err(|(line, err)| format!("serve log line {line}: {err}"))?;
    // One "serve" + one "trace" line per job, one "slo" line per alert.
    let expected = serial.stats.submitted * 2 + serial.stats.slo_alerts;
    if checked as u64 != expected {
        return Err(format!(
            "schema checked {checked} lines but expected {expected} \
             ({} jobs + as many traces + {} slo alerts)",
            serial.stats.submitted, serial.stats.slo_alerts
        )
        .into());
    }

    println!(
        "serve smoke: {} jobs ({} delivered, {} shed, {} degraded), \
         log schema-clean, threads 1 == 4",
        serial.stats.submitted, serial.stats.delivered, serial.stats.shed, serial.stats.degrades
    );
    Ok(())
}
