//! CI smoke for the serving subsystem: one small overloaded workload run
//! at `threads = 1` and `threads = 4`, asserting the sessions are
//! bit-identical and the serve log validates line-by-line against the
//! in-repo JSONL schema. Exits non-zero on any violation, so `ci.sh` can
//! gate on it.

use patu_obs::TraceLevel;
use patu_serve::{run_session, ServeConfig, ServeReport, SimFrameService};

fn run(threads: usize) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let cfg = ServeConfig {
        seed: 7,
        clients: 3,
        jobs_per_client: 4,
        resolution: (96, 64),
        frame_span: 2,
        load: 2.0,
        queue_capacity: 6,
        threads: Some(threads),
        trace: TraceLevel::Spans,
        ..ServeConfig::default()
    };
    let mut service = SimFrameService::new(&cfg)?;
    Ok(run_session(&cfg, &mut service)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let serial = run(1)?;
    let parallel = run(4)?;

    if serial.log != parallel.log
        || serial.completed != parallel.completed
        || serial.chrome_trace() != parallel.chrome_trace()
    {
        return Err("serve sessions diverge between threads=1 and threads=4".into());
    }

    let checked = patu_obs::schema::check_stream(&serial.log)
        .map_err(|(line, err)| format!("serve log line {line}: {err}"))?;
    if checked as u64 != serial.stats.submitted {
        return Err(format!(
            "schema checked {checked} lines but {} jobs were submitted",
            serial.stats.submitted
        )
        .into());
    }

    println!(
        "serve smoke: {} jobs ({} delivered, {} shed, {} degraded), \
         log schema-clean, threads 1 == 4",
        serial.stats.submitted, serial.stats.delivered, serial.stats.shed, serial.stats.degrades
    );
    Ok(())
}
