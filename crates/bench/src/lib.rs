//! # patu-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! PATU paper (HPCA 2018). Each `fig*`/`table*` binary in `src/bin` prints
//! the same rows/series the paper reports, alongside the paper's published
//! value where one exists, so EXPERIMENTS.md can record paper-vs-measured.
//!
//! Binaries accept:
//!
//! * `--full` — run at the paper's Table II resolutions (slow). The default
//!   "fast" profile halves each dimension (quarter area), which preserves
//!   every trend while keeping a full figure regeneration in minutes.
//! * `--frames N` — frames averaged per data point (default 2).
//!
//! Self-contained `Instant`-based micro-benchmarks for the core data
//! structures live in `benches/` (see [`micro`] for the harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;

use patu_gpu::GpuConfig;
use patu_scenes::WorkloadSpec;
use patu_sim::experiment::ExperimentConfig;

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Run at the paper's full resolutions instead of the fast profile.
    pub full: bool,
    /// Frames averaged per data point.
    pub frames: u32,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            full: false,
            frames: 2,
        }
    }
}

impl RunOptions {
    /// Parses `--full` and `--frames N` from the process arguments.
    /// Unknown arguments are ignored so binaries can add their own.
    pub fn from_args() -> RunOptions {
        let mut opts = RunOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.full = true,
                "--frames" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.frames = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The resolution to simulate a spec at: the paper's own under `--full`,
    /// else half each dimension (quarter the pixels).
    pub fn resolution(&self, spec: &WorkloadSpec) -> (u32, u32) {
        if self.full {
            spec.resolution
        } else {
            (spec.resolution.0 / 2, spec.resolution.1 / 2)
        }
    }

    /// The experiment configuration for this run.
    pub fn experiment(&self) -> ExperimentConfig {
        ExperimentConfig {
            frames: self.frames,
            frame_stride: 150,
            gpu: GpuConfig::default(),
            ..ExperimentConfig::default()
        }
    }

    /// A human-readable description of the active profile.
    pub fn profile_banner(&self) -> String {
        format!(
            "profile: {} resolutions, {} frame(s) per data point",
            if self.full {
                "paper (Table II)"
            } else {
                "fast (half-dimension)"
            },
            self.frames
        )
    }
}

/// Formats a ratio as a percentage delta, e.g. `+17.2%` for 1.172.
pub fn pct_delta(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Formats a 0–1 fraction as a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Prints the standard paper-vs-measured footer line.
pub fn paper_note(figure: &str, claim: &str) {
    println!("\n[{figure}] paper reports: {claim}");
    println!("(absolute numbers differ — our substrate is a synthetic simulator;");
    println!(" the comparison point is the trend/direction. See EXPERIMENTS.md.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = RunOptions::default();
        assert!(!o.full);
        assert_eq!(o.frames, 2);
    }

    #[test]
    fn fast_profile_halves_dimensions() {
        let spec = patu_scenes::catalog()
            .into_iter()
            .find(|s| s.label() == "hl2-1600x1200")
            .unwrap();
        let o = RunOptions::default();
        assert_eq!(o.resolution(&spec), (800, 600));
        let full = RunOptions { full: true, ..o };
        assert_eq!(full.resolution(&spec), (1600, 1200));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct_delta(1.172), "+17.2%");
        assert_eq!(pct_delta(0.9), "-10.0%");
        assert_eq!(pct(0.62), "62.0%");
    }

    #[test]
    fn experiment_uses_frames() {
        let o = RunOptions {
            full: false,
            frames: 5,
        };
        assert_eq!(o.experiment().frames, 5);
    }
}
