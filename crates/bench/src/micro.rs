//! A minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets (declared `harness = false`) time the core data
//! structures with `std::time::Instant` and an adaptive iteration count —
//! no external benchmarking crate, so `cargo bench` works in the same
//! offline environment as the rest of the workspace. Each measurement
//! takes [`SAMPLES`] timed samples and reports median/p10/p90 ns/iter;
//! [`Group::write_json`] persists the group's results as
//! `BENCH_<name>.json` at the repository root for cross-run comparison
//! (see `scripts/bench.sh`).

// The one sanctioned wall-clock module (patu-lint `wall-clock`, clippy.toml
// disallowed-methods): everything else times through `timed` or the harness.
#![allow(clippy::disallowed_methods)]

use patu_obs::json::num_fixed;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Times `f` once and returns its result plus the elapsed wall time in
/// milliseconds.
///
/// This is the only sanctioned wall-clock entry point outside the bench
/// harness itself: simulator code runs on deterministic cycles, so
/// `patu-lint`'s `wall-clock` rule bans `Instant`/`SystemTime` everywhere
/// but this module, and bench binaries measure through here.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Minimum measured wall time per calibration pass before sampling starts.
const TARGET: Duration = Duration::from_millis(20);

/// Iteration-count ceiling, so ~ns-scale bodies still terminate quickly.
const MAX_ITERS: u64 = 1 << 22;

/// Timed samples per benchmark; quantiles come from this set.
const SAMPLES: usize = 9;

/// One benchmark's summarized measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/label` identifier.
    pub label: String,
    /// Median ns per iteration over the samples.
    pub median_ns: f64,
    /// 10th-percentile ns per iteration (fast tail).
    pub p10_ns: f64,
    /// 90th-percentile ns per iteration (slow tail).
    pub p90_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// A named group of related micro-benchmarks (mirrors the criterion-style
/// `group/label` naming the bench targets previously used). Collects every
/// measurement so the bench binary can persist them with
/// [`Group::write_json`].
pub struct Group {
    name: String,
    results: Vec<BenchResult>,
}

/// Starts a benchmark group and prints its header.
pub fn group(name: &str) -> Group {
    println!("[{name}]");
    Group {
        name: name.to_string(),
        results: Vec::new(),
    }
}

/// Sorted-sample quantile (nearest-rank on the sorted slice).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

impl Group {
    fn record(&mut self, label: &str, per_iter_ns: &mut [f64], iters: u64) {
        per_iter_ns.sort_by(f64::total_cmp);
        let result = BenchResult {
            label: format!("{}/{label}", self.name),
            median_ns: quantile(per_iter_ns, 0.5),
            p10_ns: quantile(per_iter_ns, 0.1),
            p90_ns: quantile(per_iter_ns, 0.9),
            iters,
        };
        println!(
            "  {:<32} {:>14.1} ns/iter  [p10 {:>12.1}, p90 {:>12.1}]  ({iters} iters)",
            result.label, result.median_ns, result.p10_ns, result.p90_ns
        );
        self.results.push(result);
    }

    /// Times `f`: calibrates an iteration count in a doubling loop until a
    /// pass takes [`TARGET`] wall time (capped at [`MAX_ITERS`]), then
    /// takes [`SAMPLES`] timed samples and records median/p10/p90 ns/iter.
    /// The result is passed through `black_box` so the optimizer cannot
    /// delete the body.
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) {
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if start.elapsed() >= TARGET || iters >= MAX_ITERS {
                break;
            }
            iters *= 2;
        }
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *sample = start.elapsed().as_nanos() as f64 / iters as f64;
        }
        self.record(label, &mut samples, iters);
    }

    /// Like [`Group::bench`] but re-creates fresh state with `setup` before
    /// every iteration and excludes the setup cost from the measurement
    /// (the replacement for criterion's `iter_batched`).
    pub fn bench_batched<S, T>(
        &mut self,
        label: &str,
        setup: impl FnMut() -> S,
        f: impl FnMut(S) -> T,
    ) {
        self.bench_batched_scaled(label, 1, setup, f);
    }

    /// Like [`Group::bench_batched`] but the measured body processes
    /// `lanes` homogeneous work items per call; recorded quantiles are
    /// normalized to ns per *item*, so batched rows stay directly
    /// comparable with their single-item counterparts.
    pub fn bench_batched_scaled<S, T>(
        &mut self,
        label: &str,
        lanes: u64,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let lanes = lanes.max(1);
        for _ in 0..3 {
            black_box(f(setup()));
        }
        let mut run = |iters: u64| {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                black_box(f(state));
                elapsed += start.elapsed();
            }
            elapsed
        };
        let mut iters = 1u64;
        while run(iters) < TARGET && iters < MAX_ITERS {
            iters *= 2;
        }
        let mut samples = [0.0f64; SAMPLES];
        for sample in &mut samples {
            *sample = run(iters).as_nanos() as f64 / (iters * lanes) as f64;
        }
        self.record(label, &mut samples, iters);
    }

    /// The measurements collected so far, in bench order (used by the CI
    /// smoke gate to compare fresh ratios against recorded baselines).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the collected results as a JSON object (hand-rolled — the
    /// workspace has no serde). Quantiles route through
    /// [`patu_obs::json::num_fixed`], the single null-safe float formatter,
    /// so a degenerate sample can never write `inf`/`NaN` into the artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"median_ns\": {}, \"p10_ns\": {}, \
                 \"p90_ns\": {}, \"iters\": {}}}{}\n",
                r.label,
                num_fixed(r.median_ns, 1),
                num_fixed(r.p10_ns, 1),
                num_fixed(r.p90_ns, 1),
                r.iters,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<group>.json` at the repository root. Errors are
    /// reported on stderr, not fatal — the printed table already happened.
    pub fn write_json(&self) {
        let path = repo_root().join(format!("BENCH_{}.json", self.name.replace(['/', ' '], "_")));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("  wrote {}", path.display()),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
    }
}

/// The workspace root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_terminates() {
        let mut g = group("micro-selftest");
        let mut calls = 0u64;
        g.bench("counter", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
        let r = &g.results[0];
        assert_eq!(r.label, "micro-selftest/counter");
        assert!(
            r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns,
            "quantiles ordered"
        );
        assert!(r.iters >= 1);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let mut g = group("micro-selftest");
        let mut setups = 0u64;
        let mut bodies = 0u64;
        g.bench_batched(
            "pairs",
            || {
                setups += 1;
                setups
            },
            |s| {
                bodies += 1;
                // Body cost dwarfs the timer granularity so this finishes fast.
                std::thread::sleep(Duration::from_micros(200));
                s
            },
        );
        assert_eq!(setups, bodies, "one setup per measured body");
        assert!(bodies >= 4, "at least warmup plus one measured iteration");
    }

    #[test]
    fn json_shape_is_parseable_enough() {
        let mut g = group("micro-selftest");
        g.bench("noop", || 1u32);
        let json = g.to_json();
        assert!(json.contains("\"group\": \"micro-selftest\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn quantiles_pick_sorted_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        assert_eq!(quantile(&sorted, 0.5), 5.0);
        assert_eq!(quantile(&sorted, 0.1), 2.0);
        assert_eq!(quantile(&sorted, 0.9), 8.0);
    }
}
