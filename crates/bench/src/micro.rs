//! A minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets (declared `harness = false`) time the core data
//! structures with `std::time::Instant` and an adaptive iteration count —
//! no external benchmarking crate, so `cargo bench` works in the same
//! offline environment as the rest of the workspace. Numbers are rough
//! (single run, wall clock) but sufficient for the relative comparisons the
//! benches exist to show (e.g. shared vs. distinct tap sets, streaming vs.
//! reuse access patterns).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum measured wall time per benchmark before a number is reported.
const TARGET: Duration = Duration::from_millis(20);

/// Iteration-count ceiling, so ~ns-scale bodies still terminate quickly.
const MAX_ITERS: u64 = 1 << 22;

/// A named group of related micro-benchmarks (mirrors the criterion-style
/// `group/label` naming the bench targets previously used).
pub struct Group {
    name: String,
}

/// Starts a benchmark group and prints its header.
pub fn group(name: &str) -> Group {
    println!("[{name}]");
    Group { name: name.to_string() }
}

impl Group {
    fn report(&self, label: &str, elapsed: Duration, iters: u64) {
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        println!("  {:<32} {:>14.1} ns/iter  ({iters} iters)", format!("{}/{label}", self.name), ns);
    }

    /// Times `f` in a doubling loop until [`TARGET`] wall time accumulates,
    /// then prints ns/iter. The result is passed through `black_box` so the
    /// optimizer cannot delete the body.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || iters >= MAX_ITERS {
                self.report(label, elapsed, iters);
                return;
            }
            iters *= 2;
        }
    }

    /// Like [`Group::bench`] but re-creates fresh state with `setup` before
    /// every iteration and excludes the setup cost from the measurement
    /// (the replacement for criterion's `iter_batched`).
    pub fn bench_batched<S, T>(
        &self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        for _ in 0..3 {
            black_box(f(setup()));
        }
        let mut iters = 1u64;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                black_box(f(state));
                elapsed += start.elapsed();
            }
            if elapsed >= TARGET || iters >= MAX_ITERS {
                self.report(label, elapsed, iters);
                return;
            }
            iters *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_terminates() {
        let g = group("micro-selftest");
        let mut calls = 0u64;
        g.bench("counter", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let g = group("micro-selftest");
        let mut setups = 0u64;
        let mut bodies = 0u64;
        g.bench_batched(
            "pairs",
            || {
                setups += 1;
                setups
            },
            |s| {
                bodies += 1;
                // Body cost dwarfs the timer granularity so this finishes fast.
                std::thread::sleep(Duration::from_micros(200));
                s
            },
        );
        assert_eq!(setups - 3, bodies - 3, "one setup per measured body");
        assert!(bodies >= 4, "at least warmup plus one measured iteration");
    }
}
