//! Property-based tests for the math primitives, driven by the crate's own
//! deterministic generator (`DetRng`) instead of an external fuzzing crate:
//! each test sweeps a fixed-seed randomized sample of the input space, so
//! failures are reproducible bit-for-bit from the test name alone.

use patu_gmath::{barycentric, Aabb2, DetRng, EdgeEval, Frustum, Mat4, Vec2, Vec3, Vec4};

const CASES: usize = 512;

fn f32_in(rng: &mut DetRng, lo: f32, hi: f32) -> f32 {
    lo + rng.next_f32() * (hi - lo)
}

fn vec2(rng: &mut DetRng) -> Vec2 {
    Vec2::new(f32_in(rng, -100.0, 100.0), f32_in(rng, -100.0, 100.0))
}

fn vec3(rng: &mut DetRng) -> Vec3 {
    Vec3::new(
        f32_in(rng, -100.0, 100.0),
        f32_in(rng, -100.0, 100.0),
        f32_in(rng, -100.0, 100.0),
    )
}

#[test]
fn vec2_add_commutes() {
    let mut rng = DetRng::new(0x67_01);
    for _ in 0..CASES {
        let (a, b) = (vec2(&mut rng), vec2(&mut rng));
        assert_eq!(a + b, b + a);
    }
}

#[test]
fn vec3_dot_symmetric() {
    let mut rng = DetRng::new(0x67_02);
    for _ in 0..CASES {
        let (a, b) = (vec3(&mut rng), vec3(&mut rng));
        assert_eq!(a.dot(b), b.dot(a));
    }
}

#[test]
fn vec3_cross_orthogonal() {
    let mut rng = DetRng::new(0x67_03);
    for _ in 0..CASES {
        let (a, b) = (vec3(&mut rng), vec3(&mut rng));
        let c = a.cross(b);
        // Orthogonality up to floating-point error, scaled by magnitudes.
        let scale = (a.length() * b.length()).max(1.0);
        assert!((c.dot(a) / (scale * scale)).abs() < 1e-4);
        assert!((c.dot(b) / (scale * scale)).abs() < 1e-4);
    }
}

#[test]
fn normalized_has_unit_length_or_zero() {
    let mut rng = DetRng::new(0x67_04);
    for _ in 0..CASES {
        let v = vec3(&mut rng);
        let n = v.normalized();
        if v.length() > 1e-3 {
            assert!((n.length() - 1.0).abs() < 1e-3);
        }
    }
}

#[test]
fn barycentric_weights_sum_to_one() {
    let mut rng = DetRng::new(0x67_05);
    for _ in 0..CASES {
        let (a, b, c, p) = (
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
        );
        if let Some((w0, w1, w2)) = barycentric(a, b, c, p) {
            let area = (b - a).cross(c - a).abs();
            // Skip nearly-degenerate triangles where cancellation dominates.
            if area <= 1e-2 {
                continue;
            }
            assert!((w0 + w1 + w2 - 1.0).abs() < 1e-2);
        }
    }
}

#[test]
fn barycentric_reconstructs_point() {
    let mut rng = DetRng::new(0x67_06);
    for _ in 0..CASES {
        let (a, b, c, p) = (
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
        );
        if let Some((w0, w1, w2)) = barycentric(a, b, c, p) {
            let area = (b - a).cross(c - a).abs();
            // Cancellation error grows with the triangle's conditioning
            // (perimeter^2 / area); skip needle triangles.
            let perimeter = (b - a).length() + (c - b).length() + (a - c).length();
            if !(area > 1.0 && perimeter * perimeter / area < 100.0) {
                continue;
            }
            let q = a * w0 + b * w1 + c * w2;
            assert!((q - p).length() < 1e-1, "reconstructed {q} vs {p}");
        }
    }
}

#[test]
fn edge_eval_agrees_with_barycentric() {
    let mut rng = DetRng::new(0x67_07);
    for _ in 0..CASES {
        let (a, b, c, p) = (
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
        );
        if let (Some(tri), Some((w0, w1, w2))) = (EdgeEval::new(a, b, c), barycentric(a, b, c, p)) {
            let area = (b - a).cross(c - a).abs();
            let perimeter = (b - a).length() + (c - b).length() + (a - c).length();
            if !(area > 1e-2 && perimeter * perimeter / area < 1e4) {
                continue;
            }
            let (e0, e1, e2) = tri.weights(p);
            assert!((e0 - w0).abs() < 1e-3);
            assert!((e1 - w1).abs() < 1e-3);
            assert!((e2 - w2).abs() < 1e-3);
        }
    }
}

#[test]
fn aabb_union_contains_inputs() {
    let mut rng = DetRng::new(0x67_08);
    for _ in 0..CASES {
        let (a, b, c, d) = (
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
        );
        let x = Aabb2::new(a, b);
        let y = Aabb2::new(c, d);
        let u = x.union(&y);
        assert!(u.contains(a) && u.contains(b) && u.contains(c) && u.contains(d));
    }
}

#[test]
fn aabb_intersection_subset_of_both() {
    let mut rng = DetRng::new(0x67_09);
    for _ in 0..CASES {
        let (a, b, c, d) = (
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
            vec2(&mut rng),
        );
        let x = Aabb2::new(a, b);
        let y = Aabb2::new(c, d);
        if let Some(i) = x.intersection(&y) {
            assert!(x.contains(i.min) && x.contains(i.max));
            assert!(y.contains(i.min) && y.contains(i.max));
        }
    }
}

#[test]
fn mat4_identity_is_neutral() {
    let mut rng = DetRng::new(0x67_0A);
    for _ in 0..CASES {
        let v = vec3(&mut rng);
        let p = Mat4::IDENTITY.transform_point(v);
        assert_eq!(p, v);
    }
}

#[test]
fn mat4_translate_then_inverse_translate() {
    let mut rng = DetRng::new(0x67_0B);
    for _ in 0..CASES {
        let (v, t) = (vec3(&mut rng), vec3(&mut rng));
        let m = Mat4::translation(t) * Mat4::translation(-t);
        let p = m.transform_point(v);
        assert!((p - v).length() < 1e-3);
    }
}

#[test]
fn mat4_product_associative_on_vectors() {
    let mut rng = DetRng::new(0x67_0C);
    for _ in 0..CASES {
        let (t, v) = (vec3(&mut rng), vec3(&mut rng));
        let a = Mat4::translation(t);
        let b = Mat4::rotation_y(0.7);
        let c = Mat4::scale(Vec3::new(2.0, 2.0, 2.0));
        let lhs = ((a * b) * c) * v.extend(1.0);
        let rhs = (a * (b * c)) * v.extend(1.0);
        assert!((lhs - rhs).truncate().length() < 1e-2);
    }
}

#[test]
fn frustum_outcode_consistent_with_contains() {
    let mut rng = DetRng::new(0x67_0D);
    for _ in 0..CASES {
        let p = Vec4::new(
            f32_in(&mut rng, -3.0, 3.0),
            f32_in(&mut rng, -3.0, 3.0),
            f32_in(&mut rng, -3.0, 3.0),
            f32_in(&mut rng, 0.1, 3.0),
        );
        assert_eq!(Frustum::outcode(p) == 0, Frustum::contains(p));
    }
}
