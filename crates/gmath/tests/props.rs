//! Property-based tests for the math primitives.

use patu_gmath::{barycentric, Aabb2, EdgeEval, Frustum, Mat4, Vec2, Vec3, Vec4};
use proptest::prelude::*;

fn finite_f32(range: std::ops::RangeInclusive<f32>) -> impl Strategy<Value = f32> {
    range.prop_filter("finite", |v| v.is_finite())
}

fn vec2_strategy() -> impl Strategy<Value = Vec2> {
    (finite_f32(-100.0..=100.0), finite_f32(-100.0..=100.0)).prop_map(|(x, y)| Vec2::new(x, y))
}

fn vec3_strategy() -> impl Strategy<Value = Vec3> {
    (
        finite_f32(-100.0..=100.0),
        finite_f32(-100.0..=100.0),
        finite_f32(-100.0..=100.0),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vec2_add_commutes(a in vec2_strategy(), b in vec2_strategy()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn vec3_dot_symmetric(a in vec3_strategy(), b in vec3_strategy()) {
        prop_assert_eq!(a.dot(b), b.dot(a));
    }

    #[test]
    fn vec3_cross_orthogonal(a in vec3_strategy(), b in vec3_strategy()) {
        let c = a.cross(b);
        // Orthogonality up to floating-point error, scaled by magnitudes.
        let scale = (a.length() * b.length()).max(1.0);
        prop_assert!((c.dot(a) / (scale * scale)).abs() < 1e-4);
        prop_assert!((c.dot(b) / (scale * scale)).abs() < 1e-4);
    }

    #[test]
    fn normalized_has_unit_length_or_zero(v in vec3_strategy()) {
        let n = v.normalized();
        if v.length() > 1e-3 {
            prop_assert!((n.length() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn barycentric_weights_sum_to_one(
        a in vec2_strategy(), b in vec2_strategy(), c in vec2_strategy(), p in vec2_strategy()
    ) {
        if let Some((w0, w1, w2)) = barycentric(a, b, c, p) {
            let area = (b - a).cross(c - a).abs();
            // Skip nearly-degenerate triangles where cancellation dominates.
            prop_assume!(area > 1e-2);
            prop_assert!((w0 + w1 + w2 - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn barycentric_reconstructs_point(
        a in vec2_strategy(), b in vec2_strategy(), c in vec2_strategy(), p in vec2_strategy()
    ) {
        if let Some((w0, w1, w2)) = barycentric(a, b, c, p) {
            let area = (b - a).cross(c - a).abs();
            // Cancellation error grows with the triangle's conditioning
            // (perimeter^2 / area); skip needle triangles.
            let perimeter = (b - a).length() + (c - b).length() + (a - c).length();
            prop_assume!(area > 1.0 && perimeter * perimeter / area < 100.0);
            let q = a * w0 + b * w1 + c * w2;
            prop_assert!((q - p).length() < 1e-1, "reconstructed {q} vs {p}");
        }
    }

    #[test]
    fn edge_eval_agrees_with_barycentric(
        a in vec2_strategy(), b in vec2_strategy(), c in vec2_strategy(), p in vec2_strategy()
    ) {
        if let (Some(tri), Some((w0, w1, w2))) = (EdgeEval::new(a, b, c), barycentric(a, b, c, p)) {
            let area = (b - a).cross(c - a).abs();
            let perimeter = (b - a).length() + (c - b).length() + (a - c).length();
            prop_assume!(area > 1e-2 && perimeter * perimeter / area < 1e4);
            let (e0, e1, e2) = tri.weights(p);
            prop_assert!((e0 - w0).abs() < 1e-3);
            prop_assert!((e1 - w1).abs() < 1e-3);
            prop_assert!((e2 - w2).abs() < 1e-3);
        }
    }

    #[test]
    fn aabb_union_contains_inputs(a in vec2_strategy(), b in vec2_strategy(),
                                  c in vec2_strategy(), d in vec2_strategy()) {
        let x = Aabb2::new(a, b);
        let y = Aabb2::new(c, d);
        let u = x.union(&y);
        prop_assert!(u.contains(a) && u.contains(b) && u.contains(c) && u.contains(d));
    }

    #[test]
    fn aabb_intersection_subset_of_both(a in vec2_strategy(), b in vec2_strategy(),
                                        c in vec2_strategy(), d in vec2_strategy()) {
        let x = Aabb2::new(a, b);
        let y = Aabb2::new(c, d);
        if let Some(i) = x.intersection(&y) {
            prop_assert!(x.contains(i.min) && x.contains(i.max));
            prop_assert!(y.contains(i.min) && y.contains(i.max));
        }
    }

    #[test]
    fn mat4_identity_is_neutral(v in vec3_strategy()) {
        let p = Mat4::IDENTITY.transform_point(v);
        prop_assert_eq!(p, v);
    }

    #[test]
    fn mat4_translate_then_inverse_translate(v in vec3_strategy(), t in vec3_strategy()) {
        let m = Mat4::translation(t) * Mat4::translation(-t);
        let p = m.transform_point(v);
        prop_assert!((p - v).length() < 1e-3);
    }

    #[test]
    fn mat4_product_associative_on_vectors(t in vec3_strategy(), v in vec3_strategy()) {
        let a = Mat4::translation(t);
        let b = Mat4::rotation_y(0.7);
        let c = Mat4::scale(Vec3::new(2.0, 2.0, 2.0));
        let lhs = ((a * b) * c) * v.extend(1.0);
        let rhs = (a * (b * c)) * v.extend(1.0);
        prop_assert!((lhs - rhs).truncate().length() < 1e-2);
    }

    #[test]
    fn frustum_outcode_consistent_with_contains(
        x in finite_f32(-3.0..=3.0), y in finite_f32(-3.0..=3.0),
        z in finite_f32(-3.0..=3.0), w in finite_f32(0.1..=3.0)
    ) {
        let p = Vec4::new(x, y, z, w);
        prop_assert_eq!(Frustum::outcode(p) == 0, Frustum::contains(p));
    }
}
