//! Clip-space planes and the view frustum used for clipping and culling.

use crate::vec::Vec4;

/// A clip-space half-space `dot(coeffs, p) >= 0`.
///
/// Frustum planes in homogeneous clip space take the form
/// `a·x + b·y + c·z + d·w >= 0`; the six standard planes are listed in
/// [`Frustum::CLIP_PLANES`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// The `(a, b, c, d)` coefficients of the half-space.
    pub coeffs: Vec4,
}

impl Plane {
    /// Creates a plane from its four coefficients.
    pub const fn new(a: f32, b: f32, c: f32, d: f32) -> Plane {
        Plane {
            coeffs: Vec4 {
                x: a,
                y: b,
                z: c,
                w: d,
            },
        }
    }

    /// Signed distance-like value; non-negative means inside.
    #[inline]
    pub fn eval(&self, p: Vec4) -> f32 {
        self.coeffs.dot(p)
    }

    /// Whether `p` is in the inside half-space (boundary inclusive).
    #[inline]
    pub fn is_inside(&self, p: Vec4) -> bool {
        self.eval(p) >= 0.0
    }

    /// Parameter `t` in `[0, 1]` where segment `a -> b` crosses the plane.
    ///
    /// Returns `None` when the segment does not cross (both endpoints on the
    /// same side or parallel to the boundary).
    pub fn intersect_segment(&self, a: Vec4, b: Vec4) -> Option<f32> {
        let da = self.eval(a);
        let db = self.eval(b);
        if (da >= 0.0) == (db >= 0.0) {
            return None;
        }
        let denom = da - db;
        if denom == 0.0 {
            return None;
        }
        Some(da / denom)
    }
}

/// The six clip-space frustum planes (`-w <= x,y,z <= w`).
///
/// ```
/// use patu_gmath::{Frustum, Vec4};
/// // A point inside the canonical clip volume:
/// assert!(Frustum::contains(Vec4::new(0.0, 0.0, 0.0, 1.0)));
/// // Behind the near plane:
/// assert!(!Frustum::contains(Vec4::new(0.0, 0.0, -2.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Frustum;

impl Frustum {
    /// Left, right, bottom, top, near, far — in that order.
    pub const CLIP_PLANES: [Plane; 6] = [
        Plane::new(1.0, 0.0, 0.0, 1.0),  // x >= -w
        Plane::new(-1.0, 0.0, 0.0, 1.0), // x <=  w
        Plane::new(0.0, 1.0, 0.0, 1.0),  // y >= -w
        Plane::new(0.0, -1.0, 0.0, 1.0), // y <=  w
        Plane::new(0.0, 0.0, 1.0, 1.0),  // z >= -w (near)
        Plane::new(0.0, 0.0, -1.0, 1.0), // z <=  w (far)
    ];

    /// Whether a clip-space point lies inside the canonical view volume.
    pub fn contains(p: Vec4) -> bool {
        Frustum::CLIP_PLANES.iter().all(|pl| pl.is_inside(p))
    }

    /// Bitmask of violated planes (bit `i` set = outside plane `i`);
    /// `0` means fully inside. Used for trivial accept/reject of triangles:
    /// if the masks of all three vertices AND to non-zero, the triangle is
    /// entirely outside one plane.
    pub fn outcode(p: Vec4) -> u8 {
        let mut code = 0u8;
        for (i, pl) in Frustum::CLIP_PLANES.iter().enumerate() {
            if !pl.is_inside(p) {
                code |= 1 << i;
            }
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_eval_sign() {
        let near = Plane::new(0.0, 0.0, 1.0, 1.0);
        assert!(near.is_inside(Vec4::new(0.0, 0.0, 0.0, 1.0)));
        assert!(!near.is_inside(Vec4::new(0.0, 0.0, -2.0, 1.0)));
    }

    #[test]
    fn segment_crossing_param() {
        let near = Plane::new(0.0, 0.0, 1.0, 1.0);
        let a = Vec4::new(0.0, 0.0, 0.0, 1.0); // inside, eval = 1
        let b = Vec4::new(0.0, 0.0, -3.0, 1.0); // outside, eval = -2
        let t = near.intersect_segment(a, b).unwrap();
        assert!((t - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn segment_same_side_no_crossing() {
        let near = Plane::new(0.0, 0.0, 1.0, 1.0);
        let a = Vec4::new(0.0, 0.0, 0.0, 1.0);
        let b = Vec4::new(0.0, 0.0, 0.5, 1.0);
        assert!(near.intersect_segment(a, b).is_none());
    }

    #[test]
    fn frustum_contains_origin() {
        assert!(Frustum::contains(Vec4::new(0.0, 0.0, 0.0, 1.0)));
    }

    #[test]
    fn frustum_boundary_inclusive() {
        assert!(Frustum::contains(Vec4::new(1.0, 1.0, 1.0, 1.0)));
        assert!(Frustum::contains(Vec4::new(-1.0, -1.0, -1.0, 1.0)));
    }

    #[test]
    fn frustum_rejects_outside_each_axis() {
        assert!(!Frustum::contains(Vec4::new(2.0, 0.0, 0.0, 1.0)));
        assert!(!Frustum::contains(Vec4::new(0.0, -2.0, 0.0, 1.0)));
        assert!(!Frustum::contains(Vec4::new(0.0, 0.0, 2.0, 1.0)));
    }

    #[test]
    fn outcode_zero_inside_nonzero_outside() {
        assert_eq!(Frustum::outcode(Vec4::new(0.0, 0.0, 0.0, 1.0)), 0);
        let code = Frustum::outcode(Vec4::new(5.0, 0.0, 0.0, 1.0));
        assert_ne!(code, 0);
        assert_eq!(code & 0b10, 0b10, "right plane (x <= w) violated");
    }
}
