//! Column-major 4×4 matrices with the usual graphics transforms.

use crate::vec::{Vec3, Vec4};
use std::ops::Mul;

/// A column-major 4×4 `f32` matrix.
///
/// Storage is `cols[c][r]`: `cols[3]` is the translation column. Multiplying
/// a [`Vec4`] treats it as a column vector (`M * v`).
///
/// ```
/// use patu_gmath::{Mat4, Vec3, Vec4};
/// let t = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
/// let p = t * Vec4::new(0.0, 0.0, 0.0, 1.0);
/// assert_eq!(p.truncate(), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// The four columns of the matrix.
    pub cols: [[f32; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Mat4 {
        Mat4::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Builds a matrix from four column vectors.
    #[inline]
    pub const fn from_cols(c0: [f32; 4], c1: [f32; 4], c2: [f32; 4], c3: [f32; 4]) -> Mat4 {
        Mat4 {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Translation by `t`.
    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[3] = [t.x, t.y, t.z, 1.0];
        m
    }

    /// Non-uniform scale.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[0][0] = s.x;
        m.cols[1][1] = s.y;
        m.cols[2][2] = s.z;
        m
    }

    /// Rotation of `angle` radians around the X axis.
    pub fn rotation_x(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            [1.0, 0.0, 0.0, 0.0],
            [0.0, c, s, 0.0],
            [0.0, -s, c, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        )
    }

    /// Rotation of `angle` radians around the Y axis.
    pub fn rotation_y(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            [c, 0.0, -s, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [s, 0.0, c, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        )
    }

    /// Rotation of `angle` radians around the Z axis.
    pub fn rotation_z(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            [c, s, 0.0, 0.0],
            [-s, c, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        )
    }

    /// Right-handed view matrix looking from `eye` toward `target`.
    ///
    /// The camera looks down its local −Z, matching OpenGL conventions.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Mat4::from_cols(
            [s.x, u.x, -f.x, 0.0],
            [s.y, u.y, -f.y, 0.0],
            [s.z, u.z, -f.z, 0.0],
            [-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0],
        )
    }

    /// Right-handed perspective projection with a `[-1, 1]` clip-space depth
    /// range (OpenGL style).
    ///
    /// `fovy` is the vertical field of view in radians.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `fovy`, `aspect` or the depth range is
    /// degenerate.
    pub fn perspective(fovy: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        debug_assert!(fovy > 0.0 && aspect > 0.0 && far > near && near > 0.0);
        let f = 1.0 / (fovy * 0.5).tan();
        Mat4::from_cols(
            [f / aspect, 0.0, 0.0, 0.0],
            [0.0, f, 0.0, 0.0],
            [0.0, 0.0, (far + near) / (near - far), -1.0],
            [0.0, 0.0, (2.0 * far * near) / (near - far), 0.0],
        )
    }

    /// Orthographic projection with a `[-1, 1]` clip-space depth range.
    pub fn orthographic(left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32) -> Mat4 {
        let rl = right - left;
        let tb = top - bottom;
        let fne = far - near;
        Mat4::from_cols(
            [2.0 / rl, 0.0, 0.0, 0.0],
            [0.0, 2.0 / tb, 0.0, 0.0],
            [0.0, 0.0, -2.0 / fne, 0.0],
            [
                -(right + left) / rl,
                -(top + bottom) / tb,
                -(far + near) / fne,
                1.0,
            ],
        )
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat4 {
        let c = &self.cols;
        Mat4::from_cols(
            [c[0][0], c[1][0], c[2][0], c[3][0]],
            [c[0][1], c[1][1], c[2][1], c[3][1]],
            [c[0][2], c[1][2], c[2][2], c[3][2]],
            [c[0][3], c[1][3], c[2][3], c[3][3]],
        )
    }

    /// Returns row `r` as a [`Vec4`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    #[inline]
    pub fn row(&self, r: usize) -> Vec4 {
        Vec4::new(
            self.cols[0][r],
            self.cols[1][r],
            self.cols[2][r],
            self.cols[3][r],
        )
    }

    /// Returns column `c` as a [`Vec4`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= 4`.
    #[inline]
    pub fn col(&self, c: usize) -> Vec4 {
        let v = self.cols[c];
        Vec4::new(v[0], v[1], v[2], v[3])
    }

    /// Transforms a point (implicit `w = 1`) and drops the homogeneous
    /// coordinate *without* dividing. Use for affine matrices only.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        (*self * p.extend(1.0)).truncate()
    }

    /// Transforms a direction (implicit `w = 0`).
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        (*self * d.extend(0.0)).truncate()
    }
}

impl Mul for Mat4 {
    type Output = Mat4;

    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = [[0.0f32; 4]; 4];
        for (c, out_col) in out.iter_mut().enumerate() {
            for (r, out_val) in out_col.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.cols[k][r] * rhs.cols[c][k];
                }
                *out_val = acc;
            }
        }
        Mat4 { cols: out }
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;

    #[inline]
    fn mul(self, v: Vec4) -> Vec4 {
        Vec4::new(
            self.row(0).dot(v),
            self.row(1).dot(v),
            self.row(2).dot(v),
            self.row(3).dot(v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn vec4_close(a: Vec4, b: Vec4) -> bool {
        approx_eq(a.x, b.x, 1e-5)
            && approx_eq(a.y, b.y, 1e-5)
            && approx_eq(a.z, b.z, 1e-5)
            && approx_eq(a.w, b.w, 1e-5)
    }

    #[test]
    fn identity_is_noop() {
        let v = Vec4::new(1.0, -2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY * v, v);
    }

    #[test]
    fn translation_moves_points_not_directions() {
        let t = Mat4::translation(Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(
            t.transform_dir(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(0.0, 1.0, 0.0)
        );
    }

    #[test]
    fn scale_scales() {
        let s = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(s.transform_point(Vec3::ONE), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let r = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        let v = r * Vec4::new(1.0, 0.0, 0.0, 0.0);
        assert!(vec4_close(v, Vec4::new(0.0, 1.0, 0.0, 0.0)));
    }

    #[test]
    fn rotation_x_quarter_turn() {
        let r = Mat4::rotation_x(std::f32::consts::FRAC_PI_2);
        let v = r * Vec4::new(0.0, 1.0, 0.0, 0.0);
        assert!(vec4_close(v, Vec4::new(0.0, 0.0, 1.0, 0.0)));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let r = Mat4::rotation_y(std::f32::consts::FRAC_PI_2);
        let v = r * Vec4::new(0.0, 0.0, -1.0, 0.0);
        assert!(vec4_close(v, Vec4::new(-1.0, 0.0, 0.0, 0.0)));
    }

    #[test]
    fn matrix_product_composes_right_to_left() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::splat(2.0));
        // (t * s) first scales then translates.
        let p = (t * s).transform_point(Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(p, Vec3::new(3.0, 0.0, 0.0));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::UP);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn look_at_maps_eye_to_origin() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let view = Mat4::look_at(eye, Vec3::ZERO, Vec3::UP);
        let p = view.transform_point(eye);
        assert!(p.length() < 1e-5);
    }

    #[test]
    fn look_at_target_on_negative_z() {
        let view = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::UP);
        let p = view.transform_point(Vec3::ZERO);
        assert!(p.z < 0.0, "target must be in front (−Z), got {p}");
    }

    #[test]
    fn perspective_maps_near_far_to_clip_range() {
        let proj = Mat4::perspective(1.0, 1.0, 1.0, 10.0);
        let near = (proj * Vec4::new(0.0, 0.0, -1.0, 1.0)).perspective_divide();
        let far = (proj * Vec4::new(0.0, 0.0, -10.0, 1.0)).perspective_divide();
        assert!(
            approx_eq(near.z, -1.0, 1e-5),
            "near plane -> z=-1, got {}",
            near.z
        );
        assert!(
            approx_eq(far.z, 1.0, 1e-5),
            "far plane -> z=+1, got {}",
            far.z
        );
    }

    #[test]
    fn perspective_w_is_view_depth() {
        let proj = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let clip = proj * Vec4::new(0.0, 0.0, -7.0, 1.0);
        assert!(approx_eq(clip.w, 7.0, 1e-5));
    }

    #[test]
    fn orthographic_unit_cube() {
        let o = Mat4::orthographic(-1.0, 1.0, -1.0, 1.0, 0.0, 2.0);
        let p = (o * Vec4::new(1.0, -1.0, -2.0, 1.0)).perspective_divide();
        assert!(vec4_close(p, Vec4::new(1.0, -1.0, 1.0, 1.0)));
    }

    #[test]
    fn row_col_accessors() {
        let m = Mat4::translation(Vec3::new(7.0, 8.0, 9.0));
        assert_eq!(m.col(3), Vec4::new(7.0, 8.0, 9.0, 1.0));
        assert_eq!(m.row(0), Vec4::new(1.0, 0.0, 0.0, 7.0));
    }
}
