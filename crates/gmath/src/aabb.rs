//! Axis-aligned bounding boxes.

use crate::vec::Vec2;

/// A 2D axis-aligned bounding box, used by the tiling engine to bin triangles
/// into screen tiles.
///
/// An `Aabb2` may be *empty* (constructed via [`Aabb2::empty`] and never
/// grown); empty boxes report [`Aabb2::is_empty`] and intersect nothing.
///
/// ```
/// use patu_gmath::{Aabb2, Vec2};
/// let mut bb = Aabb2::empty();
/// bb.grow(Vec2::new(1.0, 2.0));
/// bb.grow(Vec2::new(-1.0, 5.0));
/// assert_eq!(bb.min, Vec2::new(-1.0, 2.0));
/// assert_eq!(bb.max, Vec2::new(1.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb2 {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

impl Aabb2 {
    /// Creates a box from two corners (they need not be ordered).
    pub fn new(a: Vec2, b: Vec2) -> Aabb2 {
        Aabb2 {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The empty box: grows from nothing, intersects nothing.
    pub fn empty() -> Aabb2 {
        Aabb2 {
            min: Vec2::splat(f32::INFINITY),
            max: Vec2::splat(f32::NEG_INFINITY),
        }
    }

    /// Whether no point has been added yet (or corners are inverted).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Expands the box to contain `p`.
    pub fn grow(&mut self, p: Vec2) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns the smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb2) -> Aabb2 {
        Aabb2 {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Returns the overlap of `self` and `other`, or `None` if disjoint.
    pub fn intersection(&self, other: &Aabb2) -> Option<Aabb2> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        if min.x <= max.x && min.y <= max.y {
            Some(Aabb2 { min, max })
        } else {
            None
        }
    }

    /// Whether `p` lies inside (inclusive of edges).
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two boxes overlap (inclusive of edges).
    pub fn overlaps(&self, other: &Aabb2) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Box width (zero for empty boxes).
    pub fn width(&self) -> f32 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Box height (zero for empty boxes).
    pub fn height(&self) -> f32 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Box area (zero for empty boxes).
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Clamps the box corners into `[lo, hi]` on both axes; used to clip a
    /// triangle's screen bound against the viewport.
    pub fn clamped(&self, lo: Vec2, hi: Vec2) -> Aabb2 {
        Aabb2 {
            min: self.min.max(lo).min(hi),
            max: self.max.max(lo).min(hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_is_empty() {
        assert!(Aabb2::empty().is_empty());
        assert_eq!(Aabb2::empty().area(), 0.0);
    }

    #[test]
    fn new_orders_corners() {
        let bb = Aabb2::new(Vec2::new(3.0, 1.0), Vec2::new(1.0, 3.0));
        assert_eq!(bb.min, Vec2::new(1.0, 1.0));
        assert_eq!(bb.max, Vec2::new(3.0, 3.0));
    }

    #[test]
    fn grow_makes_nonempty() {
        let mut bb = Aabb2::empty();
        bb.grow(Vec2::new(2.0, 2.0));
        assert!(!bb.is_empty());
        assert!(bb.contains(Vec2::new(2.0, 2.0)));
        assert_eq!(bb.area(), 0.0, "single point has zero area");
    }

    #[test]
    fn union_contains_both() {
        let a = Aabb2::new(Vec2::ZERO, Vec2::ONE);
        let b = Aabb2::new(Vec2::splat(2.0), Vec2::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Vec2::ZERO));
        assert!(u.contains(Vec2::splat(3.0)));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = Aabb2::new(Vec2::ZERO, Vec2::splat(2.0));
        let b = Aabb2::new(Vec2::ONE, Vec2::splat(3.0));
        let i = a.intersection(&b).expect("boxes overlap");
        assert_eq!(i, Aabb2::new(Vec2::ONE, Vec2::splat(2.0)));
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = Aabb2::new(Vec2::ZERO, Vec2::ONE);
        let b = Aabb2::new(Vec2::splat(5.0), Vec2::splat(6.0));
        assert!(a.intersection(&b).is_none());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlaps_shared_edge() {
        let a = Aabb2::new(Vec2::ZERO, Vec2::ONE);
        let b = Aabb2::new(Vec2::new(1.0, 0.0), Vec2::new(2.0, 1.0));
        assert!(a.overlaps(&b), "touching edges count as overlap");
    }

    #[test]
    fn clamped_into_viewport() {
        let bb = Aabb2::new(Vec2::new(-5.0, -5.0), Vec2::new(100.0, 100.0));
        let c = bb.clamped(Vec2::ZERO, Vec2::new(10.0, 10.0));
        assert_eq!(c, Aabb2::new(Vec2::ZERO, Vec2::splat(10.0)));
    }

    #[test]
    fn width_height_area() {
        let bb = Aabb2::new(Vec2::ZERO, Vec2::new(4.0, 2.0));
        assert_eq!(bb.width(), 4.0);
        assert_eq!(bb.height(), 2.0);
        assert_eq!(bb.area(), 8.0);
    }
}
