//! # patu-gmath
//!
//! Small, dependency-free vector/matrix math and geometry primitives used by
//! the PATU rendering simulator (paper: *Perception-Oriented 3D Rendering
//! Approximation for Modern Graphics Processors*, HPCA 2018).
//!
//! The crate provides exactly the math a rasterization pipeline needs:
//!
//! * [`Vec2`], [`Vec3`], [`Vec4`] — `f32` vectors with the usual operators.
//! * [`Mat4`] — column-major 4×4 matrices with model/view/projection helpers.
//! * [`Aabb2`] — 2D bounding boxes used by the tiling engine.
//! * [`edge`] — edge functions and barycentric coordinates for rasterization.
//! * [`Plane`] / [`Frustum`] — clip-space planes for clipping and culling.
//! * [`DetRng`] — a seeded SplitMix64 generator for deterministic
//!   procedural content, randomized tests and fault injection.
//!
//! # Examples
//!
//! ```
//! use patu_gmath::{Mat4, Vec3, Vec4};
//!
//! let proj = Mat4::perspective(60f32.to_radians(), 16.0 / 9.0, 0.1, 100.0);
//! let view = Mat4::look_at(
//!     Vec3::new(0.0, 2.0, 5.0),
//!     Vec3::new(0.0, 0.0, 0.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//! );
//! let clip = proj * view * Vec4::new(0.0, 0.0, 0.0, 1.0);
//! assert!(clip.w > 0.0, "point in front of the camera");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod edge;
pub mod mat;
pub mod plane;
pub mod rng;
pub mod vec;

pub use aabb::Aabb2;
pub use edge::{barycentric, edge_function, EdgeEval};
pub use mat::Mat4;
pub use plane::{Frustum, Plane};
pub use rng::DetRng;
pub use vec::{Vec2, Vec3, Vec4};

/// Linearly interpolates between `a` and `b` by `t` (`t = 0` gives `a`).
///
/// ```
/// assert_eq!(patu_gmath::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Clamps `x` into `[lo, hi]`.
///
/// ```
/// assert_eq!(patu_gmath::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    debug_assert!(lo <= hi, "clamp called with lo > hi");
    x.max(lo).min(hi)
}

/// Returns `true` if `a` and `b` differ by at most `eps`.
///
/// ```
/// assert!(patu_gmath::approx_eq(0.1 + 0.2, 0.3, 1e-6));
/// ```
#[inline]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(1.0, 9.0, 0.0), 1.0);
        assert_eq!(lerp(1.0, 9.0, 1.0), 9.0);
    }

    #[test]
    fn lerp_midpoint() {
        assert_eq!(lerp(-2.0, 2.0, 0.5), 0.0);
    }

    #[test]
    fn clamp_inside_and_outside() {
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp(-3.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(7.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-6));
    }
}
