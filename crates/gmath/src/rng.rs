//! A small deterministic pseudo-random number generator.
//!
//! The simulator must be reproducible bit-for-bit across runs and platforms
//! — procedural texture content, randomized test sweeps and the fault
//! injector all draw from this generator instead of an external crate. The
//! core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit counter
//! scrambled by a fixed avalanche function. It passes BigCrush for the
//! stream lengths used here, has a full 2^64 period, and every stream is a
//! pure function of its seed.

/// A seeded deterministic random number generator (SplitMix64).
///
/// ```
/// use patu_gmath::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// assert!(a.range(10) < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Derives an independent child stream tagged by `tag`: forked streams
    /// with different tags are decorrelated from each other and from the
    /// parent, so independent fault sites never share draws.
    #[must_use]
    pub fn fork(&self, tag: u64) -> DetRng {
        let mut child = DetRng {
            state: self.state ^ tag.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        };
        // Burn one output so a zero-state fork does not start at zero.
        let _ = child.next_u64();
        child
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // 128-bit multiply-shift (Lemire): unbiased enough for simulation
        // purposes and branch-free.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`. Returns `lo` when the interval is
    /// empty or inverted.
    pub fn range_between(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.range(hi - lo)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped into `[0, 1]`;
    /// NaN counts as 0). `p <= 0` never draws `true`; `p >= 1` always does.
    pub fn chance(&mut self, p: f64) -> bool {
        // NaN lands in this arm too (a NaN rate means "never fire").
        if p.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            // Still consume a draw so call sequences stay aligned across
            // configurations that only differ in rates.
            let _ = self.next_u64();
            return false;
        }
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let parent = DetRng::new(99);
        let mut x = parent.fork(1);
        let mut y = parent.fork(2);
        let mut same = 0;
        for _ in 0..64 {
            if x.next_u64() == y.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0, "forked streams never collide in 64 draws");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respects_bound() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            assert!(r.range(7) < 7);
        }
        assert_eq!(r.range(0), 0);
        assert_eq!(r.range(1), 0);
    }

    #[test]
    fn range_between_bounds_and_degenerate() {
        let mut r = DetRng::new(13);
        for _ in 0..1000 {
            let v = r.range_between(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range_between(5, 5), 5);
        assert_eq!(r.range_between(9, 2), 9);
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::new(17);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets hit in 256 draws");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(19);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(!r.chance(f64::NAN));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = DetRng::new(23);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "p=0.25 over 10k draws: {hits}"
        );
    }

    #[test]
    fn mean_near_half() {
        let mut r = DetRng::new(29);
        let sum: f64 = (0..10_000).map(|_| r.next_f64()).sum();
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
