//! 2-, 3- and 4-component `f32` vectors.
//!
//! These are plain-old-data types in the C spirit: fields are public and the
//! types are `Copy`. All arithmetic operators are component-wise; dot/cross
//! products and norms are explicit methods.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2D `f32` vector (screen positions, texture coordinates, derivatives).
///
/// ```
/// use patu_gmath::Vec2;
/// let uv = Vec2::new(0.25, 0.75);
/// assert_eq!(uv * 4.0, Vec2::new(1.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

/// A 3D `f32` vector (positions, normals, RGB colors).
///
/// ```
/// use patu_gmath::Vec3;
/// let n = Vec3::new(0.0, 3.0, 4.0).normalized();
/// assert!((n.length() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4D `f32` vector (homogeneous positions, RGBA colors).
///
/// ```
/// use patu_gmath::Vec4;
/// let p = Vec4::new(2.0, 4.0, 6.0, 2.0);
/// assert_eq!(p.perspective_divide().x, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

macro_rules! impl_binops {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, o: $ty) -> $ty { $ty { $($f: self.$f + o.$f),+ } }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, o: $ty) -> $ty { $ty { $($f: self.$f - o.$f),+ } }
        }
        impl Mul for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, o: $ty) -> $ty { $ty { $($f: self.$f * o.$f),+ } }
        }
        impl Mul<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, s: f32) -> $ty { $ty { $($f: self.$f * s),+ } }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, v: $ty) -> $ty { $ty { $($f: v.$f * self),+ } }
        }
        impl Div<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, s: f32) -> $ty { $ty { $($f: self.$f / s),+ } }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty { $ty { $($f: -self.$f),+ } }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, o: $ty) { $(self.$f += o.$f;)+ }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, o: $ty) { $(self.$f -= o.$f;)+ }
        }
        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, s: f32) { $(self.$f *= s;)+ }
        }
        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, s: f32) { $(self.$f /= s;)+ }
        }
    };
}

impl_binops!(Vec2, x, y);
impl_binops!(Vec3, x, y, z);
impl_binops!(Vec4, x, y, z, w);

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec2 = Vec2 { x: 1.0, y: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Vec2 {
        Vec2 { x, y }
    }

    /// Creates a vector with both components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Vec2 {
        Vec2 { x: v, y: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec2) -> f32 {
        self.x * o.x + self.y * o.y
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the `sqrt`).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns [`Vec2::ZERO`] for the zero vector instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec2::ZERO
        }
    }

    /// 2D cross product (z-component of the 3D cross product); the signed
    /// parallelogram area spanned by `self` and `o`.
    #[inline]
    pub fn cross(self, o: Vec2) -> f32 {
        self.x * o.y - self.y * o.x
    }

    /// Perpendicular vector, rotated +90°.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x.min(o.x), self.y.min(o.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x.max(o.x), self.y.max(o.y))
    }

    /// Linear interpolation between `self` and `o`.
    #[inline]
    pub fn lerp(self, o: Vec2, t: f32) -> Vec2 {
        self + (o - self) * t
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// World up (+Y).
    pub const UP: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns [`Vec3::ZERO`] for the zero vector instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Linear interpolation between `self` and `o`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }

    /// Extends to a [`Vec4`] with the given `w`.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Vec4 = Vec4 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec4 = Vec4 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
        w: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Vec4 {
        Vec4 { x, y, z, w }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Vec4 {
        Vec4 {
            x: v,
            y: v,
            z: v,
            w: v,
        }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec4) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Drops `w`, returning the XYZ part.
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Divides XYZ by `w` (perspective divide), keeping `w` for later
    /// perspective-correct interpolation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w` is zero.
    #[inline]
    pub fn perspective_divide(self) -> Vec4 {
        debug_assert!(self.w != 0.0, "perspective divide by w = 0");
        Vec4::new(self.x / self.w, self.y / self.w, self.z / self.w, self.w)
    }

    /// Linear interpolation between `self` and `o`.
    #[inline]
    pub fn lerp(self, o: Vec4, t: f32) -> Vec4 {
        self + (o - self) * t
    }
}

impl From<(f32, f32)> for Vec2 {
    #[inline]
    fn from((x, y): (f32, f32)) -> Vec2 {
        Vec2::new(x, y)
    }
}

impl From<(f32, f32, f32)> for Vec3 {
    #[inline]
    fn from((x, y, z): (f32, f32, f32)) -> Vec3 {
        Vec3::new(x, y, z)
    }
}

impl From<(f32, f32, f32, f32)> for Vec4 {
    #[inline]
    fn from((x, y, z, w): (f32, f32, f32, f32)) -> Vec4 {
        Vec4::new(x, y, z, w)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn vec2_dot_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec2_perp_is_orthogonal() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.dot(v.perp()), 0.0);
    }

    #[test]
    fn vec2_normalize_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn vec3_cross_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn vec3_normalize_length_one() {
        let v = Vec3::new(2.0, -3.0, 6.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vec3_lerp_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::splat(2.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(1.0));
    }

    #[test]
    fn vec4_perspective_divide() {
        let p = Vec4::new(4.0, 8.0, 12.0, 4.0);
        let d = p.perspective_divide();
        assert_eq!(d.truncate(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(d.w, 4.0, "w preserved for perspective-correct interp");
    }

    #[test]
    fn vec4_dot() {
        let a = Vec4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.dot(Vec4::ONE), 10.0);
    }

    #[test]
    fn conversions_from_tuples() {
        assert_eq!(Vec2::from((1.0, 2.0)), Vec2::new(1.0, 2.0));
        assert_eq!(Vec3::from((1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(
            Vec4::from((1.0, 2.0, 3.0, 4.0)),
            Vec4::new(1.0, 2.0, 3.0, 4.0)
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Vec2::new(1.0, 2.0)), "(1, 2)");
        assert_eq!(format!("{}", Vec3::ZERO), "(0, 0, 0)");
        assert_eq!(format!("{}", Vec4::ONE), "(1, 1, 1, 1)");
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        v -= Vec3::new(0.5, 0.5, 0.5);
        v *= 2.0;
        v /= 3.0;
        assert_eq!(v, Vec3::splat(1.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max(b), Vec2::new(3.0, 5.0));
    }
}
