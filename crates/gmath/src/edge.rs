//! Edge functions and barycentric coordinates for triangle rasterization.
//!
//! The rasterizer in `patu-raster` tests pixel centers against the three
//! directed edges of each screen triangle. The signed edge-function values
//! double as (unnormalized) barycentric coordinates, which the fragment stage
//! uses for perspective-correct attribute interpolation.

use crate::vec::Vec2;

/// Signed area form of the edge function: positive when `p` is to the left of
/// the directed edge `a -> b` (counter-clockwise winding).
///
/// ```
/// use patu_gmath::{edge_function, Vec2};
/// let a = Vec2::new(0.0, 0.0);
/// let b = Vec2::new(1.0, 0.0);
/// assert!(edge_function(a, b, Vec2::new(0.5, 1.0)) > 0.0);
/// assert!(edge_function(a, b, Vec2::new(0.5, -1.0)) < 0.0);
/// ```
#[inline]
pub fn edge_function(a: Vec2, b: Vec2, p: Vec2) -> f32 {
    (b - a).cross(p - a)
}

/// Barycentric coordinates of `p` with respect to triangle `(a, b, c)`.
///
/// Returns `None` for degenerate (zero-area) triangles. The weights sum to 1
/// and are all in `[0, 1]` exactly when `p` is inside the triangle.
///
/// ```
/// use patu_gmath::{barycentric, Vec2};
/// let (a, b, c) = (Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0), Vec2::new(0.0, 2.0));
/// let w = barycentric(a, b, c, Vec2::new(0.5, 0.5)).unwrap();
/// assert!((w.0 + w.1 + w.2 - 1.0).abs() < 1e-6);
/// ```
pub fn barycentric(a: Vec2, b: Vec2, c: Vec2, p: Vec2) -> Option<(f32, f32, f32)> {
    let area = edge_function(a, b, c);
    if area == 0.0 {
        return None;
    }
    let w0 = edge_function(b, c, p) / area;
    let w1 = edge_function(c, a, p) / area;
    let w2 = edge_function(a, b, p) / area;
    Some((w0, w1, w2))
}

/// Incremental edge-function evaluator for a screen triangle.
///
/// Precomputes the edge coefficients so the rasterizer can step across a tile
/// with adds instead of re-evaluating cross products per pixel. Also exposes
/// the triangle's signed area for barycentric normalization and for
/// back-face culling.
///
/// ```
/// use patu_gmath::{EdgeEval, Vec2};
/// let tri = EdgeEval::new(
///     Vec2::new(0.0, 0.0),
///     Vec2::new(4.0, 0.0),
///     Vec2::new(0.0, 4.0),
/// ).expect("non-degenerate");
/// assert!(tri.contains(Vec2::new(1.0, 1.0)));
/// assert!(!tri.contains(Vec2::new(3.5, 3.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeEval {
    a: Vec2,
    b: Vec2,
    c: Vec2,
    /// Signed doubled area of the triangle (positive = counter-clockwise).
    area: f32,
    inv_area: f32,
}

impl EdgeEval {
    /// Builds the evaluator; returns `None` for zero-area triangles.
    pub fn new(a: Vec2, b: Vec2, c: Vec2) -> Option<EdgeEval> {
        let area = edge_function(a, b, c);
        if area == 0.0 || !area.is_finite() {
            return None;
        }
        Some(EdgeEval {
            a,
            b,
            c,
            area,
            inv_area: 1.0 / area,
        })
    }

    /// Signed doubled area (positive for counter-clockwise winding).
    #[inline]
    pub fn area(&self) -> f32 {
        self.area
    }

    /// Raw (unnormalized) edge values for `p`; all share the sign of
    /// [`EdgeEval::area`] when `p` is inside.
    #[inline]
    pub fn edges(&self, p: Vec2) -> (f32, f32, f32) {
        (
            edge_function(self.b, self.c, p),
            edge_function(self.c, self.a, p),
            edge_function(self.a, self.b, p),
        )
    }

    /// Normalized barycentric weights of `p` (sum to 1).
    #[inline]
    pub fn weights(&self, p: Vec2) -> (f32, f32, f32) {
        let (e0, e1, e2) = self.edges(p);
        (e0 * self.inv_area, e1 * self.inv_area, e2 * self.inv_area)
    }

    /// Whether `p` is inside the triangle (inclusive of edges), for either
    /// winding order.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        let (w0, w1, w2) = self.weights(p);
        w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    const B: Vec2 = Vec2 { x: 4.0, y: 0.0 };
    const C: Vec2 = Vec2 { x: 0.0, y: 4.0 };

    #[test]
    fn edge_function_sign() {
        assert!(edge_function(A, B, Vec2::new(2.0, 1.0)) > 0.0);
        assert!(edge_function(A, B, Vec2::new(2.0, -1.0)) < 0.0);
        assert_eq!(edge_function(A, B, Vec2::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn barycentric_at_vertices() {
        let w = barycentric(A, B, C, A).unwrap();
        assert_eq!(w, (1.0, 0.0, 0.0));
        let w = barycentric(A, B, C, B).unwrap();
        assert_eq!(w, (0.0, 1.0, 0.0));
        let w = barycentric(A, B, C, C).unwrap();
        assert_eq!(w, (0.0, 0.0, 1.0));
    }

    #[test]
    fn barycentric_centroid() {
        let centroid = (A + B + C) / 3.0;
        let (w0, w1, w2) = barycentric(A, B, C, centroid).unwrap();
        assert!((w0 - 1.0 / 3.0).abs() < 1e-6);
        assert!((w1 - 1.0 / 3.0).abs() < 1e-6);
        assert!((w2 - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn barycentric_degenerate_is_none() {
        assert!(barycentric(A, A, A, Vec2::ONE).is_none());
        assert!(barycentric(A, B, (A + B) / 2.0, Vec2::ONE).is_none());
    }

    #[test]
    fn edge_eval_rejects_degenerate() {
        assert!(EdgeEval::new(A, A, B).is_none());
    }

    #[test]
    fn edge_eval_contains_matches_barycentric() {
        let tri = EdgeEval::new(A, B, C).unwrap();
        for &(p, inside) in &[
            (Vec2::new(1.0, 1.0), true),
            (Vec2::new(3.9, 3.9), false),
            (Vec2::new(-0.1, 1.0), false),
            (Vec2::new(0.0, 0.0), true), // vertex inclusive
            (Vec2::new(2.0, 0.0), true), // edge inclusive
        ] {
            assert_eq!(tri.contains(p), inside, "point {p}");
        }
    }

    #[test]
    fn edge_eval_clockwise_winding_also_contains() {
        // Swap two vertices: negative area, but containment still works.
        let tri = EdgeEval::new(A, C, B).unwrap();
        assert!(tri.area() < 0.0);
        assert!(tri.contains(Vec2::new(1.0, 1.0)));
        assert!(!tri.contains(Vec2::new(5.0, 5.0)));
    }

    #[test]
    fn weights_sum_to_one_inside_and_outside() {
        let tri = EdgeEval::new(A, B, C).unwrap();
        for p in [Vec2::new(1.0, 2.0), Vec2::new(10.0, -3.0)] {
            let (w0, w1, w2) = tri.weights(p);
            assert!((w0 + w1 + w2 - 1.0).abs() < 1e-5);
        }
    }
}
