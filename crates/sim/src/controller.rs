//! Adaptive threshold control — closing the loop the paper leaves open.
//!
//! The paper positions the threshold as a knob "either user-defined or the
//! optimal from design space exploration" (Sec. V-A) and observes that users
//! at different resolutions prefer different settings (Sec. VII-D). This
//! module implements the natural runtime policy: a proportional controller
//! that retunes the threshold each frame to hold a frame-time target
//! (vsync budget), spending quality headroom only when the GPU falls behind
//! — the same control pattern as DVFS governors or dynamic resolution
//! scaling, but on PATU's perception-oriented knob.

/// A proportional controller steering PATU's threshold toward a frame-cycle
/// budget.
///
/// Each [`ThresholdController::observe`] call takes the cycles the last
/// frame needed under the current threshold and nudges the threshold down
/// (more approximation) when over budget, up (more quality) when under.
///
/// An outer control loop (the `patu-serve` quality governor) can overlay an
/// *external bias* via [`ThresholdController::set_external_bias`]: an
/// additive offset applied on top of the proportional state, so system-level
/// pressure (queue depth, deadline slack) and frame-level pressure (cycles
/// vs. budget) compose without fighting over one integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdController {
    /// Target frame cycles (e.g. the 60 Hz budget at the GPU clock).
    pub target_cycles: u64,
    /// Proportional gain: threshold change per unit of relative error.
    pub gain: f64,
    /// Lower bound the controller will not cross (quality floor).
    pub min_threshold: f64,
    /// Upper bound (1.0 = full AF).
    pub max_threshold: f64,
    threshold: f64,
    external_bias: f64,
    capacity_bias: f64,
}

impl ThresholdController {
    /// Creates a controller starting at `initial_threshold`.
    ///
    /// Adversarial arguments are sanitized instead of panicking: a zero
    /// `target_cycles` becomes 1, and a non-finite or out-of-range initial
    /// threshold clamps into `[0, 1]` (NaN falls to the quality ceiling —
    /// the safe direction).
    pub fn new(target_cycles: u64, initial_threshold: f64) -> ThresholdController {
        let threshold = if initial_threshold.is_finite() {
            initial_threshold.clamp(0.0, 1.0)
        } else {
            1.0
        };
        ThresholdController {
            target_cycles: target_cycles.max(1),
            gain: 0.5,
            min_threshold: 0.0,
            max_threshold: 1.0,
            threshold,
            external_bias: 0.0,
            capacity_bias: 0.0,
        }
    }

    /// Restricts the controller's operating range, consuming and returning
    /// it. The current threshold is clamped into the new range.
    ///
    /// Bounds are sanitized rather than trusted: each is clamped into
    /// `[0, 1]` (non-finite values fall to that side's extreme) and an
    /// inverted pair is swapped.
    #[must_use]
    pub fn with_bounds(mut self, min: f64, max: f64) -> ThresholdController {
        let min = if min.is_finite() {
            min.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let max = if max.is_finite() {
            max.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let (min, max) = if min <= max { (min, max) } else { (max, min) };
        self.min_threshold = min;
        self.max_threshold = max;
        self.threshold = self.threshold.clamp(min, max);
        self
    }

    /// The threshold to render the next frame with: the proportional state
    /// plus the external bias, clamped into the operating range.
    pub fn threshold(&self) -> f64 {
        (self.threshold + self.external_bias + self.capacity_bias)
            .clamp(self.min_threshold, self.max_threshold)
    }

    /// Overlays an additive bias from an outer controller (e.g. the serving
    /// layer's quality governor trading SSIM for throughput under queue
    /// pressure). Negative bias pushes toward more approximation.
    ///
    /// The input is sanitized rather than trusted, consistent with the rest
    /// of the controller: a non-finite bias becomes 0 (no external
    /// pressure — the safe direction), and finite values clamp into
    /// `[-1, 1]`, the widest offset that can ever matter on a `[0, 1]` knob.
    pub fn set_external_bias(&mut self, bias: f64) {
        self.external_bias = if bias.is_finite() {
            bias.clamp(-1.0, 1.0)
        } else {
            0.0
        };
    }

    /// The currently applied external bias (0 unless an outer controller
    /// set one).
    pub fn external_bias(&self) -> f64 {
        self.external_bias
    }

    /// Overlays a second additive bias tracking *capacity* scarcity (GPUs
    /// lost to outages or open circuit breakers), composed with the
    /// load-pressure bias from [`ThresholdController::set_external_bias`]
    /// so the serving layer's brownout ladder and its queue-pressure
    /// governor steer one knob without fighting over one integrator.
    ///
    /// Sanitized like the external bias: non-finite becomes 0 (no capacity
    /// pressure), finite values clamp into `[-1, 1]`.
    pub fn set_capacity_bias(&mut self, bias: f64) {
        self.capacity_bias = if bias.is_finite() {
            bias.clamp(-1.0, 1.0)
        } else {
            0.0
        };
    }

    /// The currently applied capacity bias (0 unless a brownout ladder set
    /// one).
    pub fn capacity_bias(&self) -> f64 {
        self.capacity_bias
    }

    /// Feeds back the last frame's cost and returns the updated threshold.
    ///
    /// Over budget ⇒ relative error positive ⇒ threshold falls (approximate
    /// more). Under budget ⇒ threshold rises back toward full quality. The
    /// proportional state integrates without the bias; the returned value
    /// (like [`ThresholdController::threshold`]) includes it.
    pub fn observe(&mut self, frame_cycles: u64) -> f64 {
        let error = frame_cycles as f64 / self.target_cycles as f64 - 1.0;
        self.threshold =
            (self.threshold - self.gain * error).clamp(self.min_threshold, self.max_threshold);
        self.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic plant: frame cost falls linearly as the threshold falls
    /// (more approximation = faster), spanning 2x from θ=1 to θ=0.
    fn plant(theta: f64, base: u64) -> u64 {
        (base as f64 * (0.5 + 0.5 * theta)) as u64
    }

    #[test]
    fn over_budget_lowers_threshold() {
        let mut c = ThresholdController::new(1_000_000, 0.8);
        let t = c.observe(1_500_000);
        assert!(t < 0.8, "got {t}");
    }

    #[test]
    fn under_budget_raises_threshold() {
        let mut c = ThresholdController::new(1_000_000, 0.4);
        let t = c.observe(600_000);
        assert!(t > 0.4);
    }

    #[test]
    fn converges_on_linear_plant() {
        // Budget reachable at θ = 0.5 on this plant.
        let base = 1_600_000u64;
        let target = plant(0.5, base);
        let mut c = ThresholdController::new(target, 1.0);
        for _ in 0..60 {
            let cycles = plant(c.threshold(), base);
            c.observe(cycles);
        }
        let settled = plant(c.threshold(), base);
        let err = (settled as f64 / target as f64 - 1.0).abs();
        assert!(err < 0.05, "settled within 5% of budget, err {err}");
        assert!(
            (c.threshold() - 0.5).abs() < 0.15,
            "θ near 0.5: {}",
            c.threshold()
        );
    }

    #[test]
    fn capacity_bias_composes_additively_with_external_bias() {
        let mut c = ThresholdController::new(1_000_000, 0.8);
        c.set_external_bias(-0.2);
        c.set_capacity_bias(-0.3);
        assert!((c.threshold() - 0.3).abs() < 1e-12, "0.8 - 0.2 - 0.3");
        assert!((c.capacity_bias() - (-0.3)).abs() < 1e-12);
        c.set_capacity_bias(0.0);
        assert!((c.threshold() - 0.6).abs() < 1e-12, "external bias remains");
    }

    #[test]
    fn capacity_bias_sanitizes_and_clamps() {
        let mut c = ThresholdController::new(1_000_000, 0.9);
        c.set_capacity_bias(-7.0);
        assert_eq!(c.capacity_bias(), -1.0, "clamps to [-1, 1]");
        assert_eq!(c.threshold(), 0.0, "composed value respects the floor");
        for wild in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            c.set_capacity_bias(wild);
            assert_eq!(c.capacity_bias(), 0.0, "{wild} sanitizes to no bias");
        }
    }

    #[test]
    fn capacity_bias_respects_operating_bounds() {
        let mut c = ThresholdController::new(1_000_000, 0.8).with_bounds(0.25, 0.8);
        c.set_capacity_bias(-1.0);
        assert!(
            (c.threshold() - 0.25).abs() < 1e-12,
            "full brownout still floors at the quality bound"
        );
    }

    #[test]
    fn saturates_at_bounds() {
        let mut c = ThresholdController::new(1_000_000, 0.5).with_bounds(0.2, 0.9);
        for _ in 0..20 {
            c.observe(10_000_000); // hopelessly over budget
        }
        assert_eq!(c.threshold(), 0.2, "clamped at the quality floor");
        for _ in 0..20 {
            c.observe(1); // infinitely fast
        }
        assert_eq!(c.threshold(), 0.9, "clamped at the top");
    }

    #[test]
    fn exact_budget_is_stable() {
        let mut c = ThresholdController::new(1_000_000, 0.6);
        let t = c.observe(1_000_000);
        assert!((t - 0.6).abs() < 1e-12);
    }

    #[test]
    fn inverted_bounds_are_swapped_not_fatal() {
        let c = ThresholdController::new(1, 0.5).with_bounds(0.9, 0.1);
        assert_eq!(c.min_threshold, 0.1);
        assert_eq!(c.max_threshold, 0.9);
        assert_eq!(c.threshold(), 0.5, "threshold already inside the range");
    }

    #[test]
    fn external_bias_shifts_the_effective_threshold() {
        let mut c = ThresholdController::new(1_000_000, 0.6);
        c.set_external_bias(-0.2);
        assert!((c.threshold() - 0.4).abs() < 1e-12);
        assert!((c.external_bias() - (-0.2)).abs() < 1e-12);
        // The proportional state is unbiased: clearing the bias restores it.
        c.set_external_bias(0.0);
        assert!((c.threshold() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn external_bias_clamps_at_its_edges() {
        let mut c = ThresholdController::new(1, 0.5);
        c.set_external_bias(7.5);
        assert_eq!(c.external_bias(), 1.0, "upper clamp edge");
        assert_eq!(c.threshold(), 1.0, "effective value stays in range");
        c.set_external_bias(-7.5);
        assert_eq!(c.external_bias(), -1.0, "lower clamp edge");
        assert_eq!(c.threshold(), 0.0);
        c.set_external_bias(-1.0);
        assert_eq!(c.external_bias(), -1.0, "exact edge passes unchanged");
        c.set_external_bias(1.0);
        assert_eq!(c.external_bias(), 1.0);
    }

    #[test]
    fn non_finite_bias_sanitizes_to_zero() {
        let mut c = ThresholdController::new(1, 0.5);
        for wild in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            c.set_external_bias(wild);
            assert_eq!(c.external_bias(), 0.0, "{wild} sanitizes to no bias");
            assert!((c.threshold() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn biased_threshold_respects_operating_bounds() {
        let mut c = ThresholdController::new(1_000_000, 0.5).with_bounds(0.3, 0.8);
        c.set_external_bias(-1.0);
        assert_eq!(c.threshold(), 0.3, "bias cannot cross the quality floor");
        c.set_external_bias(1.0);
        assert_eq!(c.threshold(), 0.8, "bias cannot cross the ceiling");
        // observe() reports the biased, clamped value too.
        c.set_external_bias(-1.0);
        let t = c.observe(1_000_000);
        assert_eq!(t, 0.3);
    }

    #[test]
    fn adversarial_construction_is_sanitized() {
        let c = ThresholdController::new(0, f64::NAN);
        assert_eq!(c.target_cycles, 1);
        assert_eq!(c.threshold(), 1.0, "NaN start falls to full quality");
        let c = ThresholdController::new(10, 7.0).with_bounds(f64::NEG_INFINITY, f64::NAN);
        assert_eq!(c.threshold(), 1.0);
        assert_eq!((c.min_threshold, c.max_threshold), (0.0, 1.0));
    }
}
