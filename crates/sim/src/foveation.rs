//! Foveated threshold modulation — a perception-oriented extension.
//!
//! The paper's threshold is one global knob (Sec. IV-C(C)). In VR — the
//! workload class the paper motivates with — human acuity falls steeply with
//! eccentricity from the gaze point, so an approximation budget spent on the
//! periphery buys no perceived quality. This module loosens PATU's
//! threshold with distance from a fixation point: full strictness at the
//! fovea, progressively more approximation toward the edges, same predictors
//! and hardware everywhere.
//!
//! This composes with the paper's design rather than changing it: the
//! per-pixel modulated threshold feeds the unchanged two-stage flow through
//! `patu_core::FilterPolicy::with_threshold`.

use patu_gmath::Vec2;

/// Radial threshold modulation around a fixation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Foveation {
    /// Fixation point in normalized viewport coordinates (`0..1` each axis).
    pub center: Vec2,
    /// Radius (in normalized units) inside which the base threshold applies
    /// unmodified — the foveal region.
    pub inner_radius: f32,
    /// Radius at which the threshold reaches `edge_scale` × base.
    pub outer_radius: f32,
    /// Threshold multiplier at and beyond `outer_radius`; `< 1` loosens the
    /// knob (more approximation) in the periphery.
    pub edge_scale: f32,
}

impl Default for Foveation {
    fn default() -> Foveation {
        Foveation {
            center: Vec2::new(0.5, 0.5),
            inner_radius: 0.15,
            outer_radius: 0.6,
            edge_scale: 0.1,
        }
    }
}

impl Foveation {
    /// The threshold multiplier for a pixel at `(x, y)` in a
    /// `width`×`height` viewport: 1 inside the fovea, falling linearly to
    /// [`Foveation::edge_scale`] at the outer radius.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the viewport is empty or the radii are
    /// inverted.
    pub fn threshold_scale(&self, x: u32, y: u32, width: u32, height: u32) -> f64 {
        debug_assert!(width > 0 && height > 0);
        debug_assert!(self.outer_radius > self.inner_radius);
        let p = Vec2::new(
            (x as f32 + 0.5) / width as f32,
            (y as f32 + 0.5) / height as f32,
        );
        let r = (p - self.center).length();
        let t = ((r - self.inner_radius) / (self.outer_radius - self.inner_radius)).clamp(0.0, 1.0);
        f64::from(1.0 + (self.edge_scale - 1.0) * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fovea_keeps_full_threshold() {
        let f = Foveation::default();
        assert_eq!(f.threshold_scale(320, 240, 640, 480), 1.0, "center pixel");
    }

    #[test]
    fn periphery_reaches_edge_scale() {
        let f = Foveation::default();
        let corner = f.threshold_scale(0, 0, 640, 480);
        assert!(
            (corner - f64::from(f.edge_scale)).abs() < 0.05,
            "got {corner}"
        );
    }

    #[test]
    fn scale_monotone_in_radius() {
        let f = Foveation::default();
        let mut last = 2.0;
        for x in [320u32, 400, 480, 560, 639] {
            let s = f.threshold_scale(x, 240, 640, 480);
            assert!(s <= last + 1e-12, "scale decreases outward");
            last = s;
        }
    }

    #[test]
    fn off_center_fixation() {
        let f = Foveation {
            center: Vec2::new(0.25, 0.5),
            ..Foveation::default()
        };
        let near = f.threshold_scale(160, 240, 640, 480);
        let far = f.threshold_scale(639, 240, 640, 480);
        assert_eq!(near, 1.0);
        assert!(far < 0.5);
    }
}
