//! Stereo (multi-view VR) rendering.
//!
//! The paper's simulation layer integrates "multi-view VR" among the modern
//! GPU features added to ATTILA (Sec. VI). This module provides the
//! analogous capability: one frame rendered twice from horizontally offset
//! eye positions, with the combined timing charged as one VR frame. AF's
//! cost — and PATU's savings — roughly double under VR because every pixel
//! is filtered twice, which is why the paper singles out VR as a motivating
//! workload (Sec. I).

use crate::error::SimError;
use crate::render::{render_scene, FrameResult, RenderConfig};
use patu_gpu::FrameStats;
use patu_scenes::{FrameScene, Workload};

/// The two eye views of one VR frame plus combined statistics.
#[derive(Debug, Clone)]
pub struct StereoFrameResult {
    /// Left-eye render.
    pub left: FrameResult,
    /// Right-eye render.
    pub right: FrameResult,
}

impl StereoFrameResult {
    /// Combined statistics of the VR frame: the two eyes render back to
    /// back on the same GPU, so cycles add and traffic/events accumulate.
    pub fn combined_stats(&self) -> FrameStats {
        let mut stats = self.left.stats;
        stats.accumulate(&self.right.stats);
        stats
    }
}

/// Builds the per-eye scene: the camera shifts half the interpupillary
/// distance along its right vector; the look target shifts with it so the
/// eyes stay parallel (toe-in free), as HMD projections do.
fn eye_scene(scene: &FrameScene, half_ipd: f32) -> FrameScene {
    let cam = scene.camera;
    let forward = (cam.target - cam.eye).normalized();
    let right = forward.cross(cam.up).normalized();
    let offset = right * half_ipd;
    let mut eye_cam = cam;
    eye_cam.eye += offset;
    eye_cam.target += offset;
    FrameScene {
        meshes: scene.meshes.clone(),
        camera: eye_cam,
    }
}

/// Renders frame `index` of `workload` in stereo with the given
/// interpupillary distance (world units; ~0.064 for a human at meter scale).
///
/// # Errors
///
/// Returns [`SimError`] for adversarial configurations (see
/// [`crate::render::render_frame`]).
pub fn render_stereo(
    workload: &Workload,
    index: u32,
    cfg: &RenderConfig,
    ipd: f32,
) -> Result<StereoFrameResult, SimError> {
    let scene = workload.frame(index);
    let left = render_scene(workload, &eye_scene(&scene, -ipd / 2.0), cfg)?;
    let right = render_scene(workload, &eye_scene(&scene, ipd / 2.0), cfg)?;
    Ok(StereoFrameResult { left, right })
}

#[cfg(test)]
mod tests {
    use super::*;
    use patu_core::FilterPolicy;

    fn workload() -> Workload {
        Workload::build("doom3", (192, 160)).unwrap()
    }

    #[test]
    fn stereo_renders_two_distinct_views() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Baseline);
        let s = render_stereo(&w, 0, &cfg, 0.4).unwrap();
        assert_ne!(
            s.left.image.pixels(),
            s.right.image.pixels(),
            "parallax makes the views differ"
        );
    }

    #[test]
    fn zero_ipd_views_are_identical() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Baseline);
        let s = render_stereo(&w, 0, &cfg, 0.0).unwrap();
        assert_eq!(s.left.image.pixels(), s.right.image.pixels());
    }

    #[test]
    fn combined_stats_accumulate_both_eyes() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Baseline);
        let s = render_stereo(&w, 0, &cfg, 0.4).unwrap();
        let combined = s.combined_stats();
        assert_eq!(combined.cycles, s.left.stats.cycles + s.right.stats.cycles);
        assert_eq!(
            combined.events.texel_fetches,
            s.left.stats.events.texel_fetches + s.right.stats.events.texel_fetches
        );
    }

    #[test]
    fn patu_saves_on_both_eyes() {
        let w = workload();
        let base = render_stereo(&w, 0, &RenderConfig::new(FilterPolicy::Baseline), 0.4).unwrap();
        let patu = render_stereo(
            &w,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
            0.4,
        )
        .unwrap();
        assert!(
            patu.combined_stats().cycles < base.combined_stats().cycles,
            "PATU speedup carries over to VR"
        );
        assert!(patu.left.approx.pixels > 0 && patu.right.approx.pixels > 0);
    }
}
