//! A synthetic user-satisfaction model standing in for the paper's
//! 30-participant study (Fig. 22).
//!
//! **Substitution notice (see DESIGN.md §2):** the original experiment shows
//! replay videos to human raters on a 5.5-inch screen and collects 1–5
//! satisfaction scores. No humans are available here, so this module encodes
//! the paper's *reported findings* as an explicit model and applies it to
//! the same replay inputs:
//!
//! * quality matters below a visibility knee — MSSIM above ≈0.93 is
//!   "difficult to distinguish by human eyes" (Sec. VII-B), so further
//!   gains add little;
//! * smooth motion matters — scores fall as displayed fps drops below 60
//!   and collapse under motion lag;
//! * resolution shifts the weighting: high-resolution players tolerate
//!   small quality loss for smoothness, low-resolution players weight
//!   image quality more (Sec. VII-D observations (1)/(2)).
//!
//! The model's absolute values are calibrated to land in the paper's 1–5
//! band with the same ordering (PATU's mid thresholds beating both AF-on
//! and AF-off extremes); EXPERIMENTS.md flags Fig. 22 as model-based.

/// The satisfaction scoring model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatisfactionModel {
    /// MSSIM at which further quality improvements become imperceptible.
    pub quality_knee: f64,
    /// The fps below which smoothness complaints begin.
    pub fps_target: f64,
    /// The fps below which the experience is considered unplayable.
    pub fps_floor: f64,
    /// Pixel count at which performance and quality are weighted equally;
    /// larger resolutions weight performance more.
    pub reference_pixels: f64,
    /// Exponent of the quality-utility falloff below the knee; larger means
    /// visible artifacts dominate the rating faster.
    pub quality_power: i32,
}

impl Default for SatisfactionModel {
    fn default() -> SatisfactionModel {
        SatisfactionModel {
            quality_knee: 0.93,
            fps_target: 60.0,
            fps_floor: 20.0,
            reference_pixels: 1280.0 * 1024.0,
            quality_power: 3,
        }
    }
}

impl SatisfactionModel {
    /// Perceived-quality utility in `[0, 1]`: flat above the knee
    /// (indistinguishable region) and falling steeply below it — visible
    /// artifacts dominate a rating faster than linearly.
    pub fn quality_utility(&self, mssim: f64) -> f64 {
        (mssim.clamp(0.0, 1.0) / self.quality_knee)
            .min(1.0)
            .powi(self.quality_power)
    }

    /// Smoothness utility in `[0, 1]`: 1 at or above the target fps,
    /// falling linearly to 0 at the floor.
    pub fn performance_utility(&self, fps: f64) -> f64 {
        ((fps - self.fps_floor) / (self.fps_target - self.fps_floor)).clamp(0.0, 1.0)
    }

    /// The performance weight for a resolution: 0.5 at the reference
    /// resolution, rising toward 0.65 for 4K-class and falling toward 0.35
    /// for small screens — encoding the paper's observation that high-res
    /// users favor smoothness and low-res users favor quality.
    pub fn performance_weight(&self, pixels: u64) -> f64 {
        let ratio = (pixels as f64 / self.reference_pixels).log2();
        (0.5 + 0.075 * ratio).clamp(0.35, 0.65)
    }

    /// The 1–5 satisfaction score for a replay with mean `mssim` quality,
    /// displayed `fps`, at `pixels` resolution.
    pub fn score(&self, mssim: f64, fps: f64, pixels: u64) -> f64 {
        let wp = self.performance_weight(pixels);
        let wq = 1.0 - wp;
        let u = wq * self.quality_utility(mssim) + wp * self.performance_utility(fps);
        1.0 + 4.0 * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HI_RES: u64 = 1280 * 1024;
    const LO_RES: u64 = 640 * 480;

    #[test]
    fn perfect_replay_scores_five() {
        let m = SatisfactionModel::default();
        let s = m.score(1.0, 60.0, HI_RES);
        assert!((s - 5.0).abs() < 0.1, "got {s}");
    }

    #[test]
    fn unplayable_low_quality_scores_near_one() {
        let m = SatisfactionModel::default();
        let s = m.score(0.0, 10.0, HI_RES);
        assert!(s < 1.5, "got {s}");
    }

    #[test]
    fn score_always_in_band() {
        let m = SatisfactionModel::default();
        for &q in &[0.0, 0.5, 0.9, 1.0] {
            for &f in &[5.0, 30.0, 60.0, 120.0] {
                let s = m.score(q, f, HI_RES);
                assert!((1.0..=5.0).contains(&s), "score {s} out of band");
            }
        }
    }

    #[test]
    fn quality_above_knee_indistinguishable() {
        let m = SatisfactionModel::default();
        let a = m.score(0.94, 60.0, HI_RES);
        let b = m.score(1.0, 60.0, HI_RES);
        assert!(
            (a - b).abs() < 0.05,
            "0.94 vs 1.0 MSSIM barely differ: {a} vs {b}"
        );
    }

    #[test]
    fn quality_below_knee_penalized() {
        let m = SatisfactionModel::default();
        let good = m.score(0.93, 60.0, HI_RES);
        let bad = m.score(0.72, 60.0, HI_RES);
        assert!(
            good - bad > 0.3,
            "visible loss costs score: {good} vs {bad}"
        );
    }

    #[test]
    fn fps_drop_penalized() {
        let m = SatisfactionModel::default();
        let smooth = m.score(0.95, 58.0, HI_RES);
        let laggy = m.score(0.95, 33.0, HI_RES);
        assert!(smooth > laggy + 0.5);
    }

    #[test]
    fn high_res_weights_performance_more() {
        let m = SatisfactionModel::default();
        assert!(m.performance_weight(3840 * 2160) > m.performance_weight(HI_RES));
        assert!(m.performance_weight(HI_RES) > m.performance_weight(LO_RES));
    }

    #[test]
    fn paper_shape_mid_threshold_beats_extremes() {
        // Encode the Fig. 22 scenario: AF-on is smooth-quality but slow;
        // AF-off is fast but visibly degraded; PATU@0.4 is nearly both.
        let m = SatisfactionModel::default();
        let af_on = m.score(1.0, 36.0, HI_RES);
        let af_off = m.score(0.72, 58.0, HI_RES);
        let patu = m.score(0.94, 52.0, HI_RES);
        assert!(patu > af_on, "PATU beats baseline: {patu} vs {af_on}");
        assert!(patu > af_off, "PATU beats no-AF: {patu} vs {af_off}");
    }

    #[test]
    fn low_res_users_prefer_quality() {
        let m = SatisfactionModel::default();
        // Same (quality, fps) tradeoff pair evaluated at two resolutions:
        // the quality-favoring option wins at low resolution.
        let fast_blurry_lo = m.score(0.8, 60.0, LO_RES);
        let slow_sharp_lo = m.score(1.0, 42.0, LO_RES);
        assert!(slow_sharp_lo > fast_blurry_lo);
    }
}
