//! The simulation layer's typed error, topping the `GpuError` →
//! `PatuError` → `SimError` chain. Bench binaries return
//! `Result<(), Box<dyn Error>>`, so a failure anywhere in the stack
//! surfaces as one readable `Display` chain instead of a panic backtrace.

use patu_core::PatuError;
use patu_gpu::GpuError;
use patu_scenes::WorkloadError;
use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A model-layer error (policy threshold, table capacity, fault rates,
    /// cache geometry…).
    Patu(PatuError),
    /// The requested workload does not exist.
    Workload(WorkloadError),
    /// An analysis needed more frames than the caller supplied.
    NotEnoughFrames {
        /// How many frames the caller supplied.
        got: usize,
        /// The minimum the analysis needs.
        need: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Patu(e) => write!(f, "simulation setup: {e}"),
            SimError::Workload(e) => write!(f, "workload: {e}"),
            SimError::NotEnoughFrames { got, need } => {
                write!(f, "analysis needs at least {need} frames, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Patu(e) => Some(e),
            SimError::Workload(e) => Some(e),
            SimError::NotEnoughFrames { .. } => None,
        }
    }
}

impl From<PatuError> for SimError {
    fn from(e: PatuError) -> SimError {
        SimError::Patu(e)
    }
}

impl From<GpuError> for SimError {
    fn from(e: GpuError) -> SimError {
        SimError::Patu(PatuError::Gpu(e))
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> SimError {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_preserves_the_original_site() {
        let gpu = GpuError::InvalidFaultRate {
            name: "dram_stall_rate",
            value: 2.0,
        };
        let sim = SimError::from(gpu);
        assert!(sim.to_string().contains("dram_stall_rate"));
        use std::error::Error;
        let patu = sim.source().expect("sim wraps patu");
        assert!(patu.source().is_some(), "patu wraps gpu");
    }

    #[test]
    fn frame_count_message() {
        let e = SimError::NotEnoughFrames { got: 1, need: 2 };
        assert!(e.to_string().contains("at least 2"));
    }
}
