//! Multi-frame experiments: the comparisons behind every figure of the
//! paper's evaluation.

use crate::error::SimError;
use crate::parallel;
use crate::render::{render_frame, render_sequence, FrameResult, RenderConfig};
use patu_core::FilterPolicy;
use patu_energy::EnergyModel;
use patu_gpu::{FaultConfig, FrameStats, GpuConfig};
use patu_obs::{FlightDump, TelemetryConfig};
use patu_quality::SsimConfig;
use patu_scenes::Workload;

/// How many frames to simulate and how they are spread over the workload's
/// camera loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Number of frames averaged per data point.
    pub frames: u32,
    /// Stride between sampled frame indices (spreads samples over the path).
    pub frame_stride: u32,
    /// GPU configuration (Table I baseline by default).
    pub gpu: GpuConfig,
    /// Fault-injection configuration applied to every rendered frame
    /// (disabled by default).
    pub faults: FaultConfig,
    /// Optional per-frame cycle budget for the degradation watchdog.
    pub cycle_budget: Option<u64>,
    /// Worker threads for the sweep (and, when the sweep has a single
    /// point, the render inside it). `None` defers to `PATU_THREADS`, then
    /// [`std::thread::available_parallelism`]. Results are bit-identical
    /// across every value; 1 is the serial path.
    pub threads: Option<usize>,
    /// Telemetry level forwarded into every rendered frame (off by
    /// default). Flight-recorder dumps captured by any frame surface on
    /// [`AggregateResult::dumps`].
    pub telemetry: TelemetryConfig,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig {
            frames: 3,
            frame_stride: 120,
            gpu: GpuConfig::default(),
            faults: FaultConfig::disabled(),
            cycle_budget: None,
            threads: None,
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

impl ExperimentConfig {
    /// The frame indices this configuration samples. Indices saturate at
    /// `u32::MAX` instead of overflowing for large `frames × frame_stride`
    /// products (workload builders wrap the camera loop, so a saturated
    /// index still renders).
    pub fn frame_indices(&self) -> Vec<u32> {
        (0..self.frames)
            .map(|i| i.saturating_mul(self.frame_stride))
            .collect()
    }

    /// Sets the worker-thread knob (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ExperimentConfig {
        self.threads = Some(threads);
        self
    }

    /// Enables telemetry for every rendered frame (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> ExperimentConfig {
        self.telemetry = telemetry;
        self
    }
}

/// Averaged results of one (workload, policy) pair.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Display label of the policy.
    pub label: String,
    /// The policy that produced this result.
    pub policy: FilterPolicy,
    /// Mean frame cycles.
    pub mean_cycles: f64,
    /// Mean summed filtering latency per frame.
    pub mean_filter_latency: f64,
    /// Mean SSIM against the 16×AF baseline frame (1.0 for the baseline).
    pub mssim: f64,
    /// Mean total GPU+DRAM energy per frame, joules.
    pub energy_joules: f64,
    /// Accumulated statistics over all frames.
    pub stats: FrameStats,
    /// Accumulated approximation coverage.
    pub approx: patu_core::ApproxStats,
    /// Accumulated sharing statistics (Fig. 12).
    pub sharing: patu_core::SharingStats,
    /// Accumulated quad divergence (Sec. V-C(1)).
    pub divergence: patu_core::DivergenceStats,
    /// Flight-recorder dumps captured across all frames (watchdog trips,
    /// fault fallbacks), in frame order. Empty when telemetry is off.
    pub dumps: Vec<FlightDump>,
}

impl AggregateResult {
    /// Speedup of this result relative to `baseline` (>1 = faster).
    pub fn speedup_vs(&self, baseline: &AggregateResult) -> f64 {
        baseline.mean_cycles / self.mean_cycles
    }

    /// Energy relative to `baseline` (<1 = saves energy).
    pub fn energy_ratio_vs(&self, baseline: &AggregateResult) -> f64 {
        self.energy_joules / baseline.energy_joules
    }

    /// Filtering latency relative to `baseline` (<1 = lower latency).
    pub fn filter_latency_ratio_vs(&self, baseline: &AggregateResult) -> f64 {
        self.mean_filter_latency / baseline.mean_filter_latency
    }

    /// The paper's tuning metric: `speedup × MSSIM` (Sec. VII-A).
    pub fn tuning_metric(&self, baseline: &AggregateResult) -> f64 {
        self.speedup_vs(baseline) * self.mssim
    }
}

fn accumulate(result: &FrameResult, agg: &mut AggregateResult, energy: &EnergyModel) {
    agg.stats.accumulate(&result.stats);
    agg.approx.accumulate(&result.approx);
    agg.sharing.accumulate(&result.sharing);
    agg.divergence.accumulate(&result.divergence);
    agg.energy_joules += energy.frame_energy(&result.stats).total_joules();
    if let Some(telemetry) = &result.telemetry {
        agg.dumps.extend(telemetry.dumps.iter().cloned());
    }
}

/// Runs `policies` over the sampled frames of `workload`, computing each
/// policy's MSSIM against a 16×AF baseline rendered on the same frames.
///
/// The baseline is always rendered (once per frame) to serve as the quality
/// reference; include [`FilterPolicy::Baseline`] in `policies` to also get
/// it as a result row.
///
/// # Errors
///
/// Returns [`SimError`] when any policy or the fault configuration is
/// adversarial (see [`render_frame`]).
pub fn run_policies(
    workload: &Workload,
    policies: &[(&str, FilterPolicy)],
    cfg: &ExperimentConfig,
) -> Result<Vec<AggregateResult>, SimError> {
    let energy = EnergyModel::default();
    let ssim = SsimConfig::default();
    let mut results: Vec<AggregateResult> = policies
        .iter()
        .map(|(label, policy)| AggregateResult {
            label: (*label).to_string(),
            policy: *policy,
            mean_cycles: 0.0,
            mean_filter_latency: 0.0,
            mssim: 0.0,
            energy_joules: 0.0,
            stats: FrameStats::default(),
            approx: patu_core::ApproxStats::new(),
            sharing: patu_core::SharingStats::new(),
            divergence: patu_core::DivergenceStats::new(),
            dumps: Vec::new(),
        })
        .collect();

    let frames = cfg.frame_indices();
    // The (policy, frame) grid renders in parallel: every point is an
    // independent simulation. The baseline renders once per frame and
    // doubles as the quality reference; `Baseline` rows reuse it. Nested
    // parallelism is collapsed — with more than one point in flight each
    // render runs serially inside (bit-identical by the determinism
    // invariant), otherwise the render inherits the sweep's thread knob.
    let mut points: Vec<(u32, Option<usize>)> = Vec::new();
    for &frame in &frames {
        points.push((frame, None)); // the 16×AF baseline / reference
        for (slot, (_, policy)) in policies.iter().enumerate() {
            if !matches!(policy, FilterPolicy::Baseline) {
                points.push((frame, Some(slot)));
            }
        }
    }
    let inner_threads = if points.len() > 1 {
        Some(1)
    } else {
        cfg.threads
    };
    let render_cfg = move |policy: FilterPolicy| {
        let mut rc = RenderConfig::new(policy)
            .with_gpu(cfg.gpu)
            .with_faults(cfg.faults);
        rc.cycle_budget = cfg.cycle_budget;
        rc.threads = inner_threads;
        rc.telemetry = cfg.telemetry;
        rc
    };
    let tasks: Vec<parallel::Task<'_, Result<FrameResult, SimError>>> = points
        .iter()
        .map(|&(frame, slot)| {
            let policy = slot.map_or(FilterPolicy::Baseline, |s| policies[s].1);
            Box::new(move || render_frame(workload, frame, &render_cfg(policy)))
                as parallel::Task<'_, Result<FrameResult, SimError>>
        })
        .collect();
    let mut rendered = Vec::with_capacity(points.len());
    for result in parallel::run_tasks(parallel::thread_count(cfg.threads), tasks) {
        rendered.push(result?); // first error in point order, as the serial loop reported
    }

    // Accumulation is serial and walks the grid in the original
    // frame-major, policy-minor order, so `f64` sums match the serial path.
    let mut cursor = 0usize;
    for _ in &frames {
        let baseline = &rendered[cursor];
        let baseline_luma = baseline.luma();
        let frame_points = &points[cursor..];
        let mut offset = 1; // skip the baseline point itself
        for (slot, (_, policy)) in policies.iter().enumerate() {
            let is_baseline = matches!(policy, FilterPolicy::Baseline);
            let result = if is_baseline {
                baseline
            } else {
                debug_assert_eq!(frame_points[offset].1, Some(slot));
                offset += 1;
                &rendered[cursor + offset - 1]
            };
            let mssim = if is_baseline {
                1.0
            } else {
                f64::from(ssim.mssim(&baseline_luma, &result.luma()))
            };
            let agg = &mut results[slot];
            agg.mssim += mssim;
            accumulate(result, agg, &energy);
        }
        cursor += offset;
    }

    let n = frames.len() as f64;
    for agg in &mut results {
        agg.mean_cycles = agg.stats.cycles as f64 / n;
        agg.mean_filter_latency = agg.stats.filter_latency_cycles as f64 / n;
        agg.mssim /= n;
        agg.energy_joules /= n;
    }
    Ok(results)
}

/// The paper's four design points at threshold `theta` (Sec. VII-B):
/// Baseline, AF-SSIM(N), AF-SSIM(N)+(Txds), PATU.
pub fn design_points(theta: f64) -> Vec<(&'static str, FilterPolicy)> {
    vec![
        ("Baseline", FilterPolicy::Baseline),
        ("AF-SSIM(N)", FilterPolicy::SampleArea { threshold: theta }),
        (
            "AF-SSIM(N)+(Txds)",
            FilterPolicy::SampleAreaTxds { threshold: theta },
        ),
        ("PATU", FilterPolicy::Patu { threshold: theta }),
    ]
}

/// Runs the Fig. 17 threshold sweep: PATU at each threshold, plus the
/// baseline reference. Returns `(threshold, result)` pairs and the baseline.
pub fn threshold_sweep(
    workload: &Workload,
    thresholds: &[f64],
    cfg: &ExperimentConfig,
) -> Result<(AggregateResult, Vec<(f64, AggregateResult)>), SimError> {
    let mut policies: Vec<(String, FilterPolicy)> =
        vec![("Baseline".to_string(), FilterPolicy::Baseline)];
    for &t in thresholds {
        policies.push((format!("PATU@{t:.1}"), FilterPolicy::Patu { threshold: t }));
    }
    let borrowed: Vec<(&str, FilterPolicy)> =
        policies.iter().map(|(s, p)| (s.as_str(), *p)).collect();
    let mut results = run_policies(workload, &borrowed, cfg)?;
    let baseline = results.remove(0);
    let sweep = thresholds.iter().copied().zip(results).collect();
    Ok((baseline, sweep))
}

/// Temporal stability of a policy: the mean SSIM between *consecutive
/// rendered frames* of the same run. Approximation schemes can flicker —
/// a pixel demoted in one frame and not the next — which per-frame MSSIM
/// against the baseline cannot see but video viewers (the paper's Fig. 22
/// raters) do. Values near the baseline's own inter-frame SSIM mean the
/// approximation does not add temporal noise.
/// # Errors
///
/// Returns [`SimError::NotEnoughFrames`] for fewer than two frames, or any
/// rendering error.
pub fn temporal_stability(
    workload: &Workload,
    policy: FilterPolicy,
    frames: &[u32],
    cfg: &ExperimentConfig,
) -> Result<f64, SimError> {
    if frames.len() < 2 {
        return Err(SimError::NotEnoughFrames {
            got: frames.len(),
            need: 2,
        });
    }
    let ssim = SsimConfig::default();
    let mut rc = RenderConfig::new(policy).with_gpu(cfg.gpu);
    // Frames render in parallel (serially inside each render when several
    // are in flight); the consecutive-pair SSIM scan stays serial and in
    // frame order, so the mean is bit-identical across thread counts.
    rc.threads = if frames.len() > 1 {
        Some(1)
    } else {
        cfg.threads
    };
    let tasks: Vec<parallel::Task<'_, Result<patu_quality::GrayImage, SimError>>> = frames
        .iter()
        .map(|&f| {
            let rc = &rc;
            Box::new(move || Ok(render_frame(workload, f, rc)?.luma()))
                as parallel::Task<'_, Result<patu_quality::GrayImage, SimError>>
        })
        .collect();
    let mut rendered = Vec::with_capacity(frames.len());
    for result in parallel::run_tasks(parallel::thread_count(cfg.threads), tasks) {
        rendered.push(result?);
    }
    let mut sum = 0.0;
    for pair in rendered.windows(2) {
        sum += f64::from(ssim.mssim(&pair[0], &pair[1]));
    }
    Ok(sum / (rendered.len() - 1) as f64)
}

/// Reuse-aware temporal stability: [`temporal_stability`] computed over a
/// sequence rendered through an active [`TileStore`], reported together
/// with the fraction of tiles the store kept (reused or repredicted).
/// Reused tiles are pixel-for-pixel stable by construction, so the two
/// numbers together separate "stable because unchanged" from "stable
/// despite rerendering" — the distinction plain inter-frame SSIM hides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalStabilityReport {
    /// Mean SSIM between consecutive rendered frames.
    pub stability: f64,
    /// Fraction of tiles carried forward (reused + repredicted) across the
    /// sequence; 0 when the store's mode is `off`.
    pub reused_fraction: f64,
}

/// Computes the reuse-aware stability report for a policy over `frames`,
/// rendered in order through `store` (see [`render_sequence`]). The frames
/// render sequentially — cross-frame reuse is inherently ordered — with
/// intra-frame cluster parallelism from `cfg.threads`.
///
/// # Errors
///
/// Returns [`SimError::NotEnoughFrames`] for fewer than two frames, or any
/// rendering error.
pub fn temporal_stability_with_store(
    workload: &Workload,
    policy: FilterPolicy,
    frames: &[u32],
    cfg: &ExperimentConfig,
    store: &mut patu_temporal::TileStore,
) -> Result<TemporalStabilityReport, SimError> {
    if frames.len() < 2 {
        return Err(SimError::NotEnoughFrames {
            got: frames.len(),
            need: 2,
        });
    }
    let mut rc = RenderConfig::new(policy).with_gpu(cfg.gpu);
    rc.threads = cfg.threads;
    let results = render_sequence(workload, frames, &rc, store)?;
    let ssim = SsimConfig::default();
    let lumas: Vec<patu_quality::GrayImage> = results.iter().map(|r| r.luma()).collect();
    let mut sum = 0.0;
    for pair in lumas.windows(2) {
        sum += f64::from(ssim.mssim(&pair[0], &pair[1]));
    }
    let (mut kept, mut total) = (0u64, 0u64);
    for r in &results {
        kept += r.stats.temporal.tiles_reused + r.stats.temporal.tiles_repredicted;
        total += r.stats.temporal.tiles_total();
    }
    Ok(TemporalStabilityReport {
        stability: sum / (lumas.len() - 1) as f64,
        reused_fraction: kept as f64 / total.max(1) as f64,
    })
}

/// The Best Point (BP) of a sweep: the threshold maximizing
/// `speedup × MSSIM` (Sec. VII-A).
pub fn best_point(baseline: &AggregateResult, sweep: &[(f64, AggregateResult)]) -> f64 {
    sweep
        .iter()
        .max_by(|a, b| {
            a.1.tuning_metric(baseline)
                .total_cmp(&b.1.tuning_metric(baseline))
        })
        .map(|(t, _)| *t)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            frames: 1,
            frame_stride: 1,
            ..ExperimentConfig::default()
        }
    }

    fn workload() -> Workload {
        Workload::build("grid", (192, 160)).unwrap()
    }

    #[test]
    fn frame_indices_stride() {
        let cfg = ExperimentConfig {
            frames: 3,
            frame_stride: 100,
            ..Default::default()
        };
        assert_eq!(cfg.frame_indices(), vec![0, 100, 200]);
    }

    #[test]
    fn frame_indices_saturate_instead_of_overflowing() {
        let cfg = ExperimentConfig {
            frames: 4,
            frame_stride: u32::MAX / 2,
            ..Default::default()
        };
        assert_eq!(
            cfg.frame_indices(),
            vec![0, u32::MAX / 2, u32::MAX - 1, u32::MAX],
            "indices clamp at u32::MAX rather than wrapping"
        );
    }

    #[test]
    fn design_points_are_four() {
        let pts = design_points(0.4);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].0, "Baseline");
        assert_eq!(pts[3].0, "PATU");
    }

    #[test]
    fn baseline_has_unity_metrics() {
        let w = workload();
        let results = run_policies(&w, &design_points(0.4), &small_cfg()).unwrap();
        let base = &results[0];
        assert!((base.mssim - 1.0).abs() < 1e-9);
        assert!((base.speedup_vs(base) - 1.0).abs() < 1e-12);
        assert!((base.energy_ratio_vs(base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn patu_faster_than_baseline_with_high_quality() {
        let w = workload();
        let results = run_policies(&w, &design_points(0.4), &small_cfg()).unwrap();
        let base = &results[0];
        let patu = &results[3];
        assert!(
            patu.speedup_vs(base) > 1.0,
            "PATU speeds up: {}",
            patu.speedup_vs(base)
        );
        assert!(patu.mssim > 0.8, "PATU quality stays high: {}", patu.mssim);
        assert!(patu.filter_latency_ratio_vs(base) < 1.0);
    }

    #[test]
    fn patu_beats_naive_demotion_on_quality() {
        let w = workload();
        let results = run_policies(&w, &design_points(0.4), &small_cfg()).unwrap();
        let naive = &results[2]; // AF-SSIM(N)+(Txds)
        let patu = &results[3];
        assert!(
            patu.mssim >= naive.mssim,
            "LOD reuse improves quality: {} vs {}",
            patu.mssim,
            naive.mssim
        );
    }

    #[test]
    fn sweep_quality_rises_with_threshold() {
        let w = workload();
        let (baseline, sweep) = threshold_sweep(&w, &[0.0, 0.5, 1.0], &small_cfg()).unwrap();
        assert_eq!(sweep.len(), 3);
        let q0 = sweep[0].1.mssim;
        let q1 = sweep[2].1.mssim;
        assert!(q1 >= q0, "quality monotone-ish in threshold: {q0} -> {q1}");
        // Speedup moves the other way.
        let s0 = sweep[0].1.speedup_vs(&baseline);
        let s1 = sweep[2].1.speedup_vs(&baseline);
        assert!(s0 >= s1, "speedup falls with threshold: {s0} -> {s1}");
    }

    #[test]
    fn temporal_stability_in_unit_range_and_tracks_baseline() {
        let w = workload();
        let frames = [0u32, 1, 2];
        let base = temporal_stability(&w, FilterPolicy::Baseline, &frames, &small_cfg()).unwrap();
        let patu = temporal_stability(
            &w,
            FilterPolicy::Patu { threshold: 0.4 },
            &frames,
            &small_cfg(),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&base));
        assert!((0.0..=1.0).contains(&patu));
        // Approximation must not add an order of magnitude of flicker.
        assert!(patu > base - 0.1, "patu {patu} vs base {base}");
    }

    #[test]
    fn temporal_stability_needs_two_frames() {
        let w = workload();
        let err = temporal_stability(&w, FilterPolicy::Baseline, &[0], &small_cfg()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::NotEnoughFrames { got: 1, need: 2 }
        ));
        let mut store = patu_temporal::TileStore::new(patu_temporal::TemporalConfig::off());
        let err = temporal_stability_with_store(
            &w,
            FilterPolicy::Baseline,
            &[0],
            &small_cfg(),
            &mut store,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::NotEnoughFrames { got: 1, need: 2 }
        ));
    }

    #[test]
    fn reuse_aware_stability_reports_the_kept_fraction() {
        use patu_temporal::{TemporalConfig, TemporalMode, TileStore};
        let w = Workload::build("orbit", (192, 144)).unwrap();
        let frames = [0u32, 1, 2, 3];
        let policy = FilterPolicy::Patu { threshold: 0.4 };
        let mut off = TileStore::new(TemporalConfig::off());
        let r_off =
            temporal_stability_with_store(&w, policy, &frames, &small_cfg(), &mut off).unwrap();
        assert_eq!(r_off.reused_fraction, 0.0, "off keeps nothing");
        assert!((0.0..=1.0).contains(&r_off.stability));
        let mut on = TileStore::new(TemporalConfig::for_mode(TemporalMode::On));
        let r_on =
            temporal_stability_with_store(&w, policy, &frames, &small_cfg(), &mut on).unwrap();
        assert!(r_on.reused_fraction > 0.0, "slow orbit reuses tiles");
        assert!(
            r_on.stability >= r_off.stability - 1e-6,
            "blitted tiles cannot flicker: {} vs {}",
            r_on.stability,
            r_off.stability
        );
    }

    #[test]
    fn fault_counters_flow_into_aggregates() {
        let w = workload();
        let cfg = ExperimentConfig {
            faults: FaultConfig::uniform(5, 0.05),
            ..small_cfg()
        };
        let results = run_policies(&w, &design_points(0.4), &cfg).unwrap();
        let patu = &results[3];
        assert!(patu.stats.faults.faults_injected() > 0);
        assert!(patu.stats.faults.fallbacks > 0);
        assert!(
            (0.0..=1.0).contains(&patu.mssim),
            "SSIM stays valid under faults"
        );
        // Same seed, same chaos: the whole experiment is reproducible.
        let again = run_policies(&w, &design_points(0.4), &cfg).unwrap();
        assert_eq!(patu.stats, again[3].stats);
    }

    #[test]
    fn invalid_fault_rate_is_an_error_not_a_panic() {
        let w = workload();
        let cfg = ExperimentConfig {
            faults: FaultConfig {
                cache_bitflip_rate: -1.0,
                ..FaultConfig::disabled()
            },
            ..small_cfg()
        };
        assert!(run_policies(&w, &design_points(0.4), &cfg).is_err());
    }

    #[test]
    fn best_point_picks_max_tuning_metric() {
        let w = workload();
        let (baseline, sweep) = threshold_sweep(&w, &[0.2, 0.8], &small_cfg()).unwrap();
        let bp = best_point(&baseline, &sweep);
        let metrics: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.tuning_metric(&baseline))
            .collect();
        let best_idx = if metrics[0] >= metrics[1] { 0 } else { 1 };
        assert_eq!(bp, sweep[best_idx].0);
    }
}
