//! Rendering one frame through the full simulated stack.

use crate::error::SimError;
use crate::parallel;
use patu_core::{
    DecisionAttrib, DivergenceStats, FilterPolicy, PerceptionAwareTextureUnit, SoaBatch,
};
use patu_gpu::{
    FaultConfig, FaultCounts, FrameStats, FrameTimer, GpuConfig, MemAttribCycles, MemSideEffects,
    MemorySystem, TemporalCounts, TextureRequest, TextureUnit, TrafficClass,
};
use patu_obs::{
    Attribution, Collector, Event, EventKind, FrameTelemetry, Log2Histogram, Stage,
    TelemetryConfig, Track,
};
use patu_quality::GrayImage;
use patu_raster::{Framebuffer, GeometryOutput, Pipeline};
use patu_scenes::Workload;
use patu_temporal::{TileClass, TileDecision, TileStore};
use patu_texture::{AddressMode, Footprint, Rgba8};

/// Bytes fetched per vertex (position + UV + padding, like a packed
/// attribute stream).
const BYTES_PER_VERTEX: u64 = 32;

/// Bytes per depth-buffer element spilled per generated fragment. A
/// tile-based GPU keeps depth on chip; only a fraction of traffic reaches
/// DRAM (modeled as 1 byte per tested fragment).
const DEPTH_BYTES_PER_FRAGMENT: u64 = 1;

/// Front-end processing cost per vertex (transform + clip setup), cycles.
const CYCLES_PER_VERTEX: u64 = 4;

/// Front-end cost per rasterized triangle (setup), cycles.
const CYCLES_PER_TRIANGLE: u64 = 2;

/// Pixels a reused tile blits forward per cycle (on-chip copy bandwidth;
/// the blit replaces the whole fragment→texel path for that tile).
const REUSE_PIXELS_PER_CYCLE: u64 = 16;

/// Stored fragment decisions a repredicted tile re-validates per cycle
/// (stage-1 summary consult, no texel traffic).
const REPREDICT_FRAGS_PER_CYCLE: u64 = 8;

/// How fragments flow through the texture unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// One `filter_with` + `TextureUnit::process` call per fragment — the
    /// original reference path, kept for equivalence testing and ablation.
    Scalar,
    /// Material-run struct-of-arrays batches through the fused
    /// predictor+filter kernel and `TextureUnit::process_flat` (the
    /// default). Bit-identical to [`BatchMode::Scalar`] — see
    /// `tests/batch_equivalence.rs`.
    Soa,
}

/// Configuration for rendering a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// GPU architectural parameters (Table I baseline by default).
    pub gpu: GpuConfig,
    /// The texture-filtering policy under test.
    pub policy: FilterPolicy,
    /// Texture coordinate wrapping mode.
    pub address_mode: AddressMode,
    /// PATU texel-address hash-table entries (paper design point: 16).
    pub hash_table_capacity: usize,
    /// Intra-tile fragment traversal order.
    pub traversal: patu_raster::TraversalOrder,
    /// Optional foveated threshold modulation (VR extension).
    pub foveation: Option<crate::foveation::Foveation>,
    /// Fault-injection configuration for the chaos suite (disabled by
    /// default: rendering is then bit-identical to a faultless build).
    pub faults: FaultConfig,
    /// Optional per-frame cycle budget. Once a tile starts past the budget,
    /// the rest of that cluster's tile stream degrades to trilinear-only
    /// filtering (NoAf) and the result is flagged [`FrameResult::degraded`]
    /// — the frame always completes instead of livelocking under injected
    /// stalls.
    pub cycle_budget: Option<u64>,
    /// Worker threads for intra-frame cluster parallelism. `None` resolves
    /// the `PATU_THREADS` environment variable, then
    /// [`std::thread::available_parallelism`]. Every output is bit-identical
    /// across thread counts (see [`crate::parallel`]); 1 takes the serial
    /// path with no thread spawns.
    pub threads: Option<usize>,
    /// Telemetry level and flight-recorder depth (off by default). Clocked
    /// in simulated cycles, so recorded artifacts are bit-identical across
    /// thread counts like everything else.
    pub telemetry: TelemetryConfig,
    /// Fragment→texel execution strategy. [`BatchMode::Soa`] (default)
    /// streams material runs through the fused SoA kernel;
    /// [`BatchMode::Scalar`] takes the per-fragment reference path. Both
    /// produce bit-identical frames and statistics.
    pub batching: BatchMode,
}

impl RenderConfig {
    /// A Table I baseline GPU running the given policy.
    pub fn new(policy: FilterPolicy) -> RenderConfig {
        RenderConfig {
            gpu: GpuConfig::default(),
            policy,
            address_mode: AddressMode::Wrap,
            hash_table_capacity: 16,
            traversal: patu_raster::TraversalOrder::RowMajor,
            foveation: None,
            faults: FaultConfig::disabled(),
            cycle_budget: None,
            threads: None,
            telemetry: TelemetryConfig::disabled(),
            batching: BatchMode::Soa,
        }
    }

    /// Selects the fragment→texel execution strategy (equivalence testing
    /// and ablation; outputs are bit-identical either way).
    #[must_use]
    pub fn with_batching(mut self, batching: BatchMode) -> RenderConfig {
        self.batching = batching;
        self
    }

    /// Enables telemetry recording at the given level/depth.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> RenderConfig {
        self.telemetry = telemetry;
        self
    }

    /// Pins intra-frame parallelism to `threads` workers (1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> RenderConfig {
        self.threads = Some(threads);
        self
    }

    /// Enables fault injection with the given configuration.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> RenderConfig {
        self.faults = faults;
        self
    }

    /// Sets a per-frame cycle budget for the degradation watchdog.
    #[must_use]
    pub fn with_cycle_budget(mut self, budget: u64) -> RenderConfig {
        self.cycle_budget = Some(budget);
        self
    }

    /// Enables foveated threshold modulation.
    #[must_use]
    pub fn with_foveation(mut self, foveation: crate::foveation::Foveation) -> RenderConfig {
        self.foveation = Some(foveation);
        self
    }

    /// Sets the intra-tile fragment traversal order (locality ablation).
    #[must_use]
    pub fn with_traversal(mut self, traversal: patu_raster::TraversalOrder) -> RenderConfig {
        self.traversal = traversal;
        self
    }

    /// Overrides the PATU hash-table capacity (ablation studies).
    ///
    /// # Panics
    ///
    /// Panics (in the constructor downstream) if `capacity` is zero.
    #[must_use]
    pub fn with_hash_table_capacity(mut self, capacity: usize) -> RenderConfig {
        self.hash_table_capacity = capacity;
        self
    }

    /// Overrides the GPU configuration (e.g. scaled caches for Fig. 21).
    #[must_use]
    pub fn with_gpu(mut self, gpu: GpuConfig) -> RenderConfig {
        self.gpu = gpu;
        self
    }
}

/// Per-tile approximation coverage: how many fragments the tile shaded and
/// how many of them the policy demoted. This is the raw material for the
/// `PATU_OBS_DUMP` demotion-decision map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileApproxStats {
    /// Tile index in the frame's tile list.
    pub tile: u32,
    /// Tile column.
    pub tx: u32,
    /// Tile row.
    pub ty: u32,
    /// Fragments shaded in this tile.
    pub fragments: u64,
    /// Fragments whose filtering was approximated (demoted).
    pub demoted: u64,
}

/// Everything produced by rendering one frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// The rendered image.
    pub image: Framebuffer,
    /// Timing, traffic and event statistics.
    pub stats: FrameStats,
    /// Approximation coverage by decision stage.
    pub approx: patu_core::ApproxStats,
    /// Texel-set sharing among AF taps (Fig. 12 instrumentation).
    pub sharing: patu_core::SharingStats,
    /// Quad prediction divergence (Sec. V-C(1)).
    pub divergence: DivergenceStats,
    /// Whether the cycle-budget watchdog tripped and part of the frame was
    /// rendered with degraded (trilinear-only) filtering.
    pub degraded: bool,
    /// Merged per-frame telemetry when [`RenderConfig::telemetry`] is
    /// enabled; `None` at [`patu_obs::TraceLevel::Off`]. Boxed so the
    /// disabled path carries one pointer.
    pub telemetry: Option<Box<FrameTelemetry>>,
    /// Per-tile approximation coverage in tile-index order (for demotion
    /// maps; always collected — the counters ride the existing per-fragment
    /// decision flow).
    pub tile_stats: Vec<TileApproxStats>,
}

impl FrameResult {
    /// The luma plane of the rendered image, for SSIM comparisons.
    pub fn luma(&self) -> GrayImage {
        GrayImage::new(
            self.image.width(),
            self.image.height(),
            self.image.luma_plane(),
        )
    }
}

/// Renders frame `index` of `workload` under `cfg` through the full stack:
/// geometry pass → per-tile fragment shading with the policy-driven texture
/// unit → timing/energy event accounting.
///
/// # Errors
///
/// Returns [`SimError`] for adversarial configurations: a non-finite or
/// out-of-range policy threshold, a zero-entry hash table, invalid fault
/// rates or degenerate cache geometry.
pub fn render_frame(
    workload: &Workload,
    index: u32,
    cfg: &RenderConfig,
) -> Result<FrameResult, SimError> {
    let scene = workload.frame(index);
    let mut result = render_scene(workload, &scene, cfg)?;
    // `render_scene` has no frame identity (the stereo path renders derived
    // scenes); stamp it here so telemetry artifacts name the frame.
    if let Some(t) = result.telemetry.as_deref_mut() {
        t.frame = index;
        for dump in &mut t.dumps {
            dump.frame = index;
        }
    }
    Ok(result)
}

/// Renders the frames of `workload` listed in `frames` (in order) with
/// cross-frame tile reuse through `store`. Tiles the store's invalidation
/// engine classifies [`TileClass::Reuse`]/[`TileClass::Repredict`] are
/// blitted from the previous frame and skip the fragment→texel path
/// entirely; per-frame reuse counters land in
/// [`FrameStats::temporal`](patu_gpu::FrameStats). Fault streams are keyed
/// per `(frame, tile)` in sequence mode, so outputs are bit-identical
/// across `PATU_THREADS` and reruns even under fault injection.
///
/// With the store's mode `off` every tile rerenders, but the sequence
/// still flows through the store (fault keying included), so `off` vs a
/// force-invalidated `on` run is byte-comparable.
///
/// # Errors
///
/// See [`render_frame`].
pub fn render_sequence(
    workload: &Workload,
    frames: &[u32],
    cfg: &RenderConfig,
    store: &mut TileStore,
) -> Result<Vec<FrameResult>, SimError> {
    let (width, height) = workload.resolution();
    let tile_size = cfg.gpu.tile_size;
    let threshold_bp = cfg
        .policy
        .threshold()
        .map(|t| (t * 10_000.0).round() as u32)
        .unwrap_or(0);
    let mut results = Vec::with_capacity(frames.len());
    for &frame in frames {
        let scene = workload.frame(frame);
        let plan = store.plan(&scene, width, height, tile_size);
        let mut result = {
            let ctx = SeqCtx {
                frame,
                plan: &plan,
                prev: store.prev_image(),
                store,
            };
            render_scene_inner(workload, &scene, cfg, Some(&ctx))?
        };
        if let Some(t) = result.telemetry.as_deref_mut() {
            t.frame = frame;
            for dump in &mut t.dumps {
                dump.frame = frame;
            }
        }
        // Refresh the store: rendered tiles contribute fresh decision
        // summaries (grid-indexed; tiles with no geometry stay default),
        // reused tiles carry their stored summaries forward inside commit.
        let tiles_x = width.div_ceil(tile_size);
        let tiles_y = height.div_ceil(tile_size);
        let mut fresh = vec![TileDecision::default(); (tiles_x as usize) * (tiles_y as usize)];
        for t in &result.tile_stats {
            fresh[(t.ty * tiles_x + t.tx) as usize] =
                TileDecision::new(t.fragments, t.demoted, threshold_bp);
        }
        store.commit(scene, result.image.clone(), tile_size, &plan, &fresh);
        results.push(result);
    }
    Ok(results)
}

/// The sequence-mode context one frame renders under: the invalidation
/// plan, the previous frame's pixels and the store's per-tile decision
/// summaries. Shared read-only across cluster workers.
struct SeqCtx<'a> {
    frame: u32,
    plan: &'a patu_temporal::FramePlan,
    prev: Option<&'a Framebuffer>,
    store: &'a TileStore,
}

/// Renders an explicit scene (meshes + camera) using `workload`'s texture
/// and shader tables. [`render_frame`] is the common entry point; this one
/// exists for callers that modify the camera first — e.g. the stereo/VR
/// path in [`crate::stereo`], which renders two eye views of one frame.
///
/// # Errors
///
/// See [`render_frame`].
pub fn render_scene(
    workload: &Workload,
    scene: &patu_scenes::FrameScene,
    cfg: &RenderConfig,
) -> Result<FrameResult, SimError> {
    render_scene_inner(workload, scene, cfg, None)
}

/// The shared frame renderer. `temporal` is `Some` only on the
/// [`render_sequence`] path; with `None` the behavior (including fault
/// stream positions) is byte-identical to what [`render_scene`] always did.
fn render_scene_inner(
    workload: &Workload,
    scene: &patu_scenes::FrameScene,
    cfg: &RenderConfig,
    temporal: Option<&SeqCtx<'_>>,
) -> Result<FrameResult, SimError> {
    let (width, height) = workload.resolution();
    let pipeline =
        Pipeline::with_tile_size(width, height, cfg.gpu.tile_size).with_traversal(cfg.traversal);
    let geometry = pipeline.run(&scene.meshes, &scene.camera);

    // Fallible setup happens serially, before any worker spawns, so
    // adversarial configurations surface as the same typed errors on every
    // thread count. The full-config probe catches degenerate geometry that
    // shard clamping would otherwise mask.
    MemorySystem::try_new(&cfg.gpu)?;
    let clusters = cfg.gpu.clusters.max(1) as usize;
    let shard_gpu = cfg.gpu.cluster_shard();
    let mut shards = Vec::with_capacity(clusters);
    for c in 0..clusters {
        let mut mem = MemorySystem::try_new(&shard_gpu)?;
        mem.set_cluster_faults(cfg.faults, c as u64)?;
        // Per-cluster units fork the fault stream under their cluster index,
        // so fault patterns are deterministic regardless of tile scheduling.
        let patu = PerceptionAwareTextureUnit::try_with_faults(
            cfg.policy,
            cfg.hash_table_capacity,
            cfg.faults,
            c as u64,
        )?;
        shards.push(ClusterShard {
            cluster: c,
            mem,
            tex: TextureUnit::new(0, &shard_gpu),
            patu,
        });
    }

    // Geometry front-end time, shared by every cluster's cycle stream.
    let frontend = geometry.stats.vertices_processed * CYCLES_PER_VERTEX
        + geometry.stats.triangles_rasterized * CYCLES_PER_TRIANGLE;

    // Static tile partition: a pure function of the tile index, identical
    // for serial and parallel runs (see DESIGN.md "Parallel execution
    // model").
    let mut cluster_tiles: Vec<Vec<usize>> = vec![Vec::new(); clusters];
    for i in 0..geometry.tiles.len() {
        cluster_tiles[parallel::tile_cluster(i, clusters)].push(i);
    }

    // Simulate each cluster independently: worker-private memory shard,
    // texture units, framebuffer and counters — no locks or atomics on the
    // per-fragment path. `threads <= 1` runs the same code inline.
    let threads = parallel::thread_count(cfg.threads);
    let geometry_ref = &geometry;
    let tasks: Vec<parallel::Task<'_, ClusterOutput>> = shards
        .into_iter()
        .map(|shard| {
            let tiles: &[usize] = &cluster_tiles[shard.cluster];
            let run_cfg = *cfg;
            Box::new(move || {
                run_cluster(
                    shard,
                    tiles,
                    geometry_ref,
                    workload,
                    &run_cfg,
                    frontend,
                    temporal,
                )
            }) as parallel::Task<'_, ClusterOutput>
        })
        .collect();
    let outputs = parallel::run_tasks(threads, tasks);

    // Merge in cluster order. Counters are commutative sums; the frame
    // timer replays each cluster's finish time; framebuffer tiles are
    // disjoint rects, stitched back per cluster.
    let mut image = Framebuffer::new(width, height, Rgba8::BLACK);
    let mut timer = FrameTimer::new(&cfg.gpu);
    timer.add_frontend_cycles(frontend);
    let mut side = MemSideEffects::default();
    side.record_traffic(
        TrafficClass::Vertex,
        geometry.stats.vertices_processed * BYTES_PER_VERTEX,
    );
    side.record_traffic(
        TrafficClass::Depth,
        geometry.stats.fragments_generated * DEPTH_BYTES_PER_FRAGMENT,
    );
    let mut filter_latency = 0u64;
    let mut filter_requests = 0u64;
    let mut wasted_addr_taps = 0u64;
    let mut hash_accesses = 0u64;
    let mut degraded = false;
    let mut divergence = DivergenceStats::new();
    let mut approx = patu_core::ApproxStats::new();
    let mut sharing = patu_core::SharingStats::new();
    let mut fault_counts = FaultCounts::default();
    let mut filter_hist = Log2Histogram::new();
    let mut cluster_obs = Vec::with_capacity(clusters);
    let mut cluster_attrib: Vec<ClusterAttribInput> = Vec::with_capacity(clusters);
    let mut tile_stats: Vec<TileApproxStats> = Vec::with_capacity(geometry.tiles.len());
    let mut temporal_counts = TemporalCounts::default();
    let tile_size = cfg.gpu.tile_size;
    for (c, out) in outputs.into_iter().enumerate() {
        timer.merge_cluster(c, out.finish);
        for &ti in &cluster_tiles[c] {
            let tile = &geometry.tiles[ti];
            let x0 = tile.tx * tile_size;
            let y0 = tile.ty * tile_size;
            let w = tile_size.min(width - x0);
            let h = tile_size.min(height - y0);
            image.copy_rect_from(&out.image, x0, y0, w, h);
        }
        side.accumulate(&out.side);
        filter_latency += out.filter_latency;
        filter_requests += out.filter_requests;
        wasted_addr_taps += out.wasted_addr_taps;
        hash_accesses += out.hash_accesses;
        degraded |= out.degraded;
        divergence.accumulate(&out.divergence);
        approx.accumulate(&out.approx);
        sharing.accumulate(&out.sharing);
        fault_counts.accumulate(&out.faults);
        filter_hist.accumulate(&out.filter_hist);
        temporal_counts.accumulate(&out.temporal);
        cluster_attrib.push(ClusterAttribInput {
            finish: out.finish,
            shade_cycles: out.shade_cycles,
            reuse_cycles: out.temporal.reuse_cycles,
            tex_work_cycles: out.tex_work_cycles,
            mem: out.mem_attrib,
            decisions: out.decisions,
        });
        tile_stats.extend(out.tiles);
        cluster_obs.push(out.obs);
    }
    // Cluster partitions interleave tiles, so restore frame tile order.
    tile_stats.sort_unstable_by_key(|t| t.tile);

    // Framebuffer writeout: each tile's pixels once per frame, with
    // lossless framebuffer compression (~2:1, standard on mobile GPUs).
    side.record_traffic(
        TrafficClass::Framebuffer,
        u64::from(width) * u64::from(height) * 2,
    );
    side.record_traffic(TrafficClass::Other, 4096); // command stream
    fault_counts.watchdog_trips += u64::from(degraded);

    let mut stats = FrameStats {
        cycles: timer.frame_cycles(),
        filter_latency_cycles: filter_latency,
        filter_requests,
        filter_latency_hist: filter_hist,
        bandwidth: side.bandwidth,
        events: side.events,
        faults: fault_counts,
        temporal: temporal_counts,
    };
    // Discarded address calculations for stage-2 approximations (8 addresses
    // per wasted tap).
    stats.events.address_calc_ops += wasted_addr_taps * 8;
    stats.events.shader_alu_ops =
        geometry.stats.fragments_shaded * u64::from(cfg.gpu.shader_ops_per_fragment);
    stats.events.vertices = geometry.stats.vertices_processed;
    stats.events.hash_table_accesses += hash_accesses;
    stats.events.predictor_evals = approx.stage1_approx
        + approx.stage2_approx * 2
        + approx.kept_af
            * if cfg.policy.uses_distribution_stage() {
                2
            } else {
                1
            };

    // Merge telemetry in a fixed order — front-end first, then clusters by
    // index — so the artifact is a pure function of the frame, independent
    // of how tiles were scheduled onto worker threads.
    let telemetry = if cfg.telemetry.level.counters_enabled() {
        let mut front = Collector::new(cfg.telemetry, Track::Frontend);
        front.span_arg(
            "geom::frontend",
            0,
            frontend,
            "triangles",
            geometry.stats.triangles_rasterized,
        );
        geometry.stats.export_counters(&mut front);
        let mut merged = FrameTelemetry::new(
            cfg.telemetry.level,
            0,
            format!("{:?}", cfg.policy),
            cfg.faults.seed,
        );
        merged.absorb(front);
        for obs in cluster_obs {
            merged.absorb(obs);
        }
        merged.counters.insert("frame::cycles", stats.cycles);
        merged
            .hists
            .insert("filter::latency", stats.filter_latency_hist);
        merged.attrib = assemble_attribution(frontend, stats.cycles, &cluster_attrib);
        Some(Box::new(merged))
    } else {
        None
    };

    Ok(FrameResult {
        image,
        stats,
        approx,
        sharing,
        divergence,
        degraded,
        telemetry,
        tile_stats,
    })
}

/// Per-cluster inputs to the critical-path cycle attribution: the cluster's
/// finish cycle plus the telemetry-gated component work counters measured
/// while its tile stream ran.
struct ClusterAttribInput {
    finish: u64,
    shade_cycles: u64,
    reuse_cycles: u64,
    tex_work_cycles: u64,
    mem: MemAttribCycles,
    decisions: DecisionAttrib,
}

/// Builds the frame's cycle attribution from the critical cluster (the one
/// whose finish cycle equals the frame time; ties break toward the lowest
/// cluster index). See `patu_obs::attrib` for the conservation identity —
/// the returned breakdown's [`Attribution::frame_total`] always equals
/// `total`.
fn assemble_attribution(frontend: u64, total: u64, clusters: &[ClusterAttribInput]) -> Attribution {
    let mut attrib = Attribution::new();
    let crit = clusters
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.finish.cmp(&b.finish).then(ib.cmp(ia)))
        .map(|(_, c)| c);
    match crit {
        Some(c) if c.finish > frontend => {
            attrib.add(Stage::Setup, frontend);
            // The identity guarantees reuse + shade <= finish - frontend;
            // the clamps keep conservation unconditional rather than
            // trusting it. Reuse (tile blits on the sequence path) comes
            // off the top: a blitted tile occupies the cluster exactly its
            // blit cost, never stalling on memory.
            let avail = c.finish - frontend;
            let reuse = c.reuse_cycles.min(avail);
            if reuse > 0 {
                attrib.add(Stage::Reuse, reuse);
            }
            let shade = c.shade_cycles.min(avail - reuse);
            attrib.add(Stage::Shade, shade);
            let stall = avail - reuse - shade;
            attrib.scatter_stall(
                stall,
                &[
                    (Stage::Predictor, c.decisions.predictor_evals),
                    (Stage::HashStage1, c.decisions.stage1_consults),
                    (Stage::HashStage2, c.decisions.stage2_accesses),
                    (Stage::TexelFetch, c.tex_work_cycles + c.mem.l1),
                    (Stage::CacheStall, c.mem.l2),
                    (Stage::Dram, c.mem.dram),
                ],
            );
        }
        // No tile ever outran the front end: the whole frame is setup.
        _ => attrib.add(Stage::Setup, total),
    }
    attrib
}

/// One cluster's worker-private simulation state: its slice of the memory
/// hierarchy, its texture units, and its fault streams. Built serially
/// (construction is fallible), then moved into the worker.
struct ClusterShard {
    cluster: usize,
    mem: MemorySystem,
    tex: TextureUnit,
    patu: PerceptionAwareTextureUnit,
}

/// Everything a cluster worker produces; merged in cluster order.
struct ClusterOutput {
    image: Framebuffer,
    finish: u64,
    filter_latency: u64,
    filter_requests: u64,
    wasted_addr_taps: u64,
    hash_accesses: u64,
    degraded: bool,
    divergence: DivergenceStats,
    approx: patu_core::ApproxStats,
    sharing: patu_core::SharingStats,
    side: MemSideEffects,
    faults: FaultCounts,
    filter_hist: Log2Histogram,
    obs: Collector,
    shade_cycles: u64,
    tex_work_cycles: u64,
    mem_attrib: MemAttribCycles,
    decisions: DecisionAttrib,
    tiles: Vec<TileApproxStats>,
    temporal: TemporalCounts,
}

/// Reusable per-tile quad-outcome accumulator: a flat `(fragments,
/// approximated)` grid indexed by the quad's position inside the tile,
/// replacing the per-tile `HashMap<QuadId, Vec<bool>>` whose allocation
/// churn dominated the divergence accounting (see `benches/raster.rs`).
struct QuadScratch {
    quads_per_side: usize,
    fragments: Vec<u32>,
    approximated: Vec<u32>,
}

impl QuadScratch {
    fn new(tile_size: u32) -> QuadScratch {
        let q = (tile_size as usize).div_ceil(2).max(1);
        QuadScratch {
            quads_per_side: q,
            fragments: vec![0; q * q],
            approximated: vec![0; q * q],
        }
    }

    #[inline]
    fn record(&mut self, frag_x: u32, frag_y: u32, tile_x0: u32, tile_y0: u32, approx: bool) {
        let qx = ((frag_x - tile_x0) / 2) as usize;
        let qy = ((frag_y - tile_y0) / 2) as usize;
        let idx = qy * self.quads_per_side + qx;
        self.fragments[idx] += 1;
        self.approximated[idx] += u32::from(approx);
    }

    /// Flushes all touched quads into `divergence` (quad-index order; the
    /// counts are order-independent sums) and clears the grid for the next
    /// tile.
    fn flush(&mut self, divergence: &mut DivergenceStats) {
        for (count, approx) in self.fragments.iter_mut().zip(&mut self.approximated) {
            if *count > 0 {
                divergence.record_quad_counts(u64::from(*count), u64::from(*approx));
                *count = 0;
                *approx = 0;
            }
        }
    }
}

/// Simulates one cluster's statically assigned tiles end to end. Pure
/// function of its inputs — every mutable structure is worker-private — so
/// it runs identically inline or on a worker thread.
fn run_cluster(
    mut shard: ClusterShard,
    tiles: &[usize],
    geometry: &GeometryOutput,
    workload: &Workload,
    cfg: &RenderConfig,
    frontend: u64,
    temporal: Option<&SeqCtx<'_>>,
) -> ClusterOutput {
    let cluster = shard.cluster;
    let (width, height) = (geometry.width, geometry.height);
    let mut timer = FrameTimer::new(&cfg.gpu);
    timer.add_frontend_cycles(frontend);
    let mut image = Framebuffer::new(width, height, Rgba8::BLACK);
    let mut batch = SoaBatch::new();
    let mut quads = QuadScratch::new(cfg.gpu.tile_size);
    let mut divergence = DivergenceStats::new();
    let mut filter_latency = 0u64;
    let mut filter_requests = 0u64;
    let mut wasted_addr_taps = 0u64;
    let mut degraded = false;
    let mut filter_hist = Log2Histogram::new();
    let mut shade_cycles = 0u64;
    let mut temporal_counts = TemporalCounts::default();
    let mut tile_stats: Vec<TileApproxStats> = Vec::with_capacity(tiles.len());
    let mut obs = Collector::new(cfg.telemetry, Track::Cluster(cluster as u32));
    let trace = obs.is_enabled();
    if trace {
        shard.mem.set_telemetry(true);
        shard.tex.set_telemetry(true);
        shard.patu.set_telemetry(true);
    }

    for &ti in tiles {
        let tile = &geometry.tiles[ti];
        if let Some(seq) = temporal {
            // Sequence mode: re-key both fault streams so this tile's
            // faults are a pure function of (seed, frame, tile). A blitted
            // tile then consumes no stream state, and reuse cannot shift
            // the faults of any tile rendered after it — the property the
            // determinism grid asserts under fault injection.
            shard.mem.rekey_faults(&[u64::from(seq.frame), ti as u64]);
            shard.patu.rekey_faults(&[u64::from(seq.frame), ti as u64]);
            let class = seq.plan.class(tile.tx, tile.ty);
            if class != TileClass::Rerender {
                if let Some(prev) = seq.prev {
                    let start = timer.begin_tile_on(cluster);
                    if trace {
                        obs.event(Event {
                            cycle: start,
                            cluster: cluster as u32,
                            tile: ti as u32,
                            kind: EventKind::TileBegin,
                        });
                    }
                    let x0 = tile.tx * cfg.gpu.tile_size;
                    let y0 = tile.ty * cfg.gpu.tile_size;
                    let w = cfg.gpu.tile_size.min(width - x0);
                    let h = cfg.gpu.tile_size.min(height - y0);
                    image.copy_rect_from(prev, x0, y0, w, h);
                    let stored = seq.store.decision(tile.tx, tile.ty).unwrap_or_default();
                    let mut cost =
                        (u64::from(w) * u64::from(h)).div_ceil(REUSE_PIXELS_PER_CYCLE) + 1;
                    if class == TileClass::Repredict {
                        cost += stored.fragments.div_ceil(REPREDICT_FRAGS_PER_CYCLE) + 1;
                        temporal_counts.tiles_repredicted += 1;
                    } else {
                        temporal_counts.tiles_reused += 1;
                    }
                    timer.end_tile(cluster, cost, start);
                    temporal_counts.reuse_cycles += cost;
                    tile_stats.push(TileApproxStats {
                        tile: ti as u32,
                        tx: tile.tx,
                        ty: tile.ty,
                        fragments: stored.fragments,
                        demoted: stored.demoted,
                    });
                    if trace {
                        let end = timer.cluster_cycles(cluster);
                        obs.span_node("raster::tile", start, end, 0, "tile", ti as u64);
                        obs.event(Event {
                            cycle: end,
                            cluster: cluster as u32,
                            tile: ti as u32,
                            kind: EventKind::TileEnd,
                        });
                    }
                    continue;
                }
            }
            temporal_counts.tiles_rerendered += 1;
        }
        let start = timer.begin_tile_on(cluster);
        // Watchdog: a tile starting past the budget means injected stalls
        // (or sheer load) blew the frame time. Degrade the rest of this
        // cluster's stream to the cheapest real filtering instead of piling
        // on.
        if let Some(budget) = cfg.cycle_budget {
            if start > budget {
                if trace && !degraded {
                    obs.event(Event {
                        cycle: start,
                        cluster: cluster as u32,
                        tile: ti as u32,
                        kind: EventKind::WatchdogTrip,
                    });
                    if obs.dump_count() == 0 {
                        obs.dump("watchdog_trip", start, ti as u32);
                    }
                }
                degraded = true;
            }
        }
        let faults_before = if trace {
            let mut f = shard.mem.fault_counts();
            f.accumulate(&shard.patu.fault_counts());
            f
        } else {
            FaultCounts::default()
        };
        if trace {
            obs.event(Event {
                cycle: start,
                cluster: cluster as u32,
                tile: ti as u32,
                kind: EventKind::TileBegin,
            });
        }
        let mut texture_done = start;
        let mut tile_demoted = 0u64;
        let tile_x0 = tile.tx * cfg.gpu.tile_size;
        let tile_y0 = tile.ty * cfg.gpu.tile_size;

        // Per-fragment policy: degraded clusters demote everything to
        // trilinear; foveation loosens the knob with eccentricity (scaled
        // threshold, same two-stage flow).
        let policy_for = |x: u32, y: u32| -> FilterPolicy {
            if degraded {
                return FilterPolicy::NoAf;
            }
            match cfg.foveation {
                None => cfg.policy,
                Some(fov) => match cfg.policy.threshold() {
                    Some(base) => cfg
                        .policy
                        .with_threshold(base * fov.threshold_scale(x, y, width, height)),
                    None => cfg.policy,
                },
            }
        };

        match cfg.batching {
            BatchMode::Scalar => {
                for frag in &tile.fragments {
                    let tex = &workload.textures()[frag.material];
                    let fp = Footprint::from_derivatives(
                        frag.duv_dx,
                        frag.duv_dy,
                        tex.width(),
                        tex.height(),
                        cfg.gpu.max_aniso,
                    );
                    let outcome = shard.patu.filter_with(
                        policy_for(frag.x, frag.y),
                        tex,
                        frag.uv,
                        &fp,
                        cfg.address_mode,
                    );

                    // Timing: replay the performed fetches through the
                    // texture unit (index 0 of this cluster's private shard).
                    let request = TextureRequest::new(
                        outcome
                            .record
                            .taps
                            .iter()
                            .map(|t| t.addresses.clone())
                            .collect(),
                    );
                    let timing = shard.tex.process(&request, &mut shard.mem, start);
                    filter_latency += timing.latency;
                    filter_requests += 1;
                    filter_hist.record(timing.latency);
                    texture_done = texture_done.max(timing.completion);
                    wasted_addr_taps += u64::from(outcome.decision.wasted_addr_taps);

                    let demoted = outcome.decision.is_approximated();
                    tile_demoted += u64::from(demoted);
                    quads.record(frag.x, frag.y, tile_x0, tile_y0, demoted);

                    // Fragment shading applies the material's (possibly
                    // non-linear) response to the filtered texel — the
                    // paper's vanished-effects mechanism lives here.
                    let shaded = workload.shader(frag.material).apply(outcome.color());
                    image.put(frag.x, frag.y, shaded);
                }
            }
            BatchMode::Soa => {
                // Material runs: consecutive fragments sharing a texture
                // form one SoA batch, in traversal order — batching changes
                // layout, never ordering, so outputs stay bit-identical to
                // the scalar path.
                let frags = &tile.fragments;
                let mut i = 0;
                while i < frags.len() {
                    let material = frags[i].material;
                    let mut j = i + 1;
                    while j < frags.len() && frags[j].material == material {
                        j += 1;
                    }
                    let run = &frags[i..j];
                    let tex = &workload.textures()[material];
                    batch.clear();
                    for frag in run {
                        batch.push(frag.x, frag.y, frag.uv, frag.duv_dx, frag.duv_dy);
                    }
                    shard.patu.filter_batch(
                        tex,
                        cfg.address_mode,
                        cfg.gpu.max_aniso,
                        &mut batch,
                        |lane| policy_for(run[lane].x, run[lane].y),
                    );

                    for (lane, frag) in run.iter().enumerate() {
                        // Timing: replay the batch's contiguous fetch buffer
                        // through the flat texture-unit path.
                        let timing = shard.tex.process_flat(
                            batch.tap_addresses(lane),
                            u64::from(batch.taps(lane)),
                            &mut shard.mem,
                            start,
                        );
                        filter_latency += timing.latency;
                        filter_requests += 1;
                        filter_hist.record(timing.latency);
                        texture_done = texture_done.max(timing.completion);
                        let decision = batch.decision(lane);
                        wasted_addr_taps += u64::from(decision.wasted_addr_taps);

                        let demoted = decision.is_approximated();
                        tile_demoted += u64::from(demoted);
                        quads.record(frag.x, frag.y, tile_x0, tile_y0, demoted);

                        let shaded = workload.shader(frag.material).apply(batch.color(lane));
                        image.put(frag.x, frag.y, shaded);
                    }
                    i = j;
                }
            }
        }

        quads.flush(&mut divergence);
        let shading = timer.shading_cycles(tile.fragments.len() as u64);
        timer.end_tile(cluster, shading, texture_done);
        shade_cycles += shading;
        tile_stats.push(TileApproxStats {
            tile: ti as u32,
            tx: tile.tx,
            ty: tile.ty,
            fragments: tile.fragments.len() as u64,
            demoted: tile_demoted,
        });

        if trace {
            let end = timer.cluster_cycles(cluster);
            let tile_span = obs.span_node("raster::tile", start, end, 0, "tile", ti as u64);
            if shading > 0 {
                obs.span_node(
                    "raster::tile::shade",
                    start,
                    start + shading,
                    tile_span,
                    "",
                    0,
                );
            }
            if texture_done > start {
                obs.span_node(
                    "raster::tile::texture",
                    start,
                    texture_done,
                    tile_span,
                    "",
                    0,
                );
            }
            obs.event(Event {
                cycle: end,
                cluster: cluster as u32,
                tile: ti as u32,
                kind: EventKind::TileEnd,
            });
            // Per-tile fault attribution: diff the cumulative counters
            // across the tile and pin each increment on this tile.
            let mut after = shard.mem.fault_counts();
            after.accumulate(&shard.patu.fault_counts());
            let delta = after.delta(&faults_before);
            if !delta.is_zero() {
                for (site, count) in delta.sites() {
                    if count > 0 {
                        obs.event(Event {
                            cycle: end,
                            cluster: cluster as u32,
                            tile: ti as u32,
                            kind: EventKind::Fault { site, count },
                        });
                    }
                }
                if delta.fallbacks > 0 {
                    obs.event(Event {
                        cycle: end,
                        cluster: cluster as u32,
                        tile: ti as u32,
                        kind: EventKind::Fallback {
                            count: delta.fallbacks,
                        },
                    });
                    if obs.dump_count() == 0 {
                        obs.dump("fault_fallback", end, ti as u32);
                    }
                }
            }
        }
    }

    let mut side = MemSideEffects {
        bandwidth: shard.mem.bandwidth(),
        events: shard.mem.events(),
    };
    side.events.accumulate(&shard.tex.events());
    let mut faults = shard.mem.fault_counts();
    faults.accumulate(&shard.patu.fault_counts());

    if trace {
        obs.add("tiles", tiles.len() as u64);
        obs.add("filter::requests", filter_requests);
        obs.merge_hist("mem::fetch_latency", shard.mem.fetch_latency_hist());
        obs.merge_hist("mem::miss_penalty", shard.mem.miss_penalty_hist());
        obs.merge_hist("tex::queue_wait", shard.tex.queue_wait_hist());
        obs.merge_hist("patu::af_taps", shard.patu.tap_hist());
    }

    ClusterOutput {
        image,
        finish: timer.cluster_cycles(cluster),
        filter_latency,
        filter_requests,
        wasted_addr_taps,
        hash_accesses: shard.patu.hash_accesses(),
        degraded,
        divergence,
        approx: shard.patu.approx_stats(),
        sharing: shard.patu.sharing_stats(),
        side,
        faults,
        filter_hist,
        obs,
        shade_cycles,
        tex_work_cycles: shard.tex.attrib_work_cycles(),
        mem_attrib: shard.mem.attrib_cycles(),
        decisions: shard.patu.decision_attrib(),
        tiles: tile_stats,
        temporal: temporal_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::build("doom3", (256, 192)).unwrap()
    }

    fn render(w: &Workload, index: u32, cfg: &RenderConfig) -> FrameResult {
        render_frame(w, index, cfg).expect("valid test config")
    }

    #[test]
    fn baseline_renders_and_times() {
        let w = workload();
        let r = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        assert!(r.stats.cycles > 0);
        assert!(r.stats.filter_requests > 10_000);
        assert!(
            r.stats.events.trilinear_ops > r.stats.filter_requests,
            "AF multiplies taps"
        );
        assert!(r.stats.bandwidth.texture > 0);
    }

    #[test]
    fn noaf_is_faster_and_fetches_less() {
        let w = workload();
        let base = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        let noaf = render(&w, 0, &RenderConfig::new(FilterPolicy::NoAf));
        assert!(
            noaf.stats.cycles < base.stats.cycles,
            "disabling AF speeds up"
        );
        assert!(noaf.stats.events.texel_fetches < base.stats.events.texel_fetches);
        assert!(
            noaf.stats.filter_latency_cycles < base.stats.filter_latency_cycles,
            "filter latency drops without AF"
        );
    }

    #[test]
    fn patu_sits_between_baseline_and_noaf() {
        let w = workload();
        let base = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        let noaf = render(&w, 0, &RenderConfig::new(FilterPolicy::NoAf));
        let patu = render(
            &w,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        );
        assert!(patu.stats.events.texel_fetches <= base.stats.events.texel_fetches);
        assert!(patu.stats.events.texel_fetches >= noaf.stats.events.texel_fetches);
        assert!(patu.approx.pixels > 0);
        assert!(
            patu.stats.events.hash_table_accesses > 0,
            "stage 2 exercised"
        );
    }

    #[test]
    fn images_match_resolution() {
        let w = workload();
        let r = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        assert_eq!(r.image.width(), 256);
        assert_eq!(r.image.height(), 192);
        let luma = r.luma();
        assert_eq!(luma.width(), 256);
    }

    #[test]
    fn rendering_is_deterministic() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
        let a = render(&w, 3, &cfg);
        let b = render(&w, 3, &cfg);
        assert_eq!(a.image.pixels(), b.image.pixels());
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.events.texel_fetches, b.stats.events.texel_fetches);
    }

    #[test]
    fn divergence_is_rare() {
        let w = workload();
        let r = render(
            &w,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        );
        assert!(r.divergence.quads > 100);
        // The paper reports ~1% on commercial traces; our procedural scenes
        // have sharper decision boundaries, so allow more headroom while
        // still asserting divergence is the exception, not the rule.
        assert!(
            r.divergence.divergence_fraction() < 0.25,
            "quad divergence should be rare, got {}",
            r.divergence.divergence_fraction()
        );
    }

    #[test]
    fn bandwidth_dominated_by_texture_under_af() {
        let w = workload();
        let r = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        assert!(
            r.stats.bandwidth.texture_fraction() > 0.4,
            "texture share {}",
            r.stats.bandwidth.texture_fraction()
        );
    }

    #[test]
    fn disabled_faults_are_bit_identical_to_default() {
        let w = workload();
        let plain = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
        // A non-zero seed with all-zero rates must change nothing.
        let seeded = plain.with_faults(FaultConfig {
            seed: 99,
            ..FaultConfig::disabled()
        });
        let a = render(&w, 0, &plain);
        let b = render(&w, 0, &seeded);
        assert_eq!(a.image.pixels(), b.image.pixels());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stats.faults, FaultCounts::default());
        assert!(!a.degraded && !b.degraded);
    }

    #[test]
    fn faulty_frame_completes_and_counts() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
            .with_faults(FaultConfig::uniform(42, 0.05));
        let r = render(&w, 0, &cfg);
        let f = r.stats.faults;
        assert!(f.faults_injected() > 0, "5% rates must fire: {f:?}");
        assert!(f.fallbacks > 0, "poisoned predictions degrade to AF");
        assert!(r.stats.cycles > 0);
        // Fault runs are just as deterministic as clean ones.
        let r2 = render(&w, 0, &cfg);
        assert_eq!(r.stats, r2.stats);
        assert_eq!(r.image.pixels(), r2.image.pixels());
    }

    #[test]
    fn watchdog_degrades_instead_of_livelocking() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Baseline).with_cycle_budget(1);
        let r = render(&w, 0, &cfg);
        assert!(r.degraded, "a 1-cycle budget trips immediately");
        assert_eq!(r.stats.faults.watchdog_trips, 1);
        // Degraded tiles render trilinear-only: cheaper than full AF.
        let full = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        assert!(r.stats.events.texel_fetches < full.stats.events.texel_fetches);
        assert!(!full.degraded);
        assert_eq!(full.stats.faults.watchdog_trips, 0);
    }

    #[test]
    fn adversarial_configs_are_typed_errors() {
        let w = workload();
        let nan_threshold = RenderConfig::new(FilterPolicy::Patu {
            threshold: f64::NAN,
        });
        assert!(render_frame(&w, 0, &nan_threshold).is_err());
        let zero_table =
            RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }).with_hash_table_capacity(0);
        assert!(render_frame(&w, 0, &zero_table).is_err());
        let bad_rate = RenderConfig::new(FilterPolicy::Baseline).with_faults(FaultConfig {
            dram_stall_rate: 7.0,
            ..FaultConfig::disabled()
        });
        let err = render_frame(&w, 0, &bad_rate).unwrap_err();
        assert!(err.to_string().contains("dram_stall_rate"));
    }

    #[test]
    fn telemetry_off_yields_none() {
        let w = workload();
        let r = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        assert!(
            r.telemetry.is_none(),
            "off is the default and carries nothing"
        );
    }

    #[test]
    fn spans_telemetry_builds_the_stage_tree() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
            .with_telemetry(TelemetryConfig::with_level(patu_obs::TraceLevel::Spans));
        let r = render(&w, 2, &cfg);
        let t = r.telemetry.expect("spans level records");
        assert_eq!(t.frame, 2, "render_frame stamps the frame index");
        assert_eq!(t.counters["frame::cycles"], r.stats.cycles);
        assert_eq!(
            t.hists["filter::latency"].count(),
            r.stats.filter_requests,
            "one latency sample per filter request"
        );
        let stages: Vec<&str> = t.stage_totals().iter().map(|&(n, _, _)| n).collect();
        assert!(stages.contains(&"geom::frontend"), "stages: {stages:?}");
        assert!(stages.contains(&"raster::tile"));
        assert!(stages.contains(&"raster::tile::texture"));
        assert!(t.counters["geom::fragments_shaded"] > 0);
        assert!(t.hists.contains_key("mem::fetch_latency"));
        assert!(!t.events.is_empty(), "tile begin/end events in the ring");
        // The rendered pixels are untouched by observation.
        let plain = render(
            &w,
            2,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        );
        assert_eq!(plain.image.pixels(), r.image.pixels());
        assert_eq!(plain.stats, r.stats);
    }

    #[test]
    fn watchdog_trip_captures_a_flight_dump() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Baseline)
            .with_cycle_budget(1)
            .with_telemetry(TelemetryConfig::with_level(patu_obs::TraceLevel::Counters));
        let r = render(&w, 0, &cfg);
        assert!(r.degraded);
        let t = r.telemetry.expect("counters level records");
        assert!(!t.dumps.is_empty(), "a trip must leave a postmortem");
        let dump = &t.dumps[0];
        assert_eq!(dump.reason, "watchdog_trip");
        assert_eq!(dump.frame, 0);
        assert_eq!(dump.policy, "Baseline");
        assert_eq!(dump.fault_seed, 0);
        assert!(
            dump.events
                .iter()
                .any(|e| matches!(e.kind, patu_obs::EventKind::WatchdogTrip)),
            "the ring holds the trip event itself"
        );
    }

    #[test]
    fn fault_fallback_captures_a_flight_dump() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
            .with_faults(FaultConfig::uniform(42, 0.05))
            .with_telemetry(TelemetryConfig::with_level(patu_obs::TraceLevel::Counters));
        let r = render(&w, 0, &cfg);
        assert!(r.stats.faults.fallbacks > 0);
        let t = r.telemetry.expect("counters level records");
        assert!(t.dumps.iter().any(|d| d.reason == "fault_fallback"));
        let dump = t
            .dumps
            .iter()
            .find(|d| d.reason == "fault_fallback")
            .unwrap();
        assert_eq!(dump.fault_seed, 42);
        assert!(dump.policy.starts_with("Patu"));
    }

    #[test]
    fn attribution_conserves_frame_cycles() {
        let w = workload();
        for policy in [
            FilterPolicy::Baseline,
            FilterPolicy::NoAf,
            FilterPolicy::Patu { threshold: 0.4 },
        ] {
            let cfg = RenderConfig::new(policy)
                .with_telemetry(TelemetryConfig::with_level(patu_obs::TraceLevel::Counters));
            let r = render(&w, 0, &cfg);
            let t = r.telemetry.expect("counters level records");
            assert_eq!(
                t.attrib.frame_total(),
                r.stats.cycles,
                "conservation for {policy:?}"
            );
            assert!(t.attrib.get(Stage::Setup) > 0, "front-end work exists");
            assert!(t.attrib.get(Stage::Shade) > 0, "shading work exists");
        }
    }

    #[test]
    fn patu_attribution_sees_prediction_flow_work() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 })
            .with_telemetry(TelemetryConfig::with_level(patu_obs::TraceLevel::Counters));
        let r = render(&w, 0, &cfg);
        let t = r.telemetry.expect("counters level records");
        assert!(
            t.attrib.get(Stage::Predictor) > 0,
            "predictor evaluations attributed"
        );
        assert!(t.attrib.get(Stage::TexelFetch) > 0, "texel work attributed");
        assert_eq!(
            t.attrib.get(Stage::SsimBaseline),
            0,
            "no analysis track inside a render"
        );
    }

    #[test]
    fn tile_stats_cover_every_tile_and_count_demotions() {
        let w = workload();
        let r = render(
            &w,
            0,
            &RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 }),
        );
        assert!(!r.tile_stats.is_empty());
        assert!(
            r.tile_stats.windows(2).all(|w| w[0].tile < w[1].tile),
            "tile order restored after the cluster merge"
        );
        let fragments: u64 = r.tile_stats.iter().map(|t| t.fragments).sum();
        let demoted: u64 = r.tile_stats.iter().map(|t| t.demoted).sum();
        assert_eq!(fragments, r.approx.pixels);
        assert_eq!(demoted, r.approx.stage1_approx + r.approx.stage2_approx);
        assert!(demoted > 0, "the policy demotes at θ=0.4");
    }

    #[test]
    fn raster_spans_form_a_tree() {
        let w = workload();
        let cfg = RenderConfig::new(FilterPolicy::Baseline)
            .with_telemetry(TelemetryConfig::with_level(patu_obs::TraceLevel::Spans));
        let r = render(&w, 0, &cfg);
        let t = r.telemetry.expect("spans level records");
        let spans = &t.spans;
        assert!(spans.iter().any(|s| s.name == "raster::tile" && s.id != 0));
        for s in spans {
            if s.name.starts_with("raster::tile::") {
                assert_ne!(s.parent, 0, "{} must link to its tile", s.name);
                let parent = spans.iter().find(|p| p.id == s.parent);
                assert!(
                    parent.is_some_and(|p| p.name == "raster::tile"),
                    "{} parent must be a tile span",
                    s.name
                );
            }
        }
    }

    #[test]
    fn baseline_records_sharing_stats() {
        let w = workload();
        let r = render(&w, 0, &RenderConfig::new(FilterPolicy::Baseline));
        assert!(r.sharing.taps_total > 0);
        let f = r.sharing.sharing_fraction();
        assert!(f > 0.0 && f < 1.0, "sharing fraction {f}");
    }
}
