//! The deterministic parallel runtime: scoped worker threads over
//! statically partitioned work, with results stitched back in index order.
//!
//! Everything in the simulator that fans out — per-cluster tile shards in
//! [`crate::render`], independent (policy, frame) points in
//! [`crate::experiment`] — goes through [`run_tasks`]. The contract that
//! makes multi-threaded runs bit-identical to serial ones:
//!
//! 1. **Static partition.** Work→worker assignment is a pure function of
//!    the task index ([`tile_cluster`] for tiles, `i mod workers` for task
//!    queues), never of runtime timing. No work stealing.
//! 2. **Sharded ownership.** Each task owns its mutable state (memory
//!    shard, texture units, framebuffer tiles). There are no locks or
//!    atomics anywhere — the per-fragment hot path touches only
//!    worker-private data.
//! 3. **Ordered merge.** Results come back in task-index order and every
//!    reduction (counter sums, `f64` accumulation, framebuffer stitching)
//!    runs serially on the caller in that order, so floating-point rounding
//!    and counter totals cannot depend on the thread count.
//!
//! Thread counts resolve explicit builder knobs first, then the
//! `PATU_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]; `PATU_THREADS=1` (or a knob of
//! 1) runs every task inline on the caller — the serial path.

use std::num::NonZeroUsize;

/// A boxed unit of work executed by [`run_tasks`].
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Resolves the worker count: an explicit knob wins, then the
/// `PATU_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Unparseable or zero values
/// sanitize to the next fallback; the result is always at least 1.
pub fn thread_count(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    // patu-lint: allow(knob-at-construction) — sanctioned PATU_THREADS fallback,
    // consulted only when the caller configured no explicit thread count
    std::env::var("PATU_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// The static tile→cluster assignment: round-robin on the tile index. A
/// pure function of `(tile_index, clusters)`, so the serial and parallel
/// schedules — and the per-cluster fault streams they drive — agree
/// exactly.
pub fn tile_cluster(tile_index: usize, clusters: usize) -> usize {
    tile_index % clusters.max(1)
}

/// Runs `tasks` on up to `threads` scoped workers, returning the results
/// in task order.
///
/// `threads <= 1` (or a single task) executes everything inline on the
/// caller's thread. Otherwise task *i* goes to worker *i mod workers* — a
/// static interleave that is a pure function of the task count — and each
/// worker runs its queue in index order. Results are stitched back by task
/// index, so downstream merges see the same sequence regardless of how
/// many workers actually ran.
///
/// # Panics
///
/// Propagates panics from worker tasks.
pub fn run_tasks<T: Send>(threads: usize, tasks: Vec<Task<'_, T>>) -> Vec<T> {
    let n = tasks.len();
    if threads <= 1 || n <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let workers = threads.min(n);
    let mut queues: Vec<Vec<(usize, Task<'_, T>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % workers].push((i, task));
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|queue| {
                scope.spawn(move || {
                    queue
                        .into_iter()
                        .map(|(i, task)| (i, task()))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        for handle in handles {
            // patu-lint: allow(panic-path) — a worker panic must propagate verbatim (documented: "Propagates panics")
            for (i, value) in handle.join().expect("parallel worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        // patu-lint: allow(panic-path) — every index is filled: task i goes to worker i mod workers
        .map(|slot| slot.expect("every task ran exactly once"))
        .collect()
}

/// Maps `f` over `0..n` on up to `threads` workers, returning the results
/// in index order — the borrowing counterpart of [`run_tasks`] for callers
/// whose work is a pure function of an index over shared state (the serve
/// layer's batch renders, sweep points, …).
///
/// Same contract as [`run_tasks`]: static partition, ordered merge, inline
/// on the caller when `threads <= 1`; outputs are bit-identical across
/// every thread count.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let tasks: Vec<Task<'_, T>> = (0..n)
        .map(|i| {
            let f = &f;
            Box::new(move || f(i)) as Task<'_, T>
        })
        .collect();
    run_tasks(threads, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize) -> Vec<Task<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Task<'static, usize>)
            .collect()
    }

    #[test]
    fn results_keep_task_order() {
        let expected: Vec<usize> = (0..23).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 16, 64] {
            assert_eq!(
                run_tasks(threads, squares(23)),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn borrows_from_the_caller_scope() {
        let data: Vec<u64> = (0..100).collect();
        let tasks: Vec<Task<'_, u64>> = (0..4)
            .map(|w| {
                let data = &data;
                Box::new(move || data.iter().skip(w).step_by(4).sum::<u64>()) as Task<'_, u64>
            })
            .collect();
        let partials = run_tasks(4, tasks);
        assert_eq!(partials.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn empty_and_single_task_inputs() {
        assert!(run_tasks::<usize>(8, Vec::new()).is_empty());
        assert_eq!(run_tasks(8, squares(1)), vec![0]);
    }

    #[test]
    fn run_indexed_matches_serial_for_any_thread_count() {
        let data: Vec<u64> = (0..57).map(|i| i * 3).collect();
        let serial = run_indexed(1, data.len(), |i| data[i] + 1);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                run_indexed(threads, data.len(), |i| data[i] + 1),
                serial,
                "threads={threads}"
            );
        }
        assert!(run_indexed::<u64, _>(4, 0, |i| i as u64).is_empty());
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(thread_count(Some(5)), 5);
        assert_eq!(thread_count(Some(0)), 1, "zero sanitizes to one");
        assert!(
            thread_count(None) >= 1,
            "env/available fallback is positive"
        );
    }

    #[test]
    fn tile_assignment_is_round_robin() {
        assert_eq!(tile_cluster(0, 4), 0);
        assert_eq!(tile_cluster(5, 4), 1);
        assert_eq!(tile_cluster(7, 1), 0);
        assert_eq!(tile_cluster(7, 0), 0, "zero clusters sanitizes");
    }
}
