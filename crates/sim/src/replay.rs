//! The analysis-layer game replay of the paper's Sec. VI: vertical
//! synchronization against a 60 Hz display, with motion-lag accounting.
//!
//! The paper builds replay videos in MATLAB: each frame is drawn at the
//! start of a screen refresh, or the draw stalls if the frame is incomplete
//! within the refresh interval — users perceive those stalls as motion lag.
//! A fixed CPU latency of half the refresh interval precedes each frame's
//! GPU work.

/// The vsync replay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayModel {
    /// Display refresh rate in Hz (60 in the paper).
    pub refresh_hz: f64,
    /// GPU frequency in Hz (1 GHz in Table I).
    pub gpu_frequency_hz: f64,
    /// Fixed CPU time charged before each frame's GPU work, in cycles.
    /// The paper uses half the refresh interval — 8 M cycles at 1 GHz.
    pub cpu_latency_cycles: u64,
}

impl Default for ReplayModel {
    fn default() -> ReplayModel {
        ReplayModel {
            refresh_hz: 60.0,
            gpu_frequency_hz: 1e9,
            cpu_latency_cycles: 8_000_000,
        }
    }
}

/// The outcome of replaying a frame sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// Refresh interval in GPU cycles.
    pub refresh_cycles: u64,
    /// For each frame, the refresh tick (0-based) at which it was displayed.
    pub display_ticks: Vec<u64>,
    /// Number of refreshes where the pending frame missed its deadline and
    /// the previous image was shown again (perceived motion lag).
    pub stalled_refreshes: u64,
}

impl ReplayResult {
    /// Average displayed frames per second over the replay: the frame count
    /// over the refresh span they occupied (inclusive of the first tick).
    pub fn average_fps(&self, refresh_hz: f64) -> f64 {
        let (Some(&first), Some(&last)) = (self.display_ticks.first(), self.display_ticks.last())
        else {
            return 0.0;
        };
        let span_ticks = last - first + 1;
        self.display_ticks.len() as f64 / (span_ticks as f64 / refresh_hz)
    }

    /// Fraction of displayed frames that stalled at least one refresh.
    pub fn stall_fraction(&self) -> f64 {
        if self.display_ticks.is_empty() {
            return 0.0;
        }
        self.stalled_refreshes as f64 / self.display_ticks.len() as f64
    }
}

impl ReplayModel {
    /// Replays a sequence of per-frame GPU cycle counts through the vsync
    /// display loop.
    ///
    /// Each frame's work (CPU latency + GPU cycles) starts when the previous
    /// frame is displayed; the frame appears at the first refresh tick after
    /// its work completes. A frame that spans `k` extra refresh intervals
    /// contributes `k` stalled refreshes.
    pub fn replay(&self, frame_cycles: &[u64]) -> ReplayResult {
        let refresh_cycles = (self.gpu_frequency_hz / self.refresh_hz).round() as u64;
        let mut display_ticks = Vec::with_capacity(frame_cycles.len());
        let mut stalled = 0u64;
        // Time (in cycles) at which the pipeline is free to start a frame.
        let mut free_at = 0u64;
        let mut last_tick: Option<u64> = None;

        for &cycles in frame_cycles {
            let done = free_at + self.cpu_latency_cycles + cycles;
            // First refresh tick at or after completion.
            let mut tick = done.div_ceil(refresh_cycles);
            // Never display two frames on the same tick.
            if let Some(prev) = last_tick {
                tick = tick.max(prev + 1);
                // Extra refresh intervals beyond back-to-back = stalls.
                stalled += tick - prev - 1;
            }
            display_ticks.push(tick);
            last_tick = Some(tick);
            free_at = tick * refresh_cycles;
        }

        ReplayResult {
            refresh_cycles,
            display_ticks,
            stalled_refreshes: stalled,
        }
    }

    /// Convenience: average displayed fps for a frame-cycle sequence.
    pub fn average_fps(&self, frame_cycles: &[u64]) -> f64 {
        self.replay(frame_cycles).average_fps(self.refresh_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model with a small CPU latency so GPU time dominates.
    fn fast_cpu() -> ReplayModel {
        ReplayModel {
            cpu_latency_cycles: 1_000,
            ..ReplayModel::default()
        }
    }

    #[test]
    fn fast_frames_hit_every_refresh() {
        let m = fast_cpu();
        // 1M cycles per frame = 1ms << 16.7ms refresh.
        let r = m.replay(&[1_000_000; 10]);
        assert_eq!(r.stalled_refreshes, 0);
        let fps = r.average_fps(60.0);
        assert!((fps - 60.0).abs() < 1.0, "fps {fps}");
    }

    #[test]
    fn slow_frames_stall() {
        let m = fast_cpu();
        // 25M cycles = 25ms: misses one refresh every frame.
        let r = m.replay(&[25_000_000; 10]);
        assert!(r.stalled_refreshes > 0);
        let fps = r.average_fps(60.0);
        assert!(fps < 45.0, "halved-ish fps, got {fps}");
    }

    #[test]
    fn paper_cpu_latency_limits_fps() {
        // With the paper's 8M-cycle CPU latency, even instant GPU frames
        // display on every refresh (8ms < 16.7ms).
        let m = ReplayModel::default();
        let r = m.replay(&[100_000; 20]);
        assert_eq!(r.stalled_refreshes, 0);
    }

    #[test]
    fn mixed_sequence_counts_specific_stalls() {
        let m = fast_cpu();
        let refresh = (1e9f64 / 60.0).round() as u64;
        // One fast frame, one 2.5-refresh frame, one fast frame.
        let r = m.replay(&[1_000_000, refresh * 5 / 2, 1_000_000]);
        assert_eq!(r.display_ticks.len(), 3);
        assert!(r.stalled_refreshes >= 2, "long frame skipped refreshes");
    }

    #[test]
    fn ticks_strictly_increase() {
        let m = ReplayModel::default();
        let r = m.replay(&[3_000_000; 30]);
        for pair in r.display_ticks.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn empty_sequence() {
        let m = ReplayModel::default();
        let r = m.replay(&[]);
        assert!(r.display_ticks.is_empty());
        assert_eq!(r.average_fps(60.0), 0.0);
        assert_eq!(r.stall_fraction(), 0.0);
    }

    #[test]
    fn faster_gpu_frames_higher_fps() {
        let m = fast_cpu();
        // 40ms frames need 3 refresh intervals; 18ms frames need 2.
        let slow = m.average_fps(&[40_000_000; 10]);
        let fast = m.average_fps(&[18_000_000; 10]);
        assert!(fast > slow, "{fast} vs {slow}");
    }
}
