//! # patu-sim
//!
//! The end-to-end experiment harness of the PATU reproduction (HPCA 2018):
//! it wires the rasterizer (`patu-raster`), the perception-aware texture
//! unit (`patu-core`), the GPU timing/memory model (`patu-gpu`), the energy
//! model (`patu-energy`) and the SSIM analyzer (`patu-quality`) into single
//! calls that render a workload frame under a filtering policy and return
//! both the image and the architectural metrics.
//!
//! * [`render`] — one frame, one policy → image + cycles + bandwidth +
//!   filter latency + PATU statistics.
//! * [`experiment`] — the paper's comparisons: AF on/off, the four design
//!   points, threshold sweeps, cache scaling, multi-frame averaging with
//!   MSSIM against the 16×AF baseline.
//! * [`replay`] — the analysis-layer game replay of Sec. VI: 60 Hz vsync,
//!   frame stalls, motion-lag accounting.
//! * [`satisfaction`] — a documented synthetic stand-in for the paper's
//!   30-participant user study (Fig. 22); see DESIGN.md §2 for the
//!   substitution rationale.
//!
//! # Examples
//!
//! ```no_run
//! use patu_core::FilterPolicy;
//! use patu_scenes::Workload;
//! use patu_sim::render::{render_frame, RenderConfig};
//!
//! let workload = Workload::build("doom3", (640, 480))?;
//! let cfg = RenderConfig::new(FilterPolicy::Patu { threshold: 0.4 });
//! let frame = render_frame(&workload, 0, &cfg)?;
//! println!("cycles: {}", frame.stats.cycles);
//! println!("fault fallbacks: {}", frame.stats.faults.fallbacks);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod error;
pub mod experiment;
pub mod foveation;
pub mod parallel;
pub mod render;
pub mod replay;
pub mod satisfaction;
pub mod stereo;

pub use controller::ThresholdController;
pub use error::SimError;
pub use experiment::{AggregateResult, ExperimentConfig};
pub use foveation::Foveation;
pub use render::{render_frame, render_sequence, BatchMode, FrameResult, RenderConfig};
pub use replay::{ReplayModel, ReplayResult};
pub use satisfaction::SatisfactionModel;
pub use stereo::{render_stereo, StereoFrameResult};
