//! # patu-texture
//!
//! Mipmapped textures and hardware-style texture filtering for the PATU
//! rendering simulator (paper: *Perception-Oriented 3D Rendering Approximation
//! for Modern Graphics Processors*, HPCA 2018).
//!
//! This crate models the data path of a GPU texture unit faithfully enough
//! that both the *functional* result (the filtered color) and the
//! *architectural* side effects (which texel addresses are touched, how many
//! trilinear taps an anisotropic fetch needs) are exact:
//!
//! * [`Rgba8`] texels and [`texel::TexelAddress`] — byte-level addresses used
//!   by the cache simulator in `patu-gpu` and the PATU hash table in
//!   `patu-core`.
//! * [`Texture`] — an RGBA8 image with a box-filtered mip chain.
//! * [`footprint::Footprint`] — the screen-space sampling footprint derived
//!   from UV derivatives: anisotropy ratio `N`, major-axis direction, and the
//!   distinct LODs used by trilinear (TF) vs. anisotropic (AF) filtering.
//!   The gap between those two LODs is exactly the paper's "LOD shift"
//!   (Sec. V-C).
//! * [`sampler`] — bilinear, trilinear and anisotropic samplers that return
//!   both the color and a [`sampler::SampleRecord`] describing every tap and
//!   texel address, which downstream crates replay through the timing model.
//! * [`procedural`] — deterministic procedural texture content (checker,
//!   bricks, noise, ...) standing in for licensed game art.
//!
//! # Examples
//!
//! ```
//! use patu_texture::{procedural, sampler, AddressMode, Footprint, Texture};
//! use patu_gmath::Vec2;
//!
//! let tex = Texture::with_mips(procedural::checkerboard(128, 128, 8, 0xAA), 0);
//! // An oblique footprint: stretched 8x along u.
//! let fp = Footprint::from_derivatives(
//!     Vec2::new(8.0 / 128.0, 0.0),
//!     Vec2::new(0.0, 1.0 / 128.0),
//!     tex.width(),
//!     tex.height(),
//!     16,
//! );
//! assert!(fp.n > 1, "oblique view needs anisotropic taps");
//! let rec = sampler::sample_anisotropic(&tex, Vec2::new(0.3, 0.6), &fp, AddressMode::Wrap);
//! assert_eq!(rec.taps.len(), fp.n as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod footprint;
pub mod procedural;
pub mod sampler;
pub mod texel;
pub mod texture;

pub use footprint::Footprint;
pub use sampler::{
    sample_anisotropic, sample_bilinear, sample_nearest, sample_trilinear, sample_trilinear_record,
    SampleRecord, Tap,
};
pub use texel::{Rgba8, TexelAddress};
pub use texture::{AddressMode, MipLevel, Texture};

/// Maximum anisotropic filtering level supported by the modeled texture unit.
///
/// The paper (Sec. II-B) notes the max AF level on contemporary GPUs permits
/// 16 trilinear samples (128 texels) per pixel.
pub const MAX_ANISO: u32 = 16;

/// Number of texels fetched by one bilinear tap.
pub const TEXELS_PER_BILINEAR: u32 = 4;

/// Number of texels fetched by one trilinear sample (two bilinear taps on
/// adjacent mip levels).
pub const TEXELS_PER_TRILINEAR: u32 = 8;
