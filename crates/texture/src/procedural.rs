//! Deterministic procedural texture content.
//!
//! The paper evaluates on commercial game art we cannot redistribute; these
//! generators produce content with comparable spatial-frequency structure —
//! hard edges (checker, bricks, stripes), broadband detail (value noise),
//! and mixed-frequency composites — so anisotropic filtering has the same
//! visible effect (sharpness along oblique surfaces) it has on game textures.
//!
//! All generators are seeded and fully deterministic.

use crate::texel::Rgba8;
use patu_gmath::DetRng;

/// Image tuple shared by all generators: `(width, height, texels)`.
pub type Image = (u32, u32, Vec<Rgba8>);

fn hash2(x: u32, y: u32, seed: u64) -> u64 {
    // SplitMix64-style scramble of the coordinates; stable across platforms.
    let mut z = (u64::from(x) << 32 | u64::from(y)) ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-tone checkerboard with `cell`-texel squares.
///
/// # Panics
///
/// Panics if `cell == 0` or the image is empty.
pub fn checkerboard(width: u32, height: u32, cell: u32, seed: u64) -> Image {
    assert!(cell > 0 && width > 0 && height > 0);
    let mut rng = DetRng::new(seed);
    let a = Rgba8::gray(40 + rng.range(40) as u8);
    let b = Rgba8::gray(180 + rng.range(60) as u8);
    let mut data = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            let on = ((x / cell) + (y / cell)).is_multiple_of(2);
            data.push(if on { a } else { b });
        }
    }
    (width, height, data)
}

/// Axis-aligned stripes of `period` texels along X, a worst case for
/// anisotropic blur when viewed obliquely along the stripe direction.
///
/// # Panics
///
/// Panics if `period == 0` or the image is empty.
pub fn stripes(width: u32, height: u32, period: u32, seed: u64) -> Image {
    assert!(period > 0 && width > 0 && height > 0);
    let mut rng = DetRng::new(seed);
    let a = Rgba8::rgb(
        rng.range_between(150, 255) as u8,
        rng.range_between(120, 200) as u8,
        rng.range(80) as u8,
    );
    let b = Rgba8::rgb(
        rng.range(60) as u8,
        rng.range(80) as u8,
        rng.range_between(60, 160) as u8,
    );
    let mut data = Vec::with_capacity((width * height) as usize);
    for _y in 0..height {
        for x in 0..width {
            data.push(if (x / period).is_multiple_of(2) { a } else { b });
        }
    }
    (width, height, data)
}

/// Brick pattern with mortar lines: strong horizontal and vertical edges at
/// two different frequencies, typical of game architecture textures.
///
/// # Panics
///
/// Panics if the image or brick dimensions are zero.
pub fn bricks(width: u32, height: u32, brick_w: u32, brick_h: u32, seed: u64) -> Image {
    assert!(brick_w > 1 && brick_h > 1 && width > 0 && height > 0);
    let mortar = Rgba8::gray(190);
    let mut data = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            let row = y / brick_h;
            // Offset every other row by half a brick.
            let xo = x + (row % 2) * (brick_w / 2);
            let in_mortar = xo.is_multiple_of(brick_w) || y.is_multiple_of(brick_h);
            if in_mortar {
                data.push(mortar);
            } else {
                // Per-brick tone variation.
                let tone = hash2(xo / brick_w, row, seed) % 60;
                data.push(Rgba8::rgb(140 + tone as u8, 60 + (tone / 2) as u8, 50));
            }
        }
    }
    (width, height, data)
}

/// Smooth value noise: `octaves` octaves of bilinearly-interpolated lattice
/// noise. Models terrain/grass/cloud textures with broadband content.
///
/// # Panics
///
/// Panics if `octaves == 0` or the image is empty.
pub fn value_noise(width: u32, height: u32, octaves: u32, seed: u64) -> Image {
    assert!(octaves > 0 && width > 0 && height > 0);
    let lattice = |x: u32, y: u32, o: u32| -> f32 {
        (hash2(x, y, seed.wrapping_add(u64::from(o))) % 1024) as f32 / 1023.0
    };
    let mut data = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            let mut v = 0.0f32;
            let mut amp = 0.5f32;
            let mut freq = 8.0f32;
            for o in 0..octaves {
                let fx = x as f32 / width as f32 * freq;
                let fy = y as f32 / height as f32 * freq;
                let (x0, y0) = (fx.floor() as u32, fy.floor() as u32);
                let (tx, ty) = (fx.fract(), fy.fract());
                let v00 = lattice(x0, y0, o);
                let v10 = lattice(x0 + 1, y0, o);
                let v01 = lattice(x0, y0 + 1, o);
                let v11 = lattice(x0 + 1, y0 + 1, o);
                let top = v00 + (v10 - v00) * tx;
                let bot = v01 + (v11 - v01) * tx;
                v += (top + (bot - top) * ty) * amp;
                amp *= 0.5;
                freq *= 2.0;
            }
            let g = (v.clamp(0.0, 1.0) * 255.0) as u8;
            data.push(Rgba8::rgb(g / 2, g, g / 3)); // greenish terrain tint
        }
    }
    (width, height, data)
}

/// Road texture: dark asphalt noise with a bright dashed center line — the
/// canonical high-anisotropy surface in driving games (GRID / NFS stand-in).
///
/// # Panics
///
/// Panics if the image is empty.
pub fn road(width: u32, height: u32, seed: u64) -> Image {
    assert!(width > 0 && height > 0);
    let mut data = Vec::with_capacity((width * height) as usize);
    let line_half_width = (width / 32).max(1);
    let dash_period = (height / 8).max(2);
    for y in 0..height {
        for x in 0..width {
            let center_dist = (i64::from(x) - i64::from(width / 2)).unsigned_abs() as u32;
            let on_line = center_dist < line_half_width && (y / dash_period).is_multiple_of(2);
            if on_line {
                data.push(Rgba8::rgb(230, 220, 120));
            } else {
                let tone = 40 + (hash2(x, y, seed) % 30) as u8;
                data.push(Rgba8::gray(tone));
            }
        }
    }
    (width, height, data)
}

/// Text-like glyph noise: dense small rectangles of high contrast, similar in
/// spectrum to signage/HUD textures where AF visibly preserves legibility.
///
/// # Panics
///
/// Panics if the image is empty.
pub fn glyphs(width: u32, height: u32, seed: u64) -> Image {
    assert!(width > 0 && height > 0);
    let cell = 8u32;
    let mut data = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            let (cx, cy) = (x / cell, y / cell);
            let bits = hash2(cx, cy, seed);
            let (ox, oy) = (x % cell, y % cell);
            // 5x7 pseudo-glyph inside an 8x8 cell, 1-texel margin.
            let lit =
                (1..=5).contains(&ox) && (1..=7).contains(&oy) && (bits >> (ox + oy * 5)) & 1 == 1;
            data.push(if lit {
                Rgba8::gray(15)
            } else {
                Rgba8::gray(235)
            });
        }
    }
    (width, height, data)
}

/// Multi-scale plaid: square-wave grids at several octaves of period.
///
/// Unlike random noise — which averages to flat gray in coarse mip levels,
/// hiding anisotropic blur from SSIM — plaid keeps strong structured
/// contrast at *every* mip scale, so the difference between sampling at
/// AF's fine LOD and TF's coarse LOD stays visible at every viewing
/// distance. This is the property of real game surface detail (tiles,
/// panels, planks) that makes AF matter perceptually.
///
/// # Panics
///
/// Panics if the image is empty.
pub fn plaid(width: u32, height: u32, seed: u64) -> Image {
    assert!(width > 0 && height > 0);
    let mut rng = DetRng::new(seed);
    // Two strongly contrasting tones with a seeded hue.
    let hue: [f32; 3] = [
        0.6 + 0.4 * (rng.range(100) as f32 / 100.0),
        0.6 + 0.4 * (rng.range(100) as f32 / 100.0),
        0.6 + 0.4 * (rng.range(100) as f32 / 100.0),
    ];
    let tone = |v: f32| -> Rgba8 {
        Rgba8::rgb(
            (v * hue[0]).clamp(0.0, 255.0) as u8,
            (v * hue[1]).clamp(0.0, 255.0) as u8,
            (v * hue[2]).clamp(0.0, 255.0) as u8,
        )
    };
    // Each octave is an independent random-sign cell grid at full strength;
    // the octaves sum like a random walk (clipped to the displayable range).
    // A box-filtered mip at level L removes the octaves finer than its texel
    // size but the level-L image still carries the *same* per-octave
    // amplitude at its own 1–4 texel scale — so every viewing distance sees
    // high-contrast detail, and every extra mip of blur visibly erases one
    // octave of it. This is the spectral shape of real game surface detail.
    let amp = 55.0f32;
    let mut data = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            let mut v = 127.0f32;
            let mut k = 0u32;
            while (1u32 << (k + 1)) <= width.max(height) {
                let sign = if hash2(x >> (k + 1), y >> (k + 1), seed ^ u64::from(k)) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                };
                v += sign * amp;
                k += 1;
            }
            data.push(tone(v));
        }
    }
    (width, height, data)
}

/// Composite "game surface": noise base with brick mid-frequencies and a few
/// glyph decals. Used for walls and props.
///
/// # Panics
///
/// Panics if the image is empty.
pub fn composite(width: u32, height: u32, seed: u64) -> Image {
    let (_, _, noise) = value_noise(width, height, 3, seed);
    let (_, _, brick) = bricks(
        width,
        height,
        (width / 8).max(2),
        (height / 16).max(2),
        seed ^ 0x5A5A,
    );
    let mut data = Vec::with_capacity((width * height) as usize);
    for (n, b) in noise.iter().zip(&brick) {
        data.push(Rgba8::weighted_sum(&[(*n, 0.35), (*b, 0.65)]));
    }
    (width, height, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn luma_variance(img: &Image) -> f32 {
        let (_, _, data) = img;
        let mean = data.iter().map(|t| t.luma()).sum::<f32>() / data.len() as f32;
        data.iter().map(|t| (t.luma() - mean).powi(2)).sum::<f32>() / data.len() as f32
    }

    #[test]
    fn generators_produce_correct_sizes() {
        for img in [
            checkerboard(32, 16, 4, 1),
            stripes(32, 16, 4, 1),
            bricks(32, 16, 8, 4, 1),
            value_noise(32, 16, 3, 1),
            road(32, 16, 1),
            glyphs(32, 16, 1),
            composite(32, 16, 1),
        ] {
            assert_eq!(img.0, 32);
            assert_eq!(img.1, 16);
            assert_eq!(img.2.len(), 32 * 16);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(checkerboard(16, 16, 2, 42), checkerboard(16, 16, 2, 42));
        assert_eq!(value_noise(16, 16, 4, 42), value_noise(16, 16, 4, 42));
        assert_eq!(composite(16, 16, 42), composite(16, 16, 42));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(value_noise(16, 16, 4, 1).2, value_noise(16, 16, 4, 2).2);
        assert_ne!(glyphs(16, 16, 1).2, glyphs(16, 16, 2).2);
    }

    #[test]
    fn checkerboard_alternates() {
        let (_, _, data) = checkerboard(8, 8, 1, 0);
        assert_ne!(data[0], data[1]);
        assert_eq!(data[0], data[2]);
    }

    #[test]
    fn all_textures_have_contrast() {
        // AF only matters on content with spatial variation.
        for (name, img) in [
            ("checker", checkerboard(64, 64, 4, 1)),
            ("stripes", stripes(64, 64, 4, 1)),
            ("bricks", bricks(64, 64, 16, 8, 1)),
            ("noise", value_noise(64, 64, 4, 1)),
            ("road", road(64, 64, 1)),
            ("glyphs", glyphs(64, 64, 1)),
            ("composite", composite(64, 64, 1)),
        ] {
            assert!(luma_variance(&img) > 50.0, "{name} too flat");
        }
    }

    #[test]
    fn road_has_bright_center_line() {
        let (w, _, data) = road(64, 64, 3);
        let center = data[(w / 2) as usize];
        let edge = data[0];
        assert!(center.luma() > edge.luma());
    }
}
