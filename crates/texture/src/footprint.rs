//! Screen-space sampling footprints: the geometry behind TF vs. AF.
//!
//! When a pixel is inverse-mapped onto a texture (paper Fig. 9), its footprint
//! is an ellipse whose axes come from the screen-space UV derivatives. The
//! texture unit derives three things from the footprint:
//!
//! * the **anisotropy ratio** — major axis / minor axis — whose ceiling is the
//!   AF sample size `N` (clamped to the unit's max level, typically 16);
//! * the **TF LOD**, chosen from the *longest* axis so an isotropic (square)
//!   filter covers the whole footprint without aliasing — blurring it along
//!   the short axis;
//! * the **AF LOD**, chosen from the *minor* axis, which is finer. The gap
//!   between the two is the paper's "LOD shift" (Sec. V-C): naively demoting
//!   a pixel from AF to TF moves its texels to a blurrier mip level.

use patu_gmath::Vec2;

/// The sampling footprint of one pixel in texture space, produced by the
/// *Texel Generation* stage (paper Fig. 2) from UV derivatives.
///
/// ```
/// use patu_texture::Footprint;
/// use patu_gmath::Vec2;
/// // Isotropic footprint: N = 1, both LODs equal.
/// let fp = Footprint::from_derivatives(
///     Vec2::new(1.0 / 256.0, 0.0),
///     Vec2::new(0.0, 1.0 / 256.0),
///     256,
///     256,
///     16,
/// );
/// assert_eq!(fp.n, 1);
/// assert!((fp.tf_lod - fp.af_lod).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// AF sample size: the number of trilinear taps AF takes along the major
    /// axis (`1 ≤ n ≤ max_aniso`). `n == 1` means the pixel is isotropic and
    /// plain trilinear filtering is exact.
    pub n: u32,
    /// Unclamped anisotropy ratio (major / minor axis length in texels).
    pub anisotropy: f32,
    /// LOD trilinear filtering would use (from the major axis — coarser).
    pub tf_lod: f32,
    /// LOD anisotropic filtering uses (from the minor axis — finer).
    pub af_lod: f32,
    /// Full major-axis extent in UV space; AF taps are distributed along it,
    /// centered on the sample point.
    pub major_axis_uv: Vec2,
    /// Major axis length in texel units.
    pub major_len: f32,
    /// Minor axis length in texel units.
    pub minor_len: f32,
}

impl Footprint {
    /// Derives the footprint from screen-space UV derivatives.
    ///
    /// `duv_dx` and `duv_dy` are the UV changes per one-pixel step along
    /// screen X and Y (as produced by quad differencing in the rasterizer);
    /// `tex_w`/`tex_h` convert them to texel units. `max_aniso` is the texture
    /// unit's maximum AF level ([`crate::MAX_ANISO`] for the paper's
    /// configuration).
    ///
    /// Degenerate derivatives (zero or non-finite) produce an isotropic
    /// footprint at LOD 0 rather than NaNs, mirroring hardware clamping.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `max_aniso == 0` or the texture dimensions
    /// are zero.
    pub fn from_derivatives(
        duv_dx: Vec2,
        duv_dy: Vec2,
        tex_w: u32,
        tex_h: u32,
        max_aniso: u32,
    ) -> Footprint {
        debug_assert!(max_aniso >= 1, "max_aniso must be at least 1");
        debug_assert!(tex_w > 0 && tex_h > 0);
        let scale = Vec2::new(tex_w as f32, tex_h as f32);
        let px = duv_dx * scale;
        let py = duv_dy * scale;
        let len_x = px.length();
        let len_y = py.length();

        if !len_x.is_finite() || !len_y.is_finite() {
            return Footprint::isotropic();
        }

        let (major, major_len, minor_len, major_duv) = if len_x >= len_y {
            (px, len_x, len_y, duv_dx)
        } else {
            (py, len_y, len_x, duv_dy)
        };
        let _ = major;

        // Hardware clamps the footprint to at least one texel on each axis so
        // magnified textures stay isotropic at LOD 0.
        let major_len = major_len.max(1.0);
        let minor_len = minor_len.max(1.0).min(major_len);

        let anisotropy = major_len / minor_len;
        let n = (anisotropy.ceil() as u32).clamp(1, max_aniso);

        // TF covers the footprint with a square sized by the major axis.
        let tf_lod = major_len.log2().max(0.0);
        // AF samples N times along the major axis; each tap covers
        // major_len / n texels, never finer than the minor axis.
        let af_per_tap = (major_len / n as f32).max(minor_len);
        let af_lod = af_per_tap.log2().max(0.0);

        Footprint {
            n,
            anisotropy,
            tf_lod,
            af_lod,
            major_axis_uv: major_duv,
            major_len,
            minor_len,
        }
    }

    /// The degenerate isotropic footprint (N = 1, LOD 0).
    pub fn isotropic() -> Footprint {
        Footprint {
            n: 1,
            anisotropy: 1.0,
            tf_lod: 0.0,
            af_lod: 0.0,
            major_axis_uv: Vec2::ZERO,
            major_len: 1.0,
            minor_len: 1.0,
        }
    }

    /// The LOD shift (in mip levels) a naive AF→TF demotion would introduce:
    /// `tf_lod - af_lod ≈ log2(N)`. PATU eliminates it by reusing the AF LOD
    /// (paper Sec. V-C(2)).
    pub fn lod_shift(&self) -> f32 {
        self.tf_lod - self.af_lod
    }

    /// The parametric offsets of AF's `n` trilinear taps along the major
    /// axis, in `[-0.5, 0.5]`, ordered center-outward so tap 0 is the
    /// center-most sample (the paper's `X_0`, which shares its center with
    /// the TF sample).
    pub fn tap_offsets(&self) -> Vec<f32> {
        let mut offsets = Vec::with_capacity(self.n as usize);
        self.tap_offsets_into(&mut offsets);
        offsets
    }

    /// Allocation-free form of [`Footprint::tap_offsets`]: clears `out` and
    /// fills it with the same offsets in the same center-outward order. The
    /// batched fragment path reuses one scratch vector across a whole batch
    /// instead of allocating per pixel.
    pub fn tap_offsets_into(&self, out: &mut Vec<f32>) {
        let n = self.n as usize;
        out.clear();
        out.extend((0..n).map(|i| (i as f32 + 0.5) / n as f32 - 0.5));
        out.sort_by(|a, b| a.abs().total_cmp(&b.abs()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(du_texels_x: f32, dv_texels_y: f32, size: u32) -> Footprint {
        Footprint::from_derivatives(
            Vec2::new(du_texels_x / size as f32, 0.0),
            Vec2::new(0.0, dv_texels_y / size as f32),
            size,
            size,
            16,
        )
    }

    #[test]
    fn isotropic_unit_footprint() {
        let f = fp(1.0, 1.0, 256);
        assert_eq!(f.n, 1);
        assert_eq!(f.tf_lod, 0.0);
        assert_eq!(f.af_lod, 0.0);
        assert_eq!(f.lod_shift(), 0.0);
    }

    #[test]
    fn anisotropy_ratio_sets_n() {
        let f = fp(8.0, 1.0, 256);
        assert_eq!(f.n, 8);
        assert!((f.anisotropy - 8.0).abs() < 1e-5);
    }

    #[test]
    fn n_clamped_to_max_aniso() {
        let f = fp(64.0, 1.0, 1024);
        assert_eq!(f.n, 16);
        assert!(f.anisotropy > 16.0);
    }

    #[test]
    fn n_clamped_to_lower_max() {
        let f = Footprint::from_derivatives(
            Vec2::new(8.0 / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            4,
        );
        assert_eq!(f.n, 4);
    }

    #[test]
    fn tf_lod_from_major_axis() {
        let f = fp(8.0, 1.0, 256);
        assert!(
            (f.tf_lod - 3.0).abs() < 1e-5,
            "log2(8) = 3, got {}",
            f.tf_lod
        );
    }

    #[test]
    fn af_lod_from_minor_axis() {
        let f = fp(8.0, 1.0, 256);
        assert!(
            (f.af_lod - 0.0).abs() < 1e-5,
            "8 taps over 8 texels, got {}",
            f.af_lod
        );
        assert!((f.lod_shift() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn af_lod_between_minor_and_major_when_clamped() {
        // 64:1 anisotropy clamped to 16 taps: each tap covers 4 texels -> lod 2.
        let f = fp(64.0, 1.0, 1024);
        assert!((f.af_lod - 2.0).abs() < 1e-5, "got {}", f.af_lod);
    }

    #[test]
    fn major_axis_follows_longer_derivative() {
        let f = Footprint::from_derivatives(
            Vec2::new(0.0, 8.0 / 256.0), // d/dx moves along v
            Vec2::new(1.0 / 256.0, 0.0),
            256,
            256,
            16,
        );
        assert_eq!(f.n, 8);
        assert!(f.major_axis_uv.y.abs() > f.major_axis_uv.x.abs());
    }

    #[test]
    fn magnification_clamps_to_isotropic() {
        // Derivatives much smaller than a texel: magnified texture.
        let f = fp(0.01, 0.001, 256);
        assert_eq!(f.n, 1);
        assert_eq!(f.tf_lod, 0.0);
    }

    #[test]
    fn degenerate_derivatives_are_isotropic() {
        let f = Footprint::from_derivatives(
            Vec2::new(f32::NAN, 0.0),
            Vec2::new(0.0, f32::INFINITY),
            64,
            64,
            16,
        );
        assert_eq!(f.n, 1);
    }

    #[test]
    fn tap_offsets_centered_and_bounded() {
        for n_texels in [1.0, 2.0, 3.0, 7.0, 16.0] {
            let f = fp(n_texels, 1.0, 256);
            let offs = f.tap_offsets();
            assert_eq!(offs.len(), f.n as usize);
            let sum: f32 = offs.iter().sum();
            assert!(sum.abs() < 1e-5, "offsets average to the pixel center");
            for &o in &offs {
                assert!((-0.5..=0.5).contains(&o));
            }
        }
    }

    #[test]
    fn tap_offsets_center_first() {
        let f = fp(5.0, 1.0, 256);
        let offs = f.tap_offsets();
        assert_eq!(offs[0], 0.0, "odd N has an exact center tap first");
        for w in offs.windows(2) {
            assert!(w[0].abs() <= w[1].abs() + 1e-6, "ordered center-outward");
        }
    }

    #[test]
    fn lod_shift_grows_with_anisotropy() {
        let mut last = -1.0;
        for a in [1.0f32, 2.0, 4.0, 8.0, 16.0] {
            let f = fp(a, 1.0, 1024);
            assert!(f.lod_shift() >= last);
            last = f.lod_shift();
        }
    }
}
