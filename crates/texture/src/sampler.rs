//! Hardware-style texture samplers.
//!
//! Each sampler returns the filtered color *and* the set of texel addresses
//! it touched, exactly as the texture-unit pipeline of the paper's Fig. 2
//! produces them: *Texel Generation* → *Texture Quality Selection* (LOD) →
//! *Texel Address Calculation* → *Texel Fetching* → *Filtering*.
//!
//! The anisotropic sampler implements the paper's Eq. (3): AF's output is the
//! average of `N` trilinear samples distributed along the footprint's major
//! axis, each computed by the same trilinear machinery as a plain TF sample.

use crate::footprint::Footprint;
use crate::texel::{Rgba8, TexelAddress};
use crate::texture::{AddressMode, Texture};
use patu_gmath::Vec2;

/// One trilinear sample: the `X_i` of the paper's Eq. (3).
///
/// A trilinear sample bilinearly filters 4 texels on each of two adjacent mip
/// levels and blends them, touching 8 texel addresses in total.
#[derive(Debug, Clone, PartialEq)]
pub struct Tap {
    /// Texture coordinates of the tap center.
    pub uv: Vec2,
    /// Fractional LOD the tap filtered at.
    pub lod: f32,
    /// Filtered color of this tap.
    pub color: Rgba8,
    /// The 8 texel addresses the tap fetched (4 per mip level; entries may
    /// repeat when the LOD is clamped at the ends of the mip chain). The
    /// first 4 belong to the finer level, the last 4 to the coarser level.
    pub addresses: Vec<TexelAddress>,
}

impl Tap {
    /// The coarser-mip-level half of the tap's address set (the last 4
    /// addresses). Neighboring taps quantize onto the same coarse-level
    /// texels roughly twice as often as onto fine-level ones, which is the
    /// granularity PATU's texel-address hash table compares at (paper
    /// Fig. 11: most of AF's samples share TF's texel set).
    pub fn coarse_level_addresses(&self) -> &[TexelAddress] {
        &self.addresses[self.addresses.len().saturating_sub(4)..]
    }
}

/// The complete result of filtering one pixel: the final color plus the
/// architectural trace (every tap, every texel address) that the timing
/// model and PATU's predictors consume.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Final filtered color returned to the shader.
    pub color: Rgba8,
    /// The trilinear taps taken (1 for TF, `N` for AF).
    pub taps: Vec<Tap>,
    /// The AF sample size this record was filtered with (1 = TF-only).
    pub n: u32,
    /// The LOD the taps used.
    pub lod: f32,
}

impl SampleRecord {
    /// Total texels fetched across all taps (with duplicates — the raw fetch
    /// count the texture unit issues before any cache filtering).
    pub fn texel_fetches(&self) -> usize {
        self.taps.iter().map(|t| t.addresses.len()).sum()
    }

    /// Iterator over all touched texel addresses (with duplicates).
    pub fn addresses(&self) -> impl Iterator<Item = TexelAddress> + '_ {
        self.taps.iter().flat_map(|t| t.addresses.iter().copied())
    }
}

/// Nearest-neighbor sample of one mip level: the single texel whose center
/// is closest to `uv`. The cheapest filter mode; used for point-sampled
/// UI/lookup textures and as a reference in tests.
///
/// Returns the texel color and its address.
pub fn sample_nearest(
    tex: &Texture,
    uv: Vec2,
    level: u32,
    mode: AddressMode,
) -> (Rgba8, TexelAddress) {
    let lvl = tex.level(level);
    let x = (uv.x * lvl.width() as f32).floor() as i64;
    let y = (uv.y * lvl.height() as f32).floor() as i64;
    (
        tex.texel(level, x, y, mode),
        tex.texel_address(level, x, y, mode),
    )
}

/// The 4 texel addresses a bilinear tap at `uv` on `level` would fetch,
/// without filtering — the pure *Texel Address Calculation* stage output.
///
/// PATU's hash table compares AF taps by the TF-level sample area they fall
/// into (paper Fig. 11); this function provides those keys cheaply.
pub fn bilinear_addresses(
    tex: &Texture,
    uv: Vec2,
    level: u32,
    mode: AddressMode,
) -> [TexelAddress; 4] {
    let lvl = tex.level(level);
    let x = uv.x * lvl.width() as f32 - 0.5;
    let y = uv.y * lvl.height() as f32 - 0.5;
    let (x0, y0) = (x.floor() as i64, y.floor() as i64);
    [
        tex.texel_address(level, x0, y0, mode),
        tex.texel_address(level, x0 + 1, y0, mode),
        tex.texel_address(level, x0, y0 + 1, mode),
        tex.texel_address(level, x0 + 1, y0 + 1, mode),
    ]
}

/// Bilinear sample of one mip level: 4 texels, weights from the fractional
/// position of the sample point relative to texel centers.
///
/// Returns the filtered color and the 4 texel addresses fetched.
pub fn sample_bilinear(
    tex: &Texture,
    uv: Vec2,
    level: u32,
    mode: AddressMode,
) -> (Rgba8, [TexelAddress; 4]) {
    let lvl = tex.level(level);
    let (w, h) = (lvl.width(), lvl.height());
    // Texel centers sit at integer + 0.5.
    let x = uv.x * w as f32 - 0.5;
    let y = uv.y * h as f32 - 0.5;
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let (x0, y0) = (x0 as i64, y0 as i64);

    let coords = [(x0, y0), (x0 + 1, y0), (x0, y0 + 1), (x0 + 1, y0 + 1)];
    let weights = [
        (1.0 - fx) * (1.0 - fy),
        fx * (1.0 - fy),
        (1.0 - fx) * fy,
        fx * fy,
    ];

    let mut texels = [(Rgba8::BLACK, 0.0f32); 4];
    let mut addresses = [TexelAddress::default(); 4];
    for (i, (&(cx, cy), &wgt)) in coords.iter().zip(&weights).enumerate() {
        texels[i] = (tex.texel(level, cx, cy, mode), wgt);
        addresses[i] = tex.texel_address(level, cx, cy, mode);
    }
    (Rgba8::weighted_sum(&texels), addresses)
}

/// Trilinear sample at a fractional LOD: two bilinear taps on adjacent mip
/// levels blended by the LOD fraction — 8 texel fetches.
///
/// The LOD is clamped into the texture's mip range like hardware does.
pub fn sample_trilinear(tex: &Texture, uv: Vec2, lod: f32, mode: AddressMode) -> Tap {
    let mut addresses = Vec::with_capacity(8);
    let (color, lod) = sample_trilinear_into(tex, uv, lod, mode, &mut addresses);
    Tap {
        uv,
        lod,
        color,
        addresses,
    }
}

/// Flat-output form of [`sample_trilinear`]: appends the tap's 8 texel
/// addresses (4 fine, then 4 coarse) to `addresses` instead of allocating a
/// fresh vector, and returns the filtered color and clamped LOD.
///
/// [`sample_trilinear`] is implemented on top of this, so the two are
/// bit-identical by construction; the batched fragment path uses this form
/// directly to lay a whole batch's fetches out contiguously.
pub fn sample_trilinear_into(
    tex: &Texture,
    uv: Vec2,
    lod: f32,
    mode: AddressMode,
    addresses: &mut Vec<TexelAddress>,
) -> (Rgba8, f32) {
    let lod = tex.clamp_lod(lod);
    let l0 = lod.floor() as u32;
    let l1 = (l0 + 1).min(tex.mip_count() - 1);
    let frac = lod - lod.floor();

    let (c0, a0) = sample_bilinear(tex, uv, l0, mode);
    let (c1, a1) = sample_bilinear(tex, uv, l1, mode);
    let color = Rgba8::weighted_sum(&[(c0, 1.0 - frac), (c1, frac)]);

    addresses.extend_from_slice(&a0);
    addresses.extend_from_slice(&a1);
    (color, lod)
}

/// Plain trilinear filtering of a pixel, as a [`SampleRecord`] with `n = 1`.
///
/// This is the paper's `X`: the pixel color when AF is skipped. `lod` should
/// normally be the footprint's [`Footprint::tf_lod`]; PATU instead passes
/// [`Footprint::af_lod`] to avoid the LOD shift (Sec. V-C(2)).
pub fn sample_trilinear_record(
    tex: &Texture,
    uv: Vec2,
    lod: f32,
    mode: AddressMode,
) -> SampleRecord {
    let tap = sample_trilinear(tex, uv, lod, mode);
    SampleRecord {
        color: tap.color,
        lod: tap.lod,
        taps: vec![tap],
        n: 1,
    }
}

/// Anisotropic filtering of a pixel per the paper's Eq. (3): `N` trilinear
/// taps along the footprint's major axis at the AF LOD, averaged.
///
/// The returned record's taps are ordered center-outward (tap 0 is `X_0`,
/// the tap sharing its center with the TF sample).
pub fn sample_anisotropic(
    tex: &Texture,
    uv: Vec2,
    footprint: &Footprint,
    mode: AddressMode,
) -> SampleRecord {
    let lod = tex.clamp_lod(footprint.af_lod);
    let offsets = footprint.tap_offsets();
    let mut taps = Vec::with_capacity(offsets.len());
    for t in offsets {
        let tap_uv = uv + footprint.major_axis_uv * t;
        taps.push(sample_trilinear(tex, tap_uv, lod, mode));
    }
    let colors: Vec<Rgba8> = taps.iter().map(|t| t.color).collect();
    SampleRecord {
        color: Rgba8::average(&colors),
        n: footprint.n,
        lod,
        taps,
    }
}

#[cfg(test)]
mod tests {
    // Tests may hash: iteration order is never observed in assertions.
    #![allow(clippy::disallowed_types)]
    use super::*;
    use crate::procedural;

    fn flat(size: u32, c: Rgba8) -> Texture {
        Texture::with_mips((size, size, vec![c; (size * size) as usize]), 0)
    }

    fn center_uv() -> Vec2 {
        Vec2::new(0.5, 0.5)
    }

    #[test]
    fn nearest_picks_containing_texel() {
        let tex = Texture::single_level(
            (
                2,
                2,
                vec![
                    Rgba8::rgb(255, 0, 0),
                    Rgba8::rgb(0, 255, 0),
                    Rgba8::rgb(0, 0, 255),
                    Rgba8::rgb(255, 255, 0),
                ],
            ),
            0,
        );
        // Anywhere inside the upper-left quadrant maps to texel (0,0).
        let (c, a) = sample_nearest(&tex, Vec2::new(0.2, 0.3), 0, AddressMode::Clamp);
        assert_eq!(c, Rgba8::rgb(255, 0, 0));
        assert_eq!(a, tex.texel_address(0, 0, 0, AddressMode::Clamp));
        let (c, _) = sample_nearest(&tex, Vec2::new(0.9, 0.9), 0, AddressMode::Clamp);
        assert_eq!(c, Rgba8::rgb(255, 255, 0));
    }

    #[test]
    fn nearest_wraps_out_of_range() {
        let tex = Texture::single_level((2, 1, vec![Rgba8::BLACK, Rgba8::WHITE]), 0);
        let (c, _) = sample_nearest(&tex, Vec2::new(1.75, 0.0), 0, AddressMode::Wrap);
        assert_eq!(c, Rgba8::WHITE, "u=1.75 wraps into the second texel");
    }

    #[test]
    fn bilinear_flat_texture_is_exact() {
        let c = Rgba8::rgb(10, 200, 30);
        let tex = flat(16, c);
        let (out, addrs) = sample_bilinear(&tex, center_uv(), 0, AddressMode::Wrap);
        assert_eq!(out, c);
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    fn bilinear_at_texel_center_returns_that_texel() {
        // 2x2 texture: distinct corners.
        let tex = Texture::single_level(
            (
                2,
                2,
                vec![
                    Rgba8::rgb(255, 0, 0),
                    Rgba8::rgb(0, 255, 0),
                    Rgba8::rgb(0, 0, 255),
                    Rgba8::rgb(255, 255, 0),
                ],
            ),
            0,
        );
        // Texel (0,0) center is uv (0.25, 0.25).
        let (out, _) = sample_bilinear(&tex, Vec2::new(0.25, 0.25), 0, AddressMode::Clamp);
        assert_eq!(out, Rgba8::rgb(255, 0, 0));
    }

    #[test]
    fn bilinear_midpoint_blends_evenly() {
        let tex = Texture::single_level((2, 1, vec![Rgba8::BLACK, Rgba8::WHITE]), 0);
        let (out, _) = sample_bilinear(&tex, Vec2::new(0.5, 0.5), 0, AddressMode::Clamp);
        assert!((i32::from(out.r) - 128).abs() <= 1, "got {}", out.r);
    }

    #[test]
    fn bilinear_addresses_are_neighbors() {
        let tex = flat(16, Rgba8::WHITE);
        let (_, addrs) = sample_bilinear(&tex, Vec2::new(0.5, 0.5), 0, AddressMode::Wrap);
        // 4 distinct addresses forming a 2x2 block.
        let set: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn trilinear_fetches_eight_addresses() {
        let tex = flat(32, Rgba8::WHITE);
        let tap = sample_trilinear(&tex, center_uv(), 1.5, AddressMode::Wrap);
        assert_eq!(tap.addresses.len(), 8);
        assert_eq!(tap.lod, 1.5);
    }

    #[test]
    fn trilinear_clamps_lod() {
        let tex = flat(8, Rgba8::WHITE);
        let tap = sample_trilinear(&tex, center_uv(), 99.0, AddressMode::Wrap);
        assert_eq!(tap.lod, (tex.mip_count() - 1) as f32);
        let tap = sample_trilinear(&tex, center_uv(), -3.0, AddressMode::Wrap);
        assert_eq!(tap.lod, 0.0);
    }

    #[test]
    fn trilinear_integer_lod_matches_bilinear() {
        let tex = Texture::with_mips(procedural::checkerboard(32, 32, 4, 3), 0);
        let (bi, _) = sample_bilinear(&tex, Vec2::new(0.3, 0.7), 2, AddressMode::Wrap);
        let tri = sample_trilinear(&tex, Vec2::new(0.3, 0.7), 2.0, AddressMode::Wrap);
        assert_eq!(tri.color, bi);
    }

    #[test]
    fn trilinear_blends_between_levels() {
        // Levels differ: base checker vs. averaged upper level.
        let tex = Texture::with_mips(procedural::checkerboard(32, 32, 1, 3), 0);
        let uv = Vec2::new(0.25, 0.25);
        let l0 = sample_trilinear(&tex, uv, 0.0, AddressMode::Wrap).color;
        let l2 = sample_trilinear(&tex, uv, 2.0, AddressMode::Wrap).color;
        let mid = sample_trilinear(&tex, uv, 1.0, AddressMode::Wrap).color;
        // Mid-level luma lies between the two ends (checker converges to gray).
        let lo = l0.luma().min(l2.luma()) - 1.0;
        let hi = l0.luma().max(l2.luma()) + 1.0;
        assert!(mid.luma() >= lo && mid.luma() <= hi);
    }

    #[test]
    fn aniso_isotropic_footprint_equals_trilinear() {
        let tex = Texture::with_mips(procedural::checkerboard(64, 64, 4, 9), 0);
        let fp = Footprint::isotropic();
        let uv = Vec2::new(0.4, 0.6);
        let af = sample_anisotropic(&tex, uv, &fp, AddressMode::Wrap);
        let tf = sample_trilinear_record(&tex, uv, fp.af_lod, AddressMode::Wrap);
        assert_eq!(af.color, tf.color);
        assert_eq!(af.taps.len(), 1);
    }

    #[test]
    fn aniso_tap_count_matches_footprint() {
        let tex = Texture::with_mips(procedural::checkerboard(256, 256, 8, 9), 0);
        let fp = Footprint::from_derivatives(
            Vec2::new(8.0 / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            16,
        );
        let rec = sample_anisotropic(&tex, center_uv(), &fp, AddressMode::Wrap);
        assert_eq!(rec.taps.len(), 8);
        assert_eq!(rec.n, 8);
        assert_eq!(rec.texel_fetches(), 64, "8 taps x 8 texels");
    }

    #[test]
    fn aniso_taps_spread_along_major_axis() {
        let tex = flat(256, Rgba8::WHITE);
        let fp = Footprint::from_derivatives(
            Vec2::new(4.0 / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            16,
        );
        let rec = sample_anisotropic(&tex, center_uv(), &fp, AddressMode::Wrap);
        let us: Vec<f32> = rec.taps.iter().map(|t| t.uv.x).collect();
        let vs: Vec<f32> = rec.taps.iter().map(|t| t.uv.y).collect();
        assert!(vs.iter().all(|&v| (v - 0.5).abs() < 1e-6), "v constant");
        let span = us.iter().cloned().fold(f32::MIN, f32::max)
            - us.iter().cloned().fold(f32::MAX, f32::min);
        assert!(span > 0.0, "taps spread along u");
    }

    #[test]
    fn aniso_first_tap_is_center() {
        let tex = flat(256, Rgba8::WHITE);
        let fp = Footprint::from_derivatives(
            Vec2::new(5.0 / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            16,
        );
        let rec = sample_anisotropic(&tex, center_uv(), &fp, AddressMode::Wrap);
        assert!((rec.taps[0].uv - center_uv()).length() < 1e-6);
    }

    #[test]
    fn aniso_uses_finer_lod_than_tf() {
        let tex = Texture::with_mips(procedural::checkerboard(256, 256, 2, 5), 0);
        let fp = Footprint::from_derivatives(
            Vec2::new(8.0 / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            16,
        );
        let af = sample_anisotropic(&tex, center_uv(), &fp, AddressMode::Wrap);
        assert!(
            af.lod < fp.tf_lod,
            "AF lod {} < TF lod {}",
            af.lod,
            fp.tf_lod
        );
    }

    #[test]
    fn aniso_on_flat_texture_matches_tf() {
        // On constant content AF and TF must agree exactly.
        let c = Rgba8::rgb(7, 77, 177);
        let tex = flat(128, c);
        let fp = Footprint::from_derivatives(
            Vec2::new(16.0 / 128.0, 0.0),
            Vec2::new(0.0, 1.0 / 128.0),
            128,
            128,
            16,
        );
        let af = sample_anisotropic(&tex, center_uv(), &fp, AddressMode::Wrap);
        let tf = sample_trilinear_record(&tex, center_uv(), fp.tf_lod, AddressMode::Wrap);
        assert_eq!(af.color, tf.color);
    }

    #[test]
    fn trilinear_into_matches_allocating_form() {
        let tex = Texture::with_mips(procedural::checkerboard(64, 64, 4, 9), 0);
        for lod in [0.0, 0.4, 1.5, 99.0, -2.0] {
            let tap = sample_trilinear(&tex, Vec2::new(0.31, 0.77), lod, AddressMode::Wrap);
            let mut flat = Vec::new();
            let (color, clamped) = sample_trilinear_into(
                &tex,
                Vec2::new(0.31, 0.77),
                lod,
                AddressMode::Wrap,
                &mut flat,
            );
            assert_eq!(color, tap.color);
            assert_eq!(clamped, tap.lod);
            assert_eq!(flat, tap.addresses);
        }
    }

    #[test]
    fn tap_offsets_into_matches_allocating_form() {
        for n_texels in [1.0f32, 2.0, 5.0, 16.0] {
            let fp = Footprint::from_derivatives(
                Vec2::new(n_texels / 256.0, 0.0),
                Vec2::new(0.0, 1.0 / 256.0),
                256,
                256,
                16,
            );
            let mut scratch = vec![9.0f32; 3];
            fp.tap_offsets_into(&mut scratch);
            assert_eq!(scratch, fp.tap_offsets());
        }
    }

    #[test]
    fn record_addresses_iterator_counts() {
        let tex = flat(64, Rgba8::WHITE);
        let rec = sample_trilinear_record(&tex, center_uv(), 0.5, AddressMode::Wrap);
        assert_eq!(rec.addresses().count(), 8);
        assert_eq!(rec.texel_fetches(), 8);
    }
}
