//! Mipmapped RGBA8 textures with GPU-style memory layout.

use crate::texel::{Rgba8, TexelAddress};

/// How texture coordinates outside `[0, 1)` are folded back into the texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMode {
    /// Repeat the texture (`GL_REPEAT`), the common case for game surfaces.
    #[default]
    Wrap,
    /// Clamp to the edge texel (`GL_CLAMP_TO_EDGE`).
    Clamp,
    /// Mirror on every repeat (`GL_MIRRORED_REPEAT`).
    Mirror,
}

impl AddressMode {
    /// Folds an integer texel coordinate into `[0, size)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `size` is zero.
    #[inline]
    pub fn apply(self, coord: i64, size: u32) -> u32 {
        debug_assert!(size > 0);
        let size = i64::from(size);
        let folded = match self {
            AddressMode::Wrap => coord.rem_euclid(size),
            AddressMode::Clamp => coord.clamp(0, size - 1),
            AddressMode::Mirror => {
                let period = 2 * size;
                let m = coord.rem_euclid(period);
                if m < size {
                    m
                } else {
                    period - 1 - m
                }
            }
        };
        folded as u32
    }
}

/// One level of a texture's mip chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MipLevel {
    width: u32,
    height: u32,
    /// Byte offset of this level from the texture base address.
    offset: u64,
    data: Vec<Rgba8>,
}

impl MipLevel {
    /// Level width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Level height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Texel at integer coordinates (no address folding).
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    #[inline]
    pub fn texel(&self, x: u32, y: u32) -> Rgba8 {
        assert!(x < self.width && y < self.height, "texel out of bounds");
        self.data[(y as usize) * (self.width as usize) + x as usize]
    }

    /// Raw texel slice in row-major order.
    pub fn texels(&self) -> &[Rgba8] {
        &self.data
    }
}

/// An RGBA8 texture with a full box-filtered mip chain and a simulated GPU
/// memory placement.
///
/// The texture occupies a contiguous byte range starting at `base_address`;
/// each mip level is laid out row-major, 4 bytes per texel, levels packed
/// back-to-back. [`Texture::texel_address`] reproduces what the hardware
/// *Texel Address Calculator* stage computes, which is what the cache
/// simulator and the PATU hash table consume.
///
/// ```
/// use patu_texture::{procedural, Texture};
/// let tex = Texture::with_mips(procedural::checkerboard(64, 64, 8, 1), 0);
/// assert_eq!(tex.mip_count(), 7); // 64,32,16,8,4,2,1
/// assert_eq!(tex.level(6).width(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Texture {
    levels: Vec<MipLevel>,
    base_address: u64,
    footprint_bytes: u64,
}

/// Bytes per stored texel in the simulated memory space. Game textures are
/// block-compressed (DXT/ASTC class), so the architectural cost of a texel
/// is ~2 bytes even though the functional value decodes to RGBA8.
pub const BYTES_PER_TEXEL: u64 = 2;

impl Texture {
    /// Builds a texture from a base image, generating the entire mip chain by
    /// 2×2 box filtering, and places it at `base_address` in the simulated
    /// memory space.
    ///
    /// # Panics
    ///
    /// Panics if the image is empty or if `width * height` does not match the
    /// data length. Non-power-of-two sizes are allowed; odd dimensions round
    /// down (floor) per level like GPUs do.
    pub fn with_mips(base: (u32, u32, Vec<Rgba8>), base_address: u64) -> Texture {
        let (width, height, data) = base;
        assert!(width > 0 && height > 0, "texture must be non-empty");
        assert_eq!(
            data.len(),
            (width as usize) * (height as usize),
            "texel data length must equal width * height"
        );

        let mut levels = Vec::new();
        let mut offset = 0u64;
        levels.push(MipLevel {
            width,
            height,
            offset,
            data,
        });
        offset += u64::from(width) * u64::from(height) * BYTES_PER_TEXEL;

        while let Some(prev) = levels.last().filter(|l| l.width > 1 || l.height > 1) {
            let nw = (prev.width / 2).max(1);
            let nh = (prev.height / 2).max(1);
            let mut data = Vec::with_capacity((nw as usize) * (nh as usize));
            for y in 0..nh {
                for x in 0..nw {
                    // 2x2 box filter; clamp when the previous level is 1 wide/tall.
                    let x0 = (2 * x).min(prev.width - 1);
                    let x1 = (2 * x + 1).min(prev.width - 1);
                    let y0 = (2 * y).min(prev.height - 1);
                    let y1 = (2 * y + 1).min(prev.height - 1);
                    data.push(Rgba8::average(&[
                        prev.texel(x0, y0),
                        prev.texel(x1, y0),
                        prev.texel(x0, y1),
                        prev.texel(x1, y1),
                    ]));
                }
            }
            levels.push(MipLevel {
                width: nw,
                height: nh,
                offset,
                data,
            });
            offset += u64::from(nw) * u64::from(nh) * BYTES_PER_TEXEL;
        }

        Texture {
            levels,
            base_address,
            footprint_bytes: offset,
        }
    }

    /// Builds a single-level texture (no mip chain) — useful in tests.
    pub fn single_level(base: (u32, u32, Vec<Rgba8>), base_address: u64) -> Texture {
        let (width, height, data) = base;
        assert!(width > 0 && height > 0, "texture must be non-empty");
        assert_eq!(data.len(), (width as usize) * (height as usize));
        let footprint_bytes = u64::from(width) * u64::from(height) * BYTES_PER_TEXEL;
        Texture {
            levels: vec![MipLevel {
                width,
                height,
                offset: 0,
                data,
            }],
            base_address,
            footprint_bytes,
        }
    }

    /// Width of the base level.
    pub fn width(&self) -> u32 {
        self.levels[0].width
    }

    /// Height of the base level.
    pub fn height(&self) -> u32 {
        self.levels[0].height
    }

    /// Number of mip levels (1 for a single-level texture).
    pub fn mip_count(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Base byte address of the texture in simulated memory.
    pub fn base_address(&self) -> u64 {
        self.base_address
    }

    /// Total bytes occupied by all levels; the next texture can be placed at
    /// `base_address + size_bytes`.
    pub fn size_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Accesses a mip level, clamping `level` to the last one like hardware.
    pub fn level(&self, level: u32) -> &MipLevel {
        let idx = (level as usize).min(self.levels.len() - 1);
        &self.levels[idx]
    }

    /// Clamps a fractional LOD into the valid `[0, mip_count - 1]` range.
    pub fn clamp_lod(&self, lod: f32) -> f32 {
        lod.clamp(0.0, (self.mip_count() - 1) as f32)
    }

    /// Texel value at integer coordinates with address-mode folding.
    pub fn texel(&self, level: u32, x: i64, y: i64, mode: AddressMode) -> Rgba8 {
        let lvl = self.level(level);
        let tx = mode.apply(x, lvl.width);
        let ty = mode.apply(y, lvl.height);
        lvl.texel(tx, ty)
    }

    /// The simulated memory address of a texel — what the hardware texel
    /// address ALU produces (Sec. II-B / Fig. 2 of the paper).
    pub fn texel_address(&self, level: u32, x: i64, y: i64, mode: AddressMode) -> TexelAddress {
        let clamped_level = (level as usize).min(self.levels.len() - 1) as u32;
        let lvl = self.level(clamped_level);
        let tx = u64::from(mode.apply(x, lvl.width));
        let ty = u64::from(mode.apply(y, lvl.height));
        TexelAddress::new(
            self.base_address + lvl.offset + (ty * u64::from(lvl.width) + tx) * BYTES_PER_TEXEL,
        )
    }
}

#[cfg(test)]
mod tests {
    // Tests may hash: iteration order is never observed in assertions.
    #![allow(clippy::disallowed_types)]
    use super::*;

    fn flat(width: u32, height: u32, c: Rgba8) -> (u32, u32, Vec<Rgba8>) {
        (width, height, vec![c; (width * height) as usize])
    }

    #[test]
    fn address_mode_wrap() {
        assert_eq!(AddressMode::Wrap.apply(-1, 4), 3);
        assert_eq!(AddressMode::Wrap.apply(4, 4), 0);
        assert_eq!(AddressMode::Wrap.apply(9, 4), 1);
    }

    #[test]
    fn address_mode_clamp() {
        assert_eq!(AddressMode::Clamp.apply(-5, 4), 0);
        assert_eq!(AddressMode::Clamp.apply(2, 4), 2);
        assert_eq!(AddressMode::Clamp.apply(99, 4), 3);
    }

    #[test]
    fn address_mode_mirror() {
        // size 4: pattern 0123 3210 0123 ...
        assert_eq!(AddressMode::Mirror.apply(3, 4), 3);
        assert_eq!(AddressMode::Mirror.apply(4, 4), 3);
        assert_eq!(AddressMode::Mirror.apply(7, 4), 0);
        assert_eq!(AddressMode::Mirror.apply(8, 4), 0);
        assert_eq!(AddressMode::Mirror.apply(-1, 4), 0);
    }

    #[test]
    fn mip_chain_count_square() {
        let t = Texture::with_mips(flat(64, 64, Rgba8::WHITE), 0);
        assert_eq!(t.mip_count(), 7);
        assert_eq!(t.level(6).width(), 1);
        assert_eq!(t.level(6).height(), 1);
    }

    #[test]
    fn mip_chain_count_rectangular() {
        let t = Texture::with_mips(flat(64, 16, Rgba8::WHITE), 0);
        // 64x16 -> 32x8 -> 16x4 -> 8x2 -> 4x1 -> 2x1 -> 1x1
        assert_eq!(t.mip_count(), 7);
        assert_eq!(t.level(4).width(), 4);
        assert_eq!(t.level(4).height(), 1);
    }

    #[test]
    fn mip_of_flat_color_stays_flat() {
        let c = Rgba8::rgb(40, 80, 120);
        let t = Texture::with_mips(flat(32, 32, c), 0);
        for lvl in 0..t.mip_count() {
            assert_eq!(t.texel(lvl, 0, 0, AddressMode::Clamp), c, "level {lvl}");
        }
    }

    #[test]
    fn mip_of_checker_converges_to_gray() {
        let t = Texture::with_mips(crate::procedural::checkerboard(64, 64, 1, 7), 0);
        let top = t.texel(t.mip_count() - 1, 0, 0, AddressMode::Clamp);
        // A 1-texel checker of two tones averages near the midpoint.
        let expected = (t.level(0).texel(0, 0).luma() + t.level(0).texel(1, 0).luma()) / 2.0;
        assert!(
            (top.luma() - expected).abs() < 16.0,
            "{} vs {}",
            top.luma(),
            expected
        );
    }

    #[test]
    fn level_clamps_beyond_chain() {
        let t = Texture::with_mips(flat(8, 8, Rgba8::WHITE), 0);
        assert_eq!(t.level(99).width(), 1);
    }

    #[test]
    fn texel_addresses_unique_within_level() {
        let t = Texture::with_mips(flat(8, 8, Rgba8::WHITE), 0x1000);
        let mut seen = std::collections::HashSet::new();
        for y in 0..8 {
            for x in 0..8 {
                assert!(seen.insert(t.texel_address(0, x, y, AddressMode::Clamp)));
            }
        }
    }

    #[test]
    fn texel_addresses_disjoint_across_levels() {
        let t = Texture::with_mips(flat(8, 8, Rgba8::WHITE), 0);
        let a0 = t.texel_address(0, 0, 0, AddressMode::Clamp);
        let a1 = t.texel_address(1, 0, 0, AddressMode::Clamp);
        assert_eq!(a1.as_u64() - a0.as_u64(), 8 * 8 * BYTES_PER_TEXEL);
    }

    #[test]
    fn texel_address_includes_base() {
        let t = Texture::with_mips(flat(4, 4, Rgba8::WHITE), 0xABC0);
        assert_eq!(
            t.texel_address(0, 0, 0, AddressMode::Clamp).as_u64(),
            0xABC0
        );
        assert_eq!(
            t.texel_address(0, 1, 0, AddressMode::Clamp).as_u64(),
            0xABC0 + BYTES_PER_TEXEL
        );
    }

    #[test]
    fn size_bytes_sums_levels() {
        let t = Texture::with_mips(flat(4, 4, Rgba8::WHITE), 0);
        // 16 + 4 + 1 texels = 21 texel-bytes (compressed)
        assert_eq!(t.size_bytes(), 21 * BYTES_PER_TEXEL);
    }

    #[test]
    fn single_level_has_no_mips() {
        let t = Texture::single_level(flat(16, 16, Rgba8::WHITE), 0);
        assert_eq!(t.mip_count(), 1);
        assert_eq!(t.clamp_lod(5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "width * height")]
    fn mismatched_data_length_panics() {
        let _ = Texture::with_mips((4, 4, vec![Rgba8::WHITE; 3]), 0);
    }
}
