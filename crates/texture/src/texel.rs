//! Texel color values and texel memory addresses.

use std::fmt;

/// An 8-bit-per-channel RGBA texel, the storage format of every texture in
/// the simulator (matching the four-component color the paper's texture unit
/// returns to the shaders).
///
/// ```
/// use patu_texture::Rgba8;
/// let c = Rgba8::new(255, 128, 0, 255);
/// assert_eq!(c.luma(), Rgba8::new(255, 128, 0, 255).luma());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgba8 {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
    /// Alpha channel.
    pub a: u8,
}

impl Rgba8 {
    /// Opaque black.
    pub const BLACK: Rgba8 = Rgba8 {
        r: 0,
        g: 0,
        b: 0,
        a: 255,
    };
    /// Opaque white.
    pub const WHITE: Rgba8 = Rgba8 {
        r: 255,
        g: 255,
        b: 255,
        a: 255,
    };
    /// Fully transparent black.
    pub const TRANSPARENT: Rgba8 = Rgba8 {
        r: 0,
        g: 0,
        b: 0,
        a: 0,
    };

    /// Creates a texel from channel values.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8, a: u8) -> Rgba8 {
        Rgba8 { r, g, b, a }
    }

    /// Creates an opaque gray texel.
    #[inline]
    pub const fn gray(v: u8) -> Rgba8 {
        Rgba8 {
            r: v,
            g: v,
            b: v,
            a: 255,
        }
    }

    /// Creates an opaque texel from RGB.
    #[inline]
    pub const fn rgb(r: u8, g: u8, b: u8) -> Rgba8 {
        Rgba8 { r, g, b, a: 255 }
    }

    /// Converts to floating-point channels in `[0, 1]`.
    #[inline]
    pub fn to_f32(self) -> [f32; 4] {
        [
            f32::from(self.r) / 255.0,
            f32::from(self.g) / 255.0,
            f32::from(self.b) / 255.0,
            f32::from(self.a) / 255.0,
        ]
    }

    /// Builds a texel from floating-point channels, clamping into `[0, 1]`.
    #[inline]
    pub fn from_f32(c: [f32; 4]) -> Rgba8 {
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u8;
        Rgba8::new(q(c[0]), q(c[1]), q(c[2]), q(c[3]))
    }

    /// Rec. 601 luma in `[0, 255]` as `f32`; the grayscale channel SSIM is
    /// computed on.
    #[inline]
    pub fn luma(self) -> f32 {
        0.299 * f32::from(self.r) + 0.587 * f32::from(self.g) + 0.114 * f32::from(self.b)
    }

    /// Component-wise weighted blend of many texels. Weights need not sum to
    /// one; the result is the plain weighted sum, clamped on conversion.
    pub fn weighted_sum(texels: &[(Rgba8, f32)]) -> Rgba8 {
        let mut acc = [0.0f32; 4];
        for &(t, w) in texels {
            let c = t.to_f32();
            for (a, v) in acc.iter_mut().zip(c) {
                *a += v * w;
            }
        }
        Rgba8::from_f32(acc)
    }

    /// Averages a non-empty slice of texels.
    ///
    /// # Panics
    ///
    /// Panics if `texels` is empty.
    pub fn average(texels: &[Rgba8]) -> Rgba8 {
        assert!(!texels.is_empty(), "cannot average zero texels");
        let w = 1.0 / texels.len() as f32;
        let weighted: Vec<(Rgba8, f32)> = texels.iter().map(|&t| (t, w)).collect();
        Rgba8::weighted_sum(&weighted)
    }
}

impl fmt::Display for Rgba8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:02x}{:02x}{:02x}{:02x}",
            self.r, self.g, self.b, self.a
        )
    }
}

impl From<[u8; 4]> for Rgba8 {
    #[inline]
    fn from(c: [u8; 4]) -> Rgba8 {
        Rgba8::new(c[0], c[1], c[2], c[3])
    }
}

impl From<Rgba8> for [u8; 4] {
    #[inline]
    fn from(c: Rgba8) -> [u8; 4] {
        [c.r, c.g, c.b, c.a]
    }
}

/// Byte address of a texel in the simulated GPU memory space.
///
/// Each texture is allocated a contiguous region (base address + mip chain,
/// 4 bytes per texel); the address is what the *Texel Address Calculator*
/// stage of the texture unit produces and what the texture caches, the DRAM
/// model, and PATU's texel-address hash table operate on.
///
/// ```
/// use patu_texture::TexelAddress;
/// let a = TexelAddress::new(0x1000);
/// assert_eq!(a.cache_line(64), 0x1000 / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TexelAddress(pub u64);

impl TexelAddress {
    /// Wraps a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> TexelAddress {
        TexelAddress(addr)
    }

    /// Raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Index of the cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_size` is zero.
    #[inline]
    pub fn cache_line(self, line_size: u64) -> u64 {
        debug_assert!(line_size > 0);
        self.0 / line_size
    }
}

impl fmt::Display for TexelAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for TexelAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_from_f32_roundtrip() {
        for v in [0u8, 1, 127, 128, 254, 255] {
            let c = Rgba8::new(v, v, v, v);
            assert_eq!(Rgba8::from_f32(c.to_f32()), c);
        }
    }

    #[test]
    fn from_f32_clamps() {
        let c = Rgba8::from_f32([2.0, -1.0, 0.5, 1.0]);
        assert_eq!(c.r, 255);
        assert_eq!(c.g, 0);
        assert_eq!(c.a, 255);
    }

    #[test]
    fn luma_black_white() {
        assert_eq!(Rgba8::BLACK.luma(), 0.0);
        assert!((Rgba8::WHITE.luma() - 255.0).abs() < 0.5);
    }

    #[test]
    fn luma_green_heaviest() {
        let r = Rgba8::rgb(255, 0, 0).luma();
        let g = Rgba8::rgb(0, 255, 0).luma();
        let b = Rgba8::rgb(0, 0, 255).luma();
        assert!(g > r && r > b);
    }

    #[test]
    fn average_of_identical_is_identity() {
        let c = Rgba8::rgb(10, 20, 30);
        assert_eq!(Rgba8::average(&[c, c, c, c]), c);
    }

    #[test]
    fn average_of_black_white_is_mid_gray() {
        let avg = Rgba8::average(&[Rgba8::BLACK, Rgba8::WHITE]);
        assert!(avg.r == 127 || avg.r == 128, "got {}", avg.r);
    }

    #[test]
    #[should_panic(expected = "cannot average zero texels")]
    fn average_empty_panics() {
        let _ = Rgba8::average(&[]);
    }

    #[test]
    fn weighted_sum_weights() {
        let c = Rgba8::weighted_sum(&[(Rgba8::WHITE, 0.25), (Rgba8::BLACK, 0.75)]);
        assert!((i32::from(c.r) - 64).abs() <= 1);
    }

    #[test]
    fn address_cache_line() {
        assert_eq!(TexelAddress::new(0).cache_line(64), 0);
        assert_eq!(TexelAddress::new(63).cache_line(64), 0);
        assert_eq!(TexelAddress::new(64).cache_line(64), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rgba8::rgb(255, 0, 16)), "#ff0010ff");
        assert_eq!(format!("{}", TexelAddress::new(0x40)), "0x40");
    }

    #[test]
    fn array_conversions() {
        let c = Rgba8::from([1, 2, 3, 4]);
        let back: [u8; 4] = c.into();
        assert_eq!(back, [1, 2, 3, 4]);
    }
}
