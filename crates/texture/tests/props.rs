//! Property-based tests for texture filtering invariants.

use patu_gmath::Vec2;
use patu_texture::{
    procedural, sample_anisotropic, sample_bilinear, sample_trilinear, AddressMode, Footprint,
    Texture, MAX_ANISO,
};
use proptest::prelude::*;

fn any_mode() -> impl Strategy<Value = AddressMode> {
    prop_oneof![
        Just(AddressMode::Wrap),
        Just(AddressMode::Clamp),
        Just(AddressMode::Mirror),
    ]
}

fn any_uv() -> impl Strategy<Value = Vec2> {
    ((-2.0f32..2.0), (-2.0f32..2.0)).prop_map(|(u, v)| Vec2::new(u, v))
}

proptest! {
    #[test]
    fn address_mode_always_in_range(coord in -1000i64..1000, size in 1u32..64, mode in any_mode()) {
        let folded = mode.apply(coord, size);
        prop_assert!(folded < size);
    }

    #[test]
    fn wrap_is_periodic(coord in -500i64..500, size in 1u32..64) {
        let a = AddressMode::Wrap.apply(coord, size);
        let b = AddressMode::Wrap.apply(coord + i64::from(size), size);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mirror_is_periodic_with_double_period(coord in -500i64..500, size in 1u32..64) {
        let a = AddressMode::Mirror.apply(coord, size);
        let b = AddressMode::Mirror.apply(coord + 2 * i64::from(size), size);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bilinear_output_within_texel_range(uv in any_uv(), seed in 0u64..32, mode in any_mode()) {
        let tex = Texture::with_mips(procedural::checkerboard(32, 32, 4, seed), 0);
        let (color, addrs) = sample_bilinear(&tex, uv, 0, mode);
        // Filtered value is a convex combination: luma bounded by min/max texel luma.
        let lumas: Vec<f32> = addrs
            .iter()
            .map(|_| 0.0) // addresses only; fetch texels below
            .collect();
        let _ = lumas;
        let lvl = tex.level(0);
        let (lo, hi) = lvl.texels().iter().fold((f32::MAX, f32::MIN), |(lo, hi), t| {
            (lo.min(t.luma()), hi.max(t.luma()))
        });
        prop_assert!(color.luma() >= lo - 1.5 && color.luma() <= hi + 1.5);
    }

    #[test]
    fn trilinear_always_eight_fetches(uv in any_uv(), lod in -1.0f32..10.0, mode in any_mode()) {
        let tex = Texture::with_mips(procedural::value_noise(64, 64, 3, 5), 0);
        let tap = sample_trilinear(&tex, uv, lod, mode);
        prop_assert_eq!(tap.addresses.len(), 8);
        prop_assert!(tap.lod >= 0.0 && tap.lod <= (tex.mip_count() - 1) as f32);
    }

    #[test]
    fn footprint_invariants(
        du in 0.0001f32..0.5, dv in 0.0001f32..0.5, max_aniso in 1u32..=16
    ) {
        let fp = Footprint::from_derivatives(
            Vec2::new(du, 0.0),
            Vec2::new(0.0, dv),
            256,
            256,
            max_aniso,
        );
        prop_assert!(fp.n >= 1 && fp.n <= max_aniso);
        prop_assert!(fp.af_lod <= fp.tf_lod + 1e-6, "AF LOD is never coarser than TF LOD");
        prop_assert!(fp.lod_shift() >= -1e-6);
        prop_assert!(fp.anisotropy >= 1.0);
        prop_assert!(fp.major_len >= fp.minor_len);
    }

    #[test]
    fn footprint_n_le_ceil_anisotropy(du in 0.001f32..0.3, dv in 0.001f32..0.3) {
        let fp = Footprint::from_derivatives(
            Vec2::new(du, 0.0),
            Vec2::new(0.0, dv),
            512,
            512,
            MAX_ANISO,
        );
        prop_assert!(fp.n as f32 <= fp.anisotropy.ceil().max(1.0));
    }

    #[test]
    fn aniso_texel_fetches_are_8n(uv in any_uv(), texels_x in 1.0f32..40.0) {
        let tex = Texture::with_mips(procedural::bricks(256, 256, 32, 16, 2), 0);
        let fp = Footprint::from_derivatives(
            Vec2::new(texels_x / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            MAX_ANISO,
        );
        let rec = sample_anisotropic(&tex, uv, &fp, AddressMode::Wrap);
        prop_assert_eq!(rec.taps.len() as u32, fp.n);
        prop_assert_eq!(rec.texel_fetches() as u32, 8 * fp.n);
    }

    #[test]
    fn aniso_color_bounded_by_tap_colors(uv in any_uv(), texels_x in 1.0f32..20.0) {
        let tex = Texture::with_mips(procedural::road(128, 128, 11), 0);
        let fp = Footprint::from_derivatives(
            Vec2::new(texels_x / 128.0, 0.0),
            Vec2::new(0.0, 1.0 / 128.0),
            128,
            128,
            MAX_ANISO,
        );
        let rec = sample_anisotropic(&tex, uv, &fp, AddressMode::Wrap);
        let (lo, hi) = rec.taps.iter().fold((f32::MAX, f32::MIN), |(lo, hi), t| {
            (lo.min(t.color.luma()), hi.max(t.color.luma()))
        });
        prop_assert!(rec.color.luma() >= lo - 1.5 && rec.color.luma() <= hi + 1.5);
    }

    #[test]
    fn mip_chain_addresses_never_overlap(seed in 0u64..16) {
        let tex = Texture::with_mips(procedural::checkerboard(16, 16, 2, seed), 0x4000);
        let mut seen = std::collections::HashSet::new();
        for lvl in 0..tex.mip_count() {
            let l = tex.level(lvl);
            for y in 0..l.height() {
                for x in 0..l.width() {
                    let a = tex.texel_address(lvl, i64::from(x), i64::from(y), AddressMode::Clamp);
                    prop_assert!(seen.insert(a), "duplicate address {a} at level {lvl}");
                }
            }
        }
    }
}
