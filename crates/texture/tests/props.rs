//! Property-based tests for texture filtering invariants, driven by the
//! workspace's deterministic generator (`DetRng`): each test sweeps a
//! fixed-seed randomized sample of the input space, so any failure
//! reproduces bit-for-bit from the test name alone.

use patu_gmath::{DetRng, Vec2};
use patu_texture::{
    procedural, sample_anisotropic, sample_bilinear, sample_trilinear, AddressMode, Footprint,
    Texture, MAX_ANISO,
};

const CASES: usize = 256;

fn f32_in(rng: &mut DetRng, lo: f32, hi: f32) -> f32 {
    lo + rng.next_f32() * (hi - lo)
}

fn any_mode(rng: &mut DetRng) -> AddressMode {
    match rng.range(3) {
        0 => AddressMode::Wrap,
        1 => AddressMode::Clamp,
        _ => AddressMode::Mirror,
    }
}

fn any_uv(rng: &mut DetRng) -> Vec2 {
    Vec2::new(f32_in(rng, -2.0, 2.0), f32_in(rng, -2.0, 2.0))
}

#[test]
fn address_mode_always_in_range() {
    let mut rng = DetRng::new(0x7E_01);
    for _ in 0..CASES {
        let coord = rng.range_between(0, 2000) as i64 - 1000;
        let size = rng.range_between(1, 64) as u32;
        let mode = any_mode(&mut rng);
        let folded = mode.apply(coord, size);
        assert!(folded < size);
    }
}

#[test]
fn wrap_is_periodic() {
    let mut rng = DetRng::new(0x7E_02);
    for _ in 0..CASES {
        let coord = rng.range_between(0, 1000) as i64 - 500;
        let size = rng.range_between(1, 64) as u32;
        let a = AddressMode::Wrap.apply(coord, size);
        let b = AddressMode::Wrap.apply(coord + i64::from(size), size);
        assert_eq!(a, b);
    }
}

#[test]
fn mirror_is_periodic_with_double_period() {
    let mut rng = DetRng::new(0x7E_03);
    for _ in 0..CASES {
        let coord = rng.range_between(0, 1000) as i64 - 500;
        let size = rng.range_between(1, 64) as u32;
        let a = AddressMode::Mirror.apply(coord, size);
        let b = AddressMode::Mirror.apply(coord + 2 * i64::from(size), size);
        assert_eq!(a, b);
    }
}

#[test]
fn bilinear_output_within_texel_range() {
    let mut rng = DetRng::new(0x7E_04);
    for _ in 0..64 {
        let uv = any_uv(&mut rng);
        let seed = rng.range(32);
        let mode = any_mode(&mut rng);
        let tex = Texture::with_mips(procedural::checkerboard(32, 32, 4, seed), 0);
        let (color, _addrs) = sample_bilinear(&tex, uv, 0, mode);
        // Filtered value is a convex combination: luma bounded by min/max texel luma.
        let lvl = tex.level(0);
        let (lo, hi) = lvl
            .texels()
            .iter()
            .fold((f32::MAX, f32::MIN), |(lo, hi), t| {
                (lo.min(t.luma()), hi.max(t.luma()))
            });
        assert!(color.luma() >= lo - 1.5 && color.luma() <= hi + 1.5);
    }
}

#[test]
fn trilinear_always_eight_fetches() {
    let mut rng = DetRng::new(0x7E_05);
    let tex = Texture::with_mips(procedural::value_noise(64, 64, 3, 5), 0);
    for _ in 0..CASES {
        let uv = any_uv(&mut rng);
        let lod = f32_in(&mut rng, -1.0, 10.0);
        let mode = any_mode(&mut rng);
        let tap = sample_trilinear(&tex, uv, lod, mode);
        assert_eq!(tap.addresses.len(), 8);
        assert!(tap.lod >= 0.0 && tap.lod <= (tex.mip_count() - 1) as f32);
    }
}

#[test]
fn footprint_invariants() {
    let mut rng = DetRng::new(0x7E_06);
    for _ in 0..CASES {
        let du = f32_in(&mut rng, 0.0001, 0.5);
        let dv = f32_in(&mut rng, 0.0001, 0.5);
        let max_aniso = rng.range_between(1, 17) as u32;
        let fp = Footprint::from_derivatives(
            Vec2::new(du, 0.0),
            Vec2::new(0.0, dv),
            256,
            256,
            max_aniso,
        );
        assert!(fp.n >= 1 && fp.n <= max_aniso);
        assert!(
            fp.af_lod <= fp.tf_lod + 1e-6,
            "AF LOD is never coarser than TF LOD"
        );
        assert!(fp.lod_shift() >= -1e-6);
        assert!(fp.anisotropy >= 1.0);
        assert!(fp.major_len >= fp.minor_len);
    }
}

#[test]
fn footprint_n_le_ceil_anisotropy() {
    let mut rng = DetRng::new(0x7E_07);
    for _ in 0..CASES {
        let du = f32_in(&mut rng, 0.001, 0.3);
        let dv = f32_in(&mut rng, 0.001, 0.3);
        let fp = Footprint::from_derivatives(
            Vec2::new(du, 0.0),
            Vec2::new(0.0, dv),
            512,
            512,
            MAX_ANISO,
        );
        assert!(fp.n as f32 <= fp.anisotropy.ceil().max(1.0));
    }
}

#[test]
fn aniso_texel_fetches_are_8n() {
    let mut rng = DetRng::new(0x7E_08);
    let tex = Texture::with_mips(procedural::bricks(256, 256, 32, 16, 2), 0);
    for _ in 0..64 {
        let uv = any_uv(&mut rng);
        let texels_x = f32_in(&mut rng, 1.0, 40.0);
        let fp = Footprint::from_derivatives(
            Vec2::new(texels_x / 256.0, 0.0),
            Vec2::new(0.0, 1.0 / 256.0),
            256,
            256,
            MAX_ANISO,
        );
        let rec = sample_anisotropic(&tex, uv, &fp, AddressMode::Wrap);
        assert_eq!(rec.taps.len() as u32, fp.n);
        assert_eq!(rec.texel_fetches() as u32, 8 * fp.n);
    }
}

#[test]
fn aniso_color_bounded_by_tap_colors() {
    let mut rng = DetRng::new(0x7E_09);
    let tex = Texture::with_mips(procedural::road(128, 128, 11), 0);
    for _ in 0..64 {
        let uv = any_uv(&mut rng);
        let texels_x = f32_in(&mut rng, 1.0, 20.0);
        let fp = Footprint::from_derivatives(
            Vec2::new(texels_x / 128.0, 0.0),
            Vec2::new(0.0, 1.0 / 128.0),
            128,
            128,
            MAX_ANISO,
        );
        let rec = sample_anisotropic(&tex, uv, &fp, AddressMode::Wrap);
        let (lo, hi) = rec.taps.iter().fold((f32::MAX, f32::MIN), |(lo, hi), t| {
            (lo.min(t.color.luma()), hi.max(t.color.luma()))
        });
        assert!(rec.color.luma() >= lo - 1.5 && rec.color.luma() <= hi + 1.5);
    }
}

#[test]
#[allow(clippy::disallowed_types)] // HashSet is a uniqueness oracle; order unused
fn mip_chain_addresses_never_overlap() {
    for seed in 0..16u64 {
        let tex = Texture::with_mips(procedural::checkerboard(16, 16, 2, seed), 0x4000);
        let mut seen = std::collections::HashSet::new();
        for lvl in 0..tex.mip_count() {
            let l = tex.level(lvl);
            for y in 0..l.height() {
                for x in 0..l.width() {
                    let a = tex.texel_address(lvl, i64::from(x), i64::from(y), AddressMode::Clamp);
                    assert!(seen.insert(a), "duplicate address {a} at level {lvl}");
                }
            }
        }
    }
}
