//! Property-based tests for the cache, DRAM and timing models.

use patu_gpu::{Cache, Dram, FrameTimer, GpuConfig, MemorySystem, TextureRequest, TextureUnit};
use patu_texture::TexelAddress;
use proptest::prelude::*;

fn addr_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 20), 1..200)
}

proptest! {
    #[test]
    fn cache_same_line_hits_after_any_fill(addrs in addr_stream(), probe in 0u64..(1 << 20)) {
        let mut c = Cache::new(16 * 1024, 4, 64);
        for a in addrs {
            c.access(TexelAddress::new(a));
        }
        // After touching a line it must be resident immediately after.
        c.access(TexelAddress::new(probe));
        prop_assert!(c.probe(TexelAddress::new(probe)));
    }

    #[test]
    fn cache_stats_consistent(addrs in addr_stream()) {
        let mut c = Cache::new(4 * 1024, 2, 64);
        for a in &addrs {
            c.access(TexelAddress::new(*a));
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(s.hit_rate() <= 1.0);
    }

    #[test]
    fn bigger_cache_never_fewer_hits_on_repeat_pass(addrs in addr_stream()) {
        // Two passes over the same stream: the second pass's hits measure
        // retained working set, which can only grow with capacity under
        // the same associativity and LRU.
        let run = |bytes: u64| {
            let mut c = Cache::new(bytes, 4, 64);
            for a in &addrs {
                c.access(TexelAddress::new(*a));
            }
            let before = c.stats().hits;
            for a in &addrs {
                c.access(TexelAddress::new(*a));
            }
            c.stats().hits - before
        };
        prop_assert!(run(64 * 1024) >= run(8 * 1024));
    }

    #[test]
    fn dram_latency_positive_and_bounded(addrs in addr_stream()) {
        let cfg = GpuConfig::default();
        let mut d = Dram::new(&cfg);
        for (now, a) in addrs.iter().enumerate() {
            let lat = d.read(TexelAddress::new(*a), now as u64);
            prop_assert!(lat >= cfg.dram_row_hit_cycles);
            // Bounded by worst queueing: all prior requests on one channel.
            prop_assert!(lat < 1_000_000);
        }
        prop_assert_eq!(d.stats().reads, addrs.len() as u64);
    }

    #[test]
    fn dram_row_hits_never_exceed_reads(addrs in addr_stream()) {
        let mut d = Dram::new(&GpuConfig::default());
        for (i, a) in addrs.iter().enumerate() {
            let _ = d.read(TexelAddress::new(*a), i as u64 * 10);
        }
        prop_assert!(d.stats().row_hits <= d.stats().reads);
        prop_assert_eq!(d.stats().bytes, addrs.len() as u64 * 64);
    }

    #[test]
    fn memsys_latency_hierarchy(addr in 0u64..(1 << 24)) {
        let cfg = GpuConfig::default();
        let mut m = MemorySystem::new(&cfg);
        let cold = m.fetch_texel(0, TexelAddress::new(addr), 0);
        let warm = m.fetch_texel(0, TexelAddress::new(addr), 1_000);
        let other_cluster = m.fetch_texel(1, TexelAddress::new(addr), 2_000);
        prop_assert!(warm <= other_cluster, "L1 <= L2");
        prop_assert!(other_cluster <= cold, "L2 <= DRAM");
    }

    #[test]
    fn texture_unit_latency_scales_with_taps(n in 1usize..=16) {
        let cfg = GpuConfig::default();
        let mut tu = TextureUnit::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        let taps: Vec<Vec<TexelAddress>> = (0..n)
            .map(|i| (0..8).map(|j| TexelAddress::new((i * 64 + j * 4) as u64)).collect())
            .collect();
        let req = TextureRequest::new(taps);
        let t = tu.process(&req, &mut mem, 0);
        // At least the filter throughput cost.
        prop_assert!(t.latency >= (n as u64) * u64::from(cfg.cycles_per_trilinear));
        prop_assert_eq!(t.completion, t.latency);
    }

    #[test]
    fn frame_timer_monotone(work in proptest::collection::vec((0u64..5_000, 0u64..5_000), 1..60)) {
        let mut timer = FrameTimer::new(&GpuConfig::default());
        let mut last_frame = 0;
        for (shade, texture_extra) in work {
            let (cluster, start) = timer.begin_tile();
            timer.end_tile(cluster, shade, start + texture_extra);
            let f = timer.frame_cycles();
            prop_assert!(f >= last_frame, "frame time never decreases");
            last_frame = f;
        }
    }

    #[test]
    fn shading_cycles_linear_bounds(frags in 0u64..1_000_000) {
        let timer = FrameTimer::new(&GpuConfig::default());
        let cycles = timer.shading_cycles(frags);
        let cfg = GpuConfig::default();
        let lanes = u64::from(cfg.shaders_per_cluster * cfg.simd_width);
        if let Some(per_cycle) =
            lanes.checked_div(u64::from(cfg.shader_ops_per_fragment)).filter(|&p| p > 0)
        {
            prop_assert!(cycles >= frags / per_cycle);
            prop_assert!(cycles <= frags / per_cycle + 1);
        }
    }
}
