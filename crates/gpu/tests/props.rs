//! Property-based tests for the cache, DRAM and timing models, driven by
//! the workspace's deterministic generator (`DetRng`): each test sweeps a
//! fixed-seed randomized sample of the input space, so any failure
//! reproduces bit-for-bit from the test name alone.

use patu_gmath::DetRng;
use patu_gpu::{Cache, Dram, FrameTimer, GpuConfig, MemorySystem, TextureRequest, TextureUnit};
use patu_texture::TexelAddress;

const SWEEPS: usize = 48;

fn addr_stream(rng: &mut DetRng) -> Vec<u64> {
    let len = rng.range_between(1, 200) as usize;
    (0..len).map(|_| rng.range(1 << 20)).collect()
}

#[test]
fn cache_same_line_hits_after_any_fill() {
    let mut rng = DetRng::new(0x9_01);
    for _ in 0..SWEEPS {
        let addrs = addr_stream(&mut rng);
        let probe = rng.range(1 << 20);
        let mut c = Cache::new(16 * 1024, 4, 64);
        for a in addrs {
            c.access(TexelAddress::new(a));
        }
        // After touching a line it must be resident immediately after.
        c.access(TexelAddress::new(probe));
        assert!(c.probe(TexelAddress::new(probe)));
    }
}

#[test]
fn cache_stats_consistent() {
    let mut rng = DetRng::new(0x9_02);
    for _ in 0..SWEEPS {
        let addrs = addr_stream(&mut rng);
        let mut c = Cache::new(4 * 1024, 2, 64);
        for a in &addrs {
            c.access(TexelAddress::new(*a));
        }
        let s = c.stats();
        assert_eq!(s.accesses, addrs.len() as u64);
        assert!(s.hits <= s.accesses);
        assert!(s.hit_rate() <= 1.0);
    }
}

#[test]
fn bigger_cache_never_fewer_hits_on_repeat_pass() {
    let mut rng = DetRng::new(0x9_03);
    for _ in 0..SWEEPS {
        let addrs = addr_stream(&mut rng);
        // Two passes over the same stream: the second pass's hits measure
        // retained working set, which can only grow with capacity under
        // the same associativity and LRU.
        let run = |bytes: u64| {
            let mut c = Cache::new(bytes, 4, 64);
            for a in &addrs {
                c.access(TexelAddress::new(*a));
            }
            let before = c.stats().hits;
            for a in &addrs {
                c.access(TexelAddress::new(*a));
            }
            c.stats().hits - before
        };
        assert!(run(64 * 1024) >= run(8 * 1024));
    }
}

#[test]
fn dram_latency_positive_and_bounded() {
    let mut rng = DetRng::new(0x9_04);
    let cfg = GpuConfig::default();
    for _ in 0..SWEEPS {
        let addrs = addr_stream(&mut rng);
        let mut d = Dram::new(&cfg);
        for (now, a) in addrs.iter().enumerate() {
            let lat = d.read(TexelAddress::new(*a), now as u64);
            assert!(lat >= cfg.dram_row_hit_cycles);
            // Bounded by worst queueing: all prior requests on one channel.
            assert!(lat < 1_000_000);
        }
        assert_eq!(d.stats().reads, addrs.len() as u64);
    }
}

#[test]
fn dram_row_hits_never_exceed_reads() {
    let mut rng = DetRng::new(0x9_05);
    for _ in 0..SWEEPS {
        let addrs = addr_stream(&mut rng);
        let mut d = Dram::new(&GpuConfig::default());
        for (i, a) in addrs.iter().enumerate() {
            let _ = d.read(TexelAddress::new(*a), i as u64 * 10);
        }
        assert!(d.stats().row_hits <= d.stats().reads);
        assert_eq!(d.stats().bytes, addrs.len() as u64 * 64);
    }
}

#[test]
fn memsys_latency_hierarchy() {
    let mut rng = DetRng::new(0x9_06);
    let cfg = GpuConfig::default();
    for _ in 0..SWEEPS {
        let addr = rng.range(1 << 24);
        let mut m = MemorySystem::new(&cfg);
        let cold = m.fetch_texel(0, TexelAddress::new(addr), 0);
        let warm = m.fetch_texel(0, TexelAddress::new(addr), 1_000);
        let other_cluster = m.fetch_texel(1, TexelAddress::new(addr), 2_000);
        assert!(warm <= other_cluster, "L1 <= L2");
        assert!(other_cluster <= cold, "L2 <= DRAM");
    }
}

#[test]
fn texture_unit_latency_scales_with_taps() {
    let cfg = GpuConfig::default();
    for n in 1usize..=16 {
        let mut tu = TextureUnit::new(0, &cfg);
        let mut mem = MemorySystem::new(&cfg);
        let taps: Vec<Vec<TexelAddress>> = (0..n)
            .map(|i| {
                (0..8)
                    .map(|j| TexelAddress::new((i * 64 + j * 4) as u64))
                    .collect()
            })
            .collect();
        let req = TextureRequest::new(taps);
        let t = tu.process(&req, &mut mem, 0);
        // At least the filter throughput cost.
        assert!(t.latency >= (n as u64) * u64::from(cfg.cycles_per_trilinear));
        assert_eq!(t.completion, t.latency);
    }
}

#[test]
fn frame_timer_monotone() {
    let mut rng = DetRng::new(0x9_07);
    for _ in 0..SWEEPS {
        let tiles = rng.range_between(1, 60) as usize;
        let mut timer = FrameTimer::new(&GpuConfig::default());
        let mut last_frame = 0;
        for _ in 0..tiles {
            let shade = rng.range(5_000);
            let texture_extra = rng.range(5_000);
            let (cluster, start) = timer.begin_tile();
            timer.end_tile(cluster, shade, start + texture_extra);
            let f = timer.frame_cycles();
            assert!(f >= last_frame, "frame time never decreases");
            last_frame = f;
        }
    }
}

#[test]
fn shading_cycles_linear_bounds() {
    let mut rng = DetRng::new(0x9_08);
    let cfg = GpuConfig::default();
    let timer = FrameTimer::new(&cfg);
    let lanes = u64::from(cfg.shaders_per_cluster * cfg.simd_width);
    for _ in 0..512 {
        let frags = rng.range(1_000_000);
        let cycles = timer.shading_cycles(frags);
        if let Some(per_cycle) = lanes
            .checked_div(u64::from(cfg.shader_ops_per_fragment))
            .filter(|&p| p > 0)
        {
            assert!(cycles >= frags / per_cycle);
            assert!(cycles <= frags / per_cycle + 1);
        }
    }
}
