//! Typed errors for the GPU timing/memory model.
//!
//! Constructors and configuration entry points return these instead of
//! panicking, so adversarial configs surface as recoverable errors at the
//! API boundary rather than aborting a frame loop.

use std::fmt;

/// Errors raised by the GPU model's configuration and construction paths.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// A cache cannot be built from the given geometry: every parameter
    /// must be positive and `size_bytes` must hold at least one full set.
    InvalidCacheGeometry {
        /// Requested capacity in bytes.
        size_bytes: u64,
        /// Requested associativity.
        ways: u32,
        /// Requested line size in bytes.
        line_size: u64,
    },
    /// A cluster index exceeded the configured cluster count.
    ClusterOutOfRange {
        /// The offending index.
        cluster: usize,
        /// The configured number of clusters.
        clusters: usize,
    },
    /// A fault-injection rate was not a finite probability in `[0, 1]`.
    InvalidFaultRate {
        /// Which rate field was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::InvalidCacheGeometry {
                size_bytes,
                ways,
                line_size,
            } => write!(
                f,
                "invalid cache geometry: {size_bytes} bytes, {ways} ways, \
                 {line_size}-byte lines (need positive parameters and at \
                 least one full set)"
            ),
            GpuError::ClusterOutOfRange { cluster, clusters } => {
                write!(f, "cluster {cluster} out of range (have {clusters})")
            }
            GpuError::InvalidFaultRate { name, value } => {
                write!(f, "fault rate `{name}` must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = GpuError::InvalidCacheGeometry {
            size_bytes: 64,
            ways: 4,
            line_size: 64,
        };
        assert!(e.to_string().contains("cache geometry"));
        let e = GpuError::ClusterOutOfRange {
            cluster: 9,
            clusters: 4,
        };
        assert!(e.to_string().contains("cluster 9"));
        let e = GpuError::InvalidFaultRate {
            name: "cache_bitflip_rate",
            value: 2.0,
        };
        assert!(e.to_string().contains("cache_bitflip_rate"));
    }

    #[test]
    fn implements_error_trait() {
        let e: Box<dyn std::error::Error> = Box::new(GpuError::ClusterOutOfRange {
            cluster: 1,
            clusters: 1,
        });
        assert!(!e.to_string().is_empty());
    }
}
