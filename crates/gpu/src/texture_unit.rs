//! Texture-unit pipeline timing: address calculation → texel fetch →
//! filtering, with in-order request pipelining.
//!
//! One texture unit serves each shader cluster (Table I). A request is the
//! filtering work for one pixel: `N` trilinear taps of 8 texel addresses
//! each (`N = 1` for plain TF, up to 16 for full AF). The unit is pipelined:
//! back-to-back requests are spaced by the bottleneck stage's occupancy,
//! while each request's *latency* — what the paper's Fig. 18 measures —
//! includes the full fetch round trip.

use crate::config::GpuConfig;
use crate::memsys::MemorySystem;
use crate::stats::EventCounts;
use patu_obs::Log2Histogram;
use patu_texture::TexelAddress;

/// Parallel filtering pipelines per texture unit — one per pixel of a quad
/// (paper Sec. V-D).
const QUAD_PIPELINES: u64 = 4;

/// The filtering work for one pixel, produced by the filtering policy
/// (baseline AF, TF-only, or a PATU decision).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextureRequest {
    /// Texel addresses per trilinear tap (normally 8 each).
    pub taps: Vec<Vec<TexelAddress>>,
}

impl TextureRequest {
    /// Builds a request from per-tap address lists.
    pub fn new(taps: Vec<Vec<TexelAddress>>) -> TextureRequest {
        TextureRequest { taps }
    }

    /// Number of trilinear taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Total texel addresses across taps.
    pub fn texel_count(&self) -> usize {
        self.taps.iter().map(|t| t.len()).sum()
    }
}

/// Timing outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Cycles from issue to filtered result (the filtering latency).
    pub latency: u64,
    /// Absolute cycle at which the result is available.
    pub completion: u64,
}

/// One texture unit's pipeline state.
#[derive(Debug, Clone)]
pub struct TextureUnit {
    cluster: usize,
    address_alus: u64,
    fetch_ports: u64,
    cycles_per_trilinear: u64,
    busy_until: u64,
    last_completion: u64,
    events: EventCounts,
    telemetry: bool,
    queue_wait_hist: Log2Histogram,
    attrib_work_cycles: u64,
}

impl TextureUnit {
    /// Creates the texture unit attached to `cluster`.
    pub fn new(cluster: usize, cfg: &GpuConfig) -> TextureUnit {
        TextureUnit {
            cluster,
            address_alus: u64::from(cfg.address_alus),
            fetch_ports: u64::from(cfg.address_alus), // fetch width tracks address width
            cycles_per_trilinear: u64::from(cfg.cycles_per_trilinear),
            busy_until: 0,
            last_completion: 0,
            events: EventCounts::default(),
            telemetry: false,
            queue_wait_hist: Log2Histogram::new(),
            attrib_work_cycles: 0,
        }
    }

    /// Enables or disables queue-depth telemetry (off by default; the
    /// untraced path pays one branch).
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry = enabled;
    }

    /// Distribution of cycles each request waited for the pipeline to free
    /// up before issuing — the unit's queue-pressure signal (telemetry
    /// only; empty unless [`TextureUnit::set_telemetry`] was enabled).
    pub fn queue_wait_hist(&self) -> &Log2Histogram {
        &self.queue_wait_hist
    }

    /// Total address-calculation plus filtering-math cycles across all
    /// requests — the texture unit's contribution to the attribution
    /// profiler's `texel_fetch` stage (telemetry only; 0 unless
    /// [`TextureUnit::set_telemetry`] was enabled).
    pub fn attrib_work_cycles(&self) -> u64 {
        self.attrib_work_cycles
    }

    /// Issues a request at cycle `now`, fetching texels through `mem`.
    ///
    /// Requests on one unit are processed in order; a request issued while a
    /// previous one occupies the pipeline starts when the pipeline frees up.
    pub fn process(
        &mut self,
        req: &TextureRequest,
        mem: &mut MemorySystem,
        now: u64,
    ) -> RequestTiming {
        let taps = req.tap_count() as u64;
        let texels = req.texel_count() as u64;

        // Address ALUs compute one tap's 8 addresses per loop (Sec. V-B):
        // ceil(8 / address_alus) cycles per tap.
        let addr_cycles = req
            .taps
            .iter()
            .map(|t| (t.len() as u64).div_ceil(self.address_alus))
            .sum::<u64>();

        let start = now.max(self.busy_until);
        if self.telemetry {
            self.queue_wait_hist.record(start - now);
        }

        // Texel fetches issue `fetch_ports` per cycle; the request waits for
        // the slowest outstanding fetch.
        let mut fetch_latency = 0u64;
        let mut issued = 0u64;
        for tap in &req.taps {
            for &addr in tap {
                let issue_offset = addr_cycles + issued / self.fetch_ports;
                let lat = mem.fetch_texel(self.cluster, addr, start + issue_offset);
                fetch_latency = fetch_latency.max(issue_offset + lat);
                issued += 1;
            }
        }

        let filter_cycles = taps * self.cycles_per_trilinear;
        let latency = addr_cycles + fetch_latency + filter_cycles;
        if self.telemetry {
            self.attrib_work_cycles += addr_cycles + filter_cycles;
        }

        // Pipeline occupancy: the bottleneck stage gates throughput. The
        // unit runs four filtering pipelines in parallel (one per quad pixel,
        // Sec. V-D), so sustained throughput is 4 requests deep.
        let issue_cycles = texels.div_ceil(self.fetch_ports.max(1));
        let bottleneck = addr_cycles.max(filter_cycles).max(issue_cycles).max(1);
        let occupancy = bottleneck.div_ceil(QUAD_PIPELINES);
        self.busy_until = start + occupancy.max(1);

        self.events.trilinear_ops += taps;
        self.events.address_calc_ops += texels;

        // Results return in request order, like the hardware pipeline.
        let completion = (start + latency).max(self.last_completion);
        self.last_completion = completion;

        RequestTiming {
            latency: completion - now,
            completion,
        }
    }

    /// Flat-layout form of [`TextureUnit::process`] for the batched
    /// fragment path: `taps` trilinear taps whose addresses lie contiguous
    /// in `addresses`, every tap the same width (`addresses.len() / taps` —
    /// 8 for trilinear taps; the batched filter kernel produces exactly this
    /// layout). Bit-identical to building the equivalent [`TextureRequest`]
    /// and calling `process`: same per-tap address cycles, same fetch issue
    /// order and offsets, same pipeline-occupancy updates.
    pub fn process_flat(
        &mut self,
        addresses: &[TexelAddress],
        taps: u64,
        mem: &mut MemorySystem,
        now: u64,
    ) -> RequestTiming {
        let texels = addresses.len() as u64;
        let per_tap = texels.checked_div(taps).unwrap_or(0);
        debug_assert_eq!(per_tap * taps, texels, "uniform tap width");

        let addr_cycles = taps * per_tap.div_ceil(self.address_alus);

        let start = now.max(self.busy_until);
        if self.telemetry {
            self.queue_wait_hist.record(start - now);
        }

        let mut fetch_latency = 0u64;
        for (issued, &addr) in addresses.iter().enumerate() {
            let issue_offset = addr_cycles + issued as u64 / self.fetch_ports;
            let lat = mem.fetch_texel(self.cluster, addr, start + issue_offset);
            fetch_latency = fetch_latency.max(issue_offset + lat);
        }

        let filter_cycles = taps * self.cycles_per_trilinear;
        let latency = addr_cycles + fetch_latency + filter_cycles;
        if self.telemetry {
            self.attrib_work_cycles += addr_cycles + filter_cycles;
        }

        let issue_cycles = texels.div_ceil(self.fetch_ports.max(1));
        let bottleneck = addr_cycles.max(filter_cycles).max(issue_cycles).max(1);
        let occupancy = bottleneck.div_ceil(QUAD_PIPELINES);
        self.busy_until = start + occupancy.max(1);

        self.events.trilinear_ops += taps;
        self.events.address_calc_ops += texels;

        let completion = (start + latency).max(self.last_completion);
        self.last_completion = completion;

        RequestTiming {
            latency: completion - now,
            completion,
        }
    }

    /// Cycle at which the pipeline can accept the next request.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Accumulated ALU event counts (fetch/cache events live in the
    /// [`MemorySystem`]).
    pub fn events(&self) -> EventCounts {
        self.events
    }

    /// Clears pipeline state and counters.
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.last_completion = 0;
        self.events = EventCounts::default();
        self.queue_wait_hist = Log2Histogram::new();
        self.attrib_work_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> (TextureUnit, MemorySystem) {
        let cfg = GpuConfig::default();
        (TextureUnit::new(0, &cfg), MemorySystem::new(&cfg))
    }

    fn tap(base: u64) -> Vec<TexelAddress> {
        (0..8).map(|i| TexelAddress::new(base + i * 4)).collect()
    }

    fn trilinear_request(base: u64) -> TextureRequest {
        TextureRequest::new(vec![tap(base)])
    }

    fn aniso_request(base: u64, n: u64) -> TextureRequest {
        TextureRequest::new((0..n).map(|i| tap(base + i * 256)).collect())
    }

    #[test]
    fn request_shape_accessors() {
        let r = aniso_request(0, 4);
        assert_eq!(r.tap_count(), 4);
        assert_eq!(r.texel_count(), 32);
    }

    #[test]
    fn aniso_latency_exceeds_trilinear() {
        let (mut tu, mut mem) = unit();
        let tf = tu.process(&trilinear_request(0), &mut mem, 0);
        tu.reset();
        mem.reset();
        let af = tu.process(&aniso_request(0, 16), &mut mem, 0);
        assert!(
            af.latency > tf.latency,
            "16-tap AF ({}) slower than TF ({})",
            af.latency,
            tf.latency
        );
    }

    #[test]
    fn warm_cache_lowers_latency() {
        let (mut tu, mut mem) = unit();
        let cold = tu.process(&trilinear_request(0), &mut mem, 0);
        let warm = tu.process(&trilinear_request(0), &mut mem, cold.completion);
        assert!(warm.latency < cold.latency);
    }

    #[test]
    fn requests_pipeline_in_order() {
        let (mut tu, mut mem) = unit();
        let a = tu.process(&trilinear_request(0), &mut mem, 0);
        let b = tu.process(&trilinear_request(0), &mut mem, 0);
        assert!(b.completion >= a.completion, "in-order completion");
        assert!(tu.busy_until() > 0);
    }

    #[test]
    fn throughput_gated_by_filter_alus() {
        let (mut tu, mut mem) = unit();
        // Warm the cache first.
        let warmup = tu.process(&aniso_request(0, 16), &mut mem, 0);
        tu.reset();
        // Two warm 16-tap requests: the second starts 16*2/4 = 8 cycles
        // later (filter throughput over the 4 quad pipelines dominates when
        // fetches all hit).
        let t0 = tu.process(&aniso_request(0, 16), &mut mem, warmup.completion);
        let before = tu.busy_until();
        let t1 = tu.process(&aniso_request(0, 16), &mut mem, warmup.completion);
        assert_eq!(before + 8, tu.busy_until());
        assert!(t1.completion >= t0.completion);
    }

    #[test]
    fn events_count_taps_and_texels() {
        let (mut tu, mut mem) = unit();
        let _ = tu.process(&aniso_request(0, 3), &mut mem, 0);
        assert_eq!(tu.events().trilinear_ops, 3);
        assert_eq!(tu.events().address_calc_ops, 24);
        assert_eq!(mem.events().texel_fetches, 24);
    }

    #[test]
    fn queue_wait_telemetry_gates_and_measures_pressure() {
        let (mut tu, mut mem) = unit();
        let _ = tu.process(&trilinear_request(0), &mut mem, 0);
        let _ = tu.process(&trilinear_request(0), &mut mem, 0);
        assert!(tu.queue_wait_hist().is_empty(), "off by default");
        tu.reset();
        mem.reset();
        tu.set_telemetry(true);
        let _ = tu.process(&trilinear_request(0), &mut mem, 0);
        let _ = tu.process(&trilinear_request(0), &mut mem, 0);
        assert_eq!(tu.queue_wait_hist().count(), 2);
        assert!(tu.queue_wait_hist().max() > 0, "second request queued");
        tu.reset();
        assert!(tu.queue_wait_hist().is_empty(), "reset clears telemetry");
    }

    #[test]
    fn process_flat_matches_process() {
        // The flat batched layout must replay to the exact cycle: same
        // latency, completion, pipeline state, events and memory behavior.
        let cfg = GpuConfig::default();
        let mut tu_a = TextureUnit::new(0, &cfg);
        let mut mem_a = MemorySystem::new(&cfg);
        let mut tu_b = TextureUnit::new(0, &cfg);
        let mut mem_b = MemorySystem::new(&cfg);
        tu_a.set_telemetry(true);
        tu_b.set_telemetry(true);

        let requests = [
            aniso_request(0, 8),
            trilinear_request(0x40),
            aniso_request(0x900, 3),
        ];
        let mut now = 0;
        for req in &requests {
            let flat: Vec<TexelAddress> = req.taps.iter().flatten().copied().collect();
            let a = tu_a.process(req, &mut mem_a, now);
            let b = tu_b.process_flat(&flat, req.tap_count() as u64, &mut mem_b, now);
            assert_eq!(a, b);
            assert_eq!(tu_a.busy_until(), tu_b.busy_until());
            now = a.completion / 2; // overlap the next request with the pipe
        }
        assert_eq!(tu_a.events(), tu_b.events());
        assert_eq!(mem_a.events(), mem_b.events());
        assert_eq!(
            tu_a.queue_wait_hist().count(),
            tu_b.queue_wait_hist().count()
        );
        assert_eq!(
            tu_a.attrib_work_cycles(),
            tu_b.attrib_work_cycles(),
            "attribution taps agree between scalar and flat paths"
        );
        assert!(tu_a.attrib_work_cycles() > 0);
    }

    #[test]
    fn attrib_work_cycles_gate_on_telemetry() {
        let (mut tu, mut mem) = unit();
        let _ = tu.process(&aniso_request(0, 4), &mut mem, 0);
        assert_eq!(tu.attrib_work_cycles(), 0, "off by default");
        tu.set_telemetry(true);
        let _ = tu.process(&aniso_request(0, 4), &mut mem, 0);
        // 4 taps: 4 * ceil(8/alus) address cycles + 4 * cycles_per_trilinear.
        let cfg = GpuConfig::default();
        let expected = 4 * 8u64.div_ceil(u64::from(cfg.address_alus))
            + 4 * u64::from(cfg.cycles_per_trilinear);
        assert_eq!(tu.attrib_work_cycles(), expected);
        tu.reset();
        assert_eq!(tu.attrib_work_cycles(), 0, "reset clears the tap");
    }

    #[test]
    fn process_flat_empty_is_cheap() {
        let (mut tu, mut mem) = unit();
        let t = tu.process_flat(&[], 0, &mut mem, 5);
        assert_eq!(t.latency, 0);
        assert_eq!(t.completion, 5);
    }

    #[test]
    fn empty_request_is_cheap() {
        let (mut tu, mut mem) = unit();
        let t = tu.process(&TextureRequest::default(), &mut mem, 5);
        assert_eq!(t.latency, 0);
        assert_eq!(t.completion, 5);
    }

    #[test]
    fn reset_clears_pipeline() {
        let (mut tu, mut mem) = unit();
        let _ = tu.process(&trilinear_request(0), &mut mem, 0);
        tu.reset();
        assert_eq!(tu.busy_until(), 0);
        assert_eq!(tu.events().trilinear_ops, 0);
    }
}
