//! Frame-level statistics: traffic classes, event counts and the aggregate
//! metrics every experiment binary reports.

use patu_obs::Log2Histogram;
use std::fmt;

/// Memory-traffic categories for the paper's Fig. 6 bandwidth breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Texel fetches missing to DRAM — the dominant class (≈71 % with AF on).
    TextureFetch,
    /// Vertex attribute reads.
    Vertex,
    /// Depth buffer spills/fills.
    Depth,
    /// Color/framebuffer writes.
    Framebuffer,
    /// Command stream and miscellaneous.
    Other,
}

impl TrafficClass {
    /// All classes in display order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::TextureFetch,
        TrafficClass::Vertex,
        TrafficClass::Depth,
        TrafficClass::Framebuffer,
        TrafficClass::Other,
    ];
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TrafficClass::TextureFetch => "texture",
            TrafficClass::Vertex => "vertex",
            TrafficClass::Depth => "depth",
            TrafficClass::Framebuffer => "framebuffer",
            TrafficClass::Other => "other",
        };
        f.write_str(name)
    }
}

/// Off-chip bytes moved, split by traffic class (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandwidthBreakdown {
    /// Texture fetch bytes (L2-miss refills).
    pub texture: u64,
    /// Vertex fetch bytes.
    pub vertex: u64,
    /// Depth traffic bytes.
    pub depth: u64,
    /// Framebuffer write bytes.
    pub framebuffer: u64,
    /// Everything else.
    pub other: u64,
}

impl BandwidthBreakdown {
    /// Adds `bytes` to a class.
    pub fn add(&mut self, class: TrafficClass, bytes: u64) {
        match class {
            TrafficClass::TextureFetch => self.texture += bytes,
            TrafficClass::Vertex => self.vertex += bytes,
            TrafficClass::Depth => self.depth += bytes,
            TrafficClass::Framebuffer => self.framebuffer += bytes,
            TrafficClass::Other => self.other += bytes,
        }
    }

    /// Bytes in a class.
    pub fn get(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::TextureFetch => self.texture,
            TrafficClass::Vertex => self.vertex,
            TrafficClass::Depth => self.depth,
            TrafficClass::Framebuffer => self.framebuffer,
            TrafficClass::Other => self.other,
        }
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> u64 {
        self.texture + self.vertex + self.depth + self.framebuffer + self.other
    }

    /// Texture share of total traffic in `[0, 1]` (the paper reports ≈0.71
    /// with AF enabled). Zero when there is no traffic.
    pub fn texture_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.texture as f64 / total as f64
        }
    }

    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &BandwidthBreakdown) {
        self.texture += other.texture;
        self.vertex += other.vertex;
        self.depth += other.depth;
        self.framebuffer += other.framebuffer;
        self.other += other.other;
    }
}

/// Raw micro-architectural event counts — the energy model's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    /// Fragment-shader ALU operations.
    pub shader_alu_ops: u64,
    /// Trilinear filter operations executed by texture units.
    pub trilinear_ops: u64,
    /// Texel address calculations.
    pub address_calc_ops: u64,
    /// Texel fetches issued (pre-cache).
    pub texel_fetches: u64,
    /// Texture L1 accesses.
    pub l1_accesses: u64,
    /// Texture L1 misses.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM line reads.
    pub dram_reads: u64,
    /// DRAM bytes moved (all classes).
    pub dram_bytes: u64,
    /// Vertices processed.
    pub vertices: u64,
    /// PATU texel-address hash-table accesses (0 for the baseline).
    pub hash_table_accesses: u64,
    /// PATU predictor evaluations (0 for the baseline).
    pub predictor_evals: u64,
}

impl EventCounts {
    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &EventCounts) {
        self.shader_alu_ops += other.shader_alu_ops;
        self.trilinear_ops += other.trilinear_ops;
        self.address_calc_ops += other.address_calc_ops;
        self.texel_fetches += other.texel_fetches;
        self.l1_accesses += other.l1_accesses;
        self.l1_misses += other.l1_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.dram_reads += other.dram_reads;
        self.dram_bytes += other.dram_bytes;
        self.vertices += other.vertices;
        self.hash_table_accesses += other.hash_table_accesses;
        self.predictor_evals += other.predictor_evals;
    }
}

/// Off-chip side effects — bandwidth plus event counters — accumulated
/// outside any cache model. The deterministic parallel renderer gives each
/// worker one of these (seeded from its private memory shard), then merges
/// them in cluster order; every field is a commutative sum, so the merged
/// totals are independent of thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSideEffects {
    /// Off-chip bandwidth by traffic class.
    pub bandwidth: BandwidthBreakdown,
    /// Cache/DRAM/ALU event counters.
    pub events: EventCounts,
}

impl MemSideEffects {
    /// Accounts traffic that bypasses the texture caches, mirroring
    /// [`crate::MemorySystem::record_traffic`]: the bytes land in both the
    /// class breakdown and the DRAM byte counter.
    pub fn record_traffic(&mut self, class: TrafficClass, bytes: u64) {
        debug_assert!(
            class != TrafficClass::TextureFetch,
            "texture traffic is accounted by the memory system's fetch path"
        );
        self.bandwidth.add(class, bytes);
        self.events.dram_bytes += bytes;
    }

    /// Component-wise sum (cluster-order merge).
    pub fn accumulate(&mut self, other: &MemSideEffects) {
        self.bandwidth.accumulate(&other.bandwidth);
        self.events.accumulate(&other.events);
    }
}

/// Cross-frame tile-reuse counters, filled by the temporal renderer
/// (`render_sequence`). All zero on the single-frame path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TemporalCounts {
    /// Tiles blitted verbatim from the previous frame (fragment→texel path
    /// skipped entirely).
    pub tiles_reused: u64,
    /// Tiles whose pixels were reused but whose PATU decisions were
    /// re-evaluated (stale predictor state, stable geometry).
    pub tiles_repredicted: u64,
    /// Tiles rendered from scratch (dirty, aged out, or temporal off).
    pub tiles_rerendered: u64,
    /// Cycles charged to reuse/repredict work (blit + decision refresh) —
    /// the `reuse` stage of cycle attribution.
    pub reuse_cycles: u64,
}

impl TemporalCounts {
    /// Tiles the invalidation engine classified this frame.
    pub fn tiles_total(&self) -> u64 {
        self.tiles_reused + self.tiles_repredicted + self.tiles_rerendered
    }

    /// Fraction of tiles that skipped the fragment→texel path (reused or
    /// repredicted), in `[0, 1]`. Zero when nothing was classified.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.tiles_total();
        if total == 0 {
            0.0
        } else {
            (self.tiles_reused + self.tiles_repredicted) as f64 / total as f64
        }
    }

    /// Whether every counter is zero (single-frame path / temporal off).
    pub fn is_zero(&self) -> bool {
        *self == TemporalCounts::default()
    }

    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &TemporalCounts) {
        self.tiles_reused += other.tiles_reused;
        self.tiles_repredicted += other.tiles_repredicted;
        self.tiles_rerendered += other.tiles_rerendered;
        self.reuse_cycles += other.reuse_cycles;
    }

    /// The `"temporal"` JSONL line for one sequence frame — all-integer
    /// fields, validated by `patu_obs::schema::check_line` (which rejects a
    /// line that classified no tiles, so callers should only emit this on
    /// sequence frames where the store ran).
    pub fn jsonl_line(&self, frame: u32) -> String {
        format!(
            "{{\"type\":\"temporal\",\"frame\":{frame},\"reused\":{},\"repredicted\":{},\
             \"rerendered\":{},\"reuse_cycles\":{}}}",
            self.tiles_reused, self.tiles_repredicted, self.tiles_rerendered, self.reuse_cycles
        )
    }
}

/// The complete timing/traffic result of rendering one frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameStats {
    /// Total frame cycles (max over clusters + front-end).
    pub cycles: u64,
    /// Summed texture-filtering latency over all requests (Fig. 18's metric).
    pub filter_latency_cycles: u64,
    /// Number of texture filtering requests (shaded fragments that sampled).
    pub filter_requests: u64,
    /// Log2-bucketed distribution of per-request filtering latency. The
    /// mean alone hides tail effects (a few DRAM-missing requests dominate
    /// perceived hitching); benches report p50/p95/p99 from here.
    pub filter_latency_hist: Log2Histogram,
    /// Off-chip traffic by class.
    pub bandwidth: BandwidthBreakdown,
    /// Event counts for the energy model.
    pub events: EventCounts,
    /// Faults injected and degradations taken while rendering (all zero
    /// when fault injection is disabled).
    pub faults: crate::FaultCounts,
    /// Cross-frame tile reuse counters (all zero outside `render_sequence`).
    pub temporal: TemporalCounts,
}

impl FrameStats {
    /// Mean filtering latency per request in cycles (0 when no requests).
    pub fn mean_filter_latency(&self) -> f64 {
        if self.filter_requests == 0 {
            0.0
        } else {
            self.filter_latency_cycles as f64 / self.filter_requests as f64
        }
    }

    /// Records one filtering request's latency into both the running sum
    /// and the latency histogram.
    #[inline]
    pub fn record_filter_latency(&mut self, latency: u64) {
        self.filter_latency_cycles += latency;
        self.filter_requests += 1;
        self.filter_latency_hist.record(latency);
    }

    /// Median per-request filtering latency in cycles.
    pub fn filter_latency_p50(&self) -> u64 {
        self.filter_latency_hist.p50()
    }

    /// 95th-percentile per-request filtering latency in cycles.
    pub fn filter_latency_p95(&self) -> u64 {
        self.filter_latency_hist.p95()
    }

    /// 99th-percentile per-request filtering latency in cycles.
    pub fn filter_latency_p99(&self) -> u64 {
        self.filter_latency_hist.p99()
    }

    /// Frames per second at `frequency_hz` (∞ when the frame took 0 cycles).
    ///
    /// Callers writing JSON must route the result through
    /// `patu_obs::json::num`, which maps the non-finite zero-cycle case to
    /// `null` — raw `{}` formatting would emit the unparseable token `inf`.
    pub fn fps(&self, frequency_hz: u64) -> f64 {
        if self.cycles == 0 {
            f64::INFINITY
        } else {
            frequency_hz as f64 / self.cycles as f64
        }
    }

    /// Component-wise accumulation (for multi-frame averaging).
    pub fn accumulate(&mut self, other: &FrameStats) {
        self.cycles += other.cycles;
        self.filter_latency_cycles += other.filter_latency_cycles;
        self.filter_requests += other.filter_requests;
        self.filter_latency_hist
            .accumulate(&other.filter_latency_hist);
        self.bandwidth.accumulate(&other.bandwidth);
        self.events.accumulate(&other.events);
        self.faults.accumulate(&other.faults);
        self.temporal.accumulate(&other.temporal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_effects_record_and_merge() {
        let mut a = MemSideEffects::default();
        a.record_traffic(TrafficClass::Vertex, 100);
        let mut b = MemSideEffects::default();
        b.record_traffic(TrafficClass::Framebuffer, 50);
        a.accumulate(&b);
        assert_eq!(a.bandwidth.vertex, 100);
        assert_eq!(a.bandwidth.framebuffer, 50);
        assert_eq!(
            a.events.dram_bytes, 150,
            "record_traffic also counts DRAM bytes"
        );
    }

    #[test]
    fn breakdown_add_get_total() {
        let mut b = BandwidthBreakdown::default();
        b.add(TrafficClass::TextureFetch, 700);
        b.add(TrafficClass::Vertex, 100);
        b.add(TrafficClass::Framebuffer, 200);
        assert_eq!(b.get(TrafficClass::TextureFetch), 700);
        assert_eq!(b.total(), 1000);
        assert!((b.texture_fraction() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_fraction_zero() {
        assert_eq!(BandwidthBreakdown::default().texture_fraction(), 0.0);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = BandwidthBreakdown::default();
        a.add(TrafficClass::Depth, 5);
        let mut b = BandwidthBreakdown::default();
        b.add(TrafficClass::Depth, 7);
        b.add(TrafficClass::Other, 1);
        a.accumulate(&b);
        assert_eq!(a.depth, 12);
        assert_eq!(a.other, 1);
    }

    #[test]
    fn frame_stats_mean_latency() {
        let s = FrameStats {
            filter_latency_cycles: 100,
            filter_requests: 4,
            ..FrameStats::default()
        };
        assert_eq!(s.mean_filter_latency(), 25.0);
        assert_eq!(FrameStats::default().mean_filter_latency(), 0.0);
    }

    #[test]
    fn filter_latency_percentiles_expose_the_tail() {
        let mut s = FrameStats::default();
        for _ in 0..90 {
            s.record_filter_latency(1);
        }
        for _ in 0..10 {
            s.record_filter_latency(1000);
        }
        assert_eq!(s.filter_requests, 100);
        assert_eq!(s.filter_latency_cycles, 90 + 10 * 1000);
        assert_eq!(s.filter_latency_p50(), 1, "median ignores the tail");
        assert_eq!(s.filter_latency_p95(), 1000, "p95 lands in the tail bucket");
        assert_eq!(s.filter_latency_p99(), 1000);
        let mut merged = FrameStats::default();
        merged.accumulate(&s);
        merged.accumulate(&s);
        assert_eq!(
            merged.filter_latency_hist.count(),
            200,
            "hist merges on accumulate"
        );
        assert_eq!(merged.filter_latency_p50(), 1);
    }

    #[test]
    fn fps_at_one_ghz() {
        let s = FrameStats {
            cycles: 20_000_000,
            ..FrameStats::default()
        };
        assert!((s.fps(1_000_000_000) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn event_counts_accumulate() {
        let mut a = EventCounts {
            trilinear_ops: 3,
            ..EventCounts::default()
        };
        let b = EventCounts {
            trilinear_ops: 4,
            l1_accesses: 10,
            ..EventCounts::default()
        };
        a.accumulate(&b);
        assert_eq!(a.trilinear_ops, 7);
        assert_eq!(a.l1_accesses, 10);
    }

    #[test]
    fn temporal_counts_accumulate_and_fraction() {
        let mut a = TemporalCounts {
            tiles_reused: 3,
            tiles_rerendered: 1,
            reuse_cycles: 40,
            ..TemporalCounts::default()
        };
        assert!((a.reuse_fraction() - 0.75).abs() < 1e-9);
        let b = TemporalCounts {
            tiles_repredicted: 2,
            tiles_rerendered: 2,
            reuse_cycles: 8,
            ..TemporalCounts::default()
        };
        a.accumulate(&b);
        assert_eq!(a.tiles_total(), 8);
        assert_eq!(a.reuse_cycles, 48);
        assert!((a.reuse_fraction() - 5.0 / 8.0).abs() < 1e-9);
        assert!(!a.is_zero());
        assert!(TemporalCounts::default().is_zero());
        assert_eq!(TemporalCounts::default().reuse_fraction(), 0.0);
        let mut frame = FrameStats {
            temporal: a,
            ..FrameStats::default()
        };
        frame.accumulate(&FrameStats {
            temporal: b,
            ..FrameStats::default()
        });
        assert_eq!(frame.temporal.tiles_total(), 12, "FrameStats sums temporal");
    }

    #[test]
    fn traffic_class_display() {
        assert_eq!(TrafficClass::TextureFetch.to_string(), "texture");
        assert_eq!(TrafficClass::ALL.len(), 5);
    }
}
