//! # patu-gpu
//!
//! A cycle-accounting timing and memory-system model of the rasterization
//! GPU the PATU paper evaluates on (HPCA 2018, Table I): 4 unified-shader
//! clusters, one texture unit per cluster, a two-level texture cache
//! hierarchy, and a banked DRAM.
//!
//! The model is *trend-accurate* rather than RTL-exact (see DESIGN.md §2):
//! it charges cycles for the same events the paper's ATTILA-sim setup does —
//! address ALU work, trilinear filter throughput (2 cycles/trilinear),
//! cache hits and misses with real set-associative LRU state, DRAM bank/row
//! behavior, and per-class memory bandwidth — so removing anisotropic work
//! produces the same relative savings.
//!
//! * [`config::GpuConfig`] — Table I parameters, with cache-scaling knobs
//!   for the paper's Fig. 21 sensitivity study.
//! * [`cache::Cache`] — set-associative LRU cache (texture L1 and L2).
//! * [`dram::Dram`] — channels × banks with row-buffer hits and per-channel
//!   bandwidth occupancy.
//! * [`memsys::MemorySystem`] — L1-per-cluster → shared L2 → DRAM, with
//!   per-traffic-class byte accounting ([`stats::TrafficClass`], Fig. 6).
//! * [`texture_unit::TextureUnit`] — the filtering pipeline timing: address
//!   calculation, texel fetch, filter ALUs.
//! * [`timing::FrameTimer`] — assembles per-tile work into frame cycles
//!   across clusters.
//! * [`fault::FaultInjector`] — seeded, deterministic fault injection for
//!   the memory hierarchy (bit flips, DRAM stalls), with degradation
//!   accounting in [`fault::FaultCounts`].
//! * [`error::GpuError`] — typed errors for adversarial configurations.
//!
//! # Examples
//!
//! ```
//! use patu_gpu::{Cache, GpuConfig};
//! use patu_texture::TexelAddress;
//!
//! let cfg = GpuConfig::default();
//! let mut l1 = Cache::new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes);
//! assert!(!l1.access(TexelAddress::new(0x40)));  // cold miss
//! assert!(l1.access(TexelAddress::new(0x44)));   // same line: hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod error;
pub mod fault;
pub mod memsys;
pub mod stats;
pub mod texture_unit;
pub mod timing;

pub use cache::{Cache, CacheStats};
pub use config::GpuConfig;
pub use dram::{Dram, DramStats};
pub use error::GpuError;
pub use fault::{FaultConfig, FaultCounts, FaultInjector};
pub use memsys::{FetchLevel, MemAttribCycles, MemorySystem};
pub use stats::{
    BandwidthBreakdown, EventCounts, FrameStats, MemSideEffects, TemporalCounts, TrafficClass,
};
pub use texture_unit::{TextureRequest, TextureUnit};
pub use timing::FrameTimer;
