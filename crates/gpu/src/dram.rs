//! A banked DRAM model: channels × banks, open-row policy, per-channel
//! bandwidth occupancy.
//!
//! Matches the paper's Table I memory configuration (8 channels × 8 banks,
//! 16 bytes/cycle aggregate). Accesses to an open row pay CAS-only latency;
//! row conflicts pay activate + access. Each channel serializes its
//! transfers, so bursts of misses queue — which is exactly how AF's texel
//! storms hurt the paper's baseline.

use crate::config::GpuConfig;
use patu_texture::TexelAddress;

/// DRAM access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Total line reads serviced.
    pub reads: u64,
    /// Row-buffer hits among them.
    pub row_hits: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Cycles the busiest channel was occupied (bandwidth pressure proxy).
    pub busiest_channel_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
}

/// The DRAM device model.
#[derive(Debug, Clone)]
pub struct Dram {
    banks: Vec<Bank>,
    /// Cycle until which each channel's data bus is busy.
    channel_busy_until: Vec<u64>,
    channels: u64,
    banks_per_channel: u64,
    row_bytes: u64,
    line_size: u64,
    transfer_cycles: u64,
    row_hit_cycles: u64,
    row_miss_cycles: u64,
    stats: DramStats,
}

impl Dram {
    /// Builds the DRAM from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Dram {
        let channels = u64::from(cfg.dram_channels);
        let banks_per_channel = u64::from(cfg.dram_banks_per_channel);
        // Line transfer occupies a channel for line / per-channel-bandwidth.
        let per_channel_bw = cfg.dram_channel_bytes_per_cycle();
        let transfer_cycles = (cfg.cache_line_bytes as f64 / per_channel_bw).ceil() as u64;
        Dram {
            banks: vec![Bank { open_row: None }; (channels * banks_per_channel) as usize],
            channel_busy_until: vec![0; channels as usize],
            channels,
            banks_per_channel,
            row_bytes: 2048,
            line_size: cfg.cache_line_bytes,
            transfer_cycles: transfer_cycles.max(1),
            row_hit_cycles: cfg.dram_row_hit_cycles,
            row_miss_cycles: cfg.dram_row_miss_cycles,
            stats: DramStats::default(),
        }
    }

    /// Services a cache-line read of `addr` issued at cycle `now`; returns
    /// the latency in cycles until data is available.
    pub fn read(&mut self, addr: TexelAddress, now: u64) -> u64 {
        let line = addr.cache_line(self.line_size);
        // Fine-grained channel interleave; within a channel, consecutive
        // lines fill a row before moving to the next bank, so streaming
        // accesses enjoy row-buffer hits.
        let channel = (line % self.channels) as usize;
        let channel_line = line / self.channels;
        let lines_per_row = (self.row_bytes / self.line_size).max(1);
        let row = channel_line / lines_per_row;
        let bank_in_channel = row % self.banks_per_channel;
        let bank_idx = channel as u64 * self.banks_per_channel + bank_in_channel;

        let bank = &mut self.banks[bank_idx as usize];
        let row_hit = bank.open_row == Some(row);
        bank.open_row = Some(row);

        let access_cycles = if row_hit {
            self.row_hit_cycles
        } else {
            self.row_miss_cycles
        };

        // Only the data transfer occupies the channel bus; bank activation
        // (RAS/CAS) pipelines under other banks' transfers, so back-to-back
        // misses to different banks overlap their access latencies.
        let start = now.max(self.channel_busy_until[channel]);
        self.channel_busy_until[channel] = start + self.transfer_cycles;
        let done = start + access_cycles + self.transfer_cycles;

        self.stats.reads += 1;
        if row_hit {
            self.stats.row_hits += 1;
        }
        self.stats.bytes += self.line_size;
        let busy = self.channel_busy_until.iter().copied().max().unwrap_or(0);
        self.stats.busiest_channel_cycles = busy;

        done - now
    }

    /// The channel servicing `addr`, per the line-interleave mapping.
    pub fn channel_of(&self, addr: TexelAddress) -> usize {
        (addr.cache_line(self.line_size) % self.channels) as usize
    }

    /// Stalls the channel servicing `addr` for `cycles` beyond cycle `now`
    /// — a fault-injected timeout: the read in flight is retried, occupying
    /// the data bus without transferring useful data. Subsequent reads on
    /// the channel queue behind the stall, so the latency penalty propagates
    /// exactly like real bandwidth pressure. Also closes the bank rows on
    /// that channel (the retried activate loses the row buffer).
    pub fn inject_stall(&mut self, addr: TexelAddress, cycles: u64, now: u64) {
        let channel = self.channel_of(addr);
        let busy = self.channel_busy_until[channel].max(now) + cycles;
        self.channel_busy_until[channel] = busy;
        let base = channel as u64 * self.banks_per_channel;
        for b in 0..self.banks_per_channel {
            self.banks[(base + b) as usize].open_row = None;
        }
        self.stats.busiest_channel_cycles = self.stats.busiest_channel_cycles.max(busy);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Closes all rows, idles all channels, clears statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.open_row = None;
        }
        for c in &mut self.channel_busy_until {
            *c = 0;
        }
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&GpuConfig::default())
    }

    #[test]
    fn sequential_same_row_hits() {
        let mut d = dram();
        let first = d.read(TexelAddress::new(0), 0);
        // Same channel (line % 8 == 0), same row.
        let second = d.read(TexelAddress::new(8 * 64), 1000);
        assert!(second < first, "row hit is faster: {second} vs {first}");
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_activation() {
        let mut d = dram();
        let _ = d.read(TexelAddress::new(0), 0);
        // Same channel & bank (line multiple of 64 lines), different row.
        let conflict_addr = TexelAddress::new(64 * 64 * 64);
        let lat = d.read(conflict_addr, 1000);
        let cfg = GpuConfig::default();
        assert!(lat >= cfg.dram_row_miss_cycles);
    }

    #[test]
    fn back_to_back_reads_queue_on_channel() {
        let mut d = dram();
        let l1 = d.read(TexelAddress::new(0), 0);
        // Immediately issue another read to the same channel.
        let l2 = d.read(TexelAddress::new(8 * 64), 0);
        assert!(
            l2 > l1 || l2 >= d.transfer_cycles,
            "second read waits for the bus"
        );
    }

    #[test]
    fn different_channels_do_not_queue() {
        let mut d = dram();
        let l1 = d.read(TexelAddress::new(0), 0); // channel 0
        let l2 = d.read(TexelAddress::new(64), 0); // channel 1
                                                   // Both cold row misses with idle channels: identical latency.
        assert_eq!(l1, l2);
    }

    #[test]
    fn bytes_accounted_per_line() {
        let mut d = dram();
        d.read(TexelAddress::new(0), 0);
        d.read(TexelAddress::new(4096), 10);
        assert_eq!(d.stats().bytes, 128);
    }

    #[test]
    fn injected_stall_delays_same_channel_only() {
        let mut d = dram();
        let clean = d.read(TexelAddress::new(0), 0);
        d.reset();
        d.inject_stall(TexelAddress::new(0), 5_000, 0);
        let stalled = d.read(TexelAddress::new(0), 0); // channel 0: queued
        let other = d.read(TexelAddress::new(64), 0); // channel 1: free
        assert!(
            stalled >= clean + 5_000,
            "stall adds latency: {stalled} vs {clean}"
        );
        assert_eq!(other, clean, "other channels unaffected");
        assert_eq!(d.stats().reads, 2, "stalls are not reads");
        assert_eq!(d.stats().bytes, 128, "accounting invariant holds");
    }

    #[test]
    fn reset_clears_state() {
        let mut d = dram();
        let cold = d.read(TexelAddress::new(0), 0);
        let warm = d.read(TexelAddress::new(0), 10_000);
        assert!(warm < cold);
        d.reset();
        let again = d.read(TexelAddress::new(0), 0);
        assert_eq!(again, cold, "row closed after reset");
        assert_eq!(d.stats().reads, 1);
    }
}
