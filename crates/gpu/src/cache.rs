//! A set-associative cache with true LRU replacement.
//!
//! Used for the per-cluster texture L1 and the shared L2 (Table I). The cache
//! tracks real tag state, so locality effects — including the extra reuse
//! PATU creates by sampling approximated pixels from AF's mip level
//! (Sec. V-C(2)) — show up as measured hit-rate changes, not assumptions.

use patu_texture::TexelAddress;

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// One cache way: a tag plus an LRU timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    last_used: u64,
    valid: bool,
}

/// A set-associative, write-allocate, LRU cache over byte addresses.
///
/// ```
/// use patu_gpu::Cache;
/// use patu_texture::TexelAddress;
/// let mut c = Cache::new(1024, 2, 64);
/// assert!(!c.access(TexelAddress::new(0)));
/// assert!(c.access(TexelAddress::new(32)), "same 64B line");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    num_sets: u64,
    line_size: u64,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways` associativity and
    /// `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `size_bytes` is not divisible into
    /// at least one full set (`ways * line_size`). Use [`Cache::try_new`]
    /// for a non-panicking variant.
    pub fn new(size_bytes: u64, ways: u32, line_size: u64) -> Cache {
        assert!(
            size_bytes > 0 && ways > 0 && line_size > 0,
            "cache parameters must be positive"
        );
        let num_sets = size_bytes / (u64::from(ways) * line_size);
        assert!(num_sets > 0, "cache too small for its associativity");
        Cache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        last_used: 0,
                        valid: false
                    };
                    ways as usize
                ];
                num_sets as usize
            ],
            num_sets,
            line_size,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Like [`Cache::new`] but reports degenerate geometry as a typed error
    /// instead of panicking.
    pub fn try_new(size_bytes: u64, ways: u32, line_size: u64) -> Result<Cache, crate::GpuError> {
        let err = crate::GpuError::InvalidCacheGeometry {
            size_bytes,
            ways,
            line_size,
        };
        if size_bytes == 0 || ways == 0 || line_size == 0 {
            return Err(err);
        }
        if size_bytes / (u64::from(ways) * line_size) == 0 {
            return Err(err);
        }
        Ok(Cache::new(size_bytes, ways, line_size))
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Looks up (and on miss, fills) the line containing `addr`.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: TexelAddress) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr.cache_line(self.line_size);
        let set_idx = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = self.clock;
            self.stats.hits += 1;
            return true;
        }

        // Miss: fill the LRU (or first invalid) way. Sets are non-empty by
        // `try_new`'s geometry validation; if that were ever violated the
        // miss is still reported, just without a fill.
        if let Some(victim) = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_used } else { 0 })
        {
            victim.tag = tag;
            victim.valid = true;
            victim.last_used = self.clock;
        }
        false
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change, no stats update).
    pub fn probe(&self, addr: TexelAddress) -> bool {
        let line = addr.cache_line(self.line_size);
        let set_idx = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates the line containing `addr` if resident, returning
    /// whether a line was dropped. Models an ECC-detected bit flip: the
    /// corrupted line cannot be served, so the next access refills it from
    /// the level below (keeping hit/miss accounting consistent).
    pub fn invalidate_line(&mut self, addr: TexelAddress) -> bool {
        let line = addr.cache_line(self.line_size);
        let set_idx = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        if let Some(way) = self.sets[set_idx]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.valid = false;
            return true;
        }
        false
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                way.valid = false;
            }
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u64) -> TexelAddress {
        TexelAddress::new(a)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(addr(0x100)));
        assert!(c.access(addr(0x100)));
        assert!(c.access(addr(0x13F)), "last byte of the same line");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn distinct_lines_conflict_only_within_set() {
        // 2 ways, 8 sets of 64B lines = 1KB.
        let mut c = Cache::new(1024, 2, 64);
        assert_eq!(c.num_sets(), 8);
        // Three lines mapping to set 0: lines 0, 8, 16.
        assert!(!c.access(addr(0)));
        assert!(!c.access(addr(8 * 64)));
        assert!(!c.access(addr(16 * 64))); // evicts LRU = line 0
        assert!(!c.access(addr(0)), "line 0 was evicted");
        assert!(c.probe(addr(16 * 64)));
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(addr(0)); // set 0, way A
        c.access(addr(8 * 64)); // set 0, way B
        c.access(addr(0)); // touch A -> B becomes LRU
        c.access(addr(16 * 64)); // evicts B
        assert!(c.probe(addr(0)), "recently used line survives");
        assert!(!c.probe(addr(8 * 64)), "LRU line evicted");
    }

    #[test]
    fn fully_associative_single_set() {
        // 16 ways * 64B = 1024: one set.
        let mut c = Cache::new(1024, 16, 64);
        assert_eq!(c.num_sets(), 1);
        for i in 0..16 {
            assert!(!c.access(addr(i * 64)));
        }
        for i in 0..16 {
            assert!(c.access(addr(i * 64)), "all 16 lines resident");
        }
    }

    #[test]
    fn larger_cache_has_fewer_capacity_misses() {
        let mut small = Cache::new(1024, 4, 64);
        let mut large = Cache::new(4096, 4, 64);
        // Stream over 2KB twice.
        for pass in 0..2 {
            for i in 0..32u64 {
                small.access(addr(i * 64));
                large.access(addr(i * 64));
            }
            let _ = pass;
        }
        assert!(large.stats().hits > small.stats().hits);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(addr(0));
        let before = c.stats();
        assert!(c.probe(addr(0)));
        assert!(!c.probe(addr(0x4000)));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(addr(0));
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.probe(addr(0)));
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = Cache::new(1024, 2, 64);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(addr(0));
        c.access(addr(0));
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_geometry_panics() {
        let _ = Cache::new(64, 4, 64);
    }

    #[test]
    fn try_new_reports_bad_geometry() {
        assert!(Cache::try_new(64, 4, 64).is_err(), "one set won't fit");
        assert!(Cache::try_new(0, 4, 64).is_err());
        assert!(Cache::try_new(1024, 0, 64).is_err());
        assert!(Cache::try_new(1024, 4, 0).is_err());
        assert!(Cache::try_new(1024, 4, 64).is_ok());
    }

    #[test]
    fn invalidate_line_forces_refill() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(addr(0x100));
        assert!(c.probe(addr(0x100)));
        assert!(c.invalidate_line(addr(0x100)));
        assert!(!c.probe(addr(0x100)), "corrupted line dropped");
        assert!(!c.access(addr(0x100)), "next access misses and refills");
        assert!(!c.invalidate_line(addr(0x4000)), "absent line is a no-op");
    }
}
