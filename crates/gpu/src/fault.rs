//! Deterministic fault injection for the simulated memory hierarchy.
//!
//! PATU's whole premise is controlled degradation: the pipeline may trade
//! quality for throughput when a predictor says the loss is imperceptible.
//! This module extends that stance to *robustness*: a seeded
//! [`FaultInjector`] perturbs the simulated hardware — cache lines lose
//! their contents to bit flips, DRAM reads stall, the texel-address hash
//! table takes soft errors, predictor arithmetic goes non-finite — and
//! every consumer degrades instead of dying, with the damage accounted in
//! [`FaultCounts`].
//!
//! Everything is driven by [`patu_gmath::DetRng`]: the same seed and the
//! same call sequence produce bit-identical fault patterns, so chaos tests
//! are exactly reproducible. With all rates at zero the injector draws no
//! randomness and perturbs nothing — results are bit-identical to a build
//! without it.

use crate::error::GpuError;
use patu_gmath::DetRng;

/// Per-site fault probabilities plus the master seed.
///
/// Rates are per *event* at each site: per cache-line lookup, per DRAM
/// read, per hash-table pixel, per predictor evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; all per-site streams are forked from it.
    pub seed: u64,
    /// Probability a fetched/resident cache line is corrupted by a bit
    /// flip (detected by ECC, forcing a refill).
    pub cache_bitflip_rate: f64,
    /// Probability a DRAM read stalls (retried after a timeout).
    pub dram_stall_rate: f64,
    /// Extra cycles a stalled DRAM read occupies its channel.
    pub dram_stall_cycles: u64,
    /// Probability a pixel's hash-table state takes a soft error.
    pub table_corrupt_rate: f64,
    /// Probability a predictor evaluation's input goes non-finite.
    pub predictor_nan_rate: f64,
}

impl FaultConfig {
    /// All rates zero: injection is a guaranteed no-op.
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            seed: 0,
            cache_bitflip_rate: 0.0,
            dram_stall_rate: 0.0,
            dram_stall_cycles: 2_000,
            table_corrupt_rate: 0.0,
            predictor_nan_rate: 0.0,
        }
    }

    /// The same `rate` at every site, under `seed`.
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            cache_bitflip_rate: rate,
            dram_stall_rate: rate,
            dram_stall_cycles: 2_000,
            table_corrupt_rate: rate,
            predictor_nan_rate: rate,
        }
    }

    /// Whether every rate is zero (injection cannot fire).
    pub fn is_disabled(&self) -> bool {
        self.cache_bitflip_rate == 0.0
            && self.dram_stall_rate == 0.0
            && self.table_corrupt_rate == 0.0
            && self.predictor_nan_rate == 0.0
    }

    /// Validates that every rate is a finite probability in `[0, 1]`.
    pub fn validate(&self) -> Result<(), GpuError> {
        let rates = [
            ("cache_bitflip_rate", self.cache_bitflip_rate),
            ("dram_stall_rate", self.dram_stall_rate),
            ("table_corrupt_rate", self.table_corrupt_rate),
            ("predictor_nan_rate", self.predictor_nan_rate),
        ];
        for (name, value) in rates {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(GpuError::InvalidFaultRate { name, value });
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::disabled()
    }
}

/// Counts of injected faults and the degradations they triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Cache lines corrupted (and invalidated by the modeled ECC).
    pub cache_bitflips: u64,
    /// DRAM reads that stalled past their timeout.
    pub dram_stalls: u64,
    /// Hash-table soft errors.
    pub table_corruptions: u64,
    /// Predictor evaluations whose inputs went non-finite.
    pub predictor_poisons: u64,
    /// Whole-GPU outage windows entered (a crash that takes the unit
    /// offline until its drawn recovery cycle — counted by the serve
    /// layer's health model).
    pub outages: u64,
    /// Straggler episodes hit: windows where a unit's service time is
    /// multiplied by a slowdown factor without going offline.
    pub stragglers: u64,
    /// Pixels that fell back to a quality-safe path (full AF) because
    /// predictor or table state could not be trusted.
    pub fallbacks: u64,
    /// Frames whose cycle-budget watchdog tripped into degraded rendering.
    pub watchdog_trips: u64,
}

impl FaultCounts {
    /// Total faults injected across all sites (excludes the degradation
    /// counters, which are *reactions* to faults).
    pub fn faults_injected(&self) -> u64 {
        self.cache_bitflips
            + self.dram_stalls
            + self.table_corruptions
            + self.predictor_poisons
            + self.outages
            + self.stragglers
    }

    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &FaultCounts) {
        self.cache_bitflips += other.cache_bitflips;
        self.dram_stalls += other.dram_stalls;
        self.table_corruptions += other.table_corruptions;
        self.predictor_poisons += other.predictor_poisons;
        self.outages += other.outages;
        self.stragglers += other.stragglers;
        self.fallbacks += other.fallbacks;
        self.watchdog_trips += other.watchdog_trips;
    }

    /// Component-wise difference against an earlier snapshot — how many
    /// faults fired since `since`. Counters are monotone, so saturating
    /// subtraction only guards against misuse.
    pub fn delta(&self, since: &FaultCounts) -> FaultCounts {
        FaultCounts {
            cache_bitflips: self.cache_bitflips.saturating_sub(since.cache_bitflips),
            dram_stalls: self.dram_stalls.saturating_sub(since.dram_stalls),
            table_corruptions: self
                .table_corruptions
                .saturating_sub(since.table_corruptions),
            predictor_poisons: self
                .predictor_poisons
                .saturating_sub(since.predictor_poisons),
            outages: self.outages.saturating_sub(since.outages),
            stragglers: self.stragglers.saturating_sub(since.stragglers),
            fallbacks: self.fallbacks.saturating_sub(since.fallbacks),
            watchdog_trips: self.watchdog_trips.saturating_sub(since.watchdog_trips),
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounts::default()
    }

    /// Injection-site counters as `(site name, count)` pairs, in a stable
    /// order — the telemetry event stream's fault vocabulary. Excludes the
    /// reaction counters (`fallbacks`, `watchdog_trips`), which telemetry
    /// reports as their own event kinds.
    pub fn sites(&self) -> [(&'static str, u64); 6] {
        [
            ("cache_bitflips", self.cache_bitflips),
            ("dram_stalls", self.dram_stalls),
            ("table_corruptions", self.table_corruptions),
            ("predictor_poisons", self.predictor_poisons),
            ("outages", self.outages),
            ("stragglers", self.stragglers),
        ]
    }
}

/// A seeded fault source for one consumer (a memory system, a texture
/// unit). Fork distinct instances per consumer via [`FaultInjector::fork`]
/// so their draw sequences never interleave nondeterministically.
///
/// ```
/// use patu_gpu::{FaultConfig, FaultInjector};
///
/// let mut chaos = FaultInjector::new(FaultConfig::uniform(7, 1.0));
/// assert!(chaos.flip_cache_line(), "rate 1.0 always fires");
/// let mut calm = FaultInjector::disabled();
/// assert!(!calm.flip_cache_line(), "disabled never fires");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: DetRng,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Creates an injector from a (validated or trusted) configuration.
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            cfg,
            rng: DetRng::new(cfg.seed),
            counts: FaultCounts::default(),
        }
    }

    /// An injector that never fires and never draws randomness.
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultConfig::disabled())
    }

    /// Derives an independent injector for another consumer, sharing the
    /// configuration but with a decorrelated stream tagged by `tag`.
    #[must_use]
    pub fn fork(&self, tag: u64) -> FaultInjector {
        FaultInjector {
            cfg: self.cfg,
            rng: self.rng.fork(tag),
            counts: FaultCounts::default(),
        }
    }

    /// Rebases the draw stream to the canonical position for `tags` while
    /// keeping the accumulated counts. Unlike [`FaultInjector::fork`],
    /// which derives from wherever the current stream happens to be, this
    /// rebuilds from the configured seed — so the resulting stream depends
    /// only on the tag chain, never on how many draws the injector made
    /// before. The temporal renderer uses this to key fault streams per
    /// `(frame, tile)`: a tile's faults are then identical whether or not
    /// its neighbours were reused from the previous frame.
    pub fn rekey(&mut self, tags: &[u64]) {
        let mut rng = DetRng::new(self.cfg.seed);
        for &tag in tags {
            rng = rng.fork(tag);
        }
        self.rng = rng;
    }

    /// The configuration in force.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Whether any fault site can fire.
    pub fn is_active(&self) -> bool {
        !self.cfg.is_disabled()
    }

    /// Faults injected and degradations observed by this injector.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Clears the counters (the configuration and stream position remain).
    pub fn reset_counts(&mut self) {
        self.counts = FaultCounts::default();
    }

    /// Decides whether a cache line is corrupted at this access.
    pub fn flip_cache_line(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        let hit = self.rng.chance(self.cfg.cache_bitflip_rate);
        if hit {
            self.counts.cache_bitflips += 1;
        }
        hit
    }

    /// Decides whether a DRAM read stalls; returns the extra channel-busy
    /// cycles when it does.
    pub fn dram_stall(&mut self) -> Option<u64> {
        if !self.is_active() {
            return None;
        }
        if self.rng.chance(self.cfg.dram_stall_rate) {
            self.counts.dram_stalls += 1;
            Some(self.cfg.dram_stall_cycles)
        } else {
            None
        }
    }

    /// Decides whether this pixel's hash-table state takes a soft error;
    /// returns the `(entry_selector, bit)` to corrupt when it does.
    pub fn table_corruption(&mut self) -> Option<(usize, u8)> {
        if !self.is_active() {
            return None;
        }
        if self.rng.chance(self.cfg.table_corrupt_rate) {
            self.counts.table_corruptions += 1;
            let entry = self.rng.range(u64::MAX) as usize;
            let bit = (self.rng.range(4)) as u8;
            Some((entry, bit))
        } else {
            None
        }
    }

    /// Potentially poisons a predictor input: returns `value` untouched, or
    /// a non-finite stand-in (NaN / ±inf) when the fault fires.
    pub fn poison_predictor(&mut self, value: f64) -> f64 {
        if !self.is_active() {
            return value;
        }
        if self.rng.chance(self.cfg.predictor_nan_rate) {
            self.counts.predictor_poisons += 1;
            match self.rng.range(3) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            }
        } else {
            value
        }
    }

    /// Records that a consumer fell back to a quality-safe path.
    pub fn note_fallback(&mut self) {
        self.counts.fallbacks += 1;
    }

    /// Records a cycle-budget watchdog trip.
    pub fn note_watchdog_trip(&mut self) {
        self.counts.watchdog_trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_sites_expose_per_tile_increments() {
        let before = FaultCounts {
            cache_bitflips: 3,
            dram_stalls: 1,
            ..FaultCounts::default()
        };
        let after = FaultCounts {
            cache_bitflips: 5,
            dram_stalls: 1,
            fallbacks: 2,
            ..FaultCounts::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.cache_bitflips, 2);
        assert_eq!(d.dram_stalls, 0);
        assert_eq!(d.fallbacks, 2);
        assert!(!d.is_zero());
        assert!(FaultCounts::default().is_zero());
        let sites = d.sites();
        assert_eq!(sites[0], ("cache_bitflips", 2));
        assert!(sites.iter().all(|(_, count)| *count == 0 || *count == 2));
    }

    #[test]
    fn outage_and_straggler_sites_flow_through_the_counters() {
        let before = FaultCounts {
            outages: 1,
            stragglers: 4,
            ..FaultCounts::default()
        };
        let after = FaultCounts {
            outages: 3,
            stragglers: 9,
            ..FaultCounts::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.outages, 2);
        assert_eq!(d.stragglers, 5);
        assert_eq!(d.faults_injected(), 7, "serve-level sites count as faults");
        let sites = d.sites();
        assert_eq!(sites[4], ("outages", 2));
        assert_eq!(sites[5], ("stragglers", 5));
        let mut sum = before;
        sum.accumulate(&d);
        assert_eq!(sum, after, "accumulate inverts delta on monotone counts");
        assert!(!FaultCounts {
            outages: 1,
            ..FaultCounts::default()
        }
        .is_zero());
    }

    #[test]
    fn disabled_injector_never_fires() {
        let mut f = FaultInjector::disabled();
        for _ in 0..100 {
            assert!(!f.flip_cache_line());
            assert!(f.dram_stall().is_none());
            assert!(f.table_corruption().is_none());
            assert_eq!(f.poison_predictor(0.5), 0.5);
        }
        assert_eq!(f.counts(), FaultCounts::default());
    }

    #[test]
    fn full_rate_always_fires() {
        let mut f = FaultInjector::new(FaultConfig::uniform(1, 1.0));
        assert!(f.flip_cache_line());
        assert!(f.dram_stall().is_some());
        assert!(f.table_corruption().is_some());
        assert!(!f.poison_predictor(0.5).is_finite());
        let c = f.counts();
        assert_eq!(c.faults_injected(), 4);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let mk = || FaultInjector::new(FaultConfig::uniform(42, 0.3));
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..500 {
            assert_eq!(a.flip_cache_line(), b.flip_cache_line());
            assert_eq!(a.dram_stall(), b.dram_stall());
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let parent = FaultInjector::new(FaultConfig::uniform(7, 0.5));
        let mut x1 = parent.fork(1);
        let mut x2 = parent.fork(1);
        let mut y = parent.fork(2);
        let sx1: Vec<bool> = (0..64).map(|_| x1.flip_cache_line()).collect();
        let sx2: Vec<bool> = (0..64).map(|_| x2.flip_cache_line()).collect();
        let sy: Vec<bool> = (0..64).map(|_| y.flip_cache_line()).collect();
        assert_eq!(sx1, sx2, "same tag, same stream");
        assert_ne!(sx1, sy, "different tags diverge");
    }

    #[test]
    fn rekey_is_position_independent_and_keeps_counts() {
        let cfg = FaultConfig::uniform(11, 0.5);
        // Injector A draws a lot before rekeying; B rekeys immediately.
        let mut a = FaultInjector::new(cfg);
        for _ in 0..200 {
            a.flip_cache_line();
        }
        let counts_before = a.counts();
        assert!(!counts_before.is_zero());
        let mut b = FaultInjector::new(cfg);
        a.rekey(&[0xAB, 7, 3]);
        b.rekey(&[0xAB, 7, 3]);
        let sa: Vec<bool> = (0..64).map(|_| a.flip_cache_line()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.flip_cache_line()).collect();
        assert_eq!(sa, sb, "rekeyed stream ignores prior draw position");
        let fired = sa.iter().filter(|&&h| h).count() as u64;
        assert_eq!(
            a.counts().cache_bitflips,
            counts_before.cache_bitflips + fired,
            "rekey preserves accumulated counts"
        );
        let mut c = FaultInjector::new(cfg);
        c.rekey(&[0xAB, 7, 4]);
        let sc: Vec<bool> = (0..64).map(|_| c.flip_cache_line()).collect();
        assert_ne!(sa, sc, "different tags give a different stream");
    }

    #[test]
    fn rates_roughly_respected() {
        let mut f = FaultInjector::new(FaultConfig::uniform(9, 0.1));
        let fired = (0..10_000).filter(|_| f.flip_cache_line()).count();
        assert!((700..1400).contains(&fired), "~10% of 10k: {fired}");
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut cfg = FaultConfig::disabled();
        assert!(cfg.validate().is_ok());
        cfg.dram_stall_rate = 1.5;
        assert!(cfg.validate().is_err());
        cfg.dram_stall_rate = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.dram_stall_rate = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn counts_accumulate() {
        let mut a = FaultCounts {
            cache_bitflips: 1,
            fallbacks: 2,
            ..FaultCounts::default()
        };
        let b = FaultCounts {
            cache_bitflips: 3,
            watchdog_trips: 1,
            ..FaultCounts::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cache_bitflips, 4);
        assert_eq!(a.fallbacks, 2);
        assert_eq!(a.watchdog_trips, 1);
        assert_eq!(a.faults_injected(), 4);
    }

    #[test]
    fn table_corruption_bit_in_tag_range() {
        let mut f = FaultInjector::new(FaultConfig::uniform(3, 1.0));
        for _ in 0..50 {
            let (_, bit) = f.table_corruption().unwrap();
            assert!(bit < 4, "count tags are 4 bits");
        }
    }
}
