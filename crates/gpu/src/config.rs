//! Baseline GPU configuration (paper Table I), with the cache-scaling knobs
//! used by the Fig. 21 sensitivity study.

/// The simulated GPU's architectural parameters.
///
/// Defaults reproduce the paper's Table I baseline, which itself references
/// the PowerVR Rogue mobile architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Core frequency in Hz (Table I: 1 GHz).
    pub frequency_hz: u64,
    /// Number of unified-shader clusters (Table I: 4).
    pub clusters: u32,
    /// Unified shaders per cluster (Table I: 16).
    pub shaders_per_cluster: u32,
    /// SIMD width of each shader ALU (Table I: SIMD4).
    pub simd_width: u32,
    /// Tile edge in pixels (Table I: 16×16).
    pub tile_size: u32,
    /// Address ALUs per texture unit (Table I: 4).
    pub address_alus: u32,
    /// Filtering ALUs per texture unit (Table I: 8).
    pub filter_alus: u32,
    /// Texture-unit throughput: cycles per trilinear sample (Table I: 2).
    pub cycles_per_trilinear: u32,
    /// Texture L1 cache capacity in bytes (Table I: 16 KB).
    pub tex_l1_bytes: u64,
    /// Texture L1 associativity (Table I: 4-way).
    pub tex_l1_ways: u32,
    /// Shared L2 / last-level cache capacity in bytes (Table I: 128 KB).
    pub tex_l2_bytes: u64,
    /// L2 associativity (Table I: 8-way).
    pub tex_l2_ways: u32,
    /// Cache line size in bytes.
    pub cache_line_bytes: u64,
    /// DRAM channels (Table I: 8).
    pub dram_channels: u32,
    /// Banks per DRAM channel (Table I: 8).
    pub dram_banks_per_channel: u32,
    /// Aggregate DRAM bandwidth in bytes per core cycle (Table I: 16 B/cycle).
    pub dram_bytes_per_cycle: u32,
    /// DRAM row-buffer hit latency in core cycles.
    pub dram_row_hit_cycles: u64,
    /// DRAM row-activate + access latency in core cycles.
    pub dram_row_miss_cycles: u64,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: u64,
    /// Fragment-shader ALU operations charged per shaded fragment.
    pub shader_ops_per_fragment: u32,
    /// Maximum anisotropic filtering level (16× AF baseline).
    pub max_aniso: u32,
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig {
            frequency_hz: 1_000_000_000,
            clusters: 4,
            shaders_per_cluster: 16,
            simd_width: 4,
            tile_size: 16,
            address_alus: 4,
            filter_alus: 8,
            cycles_per_trilinear: 2,
            tex_l1_bytes: 16 * 1024,
            tex_l1_ways: 4,
            tex_l2_bytes: 128 * 1024,
            tex_l2_ways: 8,
            cache_line_bytes: 64,
            dram_channels: 8,
            dram_banks_per_channel: 8,
            dram_bytes_per_cycle: 16,
            dram_row_hit_cycles: 36,
            dram_row_miss_cycles: 72,
            l1_hit_cycles: 1,
            l2_hit_cycles: 12,
            shader_ops_per_fragment: 64,
            max_aniso: 16,
        }
    }
}

impl GpuConfig {
    /// Scales the last-level (L2) cache capacity, as in Fig. 21's
    /// 2×LLC / 4×LLC design points.
    #[must_use]
    pub fn with_llc_scale(mut self, factor: u64) -> GpuConfig {
        self.tex_l2_bytes *= factor;
        self
    }

    /// Scales the texture (L1) cache capacity, as in Fig. 21's 2×TC point.
    #[must_use]
    pub fn with_tc_scale(mut self, factor: u64) -> GpuConfig {
        self.tex_l1_bytes *= factor;
        self
    }

    /// Fragments a cluster can shade per cycle
    /// (`shaders × simd / ops-per-fragment`).
    pub fn fragments_per_cycle(&self) -> f64 {
        f64::from(self.shaders_per_cluster * self.simd_width)
            / f64::from(self.shader_ops_per_fragment)
    }

    /// Per-channel DRAM bandwidth in bytes per cycle.
    pub fn dram_channel_bytes_per_cycle(&self) -> f64 {
        f64::from(self.dram_bytes_per_cycle) / f64::from(self.dram_channels)
    }

    /// The per-cluster slice of this configuration used by the deterministic
    /// parallel renderer: a single cluster owning its L1, a private `1/N`
    /// share of the L2, and a `1/N` subset of the DRAM channels with the
    /// per-channel bandwidth preserved (so an isolated cluster sees the same
    /// transfer occupancy it would on the shared bus). Shares are clamped so
    /// a valid full configuration always yields a valid shard. The fidelity
    /// trade-off (no inter-cluster L2 sharing or channel contention) is
    /// documented in DESIGN.md §"Parallel execution model".
    #[must_use]
    pub fn cluster_shard(&self) -> GpuConfig {
        let n = u64::from(self.clusters.max(1));
        let min_l2 = (self.cache_line_bytes * u64::from(self.tex_l2_ways)).max(1);
        let channels = (self.dram_channels / self.clusters.max(1)).max(1);
        let bytes_per_cycle = (u64::from(self.dram_bytes_per_cycle) * u64::from(channels)
            / u64::from(self.dram_channels.max(1)))
        .max(1) as u32;
        GpuConfig {
            clusters: 1,
            tex_l2_bytes: (self.tex_l2_bytes / n).max(min_l2),
            dram_channels: channels,
            dram_bytes_per_cycle: bytes_per_cycle,
            ..*self
        }
    }

    /// The Table I rows as (name, value) pairs — printed by the `table1`
    /// harness binary.
    pub fn table1(&self) -> Vec<(&'static str, String)> {
        vec![
            (
                "Frequency",
                format!("{} GHz", self.frequency_hz as f64 / 1e9),
            ),
            ("Number of cluster", self.clusters.to_string()),
            (
                "Unified shader per cluster",
                self.shaders_per_cluster.to_string(),
            ),
            (
                "Unified shader configuration",
                format!(
                    "SIMD{}-scale ALUs, {} shader elements, {}x{} tile size",
                    self.simd_width, self.clusters, self.tile_size, self.tile_size
                ),
            ),
            ("Number of Texture Units", "1 per cluster".to_string()),
            (
                "Texture unit configuration",
                format!(
                    "{} address ALUs, {} filtering ALUs",
                    self.address_alus, self.filter_alus
                ),
            ),
            (
                "Texture throughput",
                format!("{} cycle per trilinear", self.cycles_per_trilinear),
            ),
            (
                "Texture L1 cache",
                format!("{}KB, {}-way", self.tex_l1_bytes / 1024, self.tex_l1_ways),
            ),
            (
                "Texture L2 cache",
                format!("{}KB, {}-way", self.tex_l2_bytes / 1024, self.tex_l2_ways),
            ),
            (
                "Memory configuration",
                format!(
                    "1GB, {} bytes/cycle, {} channel, {} banks per channel",
                    self.dram_bytes_per_cycle, self.dram_channels, self.dram_banks_per_channel
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = GpuConfig::default();
        assert_eq!(c.frequency_hz, 1_000_000_000);
        assert_eq!(c.clusters, 4);
        assert_eq!(c.shaders_per_cluster, 16);
        assert_eq!(c.tex_l1_bytes, 16 * 1024);
        assert_eq!(c.tex_l1_ways, 4);
        assert_eq!(c.tex_l2_bytes, 128 * 1024);
        assert_eq!(c.tex_l2_ways, 8);
        assert_eq!(c.dram_channels, 8);
        assert_eq!(c.dram_banks_per_channel, 8);
        assert_eq!(c.cycles_per_trilinear, 2);
        assert_eq!(c.max_aniso, 16);
    }

    #[test]
    fn llc_scaling() {
        let c = GpuConfig::default().with_llc_scale(4);
        assert_eq!(c.tex_l2_bytes, 512 * 1024);
        assert_eq!(c.tex_l1_bytes, 16 * 1024, "L1 untouched");
    }

    #[test]
    fn tc_scaling() {
        let c = GpuConfig::default().with_tc_scale(2).with_llc_scale(4);
        assert_eq!(c.tex_l1_bytes, 32 * 1024);
        assert_eq!(c.tex_l2_bytes, 512 * 1024);
    }

    #[test]
    fn fragments_per_cycle_default() {
        let c = GpuConfig::default();
        assert!(
            (c.fragments_per_cycle() - 1.0).abs() < 1e-9,
            "64 lanes / 64 ops"
        );
    }

    #[test]
    fn cluster_shard_preserves_per_channel_bandwidth() {
        let full = GpuConfig::default();
        let shard = full.cluster_shard();
        assert_eq!(shard.clusters, 1);
        assert_eq!(
            shard.tex_l1_bytes, full.tex_l1_bytes,
            "L1 is already per-cluster"
        );
        assert_eq!(shard.tex_l2_bytes, full.tex_l2_bytes / 4);
        assert_eq!(shard.dram_channels, 2);
        assert_eq!(shard.dram_bytes_per_cycle, 4);
        assert!(
            (shard.dram_channel_bytes_per_cycle() - full.dram_channel_bytes_per_cycle()).abs()
                < 1e-12
        );
    }

    #[test]
    fn cluster_shard_clamps_degenerate_shares() {
        let skinny = GpuConfig {
            dram_channels: 1,
            dram_bytes_per_cycle: 1,
            ..GpuConfig::default()
        };
        let shard = skinny.cluster_shard();
        assert_eq!(shard.dram_channels, 1);
        assert!(shard.dram_bytes_per_cycle >= 1);
        // L2 share never drops below one full set.
        let tiny = GpuConfig {
            tex_l2_bytes: 1024,
            tex_l2_ways: 8,
            ..GpuConfig::default()
        };
        let shard = tiny.cluster_shard();
        assert_eq!(shard.tex_l2_bytes, 64 * 8);
    }

    #[test]
    fn table1_has_all_rows() {
        let rows = GpuConfig::default().table1();
        assert_eq!(rows.len(), 10);
        assert!(rows
            .iter()
            .any(|(k, v)| *k == "Texture L1 cache" && v.contains("16KB")));
    }
}
