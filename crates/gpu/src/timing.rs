//! Frame-level cycle assembly: tiles are scheduled onto shader clusters;
//! shading and texturing overlap within a tile; the frame finishes when the
//! slowest cluster drains.

use crate::config::GpuConfig;

/// Schedules per-tile work onto clusters and accumulates frame time.
///
/// Tiles are the basic execution units (paper Sec. II-A); the timer assigns
/// each tile to the least-loaded cluster (dynamic load balancing), overlaps
/// the tile's shader and texture work, and reports the frame's critical-path
/// cycles.
///
/// ```
/// use patu_gpu::{FrameTimer, GpuConfig};
/// let cfg = GpuConfig::default();
/// let mut timer = FrameTimer::new(&cfg);
/// let (cluster, start) = timer.begin_tile();
/// timer.end_tile(cluster, 100, start + 250);
/// assert_eq!(timer.frame_cycles(), 250);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTimer {
    cluster_time: Vec<u64>,
    frontend_cycles: u64,
    fragments_per_cycle_num: u64,
    fragments_per_cycle_den: u64,
}

impl FrameTimer {
    /// Creates a timer for `cfg.clusters` clusters.
    pub fn new(cfg: &GpuConfig) -> FrameTimer {
        FrameTimer {
            cluster_time: vec![0; cfg.clusters as usize],
            frontend_cycles: 0,
            fragments_per_cycle_num: u64::from(cfg.shaders_per_cluster * cfg.simd_width),
            fragments_per_cycle_den: u64::from(cfg.shader_ops_per_fragment),
        }
    }

    /// Charges geometry front-end work (vertex processing, clipping, tiling)
    /// that precedes fragment shading.
    pub fn add_frontend_cycles(&mut self, cycles: u64) {
        self.frontend_cycles += cycles;
    }

    /// Picks the least-loaded cluster for the next tile; returns the cluster
    /// index and the cycle at which that tile starts there.
    pub fn begin_tile(&mut self) -> (usize, u64) {
        // Config validation guarantees at least one cluster; an empty list
        // degrades to cluster 0 at the frontend fence rather than panicking.
        let (cluster, start) = self
            .cluster_time
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(c, &t)| (c, t))
            .unwrap_or((0, 0));
        (cluster, start.max(self.frontend_cycles))
    }

    /// Start cycle for the next tile on a *statically chosen* `cluster` —
    /// the deterministic-parallel counterpart of [`FrameTimer::begin_tile`].
    /// The tile→cluster assignment is lifted out of the timer (a pure
    /// function of the tile index), so each cluster's cycle stream can be
    /// simulated independently and replayed in any order.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn begin_tile_on(&mut self, cluster: usize) -> u64 {
        self.cluster_time[cluster].max(self.frontend_cycles)
    }

    /// One cluster's finish time so far (its cycle-stream tail).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_cycles(&self, cluster: usize) -> u64 {
        self.cluster_time[cluster]
    }

    /// Replays a cluster finish time computed on a worker's private timer
    /// into this (merge) timer, keeping the later of the two. Merging every
    /// cluster in index order reproduces the serial timer state exactly.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn merge_cluster(&mut self, cluster: usize, finish: u64) {
        self.cluster_time[cluster] = self.cluster_time[cluster].max(finish);
    }

    /// Completes a tile on `cluster`: the tile occupied the cluster until
    /// shading finished and until the texture unit returned its last result
    /// (`texture_done`, an absolute cycle), whichever is later.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn end_tile(&mut self, cluster: usize, shading_cycles: u64, texture_done: u64) {
        let start = self.cluster_time[cluster].max(self.frontend_cycles);
        let shade_done = start + shading_cycles;
        self.cluster_time[cluster] = shade_done.max(texture_done);
    }

    /// Shading cycles for `fragments` fragments on one cluster
    /// (`ops-per-fragment / (shaders × simd)` each).
    pub fn shading_cycles(&self, fragments: u64) -> u64 {
        (fragments * self.fragments_per_cycle_den).div_ceil(self.fragments_per_cycle_num.max(1))
    }

    /// The frame's total cycles: the slowest cluster's finish time (which
    /// already includes the front-end offset).
    pub fn frame_cycles(&self) -> u64 {
        self.cluster_time
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.frontend_cycles)
    }
}

#[cfg(test)]
mod tests {
    // Tests may hash: iteration order is never observed in assertions.
    #![allow(clippy::disallowed_types)]
    use super::*;

    fn timer() -> FrameTimer {
        FrameTimer::new(&GpuConfig::default())
    }

    #[test]
    fn tiles_balance_across_clusters() {
        let mut t = timer();
        let mut used = std::collections::HashSet::new();
        for _ in 0..4 {
            let (c, start) = t.begin_tile();
            assert_eq!(start, 0);
            t.end_tile(c, 100, 100);
            used.insert(c);
        }
        assert_eq!(used.len(), 4, "four tiles spread over four clusters");
        assert_eq!(t.frame_cycles(), 100);
    }

    #[test]
    fn frame_is_max_cluster_time() {
        let mut t = timer();
        let (c0, _) = t.begin_tile();
        t.end_tile(c0, 500, 0);
        let (c1, _) = t.begin_tile();
        t.end_tile(c1, 100, 0);
        assert_eq!(t.frame_cycles(), 500);
    }

    #[test]
    fn texture_latency_extends_tile() {
        let mut t = timer();
        let (c, start) = t.begin_tile();
        // Shading takes 50 cycles but texturing returns at cycle start+400.
        t.end_tile(c, 50, start + 400);
        assert_eq!(t.frame_cycles(), 400);
    }

    #[test]
    fn shading_overlaps_texture() {
        let mut t = timer();
        let (c, start) = t.begin_tile();
        // Texture finishes earlier than shading: shading bound.
        t.end_tile(c, 300, start + 100);
        assert_eq!(t.frame_cycles(), 300);
    }

    #[test]
    fn frontend_precedes_tiles() {
        let mut t = timer();
        t.add_frontend_cycles(1000);
        let (c, start) = t.begin_tile();
        assert_eq!(start, 1000);
        t.end_tile(c, 50, 0);
        assert_eq!(t.frame_cycles(), 1050);
    }

    #[test]
    fn serial_tiles_accumulate_on_one_cluster() {
        let mut t = timer();
        // Fill all four clusters, then the fifth tile queues behind one.
        for _ in 0..4 {
            let (c, _) = t.begin_tile();
            t.end_tile(c, 100, 0);
        }
        let (c, start) = t.begin_tile();
        assert_eq!(start, 100);
        t.end_tile(c, 100, 0);
        assert_eq!(t.frame_cycles(), 200);
    }

    #[test]
    fn static_assignment_matches_dynamic_on_one_cluster() {
        let mut t = timer();
        t.add_frontend_cycles(40);
        let start = t.begin_tile_on(2);
        assert_eq!(start, 40, "front-end offset applies");
        t.end_tile(2, 100, 0);
        assert_eq!(t.begin_tile_on(2), 140, "tiles queue on their cluster");
        assert_eq!(t.cluster_cycles(2), 140);
        assert_eq!(t.cluster_cycles(0), 0, "other clusters untouched");
    }

    #[test]
    fn merge_cluster_replays_worker_streams() {
        let mut merged = timer();
        merged.add_frontend_cycles(10);
        merged.merge_cluster(0, 500);
        merged.merge_cluster(1, 300);
        merged.merge_cluster(0, 200); // earlier finish never rolls back
        assert_eq!(merged.cluster_cycles(0), 500);
        assert_eq!(merged.frame_cycles(), 500);
    }

    #[test]
    fn shading_cycles_formula() {
        let t = timer();
        // 64 lanes / 64 ops = 1 fragment per cycle.
        assert_eq!(t.shading_cycles(256), 256);
        assert_eq!(t.shading_cycles(0), 0);
        assert_eq!(t.shading_cycles(1), 1, "rounds up");
    }
}
