//! The texture memory hierarchy: per-cluster L1 → shared L2 → DRAM, with
//! per-class off-chip bandwidth accounting.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::dram::Dram;
use crate::error::GpuError;
use crate::fault::{FaultConfig, FaultCounts, FaultInjector};
use crate::stats::{BandwidthBreakdown, EventCounts, TrafficClass};
use patu_obs::Log2Histogram;
use patu_texture::TexelAddress;

/// Telemetry-only cycle totals by memory level, the attribution profiler's
/// raw material: how many fetch-latency cycles each level of the hierarchy
/// contributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemAttribCycles {
    /// Cycles spent in L1 hit latency (every fetch pays this).
    pub l1: u64,
    /// Cycles spent in L2 hit latency (L1 misses pay this).
    pub l2: u64,
    /// Cycles spent in the DRAM round-trip, including injected stalls.
    pub dram: u64,
}

/// Where a texel fetch was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchLevel {
    /// Texture L1 hit.
    L1,
    /// L2 hit.
    L2,
    /// Serviced by DRAM.
    Dram,
}

/// The memory system shared by all texture units.
///
/// ```
/// use patu_gpu::{GpuConfig, MemorySystem};
/// use patu_texture::TexelAddress;
/// let cfg = GpuConfig::default();
/// let mut mem = MemorySystem::new(&cfg);
/// let cold = mem.fetch_texel(0, TexelAddress::new(0x1000), 0);
/// let warm = mem.fetch_texel(0, TexelAddress::new(0x1000), 1000);
/// assert!(warm < cold, "L1 hit beats the cold DRAM fill");
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    l1_hit_cycles: u64,
    l2_hit_cycles: u64,
    line_size: u64,
    bandwidth: BandwidthBreakdown,
    events: EventCounts,
    faults: FaultInjector,
    telemetry: bool,
    fetch_latency_hist: Log2Histogram,
    miss_penalty_hist: Log2Histogram,
    attrib_cycles: MemAttribCycles,
}

impl MemorySystem {
    /// Builds the hierarchy from the GPU configuration: one L1 per cluster,
    /// one shared L2, one DRAM.
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache geometry; use [`MemorySystem::try_new`]
    /// for a non-panicking variant.
    pub fn new(cfg: &GpuConfig) -> MemorySystem {
        // patu-lint: allow(panic-path) — documented panicking convenience for tests; library paths use try_new
        MemorySystem::try_new(cfg).expect("valid cache geometry")
    }

    /// Like [`MemorySystem::new`] but reports degenerate cache geometry as
    /// a typed error instead of panicking.
    pub fn try_new(cfg: &GpuConfig) -> Result<MemorySystem, GpuError> {
        Ok(MemorySystem {
            l1: (0..cfg.clusters)
                .map(|_| Cache::try_new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes))
                .collect::<Result<Vec<Cache>, GpuError>>()?,
            l2: Cache::try_new(cfg.tex_l2_bytes, cfg.tex_l2_ways, cfg.cache_line_bytes)?,
            dram: Dram::new(cfg),
            l1_hit_cycles: cfg.l1_hit_cycles,
            l2_hit_cycles: cfg.l2_hit_cycles,
            line_size: cfg.cache_line_bytes,
            bandwidth: BandwidthBreakdown::default(),
            events: EventCounts::default(),
            faults: FaultInjector::disabled(),
            telemetry: false,
            fetch_latency_hist: Log2Histogram::new(),
            miss_penalty_hist: Log2Histogram::new(),
            attrib_cycles: MemAttribCycles::default(),
        })
    }

    /// Arms fault injection on the fetch path. Cache bit flips invalidate
    /// the affected line before lookup (the ECC-detected corruption forces
    /// a refill from the level below); DRAM stalls occupy the read's
    /// channel for the configured timeout. Both perturb *latency* and
    /// *hit rates* while keeping the byte/event accounting invariants
    /// (`dram bytes == dram reads × line size`) intact.
    pub fn set_faults(&mut self, cfg: FaultConfig) -> Result<(), GpuError> {
        cfg.validate()?;
        // Tag the fork so the memory system's stream never overlaps the
        // texture units', which fork from the same master seed.
        self.faults = FaultInjector::new(cfg).fork(0x4D45_4D53); // "MEMS"
        Ok(())
    }

    /// Like [`MemorySystem::set_faults`] but additionally forks the stream
    /// by `cluster`. The parallel renderer gives every cluster its own
    /// memory shard; tagging each shard's stream with its cluster index
    /// keeps fault patterns a pure function of (seed, cluster), independent
    /// of which worker thread executes the shard.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError`] for out-of-range fault rates.
    pub fn set_cluster_faults(&mut self, cfg: FaultConfig, cluster: u64) -> Result<(), GpuError> {
        cfg.validate()?;
        self.faults = FaultInjector::new(cfg).fork(0x4D45_4D53).fork(cluster);
        Ok(())
    }

    /// Rebases the fault stream to the canonical position for `tags`
    /// (prefixed by the memory system's `"MEMS"` site tag), keeping the
    /// accumulated counts. The temporal renderer calls this with
    /// `[frame, tile]` before rendering each tile so the tile's fault draws
    /// are a pure function of `(seed, frame, tile)` — independent of which
    /// other tiles this shard rendered or reused before it.
    pub fn rekey_faults(&mut self, tags: &[u64]) {
        let mut chain = [0u64; 8];
        chain[0] = 0x4D45_4D53; // "MEMS" — matches set_faults/set_cluster_faults
        let n = tags.len().min(chain.len() - 1);
        chain[1..=n].copy_from_slice(&tags[..n]);
        self.faults.rekey(&chain[..=n]);
    }

    /// Faults injected into this memory system so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.counts()
    }

    /// Enables or disables per-fetch latency telemetry. Off by default so
    /// the untraced fetch path pays nothing beyond this flag's branch.
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.telemetry = enabled;
    }

    /// Distribution of end-to-end texel-fetch latencies (telemetry only;
    /// empty unless [`MemorySystem::set_telemetry`] was enabled).
    pub fn fetch_latency_hist(&self) -> &Log2Histogram {
        &self.fetch_latency_hist
    }

    /// Distribution of cache-miss penalties — the DRAM round-trip portion
    /// of fetches that missed both cache levels (telemetry only).
    pub fn miss_penalty_hist(&self) -> &Log2Histogram {
        &self.miss_penalty_hist
    }

    /// Cycle totals by memory level (telemetry only; all zero unless
    /// [`MemorySystem::set_telemetry`] was enabled).
    pub fn attrib_cycles(&self) -> MemAttribCycles {
        self.attrib_cycles
    }

    /// Fetches one texel through `cluster`'s L1; returns the latency in
    /// cycles from issue (`now`) to data return.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn fetch_texel(&mut self, cluster: usize, addr: TexelAddress, now: u64) -> u64 {
        let (latency, _level) = self.fetch_texel_detailed(cluster, addr, now);
        latency
    }

    /// Like [`MemorySystem::fetch_texel`] but also reports which level
    /// satisfied the fetch.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn fetch_texel_detailed(
        &mut self,
        cluster: usize,
        addr: TexelAddress,
        now: u64,
    ) -> (u64, FetchLevel) {
        let (latency, level) = self.fetch_texel_inner(cluster, addr, now);
        if self.telemetry {
            self.fetch_latency_hist.record(latency);
            self.attrib_cycles.l1 += self.l1_hit_cycles;
            match level {
                FetchLevel::L1 => {}
                FetchLevel::L2 => self.attrib_cycles.l2 += self.l2_hit_cycles,
                FetchLevel::Dram => {
                    self.attrib_cycles.l2 += self.l2_hit_cycles;
                    self.attrib_cycles.dram +=
                        latency.saturating_sub(self.l1_hit_cycles + self.l2_hit_cycles);
                }
            }
        }
        (latency, level)
    }

    fn fetch_texel_inner(
        &mut self,
        cluster: usize,
        addr: TexelAddress,
        now: u64,
    ) -> (u64, FetchLevel) {
        self.events.texel_fetches += 1;
        // Fault site: a resident line's ECC detects a bit flip. The line is
        // dropped before lookup, so the access takes the miss path and the
        // refill recovers clean data — degraded latency, correct results.
        if self.faults.is_active() && self.faults.flip_cache_line() {
            // Alternate the struck level deterministically so both caches
            // exercise their recovery path under any rate.
            if self.faults.counts().cache_bitflips.is_multiple_of(2) {
                self.l2.invalidate_line(addr);
            } else {
                self.l1[cluster].invalidate_line(addr);
            }
        }
        self.events.l1_accesses += 1;
        if self.l1[cluster].access(addr) {
            return (self.l1_hit_cycles, FetchLevel::L1);
        }
        self.events.l1_misses += 1;
        self.events.l2_accesses += 1;
        if self.l2.access(addr) {
            return (self.l1_hit_cycles + self.l2_hit_cycles, FetchLevel::L2);
        }
        self.events.l2_misses += 1;
        let issue = now + self.l1_hit_cycles + self.l2_hit_cycles;
        // Fault site: the DRAM read times out and is retried, holding the
        // channel bus for the configured stall before the real transfer.
        if let Some(stall) = self.faults.dram_stall() {
            self.dram.inject_stall(addr, stall, issue);
        }
        let dram_latency = self.dram.read(addr, issue);
        if self.telemetry {
            self.miss_penalty_hist.record(dram_latency);
        }
        self.events.dram_reads += 1;
        self.events.dram_bytes += self.line_size;
        self.bandwidth
            .add(TrafficClass::TextureFetch, self.line_size);
        (
            self.l1_hit_cycles + self.l2_hit_cycles + dram_latency,
            FetchLevel::Dram,
        )
    }

    /// Accounts off-chip traffic that bypasses the texture caches (vertex
    /// fetch, depth spill, framebuffer write, command stream).
    pub fn record_traffic(&mut self, class: TrafficClass, bytes: u64) {
        debug_assert!(
            class != TrafficClass::TextureFetch,
            "texture traffic is accounted by fetch_texel"
        );
        self.bandwidth.add(class, bytes);
        self.events.dram_bytes += bytes;
    }

    /// Off-chip bandwidth by class.
    pub fn bandwidth(&self) -> BandwidthBreakdown {
        self.bandwidth
    }

    /// Event counters (cache/DRAM activity).
    pub fn events(&self) -> EventCounts {
        self.events
    }

    /// L1 hit rate of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn l1_hit_rate(&self, cluster: usize) -> f64 {
        self.l1[cluster].stats().hit_rate()
    }

    /// Shared L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.stats().hit_rate()
    }

    /// Clears all cache/DRAM state and counters (between frames or runs).
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.reset();
        }
        self.l2.reset();
        self.dram.reset();
        self.bandwidth = BandwidthBreakdown::default();
        self.events = EventCounts::default();
        self.faults.reset_counts();
        self.fetch_latency_hist = Log2Histogram::new();
        self.miss_penalty_hist = Log2Histogram::new();
        self.attrib_cycles = MemAttribCycles::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(&GpuConfig::default())
    }

    #[test]
    fn fetch_path_levels() {
        let mut m = mem();
        let (cold, lvl) = m.fetch_texel_detailed(0, TexelAddress::new(0), 0);
        assert_eq!(lvl, FetchLevel::Dram);
        let (warm, lvl) = m.fetch_texel_detailed(0, TexelAddress::new(0), 100);
        assert_eq!(lvl, FetchLevel::L1);
        assert_eq!(warm, 1);
        assert!(cold > warm + 10);
    }

    #[test]
    fn l2_shared_between_clusters() {
        let mut m = mem();
        let _ = m.fetch_texel_detailed(0, TexelAddress::new(0), 0);
        // Other cluster misses its own L1 but hits the shared L2.
        let (lat, lvl) = m.fetch_texel_detailed(1, TexelAddress::new(0), 100);
        assert_eq!(lvl, FetchLevel::L2);
        assert_eq!(lat, 1 + 12);
    }

    #[test]
    fn texture_bandwidth_counts_l2_miss_lines_only() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        let _ = m.fetch_texel(0, TexelAddress::new(4), 10); // same line: L1 hit
        assert_eq!(m.bandwidth().texture, 64, "one line fetched once");
        assert_eq!(m.events().texel_fetches, 2);
        assert_eq!(m.events().dram_reads, 1);
    }

    #[test]
    fn non_texture_traffic_recorded() {
        let mut m = mem();
        m.record_traffic(TrafficClass::Vertex, 320);
        m.record_traffic(TrafficClass::Framebuffer, 1000);
        assert_eq!(m.bandwidth().vertex, 320);
        assert_eq!(m.bandwidth().framebuffer, 1000);
        assert_eq!(m.bandwidth().total(), 1320);
    }

    #[test]
    fn hit_rates_update() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        let _ = m.fetch_texel(0, TexelAddress::new(0), 10);
        assert!((m.l1_hit_rate(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn faulted_fetches_keep_accounting_invariants() {
        let mut m = mem();
        m.set_faults(FaultConfig::uniform(11, 0.2)).unwrap();
        for i in 0..2_000u64 {
            let _ = m.fetch_texel(0, TexelAddress::new((i % 300) * 32), i * 3);
        }
        let e = m.events();
        assert_eq!(e.l1_accesses, e.texel_fetches);
        assert_eq!(e.l2_accesses, e.l1_misses);
        assert_eq!(e.dram_reads, e.l2_misses);
        assert_eq!(e.dram_bytes, e.dram_reads * 64, "bytes == reads * line");
        assert!(
            m.fault_counts().faults_injected() > 0,
            "faults actually fired"
        );
    }

    #[test]
    fn bitflips_lower_hit_rate() {
        let run = |rate: f64| {
            let mut m = mem();
            m.set_faults(FaultConfig::uniform(5, rate)).unwrap();
            for i in 0..3_000u64 {
                let _ = m.fetch_texel(0, TexelAddress::new((i % 50) * 64), i);
            }
            m.l1_hit_rate(0)
        };
        assert!(run(0.3) < run(0.0), "corrupted lines force refills");
    }

    #[test]
    fn disabled_faults_change_nothing() {
        let mut clean = mem();
        let mut armed = mem();
        armed.set_faults(FaultConfig::disabled()).unwrap();
        for i in 0..500u64 {
            let a = clean.fetch_texel(0, TexelAddress::new(i * 48), i * 2);
            let b = armed.fetch_texel(0, TexelAddress::new(i * 48), i * 2);
            assert_eq!(a, b);
        }
        assert_eq!(clean.events(), armed.events());
        assert_eq!(armed.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn cluster_forks_draw_distinct_deterministic_streams() {
        let run = |cluster: u64| {
            let mut m = MemorySystem::new(&GpuConfig::default().cluster_shard());
            m.set_cluster_faults(FaultConfig::uniform(9, 0.1), cluster)
                .unwrap();
            for i in 0..1_000u64 {
                let _ = m.fetch_texel(0, TexelAddress::new((i % 200) * 48), i * 2);
            }
            (m.events(), m.fault_counts())
        };
        let (e0, f0) = run(0);
        let (e0_again, f0_again) = run(0);
        assert_eq!(e0, e0_again, "same cluster tag, same stream");
        assert_eq!(f0, f0_again);
        let (_, f1) = run(1);
        assert!(f0.faults_injected() > 0 && f1.faults_injected() > 0);
        assert_ne!(
            (f0.cache_bitflips, f0.dram_stalls),
            (f1.cache_bitflips, f1.dram_stalls),
            "different cluster tags decorrelate"
        );
    }

    #[test]
    fn cluster_faults_reject_bad_rates() {
        let mut m = mem();
        let bad = FaultConfig {
            cache_bitflip_rate: -0.5,
            ..FaultConfig::disabled()
        };
        assert!(m.set_cluster_faults(bad, 2).is_err());
    }

    #[test]
    fn set_faults_rejects_bad_rates() {
        let mut m = mem();
        let bad = FaultConfig {
            dram_stall_rate: 7.0,
            ..FaultConfig::disabled()
        };
        assert!(m.set_faults(bad).is_err());
    }

    #[test]
    fn telemetry_hists_gate_on_the_flag() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        assert!(m.fetch_latency_hist().is_empty(), "off by default");
        assert!(m.miss_penalty_hist().is_empty());
        m.set_telemetry(true);
        let _ = m.fetch_texel(0, TexelAddress::new(4096), 10); // cold: DRAM
        let _ = m.fetch_texel(0, TexelAddress::new(4096), 500); // warm: L1
        assert_eq!(m.fetch_latency_hist().count(), 2);
        assert_eq!(m.miss_penalty_hist().count(), 1, "only the miss pays DRAM");
        assert!(m.fetch_latency_hist().max() > m.fetch_latency_hist().min());
        m.reset();
        assert!(m.fetch_latency_hist().is_empty(), "reset clears telemetry");
    }

    #[test]
    fn attrib_cycles_split_by_level_and_gate_on_telemetry() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        assert_eq!(
            m.attrib_cycles(),
            MemAttribCycles::default(),
            "off by default"
        );
        m.set_telemetry(true);
        let (cold, _) = m.fetch_texel_detailed(0, TexelAddress::new(4096), 0); // DRAM
        let _ = m.fetch_texel(1, TexelAddress::new(4096), 400); // L2 (other cluster's L1 misses)
        let _ = m.fetch_texel(0, TexelAddress::new(4096), 800); // L1
        let a = m.attrib_cycles();
        assert_eq!(a.l1, 3, "every fetch pays the 1-cycle L1 latency");
        assert_eq!(a.l2, 24, "DRAM and L2 fetches pay the 12-cycle L2 latency");
        assert_eq!(
            a.dram,
            cold - 1 - 12,
            "DRAM share is the rest of the cold fetch"
        );
        m.reset();
        assert_eq!(m.attrib_cycles(), MemAttribCycles::default());
    }

    #[test]
    fn try_new_rejects_degenerate_config() {
        let cfg = GpuConfig {
            tex_l1_bytes: 1,
            ..GpuConfig::default()
        };
        assert!(MemorySystem::try_new(&cfg).is_err());
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        m.reset();
        let (_, lvl) = m.fetch_texel_detailed(0, TexelAddress::new(0), 0);
        assert_eq!(lvl, FetchLevel::Dram);
        assert_eq!(m.events().texel_fetches, 1);
    }
}
