//! The texture memory hierarchy: per-cluster L1 → shared L2 → DRAM, with
//! per-class off-chip bandwidth accounting.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::dram::Dram;
use crate::stats::{BandwidthBreakdown, EventCounts, TrafficClass};
use patu_texture::TexelAddress;

/// Where a texel fetch was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchLevel {
    /// Texture L1 hit.
    L1,
    /// L2 hit.
    L2,
    /// Serviced by DRAM.
    Dram,
}

/// The memory system shared by all texture units.
///
/// ```
/// use patu_gpu::{GpuConfig, MemorySystem};
/// use patu_texture::TexelAddress;
/// let cfg = GpuConfig::default();
/// let mut mem = MemorySystem::new(&cfg);
/// let cold = mem.fetch_texel(0, TexelAddress::new(0x1000), 0);
/// let warm = mem.fetch_texel(0, TexelAddress::new(0x1000), 1000);
/// assert!(warm < cold, "L1 hit beats the cold DRAM fill");
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    l1_hit_cycles: u64,
    l2_hit_cycles: u64,
    line_size: u64,
    bandwidth: BandwidthBreakdown,
    events: EventCounts,
}

impl MemorySystem {
    /// Builds the hierarchy from the GPU configuration: one L1 per cluster,
    /// one shared L2, one DRAM.
    pub fn new(cfg: &GpuConfig) -> MemorySystem {
        MemorySystem {
            l1: (0..cfg.clusters)
                .map(|_| Cache::new(cfg.tex_l1_bytes, cfg.tex_l1_ways, cfg.cache_line_bytes))
                .collect(),
            l2: Cache::new(cfg.tex_l2_bytes, cfg.tex_l2_ways, cfg.cache_line_bytes),
            dram: Dram::new(cfg),
            l1_hit_cycles: cfg.l1_hit_cycles,
            l2_hit_cycles: cfg.l2_hit_cycles,
            line_size: cfg.cache_line_bytes,
            bandwidth: BandwidthBreakdown::default(),
            events: EventCounts::default(),
        }
    }

    /// Fetches one texel through `cluster`'s L1; returns the latency in
    /// cycles from issue (`now`) to data return.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn fetch_texel(&mut self, cluster: usize, addr: TexelAddress, now: u64) -> u64 {
        let (latency, _level) = self.fetch_texel_detailed(cluster, addr, now);
        latency
    }

    /// Like [`MemorySystem::fetch_texel`] but also reports which level
    /// satisfied the fetch.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn fetch_texel_detailed(
        &mut self,
        cluster: usize,
        addr: TexelAddress,
        now: u64,
    ) -> (u64, FetchLevel) {
        self.events.texel_fetches += 1;
        self.events.l1_accesses += 1;
        if self.l1[cluster].access(addr) {
            return (self.l1_hit_cycles, FetchLevel::L1);
        }
        self.events.l1_misses += 1;
        self.events.l2_accesses += 1;
        if self.l2.access(addr) {
            return (self.l1_hit_cycles + self.l2_hit_cycles, FetchLevel::L2);
        }
        self.events.l2_misses += 1;
        let issue = now + self.l1_hit_cycles + self.l2_hit_cycles;
        let dram_latency = self.dram.read(addr, issue);
        self.events.dram_reads += 1;
        self.events.dram_bytes += self.line_size;
        self.bandwidth.add(TrafficClass::TextureFetch, self.line_size);
        (
            self.l1_hit_cycles + self.l2_hit_cycles + dram_latency,
            FetchLevel::Dram,
        )
    }

    /// Accounts off-chip traffic that bypasses the texture caches (vertex
    /// fetch, depth spill, framebuffer write, command stream).
    pub fn record_traffic(&mut self, class: TrafficClass, bytes: u64) {
        debug_assert!(
            class != TrafficClass::TextureFetch,
            "texture traffic is accounted by fetch_texel"
        );
        self.bandwidth.add(class, bytes);
        self.events.dram_bytes += bytes;
    }

    /// Off-chip bandwidth by class.
    pub fn bandwidth(&self) -> BandwidthBreakdown {
        self.bandwidth
    }

    /// Event counters (cache/DRAM activity).
    pub fn events(&self) -> EventCounts {
        self.events
    }

    /// L1 hit rate of one cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn l1_hit_rate(&self, cluster: usize) -> f64 {
        self.l1[cluster].stats().hit_rate()
    }

    /// Shared L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.stats().hit_rate()
    }

    /// Clears all cache/DRAM state and counters (between frames or runs).
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.reset();
        }
        self.l2.reset();
        self.dram.reset();
        self.bandwidth = BandwidthBreakdown::default();
        self.events = EventCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(&GpuConfig::default())
    }

    #[test]
    fn fetch_path_levels() {
        let mut m = mem();
        let (cold, lvl) = m.fetch_texel_detailed(0, TexelAddress::new(0), 0);
        assert_eq!(lvl, FetchLevel::Dram);
        let (warm, lvl) = m.fetch_texel_detailed(0, TexelAddress::new(0), 100);
        assert_eq!(lvl, FetchLevel::L1);
        assert_eq!(warm, 1);
        assert!(cold > warm + 10);
    }

    #[test]
    fn l2_shared_between_clusters() {
        let mut m = mem();
        let _ = m.fetch_texel_detailed(0, TexelAddress::new(0), 0);
        // Other cluster misses its own L1 but hits the shared L2.
        let (lat, lvl) = m.fetch_texel_detailed(1, TexelAddress::new(0), 100);
        assert_eq!(lvl, FetchLevel::L2);
        assert_eq!(lat, 1 + 12);
    }

    #[test]
    fn texture_bandwidth_counts_l2_miss_lines_only() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        let _ = m.fetch_texel(0, TexelAddress::new(4), 10); // same line: L1 hit
        assert_eq!(m.bandwidth().texture, 64, "one line fetched once");
        assert_eq!(m.events().texel_fetches, 2);
        assert_eq!(m.events().dram_reads, 1);
    }

    #[test]
    fn non_texture_traffic_recorded() {
        let mut m = mem();
        m.record_traffic(TrafficClass::Vertex, 320);
        m.record_traffic(TrafficClass::Framebuffer, 1000);
        assert_eq!(m.bandwidth().vertex, 320);
        assert_eq!(m.bandwidth().framebuffer, 1000);
        assert_eq!(m.bandwidth().total(), 1320);
    }

    #[test]
    fn hit_rates_update() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        let _ = m.fetch_texel(0, TexelAddress::new(0), 10);
        assert!((m.l1_hit_rate(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = mem();
        let _ = m.fetch_texel(0, TexelAddress::new(0), 0);
        m.reset();
        let (_, lvl) = m.fetch_texel_detailed(0, TexelAddress::new(0), 0);
        assert_eq!(lvl, FetchLevel::Dram);
        assert_eq!(m.events().texel_fetches, 1);
    }
}
