//! Per-GPU failure domains and the resilience primitives that survive
//! them.
//!
//! The [`HealthModel`] scripts each GPU's misbehavior on the virtual
//! clock as half-open [`Episode`] windows — whole-unit **outages** (the
//! GPU is gone until a drawn recovery cycle; work in flight is lost) and
//! **straggler** windows (service time is multiplied by a slowdown factor
//! without going offline) — plus a hash-derived per-attempt **transient**
//! failure draw that surfaces as a corrupt frame hash. Everything is a
//! pure function of the scenario seed: no wall clock, no ambient
//! randomness, so chaos replays bit-identically at any `PATU_THREADS`.
//!
//! The resilience side lives here too: a typed [`RetryPolicy`]
//! (deterministic exponential backoff in virtual cycles, per-tier retry
//! budgets, and a deadline check so a retry that cannot finish in time is
//! never dispatched) and a per-GPU [`CircuitBreaker`] (opens after K
//! consecutive failures, cools down for a seeded drawn window, then
//! half-opens for a single probe).

use crate::error::ServeError;
use crate::exec::fnv1a;
use crate::job::Job;
use patu_gmath::DetRng;

/// What a health [`Episode`] does to its GPU while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpisodeKind {
    /// The GPU is offline: nothing dispatches to it, and any work in
    /// flight when the window opens is lost at the window's start cycle.
    Outage,
    /// The GPU still serves, but every job's service time is multiplied
    /// by `factor` (sanitized to at least 1 — a straggler never speeds
    /// anything up).
    Straggle {
        /// Service-time multiplier while the window is active.
        factor: f64,
    },
}

/// One scripted window of GPU misbehavior, half-open `[start, end)` on
/// the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// First cycle the episode is active.
    pub start: u64,
    /// First cycle after recovery (exclusive).
    pub end: u64,
    /// What the episode does.
    pub kind: EpisodeKind,
}

impl Episode {
    /// Whether the episode covers cycle `at`.
    pub fn covers(&self, at: u64) -> bool {
        self.start <= at && at < self.end
    }
}

/// The seeded per-GPU health model a serving session runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthModel {
    per_gpu: Vec<Vec<Episode>>,
    transient_rate: f64,
    seed: u64,
}

impl HealthModel {
    /// A model with no episodes and no transient failures: every GPU is
    /// immortal, reproducing the pre-chaos serve semantics exactly.
    pub fn healthy(gpus: usize) -> HealthModel {
        HealthModel::new(vec![Vec::new(); gpus], 0.0, 0)
    }

    /// Builds a model from per-GPU episode scripts. Episodes are sorted
    /// by start cycle, degenerate windows (`end <= start`) are dropped,
    /// and the transient rate is sanitized into `[0, 1]`.
    pub fn new(mut per_gpu: Vec<Vec<Episode>>, transient_rate: f64, seed: u64) -> HealthModel {
        for episodes in &mut per_gpu {
            episodes.retain(|e| e.end > e.start);
            episodes.sort_by_key(|e| (e.start, e.end));
        }
        HealthModel {
            per_gpu,
            transient_rate: if transient_rate.is_finite() {
                transient_rate.clamp(0.0, 1.0)
            } else {
                0.0
            },
            seed,
        }
    }

    /// Number of GPUs the model covers.
    pub fn gpus(&self) -> usize {
        self.per_gpu.len()
    }

    /// Whether the model is entirely benign: no episodes on any GPU and
    /// no transient failures. A calm model makes hedging stand down —
    /// there is nothing to race against — which keeps calm sessions
    /// bit-identical to the pre-chaos serve semantics.
    pub fn is_calm(&self) -> bool {
        self.transient_rate <= 0.0 && self.per_gpu.iter().all(Vec::is_empty)
    }

    /// The per-attempt transient failure probability.
    pub fn transient_rate(&self) -> f64 {
        self.transient_rate
    }

    /// The episode script for one GPU (sorted by start), empty for
    /// out-of-range indices.
    pub fn episodes(&self, gpu: usize) -> &[Episode] {
        self.per_gpu.get(gpu).map_or(&[], Vec::as_slice)
    }

    /// If `gpu` is inside an outage window at `now`, the cycle it comes
    /// back (the window's exclusive end).
    pub fn outage_until(&self, gpu: usize, now: u64) -> Option<u64> {
        self.episodes(gpu)
            .iter()
            .filter(|e| matches!(e.kind, EpisodeKind::Outage) && e.covers(now))
            .map(|e| e.end)
            .max()
    }

    /// The outage window covering `at`, as `(start, end)` — `start`
    /// identifies the episode (the postmortem dedup key), `end` is when
    /// the GPU actually comes back. The scheduler never sees this; only
    /// the attempt simulation does.
    pub fn outage_covering(&self, gpu: usize, at: u64) -> Option<(u64, u64)> {
        self.episodes(gpu)
            .iter()
            .filter(|e| matches!(e.kind, EpisodeKind::Outage) && e.covers(at))
            .map(|e| (e.start, e.end))
            .max_by_key(|&(_, end)| end)
    }

    /// The first outage window opening strictly inside `(after, before)`,
    /// as `(start, end)` — the crash that kills work dispatched at
    /// `after` and finishing at `before`.
    pub fn next_outage_in(&self, gpu: usize, after: u64, before: u64) -> Option<(u64, u64)> {
        self.episodes(gpu)
            .iter()
            .find(|e| matches!(e.kind, EpisodeKind::Outage) && e.start > after && e.start < before)
            .map(|e| (e.start, e.end))
    }

    /// The service-time multiplier in force on `gpu` at cycle `at`: the
    /// largest factor of any covering straggle window, 1.0 when none.
    pub fn straggle_factor(&self, gpu: usize, at: u64) -> f64 {
        self.episodes(gpu)
            .iter()
            .filter_map(|e| match e.kind {
                EpisodeKind::Straggle { factor } if e.covers(at) => Some(factor.max(1.0)),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Whether attempt `attempt` of job `job` on `gpu` suffers a
    /// transient fault (the frame computes, but its hash comes back
    /// corrupt). A pure hash draw: independent of dispatch order, and
    /// decorrelated across GPUs and attempts, so a retry or a hedge
    /// re-rolls the dice.
    pub fn transient_fails(&self, gpu: usize, job: u64, attempt: u32) -> bool {
        if self.transient_rate <= 0.0 {
            return false;
        }
        let h = fnv1a(
            self.seed ^ 0x7472_616e_7369_656e,
            (gpu as u64)
                .to_le_bytes()
                .into_iter()
                .chain(job.to_le_bytes())
                .chain(u64::from(attempt).to_le_bytes()),
        );
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.transient_rate
    }
}

/// Typed retry semantics: per-tier budgets and deterministic exponential
/// backoff, denominated in fractions of the calibrated mean service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries per tier (index = `Tier::index()`); 0 disables
    /// retries for that tier.
    pub budgets: [u32; 3],
    /// First backoff as a fraction of the mean service time.
    pub backoff_frac: f64,
    /// Backoff ceiling as a fraction of the mean service time.
    pub backoff_cap_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budgets: [2, 2, 3],
            backoff_frac: 0.25,
            backoff_cap_frac: 4.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every tier's budget is 0).
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            budgets: [0, 0, 0],
            ..RetryPolicy::default()
        }
    }

    /// Whether any tier can retry at all.
    pub fn is_enabled(&self) -> bool {
        self.budgets.iter().any(|&b| b > 0)
    }

    /// The backoff before retry number `retry` (1-based), in virtual
    /// cycles: `backoff_frac × mean_service × 2^(retry-1)`, capped at
    /// `backoff_cap_frac × mean_service`, never below 1 cycle.
    pub fn backoff(&self, retry: u32, mean_service: u64) -> u64 {
        let base = (mean_service as f64 * self.backoff_frac).max(1.0);
        let cap = (mean_service as f64 * self.backoff_cap_frac).max(1.0);
        let doubling = f64::from(retry.saturating_sub(1).min(32));
        let raw = base * 2.0f64.powf(doubling);
        raw.min(cap).max(1.0) as u64
    }

    /// Schedules the next attempt for a job whose `failed_attempts`-th
    /// execution just failed at cycle `now`, returning the cycle the
    /// retry becomes dispatchable.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::RetriesExhausted`] when the tier's budget is
    /// spent, or when even an immediate retry could not finish by the
    /// job's deadline (`due + est_service > deadline`) — the policy never
    /// spends GPU cycles on a contract already lost.
    pub fn next_attempt(
        &self,
        job: &Job,
        failed_attempts: u32,
        now: u64,
        est_service: u64,
        mean_service: u64,
    ) -> Result<u64, ServeError> {
        let exhausted = || ServeError::RetriesExhausted {
            job: job.id,
            retries: failed_attempts.saturating_sub(1),
        };
        if failed_attempts > self.budgets[job.tier.index()] {
            return Err(exhausted());
        }
        let due = now.saturating_add(self.backoff(failed_attempts, mean_service));
        if due.saturating_add(est_service) > job.deadline {
            return Err(exhausted());
        }
        Ok(due)
    }
}

/// Circuit-breaker knobs, resolved against the calibrated mean service
/// time at session start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Whether breakers trip at all.
    pub enabled: bool,
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// Cooldown window drawn uniformly from this range, in multiples of
    /// the mean service time. Deliberately short: the half-open probe is
    /// what verifies recovery, so a long quarantine only withholds a GPU
    /// that may already be healthy again.
    pub cooldown_frac: (f64, f64),
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            threshold: 3,
            cooldown_frac: (1.0, 2.0),
        }
    }
}

impl BreakerConfig {
    /// A breaker that never opens.
    pub fn disabled() -> BreakerConfig {
        BreakerConfig {
            enabled: false,
            ..BreakerConfig::default()
        }
    }
}

/// Where a [`CircuitBreaker`] stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: no dispatches until the cooldown expires at `until`.
    Open {
        /// First cycle the breaker half-opens.
        until: u64,
    },
    /// Cooled down: exactly one probe dispatch decides — success closes,
    /// failure re-opens with a fresh drawn cooldown.
    HalfOpen,
}

/// A per-GPU circuit breaker with seeded cooldown draws.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    rng: DetRng,
    state: BreakerState,
    consecutive: u32,
    last_failure: Option<u64>,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker drawing cooldowns from `rng` (fork one stream per
    /// GPU so draws never interleave nondeterministically).
    pub fn new(cfg: BreakerConfig, rng: DetRng) -> CircuitBreaker {
        CircuitBreaker {
            cfg: BreakerConfig {
                threshold: cfg.threshold.max(1),
                ..cfg
            },
            rng,
            state: BreakerState::Closed,
            consecutive: 0,
            last_failure: None,
            opens: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Whether a dispatch may target this GPU at `now`. An expired `Open`
    /// is available (it will half-open on the next dispatch).
    pub fn available(&self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => now >= until,
        }
    }

    /// The cycle this breaker stops blocking, when it is blocking at
    /// `now`.
    pub fn blocked_until(&self, now: u64) -> Option<u64> {
        match self.state {
            BreakerState::Open { until } if until > now => Some(until),
            _ => None,
        }
    }

    /// Marks a dispatch at `now`: an expired `Open` transitions to the
    /// single-probe `HalfOpen` state.
    pub fn note_dispatch(&mut self, now: u64) {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Records a successful completion: the failure run resets and a
    /// half-open probe closes the breaker.
    pub fn on_success(&mut self) {
        self.consecutive = 0;
        self.last_failure = None;
        self.state = BreakerState::Closed;
    }

    /// Records a failure observed at cycle `at`; returns `true` when this
    /// failure opened (or re-opened) the breaker. A failed half-open
    /// probe re-opens immediately; a closed breaker opens after
    /// `threshold` consecutive failure *incidents* — failures at distinct
    /// cycles — for a cooldown drawn uniformly from
    /// `cooldown_frac × mean_service`. A crashed batch reports one loss
    /// per job at the same cycle, but that is one incident: three jobs
    /// dying in one crash is much weaker evidence of a dead GPU than
    /// three dispatches dying in a row. An already-open breaker ignores
    /// further failures (the GPU only tripped once).
    pub fn on_failure(&mut self, at: u64, mean_service: u64) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Open { .. } => return false,
            BreakerState::Closed => {
                if self.last_failure != Some(at) {
                    self.last_failure = Some(at);
                    self.consecutive += 1;
                }
                self.consecutive >= self.cfg.threshold
            }
        };
        if trip {
            let (lo, hi) = self.cfg.cooldown_frac;
            let (lo, hi) = (lo.max(0.0), hi.max(lo.max(0.0)));
            let u = self.rng.next_f64();
            let cooldown = ((lo + (hi - lo) * u) * mean_service as f64).max(1.0) as u64;
            self.state = BreakerState::Open {
                until: at.saturating_add(cooldown),
            };
            self.consecutive = 0;
            self.opens += 1;
        }
        trip
    }
}

/// Hedged-dispatch knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Whether at-risk interactive jobs are duplicated.
    pub enabled: bool,
    /// A job is at risk when its remaining slack is below
    /// `slack_factor × est_service` — the hedge fires only when one
    /// straggle or one transient would blow the deadline.
    pub slack_factor: f64,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            slack_factor: 2.0,
        }
    }
}

impl HedgeConfig {
    /// Hedging off.
    pub fn disabled() -> HedgeConfig {
        HedgeConfig {
            enabled: false,
            ..HedgeConfig::default()
        }
    }
}

/// The serving layer's full resilience posture; every mechanism can be
/// switched off independently, and [`ResilienceConfig::disabled`] is the
/// control arm chaos benchmarks compare against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Retry semantics for failed attempts.
    pub retry: RetryPolicy,
    /// Hedged duplicate dispatch for at-risk interactive jobs.
    pub hedge: HedgeConfig,
    /// Per-GPU circuit breakers.
    pub breaker: BreakerConfig,
    /// Whether lost capacity leans on the quality governor (the brownout
    /// ladder).
    pub brownout: bool,
    /// How hard a fully lost pool would push the threshold down: the
    /// ladder bias is `-brownout_gain × rung`, rungs quantized to
    /// quarters of lost capacity.
    pub brownout_gain: f64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            hedge: HedgeConfig::default(),
            breaker: BreakerConfig::default(),
            brownout: true,
            brownout_gain: 0.5,
        }
    }
}

impl ResilienceConfig {
    /// Everything off: failures fail, stragglers straggle, capacity loss
    /// goes unmanaged. The chaos benchmarks' control arm.
    pub fn disabled() -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::disabled(),
            hedge: HedgeConfig::disabled(),
            breaker: BreakerConfig::disabled(),
            brownout: false,
            brownout_gain: 0.0,
        }
    }

    /// Checks every knob, reporting the first unusable one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for non-finite or negative
    /// fractions.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |what| Err(ServeError::InvalidConfig { what });
        for (what, v) in [
            (
                "retry.backoff_frac must be finite and positive",
                self.retry.backoff_frac,
            ),
            (
                "retry.backoff_cap_frac must be finite and positive",
                self.retry.backoff_cap_frac,
            ),
            (
                "hedge.slack_factor must be finite and positive",
                self.hedge.slack_factor,
            ),
            (
                "breaker.cooldown_frac.0 must be finite and positive",
                self.breaker.cooldown_frac.0,
            ),
            (
                "breaker.cooldown_frac.1 must be finite and positive",
                self.breaker.cooldown_frac.1,
            ),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return bad(what);
            }
        }
        if !(self.brownout_gain.is_finite() && self.brownout_gain >= 0.0) {
            return bad("brownout_gain must be finite and non-negative");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Tier;

    fn outage(start: u64, end: u64) -> Episode {
        Episode {
            start,
            end,
            kind: EpisodeKind::Outage,
        }
    }

    fn straggle(start: u64, end: u64, factor: f64) -> Episode {
        Episode {
            start,
            end,
            kind: EpisodeKind::Straggle { factor },
        }
    }

    fn job(id: u64, tier: Tier, arrival: u64, deadline: u64) -> Job {
        Job {
            id,
            client: 0,
            tier,
            scene: 0,
            frame: 0,
            arrival,
            deadline,
        }
    }

    #[test]
    fn outage_queries_use_half_open_windows() {
        let m = HealthModel::new(vec![vec![outage(100, 200)], Vec::new()], 0.0, 1);
        assert_eq!(m.outage_until(0, 99), None);
        assert_eq!(m.outage_until(0, 100), Some(200));
        assert_eq!(m.outage_until(0, 199), Some(200));
        assert_eq!(m.outage_until(0, 200), None, "end is exclusive");
        assert_eq!(m.outage_until(1, 150), None, "other GPU is healthy");
        assert_eq!(m.outage_until(7, 150), None, "out-of-range is healthy");
    }

    #[test]
    fn next_outage_finds_crashes_inside_the_execution_window() {
        let m = HealthModel::new(vec![vec![outage(100, 200), outage(500, 600)]], 0.0, 1);
        assert_eq!(m.next_outage_in(0, 50, 150), Some((100, 200)));
        assert_eq!(m.next_outage_in(0, 100, 400), None, "start must be strict");
        assert_eq!(m.next_outage_in(0, 250, 501), Some((500, 600)));
        assert_eq!(m.next_outage_in(0, 250, 500), None, "before is exclusive");
    }

    #[test]
    fn straggle_factor_takes_the_worst_covering_window() {
        let m = HealthModel::new(
            vec![vec![straggle(0, 100, 1.5), straggle(50, 80, 3.0)]],
            0.0,
            1,
        );
        assert_eq!(m.straggle_factor(0, 10), 1.5);
        assert_eq!(m.straggle_factor(0, 60), 3.0, "overlap takes the max");
        assert_eq!(m.straggle_factor(0, 200), 1.0, "outside all windows");
        let sub = HealthModel::new(vec![vec![straggle(0, 10, 0.5)]], 0.0, 1);
        assert_eq!(sub.straggle_factor(0, 5), 1.0, "factors below 1 sanitize");
    }

    #[test]
    fn transients_are_deterministic_and_decorrelated() {
        let m = HealthModel::new(vec![Vec::new(); 2], 0.5, 99);
        let a: Vec<bool> = (0..64).map(|j| m.transient_fails(0, j, 1)).collect();
        let b: Vec<bool> = (0..64).map(|j| m.transient_fails(0, j, 1)).collect();
        assert_eq!(a, b, "pure function of (gpu, job, attempt)");
        let other_gpu: Vec<bool> = (0..64).map(|j| m.transient_fails(1, j, 1)).collect();
        let other_attempt: Vec<bool> = (0..64).map(|j| m.transient_fails(0, j, 2)).collect();
        assert_ne!(a, other_gpu, "GPU decorrelates the draw");
        assert_ne!(a, other_attempt, "attempt decorrelates the draw");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&fired), "~50% of 64: {fired}");
        let calm = HealthModel::healthy(2);
        assert!((0..64).all(|j| !calm.transient_fails(0, j, 1)));
    }

    #[test]
    fn model_sanitizes_scripts_and_rates() {
        let m = HealthModel::new(
            vec![vec![outage(50, 50), outage(200, 300), outage(10, 20)]],
            f64::NAN,
            0,
        );
        assert_eq!(m.transient_rate(), 0.0, "NaN rate sanitizes");
        let starts: Vec<u64> = m.episodes(0).iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![10, 200], "degenerate dropped, sorted");
        assert!(!m.is_calm(), "episodes make a model hazardous");
        assert!(HealthModel::healthy(4).is_calm());
        assert!(!HealthModel::new(vec![Vec::new()], 0.1, 0).is_calm());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::default();
        let ms = 1_000_000;
        assert_eq!(p.backoff(1, ms), 250_000);
        assert_eq!(p.backoff(2, ms), 500_000);
        assert_eq!(p.backoff(3, ms), 1_000_000);
        assert_eq!(p.backoff(6, ms), 4_000_000, "capped at 4x mean");
        assert_eq!(p.backoff(30, ms), 4_000_000, "stays capped");
        assert!(p.backoff(1, 0) >= 1, "never zero");
    }

    #[test]
    fn retry_respects_budget_and_deadline() {
        let p = RetryPolicy::default();
        let ms = 1_000_000;
        let j = job(5, Tier::Standard, 0, 10_000_000);
        let due = p
            .next_attempt(&j, 1, 2_000_000, ms, ms)
            .expect("first retry");
        assert_eq!(due, 2_250_000, "failure time + first backoff");
        assert!(
            matches!(
                p.next_attempt(&j, 3, 2_000_000, ms, ms),
                Err(ServeError::RetriesExhausted { job: 5, retries: 2 })
            ),
            "standard tier budget is 2"
        );
        // Deadline-aware: a retry that cannot finish in time is refused
        // even with budget left.
        let tight = job(6, Tier::Interactive, 0, 3_000_000);
        assert!(matches!(
            p.next_attempt(&tight, 1, 2_500_000, ms, ms),
            Err(ServeError::RetriesExhausted { job: 6, retries: 0 })
        ));
        assert!(!RetryPolicy::disabled().is_enabled());
        assert!(p.is_enabled());
    }

    #[test]
    fn breaker_opens_after_k_and_half_open_probes() {
        let ms = 1_000u64;
        let mut b = CircuitBreaker::new(BreakerConfig::default(), DetRng::new(7));
        assert!(b.available(0));
        assert!(!b.on_failure(10, ms));
        assert!(!b.on_failure(20, ms));
        assert!(b.on_failure(30, ms), "third consecutive failure trips");
        assert_eq!(b.opens(), 1);
        let BreakerState::Open { until } = b.state() else {
            unreachable!("breaker must be open");
        };
        assert!((30 + ms..=30 + 2 * ms).contains(&until), "drawn cooldown");
        assert!(!b.available(until - 1));
        assert_eq!(b.blocked_until(31), Some(until));
        assert!(b.available(until), "expired open is probeable");
        b.note_dispatch(until);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_failure(until + 5, ms), "failed probe re-opens at once");
        assert_eq!(b.opens(), 2);
        let BreakerState::Open { until: until2 } = b.state() else {
            unreachable!("breaker must re-open");
        };
        b.note_dispatch(until2);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed, "probe success closes");
        assert!(b.blocked_until(0).is_none());
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = CircuitBreaker::new(BreakerConfig::default(), DetRng::new(7));
        b.on_failure(1, 100);
        b.on_failure(2, 100);
        b.on_success();
        assert!(!b.on_failure(3, 100), "run restarted");
        assert!(!b.on_failure(4, 100));
        assert!(b.on_failure(5, 100));
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled(), DetRng::new(7));
        for at in 0..50 {
            assert!(!b.on_failure(at, 100));
        }
        assert_eq!(b.opens(), 0);
        assert!(b.available(0));
    }

    #[test]
    fn breaker_draws_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut b = CircuitBreaker::new(BreakerConfig::default(), DetRng::new(seed));
            for at in 0..9 {
                b.on_failure(at, 1_000);
            }
            b.state()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn resilience_validates_and_disables() {
        assert!(ResilienceConfig::default().validate().is_ok());
        let off = ResilienceConfig::disabled();
        assert!(off.validate().is_ok());
        assert!(!off.retry.is_enabled());
        assert!(!off.hedge.enabled);
        assert!(!off.breaker.enabled);
        assert!(!off.brownout);
        let mut bad = ResilienceConfig::default();
        bad.retry.backoff_frac = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = ResilienceConfig::default();
        bad.hedge.slack_factor = -1.0;
        assert!(bad.validate().is_err());
        let bad = ResilienceConfig {
            brownout_gain: f64::INFINITY,
            ..ResilienceConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
