//! The serve loop: a discrete-event simulation of the GPU pool on the
//! virtual clock.
//!
//! Time is simulated GPU cycles, advanced only by two event kinds — job
//! arrivals and GPU completions — so a session is a pure function of its
//! [`ServeConfig`] and [`FrameService`]: bit-identical logs, stats and
//! delivered frames on every run and every `PATU_THREADS` setting. The loop
//! per step: admit every arrival due now (shedding on a full queue),
//! dispatch EDF batches onto free GPUs with the governor's quantized
//! threshold, else advance the clock to the next event.

use crate::error::ServeError;
use crate::exec::{FrameService, RenderKey};
use crate::governor::QualityGovernor;
use crate::job::{CompletedJob, Job, Outcome, Tier};
use crate::queue::{Admission, AdmissionQueue};
use crate::workload::{self, ServeConfig};
use patu_core::FilterPolicy;
use patu_obs::json::{escape, num_fixed};
use patu_obs::report::Table;
use patu_obs::{sink, Collector, FrameTelemetry, Log2Histogram, TelemetryConfig, Track};

/// Session-level counters and distributions.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Jobs the workload generator submitted.
    pub submitted: u64,
    /// Jobs rendered and delivered (on time or late).
    pub delivered: u64,
    /// Jobs rejected at admission (queue full).
    pub shed: u64,
    /// Delivered jobs that finished after their deadline.
    pub deadline_misses: u64,
    /// Delivered jobs rendered below the base threshold — quality the
    /// governor traded for throughput.
    pub degrades: u64,
    /// Batches dispatched (each paid one scene-setup cost).
    pub batches: u64,
    /// Virtual cycle the last job finished.
    pub makespan: u64,
    /// Sum of delivered SSIM (for the mean).
    pub ssim_sum: f64,
    /// Queue depth observed at each admission.
    pub queue_depth: Log2Histogram,
    /// Deadline headroom of on-time deliveries.
    pub slack: Log2Histogram,
    /// Arrival→delivery latency per tier (index = `Tier::index()`).
    pub latency: [Log2Histogram; 3],
}

impl ServeStats {
    /// Mean SSIM over delivered jobs (1.0 for an empty session: no frame
    /// was degraded).
    pub fn mean_ssim(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.ssim_sum / self.delivered as f64
        }
    }

    /// The fraction of submitted jobs that failed their contract: shed at
    /// admission or delivered past deadline. The headline SLO metric.
    pub fn miss_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.deadline_misses + self.shed) as f64 / self.submitted as f64
        }
    }

    /// Delivered jobs per million virtual cycles.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.delivered as f64 * 1.0e6 / self.makespan as f64
        }
    }
}

/// Everything a session produces.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Counters and distributions.
    pub stats: ServeStats,
    /// Terminal record of every job, in completion order.
    pub completed: Vec<CompletedJob>,
    /// The JSONL serve log (one `"serve"` line per job, schema-checked by
    /// `patu_obs::schema`).
    pub log: String,
    /// Spans (per job and batch, on per-GPU tracks) and session counters,
    /// exportable as a Chrome trace.
    pub telemetry: FrameTelemetry,
}

impl ServeReport {
    /// Per-tier latency table for run summaries.
    pub fn table(&self) -> String {
        let mut t = Table::new(&["tier", "delivered", "p50", "p95", "p99"]);
        for tier in Tier::ALL {
            let h = &self.stats.latency[tier.index()];
            t.row(&[
                tier.label().to_string(),
                h.count().to_string(),
                h.p50().to_string(),
                h.p95().to_string(),
                h.p99().to_string(),
            ]);
        }
        t.render()
    }

    /// The session as a Chrome Trace Event Format document.
    pub fn chrome_trace(&self) -> String {
        sink::chrome_trace(std::slice::from_ref(&self.telemetry))
    }
}

/// Maps an (already quantized) threshold onto its bucket index.
fn bucket_of(theta: f64, steps: u32) -> u32 {
    let steps = steps.max(1);
    (theta.clamp(0.0, 1.0) * f64::from(steps)).round() as u32
}

/// State for one session run; split out so the event loop reads linearly.
struct Session<'a, S: FrameService> {
    cfg: &'a ServeConfig,
    service: &'a mut S,
    governor: QualityGovernor,
    queue: AdmissionQueue,
    gpu_free: Vec<u64>,
    gpu_obs: Vec<Collector>,
    now: u64,
    stats: ServeStats,
    completed: Vec<CompletedJob>,
    log: String,
}

impl<'a, S: FrameService> Session<'a, S> {
    fn log_line(&mut self, job: &Job, done: &CompletedJob) {
        let scene = self.cfg.scenes.get(job.scene).map_or("?", String::as_str);
        let head = format!(
            "{{\"type\":\"serve\",\"job\":{},\"client\":{},\"tier\":{},\"scene\":\"{}\",\"frame\":{},\"arrival\":{},\"deadline\":{}",
            job.id,
            job.client,
            job.tier.index(),
            escape(scene),
            job.frame,
            job.arrival,
            job.deadline,
        );
        let tail = match done.outcome {
            Outcome::Shed => ",\"outcome\":\"shed\"}".to_string(),
            Outcome::Delivered => format!(
                ",\"outcome\":\"delivered\",\"finish\":{},\"theta\":{},\"ssim\":{},\"hash\":{}}}",
                done.finish,
                num_fixed(done.theta, 4),
                num_fixed(done.ssim, 6),
                done.image_hash,
            ),
        };
        self.log.push_str(&head);
        self.log.push_str(&tail);
        self.log.push('\n');
    }

    fn shed(&mut self, job: Job) {
        let done = CompletedJob {
            job,
            outcome: Outcome::Shed,
            finish: job.arrival,
            theta: 0.0,
            ssim: 0.0,
            image_hash: 0,
            degraded: false,
        };
        self.stats.shed += 1;
        self.log_line(&job, &done);
        self.completed.push(done);
    }

    fn deliver(&mut self, job: Job, finish: u64, theta: f64, ssim: f64, hash: u64) {
        let degraded = theta + 1e-9 < self.cfg.base_threshold;
        let done = CompletedJob {
            job,
            outcome: Outcome::Delivered,
            finish,
            theta,
            ssim,
            image_hash: hash,
            degraded,
        };
        self.stats.delivered += 1;
        self.stats.deadline_misses += u64::from(done.missed_deadline());
        self.stats.degrades += u64::from(degraded);
        self.stats.ssim_sum += ssim;
        self.stats.makespan = self.stats.makespan.max(finish);
        self.stats.latency[job.tier.index()].record(done.latency());
        if !done.missed_deadline() {
            self.stats.slack.record(done.slack());
        }
        self.log_line(&job, &done);
        self.completed.push(done);
    }

    /// Dispatches one EDF batch onto GPU `gpu`, returning its completion
    /// cycle.
    fn dispatch(&mut self, gpu: usize, setup: u64) -> Result<(), ServeError> {
        let policy = self
            .governor
            .policy_for(self.queue.depth(), self.queue.capacity());
        let theta = QualityGovernor::effective_threshold(&policy);
        let bucket = bucket_of(theta, self.cfg.governor_steps);
        let Some(head) = self.queue.pop() else {
            return Ok(());
        };
        let mut batch = vec![head];
        batch.extend(
            self.queue
                .take_same_scene(&head, self.cfg.batch_max.saturating_sub(1)),
        );
        let keys: Vec<RenderKey> = batch
            .iter()
            .map(|j| RenderKey {
                scene: j.scene,
                frame: j.frame,
                bucket,
            })
            .collect();
        let served = self.service.serve(&keys)?;
        let start = self.now;
        let mut t = start.saturating_add(setup);
        for (job, frame) in batch.iter().zip(&served) {
            let job_start = t;
            t = t.saturating_add(frame.cycles);
            self.governor.observe(frame.cycles);
            self.gpu_obs[gpu].span_arg("serve::job", job_start, t, "job", job.id);
            self.deliver(*job, t, theta, frame.ssim, frame.image_hash);
        }
        self.gpu_obs[gpu].span_arg("serve::batch", start, t, "jobs", batch.len() as u64);
        self.gpu_free[gpu] = t;
        self.stats.batches += 1;
        Ok(())
    }
}

/// Runs one serving session to completion.
///
/// # Errors
///
/// Returns [`ServeError`] for invalid configurations or service failures;
/// a clean run delivers or sheds every submitted job.
pub fn run_session<S: FrameService>(
    cfg: &ServeConfig,
    service: &mut S,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    let base_bucket = bucket_of(cfg.base_threshold, cfg.governor_steps);
    let mean_service = service.calibrate(base_bucket)?;
    let setup = (mean_service as f64 * cfg.setup_frac) as u64;
    let jobs = workload::generate(cfg, mean_service);
    let base_policy = FilterPolicy::Patu {
        threshold: cfg.base_threshold,
    };
    let telemetry_cfg = TelemetryConfig::with_level(cfg.trace);

    let mut session = Session {
        cfg,
        service,
        governor: QualityGovernor::new(
            base_policy,
            mean_service,
            cfg.governor_floor,
            cfg.governor_steps,
            cfg.pressure_gain,
            cfg.governor,
        ),
        queue: AdmissionQueue::new(cfg.queue_capacity),
        gpu_free: vec![0; cfg.gpus],
        gpu_obs: (0..cfg.gpus)
            .map(|g| Collector::new(telemetry_cfg, Track::Cluster(g as u32)))
            .collect(),
        now: 0,
        stats: ServeStats {
            submitted: jobs.len() as u64,
            ..ServeStats::default()
        },
        completed: Vec::with_capacity(jobs.len()),
        log: String::new(),
    };

    let mut next_arrival = 0usize;
    loop {
        // 1. Admit every arrival due by now, in arrival order; a full queue
        //    sheds the newcomer (admission never evicts a promise).
        while next_arrival < jobs.len() && jobs[next_arrival].arrival <= session.now {
            let job = jobs[next_arrival];
            next_arrival += 1;
            match session.queue.offer(job) {
                Admission::Admitted(depth) => session.stats.queue_depth.record(depth as u64),
                Admission::Rejected(job) => session.shed(job),
            }
        }

        // 2. Dispatch onto the lowest-indexed idle GPU, if any work waits.
        if !session.queue.is_empty() {
            let idle = (0..session.gpu_free.len()).find(|&g| session.gpu_free[g] <= session.now);
            if let Some(gpu) = idle {
                session.dispatch(gpu, setup)?;
                continue; // other GPUs may be idle at the same cycle
            }
        }

        // 3. Advance the virtual clock to the next event.
        let arrival = (next_arrival < jobs.len()).then(|| jobs[next_arrival].arrival);
        let completion = if session.queue.is_empty() {
            None
        } else {
            session
                .gpu_free
                .iter()
                .copied()
                .filter(|&f| f > session.now)
                .min()
        };
        session.now = match (arrival, completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => break, // no arrivals left, queue drained
        };
    }

    let Session {
        stats,
        completed,
        log,
        gpu_obs,
        ..
    } = session;

    let mut telemetry = FrameTelemetry::new(cfg.trace, 0, format!("{base_policy:?}"), cfg.seed);
    for obs in gpu_obs {
        telemetry.absorb(obs);
    }
    telemetry
        .counters
        .insert("serve::submitted", stats.submitted);
    telemetry
        .counters
        .insert("serve::delivered", stats.delivered);
    telemetry.counters.insert("serve::shed", stats.shed);
    telemetry
        .counters
        .insert("serve::deadline_misses", stats.deadline_misses);
    telemetry.counters.insert("serve::degrades", stats.degrades);
    telemetry.counters.insert("serve::batches", stats.batches);
    telemetry
        .hists
        .insert("serve::queue_depth", stats.queue_depth);
    telemetry.hists.insert("serve::slack", stats.slack);
    telemetry
        .hists
        .insert("serve::latency_interactive", stats.latency[0]);
    telemetry
        .hists
        .insert("serve::latency_standard", stats.latency[1]);
    telemetry
        .hists
        .insert("serve::latency_batch", stats.latency[2]);

    Ok(ServeReport {
        stats,
        completed,
        log,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SyntheticService;

    fn cfg() -> ServeConfig {
        ServeConfig {
            clients: 4,
            jobs_per_client: 12,
            load: 1.0,
            gpus: 2,
            queue_capacity: 8,
            ..ServeConfig::default()
        }
    }

    fn run(cfg: &ServeConfig) -> ServeReport {
        let mut service = SyntheticService::new(1_000_000, cfg.governor_steps);
        run_session(cfg, &mut service).expect("session runs")
    }

    #[test]
    fn every_job_terminates_exactly_once() {
        let report = run(&cfg());
        let s = &report.stats;
        assert_eq!(s.submitted, 48);
        assert_eq!(s.delivered + s.shed, s.submitted);
        assert_eq!(report.completed.len(), 48);
        let mut ids: Vec<u64> = report.completed.iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 48, "no duplicate completions");
        assert_eq!(report.log.lines().count(), 48);
    }

    #[test]
    fn sessions_are_bit_identical() {
        let a = run(&cfg());
        let b = run(&cfg());
        assert_eq!(a.log, b.log);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn serve_log_passes_the_schema_checker() {
        let report = run(&ServeConfig {
            load: 4.0, // force some sheds so both outcomes appear
            queue_capacity: 2,
            ..cfg()
        });
        let checked = patu_obs::schema::check_stream(&report.log).expect("all lines valid");
        assert_eq!(checked as u64, report.stats.submitted);
        assert!(report.stats.shed > 0, "4x load on a 2-deep queue sheds");
    }

    #[test]
    fn governor_cuts_misses_under_overload() {
        let overload = ServeConfig { load: 3.0, ..cfg() };
        let governed = run(&overload);
        let ungoverned = run(&ServeConfig {
            governor: false,
            ..overload
        });
        assert!(
            governed.stats.miss_rate() < ungoverned.stats.miss_rate(),
            "governed {} vs ungoverned {}",
            governed.stats.miss_rate(),
            ungoverned.stats.miss_rate()
        );
        assert!(governed.stats.degrades > 0, "quality was actually traded");
        assert!(
            governed.stats.mean_ssim() >= 0.88,
            "floor bounds the trade: {}",
            governed.stats.mean_ssim()
        );
        assert_eq!(ungoverned.stats.degrades, 0);
    }

    #[test]
    fn sheds_are_monotone_in_load() {
        let base = cfg();
        let mut last = 0u64;
        for load in [0.5, 2.0, 5.0] {
            let report = run(&ServeConfig {
                load,
                queue_capacity: 3,
                governor: false,
                ..base.clone()
            });
            assert!(
                report.stats.shed >= last,
                "shed at load {load}: {} < {last}",
                report.stats.shed
            );
            last = report.stats.shed;
        }
    }

    #[test]
    fn report_table_lists_every_tier() {
        let report = run(&cfg());
        let table = report.table();
        for tier in Tier::ALL {
            assert!(table.contains(tier.label()), "{table}");
        }
    }

    #[test]
    fn batching_amortizes_setup() {
        let batched = run(&ServeConfig {
            batch_max: 4,
            load: 2.0,
            ..cfg()
        });
        let unbatched = run(&ServeConfig {
            batch_max: 1,
            load: 2.0,
            ..cfg()
        });
        assert!(
            batched.stats.batches < unbatched.stats.batches,
            "same-scene jobs coalesce: {} vs {}",
            batched.stats.batches,
            unbatched.stats.batches
        );
        assert_eq!(
            batched.stats.delivered + batched.stats.shed,
            unbatched.stats.delivered + unbatched.stats.shed,
            "both modes account for every job"
        );
    }

    #[test]
    fn telemetry_records_spans_and_counters() {
        let report = run(&ServeConfig {
            trace: patu_obs::TraceLevel::Spans,
            ..cfg()
        });
        assert_eq!(
            report.telemetry.counters["serve::delivered"],
            report.stats.delivered
        );
        let stages: Vec<&str> = report
            .telemetry
            .stage_totals()
            .iter()
            .map(|&(n, _, _)| n)
            .collect();
        assert!(stages.contains(&"serve::job"), "stages: {stages:?}");
        assert!(stages.contains(&"serve::batch"));
        let trace = report.chrome_trace();
        assert!(trace.contains("serve::job"));
    }
}
